//! # vmp — Software-Controlled Caches in the VMP Multiprocessor
//!
//! A production-quality Rust reproduction of the system described in
//! D. R. Cheriton, G. A. Slavenburg and P. D. Boyle, *Software-Controlled
//! Caches in the VMP Multiprocessor*, ISCA 1986.
//!
//! VMP couples each processor to a large, virtually-addressed cache whose
//! misses are handled in *software*, like page faults; a per-processor
//! **bus monitor** with a two-bit-per-frame action table enforces a simple
//! shared/private ownership consistency protocol over a VMEbus.
//!
//! This facade crate re-exports the full simulator stack:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `vmp-types` | addresses, ASIDs, page sizes, simulated time |
//! | [`sim`] | `vmp-sim` | discrete-event engine, statistics |
//! | [`trace`] | `vmp-trace` | reference traces, ATUM-like synthetic workloads |
//! | [`cache`] | `vmp-cache` | virtually-addressed set-associative cache |
//! | [`mem`] | `vmp-mem` | main memory, block copier, local memory |
//! | [`bus`] | `vmp-bus` | VMEbus, bus monitor, action tables |
//! | [`obs`] | `vmp-obs` | event tracing, latency histograms, timeline export, contention attribution, metrics compare gate |
//! | [`faults`] | `vmp-faults` | deterministic seeded fault injection |
//! | [`vm`] | `vmp-vm` | address spaces and two-level page tables |
//! | [`machine`] | `vmp-core` | the full VMP machine model |
//! | [`baselines`] | `vmp-baselines` | snoopy write-broadcast & MIPS-X baselines |
//! | [`analytic`] | `vmp-analytic` | closed-form performance models |
//!
//! # Quick start
//!
//! ```
//! use vmp::machine::{Machine, MachineConfig};
//! use vmp::trace::synth::{AtumParams, AtumWorkload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::build(MachineConfig::default())?;
//! let refs = AtumWorkload::new(AtumParams::default(), 42).take(20_000);
//! machine.load_trace(0, refs)?;
//! let report = machine.run()?;
//! assert!(report.processors[0].refs > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use vmp_analytic as analytic;
pub use vmp_baselines as baselines;
pub use vmp_bus as bus;
pub use vmp_cache as cache;
pub use vmp_core as machine;
pub use vmp_faults as faults;
pub use vmp_mem as mem;
pub use vmp_obs as obs;
pub use vmp_sim as sim;
pub use vmp_trace as trace;
pub use vmp_types as types;
pub use vmp_vm as vm;
