//! Property-based sanity of the coherence traffic models.

use proptest::prelude::*;
use vmp_baselines::{Access, CoherenceModel, OwnershipSystem, SnoopySystem};
use vmp_types::PageSize;

fn arb_stream(cpus: usize) -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec(
        (0..cpus, 0u64..4096, any::<bool>()).prop_map(|(cpu, addr, write)| Access {
            cpu,
            addr,
            write,
        }),
        0..400,
    )
}

proptest! {
    /// A single processor never generates sharing traffic in either
    /// model: just one fill per line/page.
    #[test]
    fn single_cpu_has_no_sharing_traffic(stream in arb_stream(1)) {
        let mut snoopy = SnoopySystem::new(1, 16);
        let mut vmp = OwnershipSystem::new(1, PageSize::S256);
        let mut distinct_lines = std::collections::HashSet::new();
        let mut distinct_pages = std::collections::HashSet::new();
        for &a in &stream {
            snoopy.access(a);
            vmp.access(a);
            distinct_lines.insert(a.addr / 16);
            distinct_pages.insert(a.addr / 256);
        }
        prop_assert_eq!(snoopy.traffic().word_ops, 0);
        prop_assert_eq!(snoopy.traffic().block_transfers, distinct_lines.len() as u64);
        prop_assert_eq!(vmp.traffic().invalidations, 0);
        // Ownership may pay an upgrade control cycle per page (read then
        // write), never more than one per page.
        prop_assert!(vmp.traffic().word_ops <= distinct_pages.len() as u64);
        prop_assert_eq!(vmp.traffic().block_transfers, distinct_pages.len() as u64);
    }

    /// Multi-processor streams: counters are consistent and bus time is
    /// monotone in the stream (processing more accesses never reduces
    /// accumulated traffic).
    #[test]
    fn traffic_is_monotone(stream in arb_stream(3)) {
        let mut snoopy = SnoopySystem::new(3, 16);
        let mut vmp = OwnershipSystem::new(3, PageSize::S256);
        let mut last_s = vmp_types::Nanos::ZERO;
        let mut last_v = vmp_types::Nanos::ZERO;
        for &a in &stream {
            snoopy.access(a);
            vmp.access(a);
            prop_assert!(snoopy.traffic().bus_time >= last_s);
            prop_assert!(vmp.traffic().bus_time >= last_v);
            last_s = snoopy.traffic().bus_time;
            last_v = vmp.traffic().bus_time;
        }
        prop_assert_eq!(snoopy.traffic().accesses, stream.len() as u64);
        prop_assert_eq!(vmp.traffic().accesses, stream.len() as u64);
    }

    /// Reads alone never invalidate anything under ownership.
    #[test]
    fn read_only_streams_never_invalidate(stream in arb_stream(3)) {
        let mut vmp = OwnershipSystem::new(3, PageSize::S256);
        for &a in &stream {
            vmp.access(Access { write: false, ..a });
        }
        prop_assert_eq!(vmp.traffic().invalidations, 0);
        prop_assert_eq!(vmp.traffic().word_ops, 0);
    }
}
