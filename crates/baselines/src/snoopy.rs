//! Snoopy write-broadcast coherence (the §6 alternative).

use std::collections::{HashMap, HashSet};

use vmp_mem::MemTimings;
use vmp_types::Nanos;

use crate::{Access, CoherenceModel, TrafficStats};

/// A write-broadcast (write-update) snoopy cache system.
///
/// Each processor caches small *lines*; on a write to a line present in
/// any other cache, the word is broadcast on the bus and every holder
/// updates in place — the behaviour the paper argues against: it needs a
/// bus-to-cache data path at memory-reference speed, word-granularity
/// bus operations on every shared write, and small lines (§6).
///
/// The model is infinite-capacity per processor (capacity misses are the
/// same for both protocols and would only blur the *sharing-traffic*
/// comparison the paper makes).
///
/// # Examples
///
/// ```
/// use vmp_baselines::{Access, CoherenceModel, SnoopySystem};
///
/// let mut s = SnoopySystem::new(2, 16);
/// s.access(Access { cpu: 0, addr: 0, write: false }); // line fill
/// s.access(Access { cpu: 1, addr: 0, write: true });  // fill + broadcast
/// assert_eq!(s.traffic().word_ops, 1);
/// ```
#[derive(Debug)]
pub struct SnoopySystem {
    line_bytes: u64,
    timings: MemTimings,
    /// line → set of caches holding it.
    holders: HashMap<u64, HashSet<usize>>,
    processors: usize,
    stats: TrafficStats,
}

impl SnoopySystem {
    /// Creates a system of `processors` caches with `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two ≥ 4 and
    /// `processors > 0`.
    pub fn new(processors: usize, line_bytes: u64) -> Self {
        assert!(processors > 0, "need at least one processor");
        assert!(line_bytes >= 4 && line_bytes.is_power_of_two(), "bad line size");
        SnoopySystem {
            line_bytes,
            timings: MemTimings::default(),
            holders: HashMap::new(),
            processors,
            stats: TrafficStats::default(),
        }
    }

    /// The configured line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    fn line_fill_time(&self) -> Nanos {
        self.timings.block_transfer(self.line_bytes / 4)
    }
}

impl CoherenceModel for SnoopySystem {
    fn access(&mut self, a: Access) {
        assert!(a.cpu < self.processors, "processor out of range");
        self.stats.accesses += 1;
        let line = self.line_of(a.addr);
        let holders = self.holders.entry(line).or_default();
        if !holders.contains(&a.cpu) {
            // Line fill from memory.
            holders.insert(a.cpu);
            self.stats.block_transfers += 1;
            let t = self.line_fill_time();
            self.stats.bus_time += t;
        }
        if a.write && self.holders[&line].len() > 1 {
            // Write broadcast: one word on the bus, snooped by the other
            // holders, which update in place.
            self.stats.word_ops += 1;
            self.stats.bus_time += self.timings.first_word;
        }
    }

    fn traffic(&self) -> &TrafficStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_data_costs_one_fill() {
        let mut s = SnoopySystem::new(2, 16);
        for i in 0..100 {
            s.access(Access { cpu: 0, addr: i % 16, write: i % 2 == 0 });
        }
        let t = s.traffic();
        assert_eq!(t.block_transfers, 1);
        assert_eq!(t.word_ops, 0, "unshared writes broadcast nothing");
    }

    #[test]
    fn every_shared_write_broadcasts() {
        let mut s = SnoopySystem::new(2, 16);
        s.access(Access { cpu: 0, addr: 0, write: false });
        s.access(Access { cpu: 1, addr: 0, write: false });
        let fills = s.traffic().block_transfers;
        for _ in 0..50 {
            s.access(Access { cpu: 0, addr: 4, write: true });
        }
        let t = s.traffic();
        assert_eq!(t.block_transfers, fills, "no further fills");
        assert_eq!(t.word_ops, 50, "one broadcast per shared write");
    }

    #[test]
    fn line_granularity() {
        let mut s = SnoopySystem::new(1, 16);
        s.access(Access { cpu: 0, addr: 0, write: false });
        s.access(Access { cpu: 0, addr: 15, write: false }); // same line
        s.access(Access { cpu: 0, addr: 16, write: false }); // next line
        assert_eq!(s.traffic().block_transfers, 2);
        assert_eq!(s.line_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "bad line size")]
    fn rejects_bad_line() {
        let _ = SnoopySystem::new(1, 10);
    }
}
