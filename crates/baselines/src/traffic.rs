//! The shared access-stream interface and traffic counters.

use core::fmt;

use vmp_types::Nanos;

/// One memory access in a multiprocessor reference stream.
///
/// Baselines compare *bus traffic*, so accesses carry physical addresses
/// directly (virtual translation is orthogonal to the comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Which processor issues the access.
    pub cpu: usize,
    /// Physical byte address.
    pub addr: u64,
    /// Write (vs. read).
    pub write: bool,
}

/// Bus-traffic counters accumulated by a coherence model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total accesses processed.
    pub accesses: u64,
    /// Block (line or page) transfers over the bus.
    pub block_transfers: u64,
    /// Single-word bus operations (write broadcasts, word updates).
    pub word_ops: u64,
    /// Copies invalidated in remote caches.
    pub invalidations: u64,
    /// Total bus occupancy.
    pub bus_time: Nanos,
}

impl TrafficStats {
    /// Mean bus time per access (zero when empty).
    pub fn bus_time_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.bus_time.as_ns() as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses: {} blocks, {} words, {} invalidations, {} bus ({:.1} ns/access)",
            self.accesses,
            self.block_transfers,
            self.word_ops,
            self.invalidations,
            self.bus_time,
            self.bus_time_per_access(),
        )
    }
}

/// A coherence protocol processing a multiprocessor access stream and
/// accumulating bus traffic.
pub trait CoherenceModel {
    /// Processes one access.
    fn access(&mut self, a: Access);

    /// The traffic accumulated so far.
    fn traffic(&self) -> &TrafficStats;

    /// Processes a whole stream.
    fn run<I: IntoIterator<Item = Access>>(&mut self, stream: I)
    where
        Self: Sized,
    {
        for a in stream {
            self.access(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_access_time() {
        let t = TrafficStats { accesses: 10, bus_time: Nanos::from_ns(1000), ..Default::default() };
        assert!((t.bus_time_per_access() - 100.0).abs() < 1e-12);
        assert_eq!(TrafficStats::default().bus_time_per_access(), 0.0);
        assert!(!t.to_string().is_empty());
    }
}

/// Builds a multiprocessor access stream by round-robin interleaving
/// per-processor traces (physical addresses = the traces' virtual
/// addresses — the baselines compare traffic, not translation).
///
/// Traces of unequal length are drained until all are exhausted.
///
/// # Examples
///
/// ```
/// use vmp_baselines::interleave;
/// use vmp_trace::{MemRef, Trace};
/// use vmp_types::{Asid, VirtAddr};
///
/// let a: Trace = vec![MemRef::read(Asid::new(1), VirtAddr::new(0))].into_iter().collect();
/// let b: Trace = vec![MemRef::write(Asid::new(1), VirtAddr::new(4))].into_iter().collect();
/// let stream = interleave(&[a, b]);
/// assert_eq!(stream.len(), 2);
/// assert_eq!(stream[0].cpu, 0);
/// assert_eq!(stream[1].cpu, 1);
/// assert!(stream[1].write);
/// ```
pub fn interleave(traces: &[vmp_trace::Trace]) -> Vec<Access> {
    let mut iters: Vec<_> = traces.iter().map(|t| t.iter()).collect();
    let mut out = Vec::new();
    let mut exhausted = 0;
    while exhausted < iters.len() {
        exhausted = 0;
        for (cpu, it) in iters.iter_mut().enumerate() {
            match it.next() {
                Some(r) => out.push(Access { cpu, addr: r.addr.raw(), write: r.kind.is_write() }),
                None => exhausted += 1,
            }
        }
    }
    out
}

#[cfg(test)]
mod interleave_tests {
    use super::*;
    use vmp_trace::{MemRef, Trace};
    use vmp_types::{Asid, VirtAddr};

    #[test]
    fn unequal_lengths_drain_fully() {
        let a: Trace = (0..3).map(|i| MemRef::read(Asid::new(1), VirtAddr::new(i * 4))).collect();
        let b: Trace = (0..1).map(|i| MemRef::write(Asid::new(1), VirtAddr::new(i))).collect();
        let s = interleave(&[a, b]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().filter(|a| a.cpu == 0).count(), 3);
        assert_eq!(s.iter().filter(|a| a.cpu == 1).count(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(interleave(&[]).is_empty());
        let empty: Trace = Trace::new();
        assert!(interleave(&[empty]).is_empty());
    }
}
