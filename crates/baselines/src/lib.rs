//! Baselines for the paper's related-work comparison (§6).
//!
//! The paper contrasts VMP's software-controlled ownership protocol with
//! two alternatives:
//!
//! * **snoopy write-broadcast** caches (Katz et al., the Synapse/Berkeley
//!   family): every write to potentially-shared data is broadcast on the
//!   bus at word granularity, and every cache snoop-updates its copy —
//!   requiring a dual-ported or replicated tag path and precluding large
//!   cache pages ([`SnoopySystem`]);
//! * **compiler-controlled flushing** (the MIPS-X proposal): no
//!   consistency hardware at all; the compiler conservatively flushes all
//!   shared data around synchronization points, whether or not another
//!   processor actually touched it ([`CompilerFlushModel`]).
//!
//! [`OwnershipSystem`] is the page-granularity two-state ownership
//! protocol (VMP's behaviour) over the same access-stream interface, so
//! the three models can be compared on identical workloads. These are
//! deliberately *traffic models* — they count bus words and transfer
//! time, not full machine state — which is exactly the level at which
//! the paper's §6 comparison argues.
//!
//! # Examples
//!
//! ```
//! use vmp_baselines::{Access, CoherenceModel, OwnershipSystem, SnoopySystem};
//! use vmp_types::PageSize;
//!
//! let mut snoopy = SnoopySystem::new(2, 16);
//! let mut vmp = OwnershipSystem::new(2, PageSize::S256);
//! for model in [&mut snoopy as &mut dyn CoherenceModel, &mut vmp] {
//!     model.access(Access { cpu: 0, addr: 0x100, write: true });
//!     model.access(Access { cpu: 1, addr: 0x100, write: false });
//! }
//! assert!(snoopy.traffic().bus_time > vmp_types::Nanos::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flush;
mod ownership;
mod snoopy;
mod traffic;

pub use flush::{CompilerFlushModel, FlushComparison};
pub use ownership::OwnershipSystem;
pub use snoopy::SnoopySystem;
pub use traffic::{interleave, Access, CoherenceModel, TrafficStats};
