//! The MIPS-X compiler-controlled flush scheme (§6).

use core::fmt;

use vmp_mem::MemTimings;
use vmp_types::{Nanos, PageSize};

/// Traffic model of compiler-controlled cache flushing versus VMP's
/// flush-on-demand.
///
/// In the MIPS-X proposal the compiler emits flush instructions so that
/// *all* shared data is pushed out of the cache around every
/// synchronization point — whether or not another processor actually
/// touches it. VMP instead flushes exactly the pages a conflicting
/// access demands (§6: "the MIPS-X scheme must flush all shared data in
/// anticipation of shared access whereas the VMP scheme only flushes on
/// demand. It remains to be seen which is most expensive and how
/// application-sensitive the behavior is" — this model quantifies that
/// sensitivity).
///
/// Parameters describe a synchronization epoch: how many shared pages a
/// processor has cached (`shared_pages`), what fraction of them are
/// dirty, and what fraction another processor *actually* reads or writes
/// in the next epoch (`true_sharing`).
///
/// # Examples
///
/// ```
/// use vmp_baselines::CompilerFlushModel;
/// use vmp_types::PageSize;
///
/// let m = CompilerFlushModel::new(PageSize::S256, 64, 0.25);
/// let c = m.compare(0.1); // only 10 % of shared data actually shared
/// assert!(c.demand_bus_time < c.flush_bus_time);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CompilerFlushModel {
    page: PageSize,
    timings: MemTimings,
    /// Shared pages cached per processor per epoch.
    pub shared_pages: u64,
    /// Fraction of those pages dirty at the synchronization point.
    pub dirty_fraction: f64,
}

/// The per-epoch bus cost of the two schemes at one true-sharing level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushComparison {
    /// Fraction of shared pages actually touched by another processor.
    pub true_sharing: f64,
    /// Bus time per epoch under compiler-anticipatory flushing.
    pub flush_bus_time: Nanos,
    /// Bus time per epoch under VMP flush-on-demand.
    pub demand_bus_time: Nanos,
}

impl FlushComparison {
    /// How many times more bus time the anticipatory scheme consumes.
    pub fn overhead_ratio(&self) -> f64 {
        if self.demand_bus_time == Nanos::ZERO {
            f64::INFINITY
        } else {
            self.flush_bus_time.as_ns() as f64 / self.demand_bus_time.as_ns() as f64
        }
    }
}

impl fmt::Display for FlushComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sharing {:.0}%: flush {} vs demand {} ({:.1}x)",
            100.0 * self.true_sharing,
            self.flush_bus_time,
            self.demand_bus_time,
            self.overhead_ratio(),
        )
    }
}

impl CompilerFlushModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics unless `dirty_fraction` is a probability.
    pub fn new(page: PageSize, shared_pages: u64, dirty_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&dirty_fraction), "dirty fraction is a probability");
        CompilerFlushModel { page, timings: MemTimings::default(), shared_pages, dirty_fraction }
    }

    /// Per-epoch bus cost of both schemes when `true_sharing` of the
    /// shared pages are actually referenced remotely next epoch.
    ///
    /// * Anticipatory: write back every dirty shared page at the sync
    ///   point, then re-fetch every shared page on next use.
    /// * On demand: only the truly-shared pages move — a write-back (if
    ///   dirty) plus a fetch by the consumer.
    ///
    /// # Panics
    ///
    /// Panics unless `true_sharing` is a probability.
    pub fn compare(&self, true_sharing: f64) -> FlushComparison {
        assert!((0.0..=1.0).contains(&true_sharing), "sharing fraction is a probability");
        let transfer = self.timings.page_transfer(self.page).as_ns() as f64;
        let pages = self.shared_pages as f64;
        // Anticipatory: dirty pages written back + all pages re-fetched.
        let flush = pages * self.dirty_fraction * transfer + pages * transfer;
        // Demand: only truly-shared pages, write-back (if dirty) + fetch.
        let moved = pages * true_sharing;
        let demand = moved * self.dirty_fraction * transfer + moved * transfer;
        FlushComparison {
            true_sharing,
            flush_bus_time: Nanos::from_ns(flush.round() as u64),
            demand_bus_time: Nanos::from_ns(demand.round() as u64),
        }
    }

    /// Sweeps the comparison over a range of true-sharing levels (the
    /// "application sensitivity" axis of §6).
    pub fn sweep(&self, levels: &[f64]) -> Vec<FlushComparison> {
        levels.iter().map(|&s| self.compare(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CompilerFlushModel {
        CompilerFlushModel::new(PageSize::S256, 64, 0.25)
    }

    #[test]
    fn anticipatory_cost_is_sharing_independent() {
        let m = model();
        let a = m.compare(0.0);
        let b = m.compare(1.0);
        assert_eq!(a.flush_bus_time, b.flush_bus_time);
    }

    #[test]
    fn demand_wins_at_low_sharing() {
        let c = model().compare(0.05);
        assert!(c.overhead_ratio() > 10.0, "ratio {}", c.overhead_ratio());
    }

    #[test]
    fn schemes_converge_at_full_sharing() {
        let c = model().compare(1.0);
        assert_eq!(c.flush_bus_time, c.demand_bus_time);
        assert!((c.overhead_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_sharing_demand_is_free() {
        let c = model().compare(0.0);
        assert_eq!(c.demand_bus_time, Nanos::ZERO);
        assert!(c.overhead_ratio().is_infinite());
        assert!(!c.to_string().is_empty());
    }

    #[test]
    fn sweep_is_monotone_in_demand_cost() {
        let cs = model().sweep(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        for w in cs.windows(2) {
            assert!(w[0].demand_bus_time <= w[1].demand_bus_time);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_fractions() {
        let _ = model().compare(1.5);
    }
}
