//! The VMP two-state ownership protocol as a traffic model.

use std::collections::{HashMap, HashSet};

use vmp_mem::MemTimings;
use vmp_types::{Nanos, PageSize};

use crate::{Access, CoherenceModel, TrafficStats};

#[derive(Debug, Clone, PartialEq, Eq)]
enum PageState {
    /// Copies in the listed caches, all equal to memory.
    Shared(HashSet<usize>),
    /// One cache owns the page; `dirty` once written.
    Private { owner: usize, dirty: bool },
}

/// Page-granularity shared/private ownership — VMP's protocol (§3.1) —
/// over the same access-stream interface as [`crate::SnoopySystem`].
///
/// Bus costs: a page block transfer for read-shared/read-private and for
/// write-backs; a control cycle for assert-ownership upgrades. Like the
/// snoopy model it is infinite-capacity, isolating *sharing* traffic.
///
/// # Examples
///
/// ```
/// use vmp_baselines::{Access, CoherenceModel, OwnershipSystem};
/// use vmp_types::PageSize;
///
/// let mut m = OwnershipSystem::new(2, PageSize::S256);
/// m.access(Access { cpu: 0, addr: 0, write: true });
/// // Repeated writes by the owner are free.
/// m.access(Access { cpu: 0, addr: 4, write: true });
/// assert_eq!(m.traffic().block_transfers, 1);
/// ```
#[derive(Debug)]
pub struct OwnershipSystem {
    page: PageSize,
    timings: MemTimings,
    control_cycle: Nanos,
    pages: HashMap<u64, PageState>,
    processors: usize,
    stats: TrafficStats,
}

impl OwnershipSystem {
    /// Creates a system of `processors` caches with VMP page granularity.
    ///
    /// # Panics
    ///
    /// Panics unless `processors > 0`.
    pub fn new(processors: usize, page: PageSize) -> Self {
        assert!(processors > 0, "need at least one processor");
        OwnershipSystem {
            page,
            timings: MemTimings::default(),
            control_cycle: Nanos::from_ns(300),
            pages: HashMap::new(),
            processors,
            stats: TrafficStats::default(),
        }
    }

    /// The configured cache-page size.
    pub fn page_size(&self) -> PageSize {
        self.page
    }

    fn page_transfer(&self) -> Nanos {
        self.timings.page_transfer(self.page)
    }

    fn charge_block(&mut self) {
        self.stats.block_transfers += 1;
        self.stats.bus_time += self.page_transfer();
    }

    fn charge_control(&mut self) {
        self.stats.word_ops += 1;
        self.stats.bus_time += self.control_cycle;
    }
}

impl CoherenceModel for OwnershipSystem {
    fn access(&mut self, a: Access) {
        assert!(a.cpu < self.processors, "processor out of range");
        self.stats.accesses += 1;
        let key = self.page.page_of(a.addr);
        let state = self.pages.remove(&key);
        let new_state = match (state, a.write) {
            // Cold read: read-shared.
            (None, false) => {
                self.charge_block();
                PageState::Shared(HashSet::from([a.cpu]))
            }
            // Cold write: read-private.
            (None, true) => {
                self.charge_block();
                PageState::Private { owner: a.cpu, dirty: true }
            }
            (Some(PageState::Shared(holders)), false) => {
                let mut holders = holders;
                if !holders.contains(&a.cpu) {
                    self.charge_block(); // read-shared
                    holders.insert(a.cpu);
                }
                PageState::Shared(holders)
            }
            (Some(PageState::Shared(holders)), true) => {
                // Upgrade: assert-ownership (control cycle) if we hold a
                // copy, read-private (block) if not; all other copies are
                // discarded in parallel.
                let others = holders.iter().filter(|&&c| c != a.cpu).count() as u64;
                self.stats.invalidations += others;
                if holders.contains(&a.cpu) {
                    self.charge_control();
                } else {
                    self.charge_block();
                }
                PageState::Private { owner: a.cpu, dirty: true }
            }
            (Some(PageState::Private { owner, dirty }), write) if owner == a.cpu => {
                PageState::Private { owner, dirty: dirty || write }
            }
            (Some(PageState::Private { owner, dirty }), write) => {
                // Foreign access: the requester's transaction is aborted
                // once, the owner writes back (block transfer if dirty),
                // then the requester's retry succeeds.
                if dirty {
                    self.charge_block(); // write-back
                }
                if write {
                    self.stats.invalidations += 1;
                    self.charge_block(); // read-private by requester
                    PageState::Private { owner: a.cpu, dirty: true }
                } else {
                    self.charge_block(); // read-shared by requester
                                         // The previous owner downgrades and keeps a shared copy.
                    PageState::Shared(HashSet::from([owner, a.cpu]))
                }
            }
        };
        self.pages.insert(key, new_state);
    }

    fn traffic(&self) -> &TrafficStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_writes_are_free_after_acquisition() {
        let mut m = OwnershipSystem::new(2, PageSize::S256);
        for i in 0..100 {
            m.access(Access { cpu: 0, addr: i * 4 % 256, write: true });
        }
        let t = m.traffic();
        assert_eq!(t.block_transfers, 1, "one read-private, then silence");
        assert_eq!(t.word_ops, 0);
    }

    #[test]
    fn upgrade_uses_control_cycle() {
        let mut m = OwnershipSystem::new(2, PageSize::S256);
        m.access(Access { cpu: 0, addr: 0, write: false }); // read-shared
        m.access(Access { cpu: 0, addr: 0, write: true }); // assert-ownership
        let t = m.traffic();
        assert_eq!(t.block_transfers, 1);
        assert_eq!(t.word_ops, 1);
    }

    #[test]
    fn ownership_migration_costs_writeback_plus_fetch() {
        let mut m = OwnershipSystem::new(2, PageSize::S256);
        m.access(Access { cpu: 0, addr: 0, write: true }); // rp: 1 block
        m.access(Access { cpu: 1, addr: 0, write: true }); // wb + rp: 2 blocks
        let t = m.traffic();
        assert_eq!(t.block_transfers, 3);
        assert_eq!(t.invalidations, 1);
    }

    #[test]
    fn foreign_read_downgrades() {
        let mut m = OwnershipSystem::new(2, PageSize::S256);
        m.access(Access { cpu: 0, addr: 0, write: true }); // private dirty
        m.access(Access { cpu: 1, addr: 0, write: false }); // wb + rs
        assert_eq!(m.traffic().block_transfers, 3);
        // Now both share it; further reads are free.
        m.access(Access { cpu: 0, addr: 0, write: false });
        m.access(Access { cpu: 1, addr: 4, write: false });
        assert_eq!(m.traffic().block_transfers, 3);
    }

    #[test]
    fn page_size_reported() {
        assert_eq!(OwnershipSystem::new(1, PageSize::S128).page_size(), PageSize::S128);
    }
}
