//! Simulated time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Bytes per 32-bit longword, the VMEbus block-transfer unit.
pub const LONGWORD_BYTES: u64 = 4;

/// A duration or instant of simulated time, in nanoseconds.
///
/// All VMP timing parameters in the paper are stated in nanoseconds
/// (60 ns CPU cycle, 300 ns first transfer, 100 ns per subsequent
/// longword, 150 ns action-table windows), so a `u64` nanosecond count is
/// exact for every quantity the simulator manipulates.
///
/// # Examples
///
/// ```
/// use vmp_types::Nanos;
///
/// let first = Nanos::from_ns(300);
/// let rest = Nanos::from_ns(100) * 63;
/// assert_eq!((first + rest).as_micros_f64(), 6.6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Returns the value in nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the value in microseconds as a float (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the value in seconds as a float (for rates).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[inline]
    #[must_use]
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two durations.
    #[inline]
    #[must_use]
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    #[inline]
    #[must_use]
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_us(3), Nanos::from_ns(3_000));
        assert_eq!(Nanos::from_ms(1), Nanos::from_us(1_000));
    }

    #[test]
    fn arithmetic() {
        let mut t = Nanos::from_ns(100);
        t += Nanos::from_ns(50);
        assert_eq!(t.as_ns(), 150);
        t -= Nanos::from_ns(150);
        assert_eq!(t, Nanos::ZERO);
        assert_eq!(Nanos::from_ns(10) * 7, Nanos::from_ns(70));
        assert_eq!(Nanos::from_ns(70) / 7, Nanos::from_ns(10));
        assert_eq!(Nanos::ZERO.saturating_sub(Nanos::from_ns(5)), Nanos::ZERO);
    }

    #[test]
    fn min_max_and_sum() {
        let a = Nanos::from_ns(3);
        let b = Nanos::from_ns(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: Nanos = [a, b, a].into_iter().sum();
        assert_eq!(total.as_ns(), 15);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Nanos::from_ns(999).to_string(), "999ns");
        assert_eq!(Nanos::from_ns(1_500).to_string(), "1.500us");
        assert_eq!(Nanos::from_ms(2).to_string(), "2.000ms");
    }

    #[test]
    fn block_transfer_matches_paper_table1_bus_times() {
        // Paper Table 1: a one-page block transfer takes 300 ns for the
        // first longword and 100 ns for each subsequent longword.
        let transfer = |longwords: u64| Nanos::from_ns(300) + Nanos::from_ns(100) * (longwords - 1);
        assert_eq!(transfer(32).as_micros_f64(), 3.4); // 128 B (paper rounds to 3.5)
        assert_eq!(transfer(64).as_micros_f64(), 6.6); // 256 B
        assert_eq!(transfer(128).as_micros_f64(), 13.0); // 512 B
    }
}
