//! Shared configuration error type.

use core::fmt;

/// Result alias for fallible constructors in this crate.
pub type TypesResult<T> = Result<T, ConfigError>;

/// An invalid configuration value was supplied to a constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The requested cache-page size is not a power of two ≥ 4 bytes.
    InvalidPageSize {
        /// The rejected byte count.
        bytes: u64,
    },
    /// A count parameter (sets, slots, processors, …) must be non-zero.
    ZeroCount {
        /// Which parameter was zero.
        what: &'static str,
    },
    /// A parameter must be a power of two but was not.
    NotPowerOfTwo {
        /// Which parameter was invalid.
        what: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// Two parameters are mutually inconsistent.
    Inconsistent {
        /// Human-readable description of the conflict.
        what: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidPageSize { bytes } => {
                write!(
                    f,
                    "invalid cache page size {bytes}: must be a power of two of at least 4 bytes"
                )
            }
            ConfigError::ZeroCount { what } => write!(f, "{what} must be non-zero"),
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::Inconsistent { what } => write!(f, "inconsistent configuration: {what}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ConfigError::InvalidPageSize { bytes: 100 };
        assert!(e.to_string().contains("100"));
        let e = ConfigError::ZeroCount { what: "sets" };
        assert!(e.to_string().contains("sets"));
        let e = ConfigError::NotPowerOfTwo { what: "slots", value: 3 };
        assert!(e.to_string().contains("slots"));
        assert!(e.to_string().contains('3'));
        let e = ConfigError::Inconsistent { what: "cache smaller than one page" };
        assert!(e.to_string().contains("cache"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}
