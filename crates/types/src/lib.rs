//! Core value types shared by every crate in the VMP simulator workspace.
//!
//! The VMP multiprocessor (Cheriton, Slavenburg & Boyle, ISCA 1986) couples
//! each processor to a large, *virtually addressed* cache whose misses are
//! handled in software. Simulating it faithfully requires keeping virtual
//! and physical addresses, address-space identifiers, cache-page geometry
//! and nanosecond-resolution simulated time rigorously apart. This crate
//! provides the newtypes that enforce those distinctions statically.
//!
//! # Examples
//!
//! ```
//! use vmp_types::{Asid, PageSize, VirtAddr};
//!
//! let page = PageSize::S256;
//! let va = VirtAddr::new(0x1234);
//! assert_eq!(page.base_of(va.raw()), 0x1200);
//! assert_eq!(page.offset_of(va.raw()), 0x34);
//! let asid = Asid::new(3);
//! assert_eq!(asid.raw(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod addr;
mod error;
mod page;
mod time;

pub use access::{AccessKind, Privilege};
pub use addr::{Asid, FrameNum, PhysAddr, ProcessorId, VirtAddr, VirtPageNum};
pub use error::{ConfigError, TypesResult};
pub use page::PageSize;
pub use time::{Nanos, LONGWORD_BYTES};
