//! Address newtypes: virtual/physical addresses, page/frame numbers, ASIDs.

use core::fmt;

/// A virtual address as issued by a processor.
///
/// VMP caches are indexed and tagged by ⟨[`Asid`], virtual address⟩, so a
/// `VirtAddr` on its own does not identify memory — pair it with an ASID.
///
/// # Examples
///
/// ```
/// use vmp_types::VirtAddr;
/// let va = VirtAddr::new(0xdead_beef);
/// assert_eq!(va.raw(), 0xdead_beef);
/// assert_eq!(format!("{va}"), "va:0xdeadbeef");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from its raw integer value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw integer value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the addition overflows `u64`.
    #[inline]
    #[must_use]
    pub const fn add(self, bytes: u64) -> Self {
        VirtAddr(self.0 + bytes)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

/// A physical (main-memory) address as seen on the VMEbus.
///
/// Bus monitors match transactions by physical address; the software cache
/// manager maintains the physical→cache-slot index in local memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from its raw integer value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw integer value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    #[inline]
    #[must_use]
    pub const fn add(self, bytes: u64) -> Self {
        PhysAddr(self.0 + bytes)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

/// An 8-bit address-space identifier.
///
/// VMP extends every cache tag with an ASID so the cache need not be
/// flushed on context switch; the OS simply loads a new ASID register
/// (paper §2, §4). The kernel address space is shared across ASIDs in the
/// real machine; the simulator models that in `vmp-vm`.
///
/// # Examples
///
/// ```
/// use vmp_types::Asid;
/// assert_eq!(Asid::KERNEL.raw(), 0);
/// assert_ne!(Asid::new(1), Asid::KERNEL);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asid(u8);

impl Asid {
    /// The ASID conventionally reserved for the kernel address space.
    pub const KERNEL: Asid = Asid(0);

    /// Creates an ASID from its raw 8-bit value.
    #[inline]
    pub const fn new(raw: u8) -> Self {
        Asid(raw)
    }

    /// Returns the raw 8-bit value.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Returns `true` for the kernel ASID.
    #[inline]
    pub const fn is_kernel(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid:{}", self.0)
    }
}

/// A virtual cache-page number: a virtual address divided by the cache
/// page size, still qualified by its [`Asid`].
///
/// The paper uses *cache page* the way conventional VM uses *virtual
/// page* (§2 footnote 2); this is the unit the consistency protocol and
/// the miss handler operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtPageNum(u64);

impl VirtPageNum {
    /// Creates a virtual page number from its raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VirtPageNum(raw)
    }

    /// Returns the raw page number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for VirtPageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A physical *cache page frame* number: main memory viewed as an array
/// of cache-page-sized frames (paper §3.1 footnote 4).
///
/// Bus-monitor action tables hold one two-bit entry per `FrameNum`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameNum(u64);

impl FrameNum {
    /// Creates a frame number from its raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        FrameNum(raw)
    }

    /// Returns the raw frame number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the frame number as a `usize` index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FrameNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame:{:#x}", self.0)
    }
}

/// Identifies one processor board on the VMEbus.
///
/// The prototype supports several VMP processor boards on a single bus
/// (§4); the queueing analysis in §5.3 estimates about five fit before
/// bus contention dominates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessorId(usize);

impl ProcessorId {
    /// Creates a processor id from its index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        ProcessorId(index)
    }

    /// Returns the index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_roundtrip_and_ordering() {
        let a = VirtAddr::new(16);
        let b = a.add(16);
        assert!(a < b);
        assert_eq!(b.raw(), 32);
        assert_eq!(VirtAddr::from(32u64), b);
    }

    #[test]
    fn phys_addr_roundtrip() {
        let p = PhysAddr::new(0x100).add(0x40);
        assert_eq!(p.raw(), 0x140);
        assert_eq!(PhysAddr::from(0x140u64), p);
    }

    #[test]
    fn kernel_asid_is_zero() {
        assert!(Asid::KERNEL.is_kernel());
        assert!(!Asid::new(7).is_kernel());
        assert_eq!(Asid::default(), Asid::KERNEL);
    }

    #[test]
    fn display_formats_are_nonempty_and_tagged() {
        assert_eq!(format!("{}", VirtAddr::new(0x10)), "va:0x10");
        assert_eq!(format!("{}", PhysAddr::new(0x10)), "pa:0x10");
        assert_eq!(format!("{}", Asid::new(9)), "asid:9");
        assert_eq!(format!("{}", VirtPageNum::new(2)), "vpn:0x2");
        assert_eq!(format!("{}", FrameNum::new(2)), "frame:0x2");
    }

    #[test]
    fn frame_num_index() {
        assert_eq!(FrameNum::new(12).index(), 12usize);
    }

    #[test]
    fn processor_id_roundtrip() {
        let p = ProcessorId::new(3);
        assert_eq!(p.index(), 3);
        assert_eq!(p.to_string(), "cpu3");
        assert!(ProcessorId::new(1) < ProcessorId::new(2));
    }
}
