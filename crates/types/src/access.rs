//! Memory-access classification: kind and privilege level.

use core::fmt;

/// The kind of memory reference a processor issues.
///
/// The distinction matters to the cache: instruction fetches can never be
/// writes, and a `Write` to a page held without exclusive ownership forces
/// the consistency protocol to negotiate write permission (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data read.
    Read,
    /// A data write.
    Write,
    /// An instruction fetch (always a read at the cache level).
    IFetch,
}

impl AccessKind {
    /// Returns `true` if the access modifies memory.
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// Returns `true` if the access only observes memory.
    #[inline]
    pub const fn is_read(self) -> bool {
        !self.is_write()
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::IFetch => "ifetch",
        };
        f.write_str(s)
    }
}

/// Processor privilege level at the time of a reference.
///
/// VMP's cache-slot flags distinguish supervisor-writable from
/// user-readable/user-writable (paper §4); the trace generator also uses
/// this to tag operating-system references, which the paper reports as
/// ≈25 % of references and ≈50 % of misses (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Privilege {
    /// Unprivileged application code.
    #[default]
    User,
    /// Operating-system (kernel) code.
    Supervisor,
}

impl Privilege {
    /// Returns `true` for supervisor-mode references.
    #[inline]
    pub const fn is_supervisor(self) -> bool {
        matches!(self, Privilege::Supervisor)
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Privilege::User => "user",
            Privilege::Supervisor => "supervisor",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_classification() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
        assert!(AccessKind::Read.is_read());
        assert!(AccessKind::IFetch.is_read());
    }

    #[test]
    fn privilege_default_is_user() {
        assert_eq!(Privilege::default(), Privilege::User);
        assert!(Privilege::Supervisor.is_supervisor());
        assert!(!Privilege::User.is_supervisor());
    }

    #[test]
    fn displays() {
        assert_eq!(AccessKind::IFetch.to_string(), "ifetch");
        assert_eq!(Privilege::Supervisor.to_string(), "supervisor");
    }
}
