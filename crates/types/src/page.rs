//! Cache-page geometry.

use core::fmt;

use crate::{ConfigError, FrameNum, PhysAddr, VirtAddr, VirtPageNum, LONGWORD_BYTES};

/// A cache-page size in bytes.
///
/// The VMP prototype supports cache pages of 128, 256 or 512 bytes
/// (paper §3.1 footnote 4); the simulator accepts any power of two ≥ one
/// longword so that sensitivity studies beyond the prototype's three
/// settings are possible. The three prototype sizes are provided as the
/// associated constants [`PageSize::S128`], [`PageSize::S256`] and
/// [`PageSize::S512`].
///
/// # Examples
///
/// ```
/// use vmp_types::PageSize;
///
/// let p = PageSize::S256;
/// assert_eq!(p.bytes(), 256);
/// assert_eq!(p.longwords(), 64);
/// assert_eq!(p.base_of(0x1234), 0x1200);
/// assert_eq!(p.offset_of(0x1234), 0x34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageSize(u64);

impl PageSize {
    /// 128-byte cache pages (smallest prototype setting).
    pub const S128: PageSize = PageSize(128);
    /// 256-byte cache pages (the paper's running example).
    pub const S256: PageSize = PageSize(256);
    /// 512-byte cache pages (largest prototype setting).
    pub const S512: PageSize = PageSize(512);

    /// The three page sizes the VMP prototype hardware supports.
    pub const PROTOTYPE_SIZES: [PageSize; 3] = [Self::S128, Self::S256, Self::S512];

    /// Creates a page size from a byte count.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidPageSize`] unless `bytes` is a power
    /// of two and at least one longword (4 bytes).
    pub fn new(bytes: u64) -> Result<Self, ConfigError> {
        if bytes >= LONGWORD_BYTES && bytes.is_power_of_two() {
            Ok(PageSize(bytes))
        } else {
            Err(ConfigError::InvalidPageSize { bytes })
        }
    }

    /// Returns the page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Returns the page size in 32-bit longwords, the VMEbus transfer unit.
    #[inline]
    pub const fn longwords(self) -> u64 {
        self.0 / LONGWORD_BYTES
    }

    /// Returns the log2 of the page size (the offset width in bits).
    #[inline]
    pub const fn offset_bits(self) -> u32 {
        self.0.trailing_zeros()
    }

    /// Returns the page-aligned base of `addr`.
    #[inline]
    pub const fn base_of(self, addr: u64) -> u64 {
        addr & !(self.0 - 1)
    }

    /// Returns the offset of `addr` within its page.
    #[inline]
    pub const fn offset_of(self, addr: u64) -> u64 {
        addr & (self.0 - 1)
    }

    /// Returns the page number containing `addr`.
    #[inline]
    pub const fn page_of(self, addr: u64) -> u64 {
        addr >> self.offset_bits()
    }

    /// Returns the virtual page number containing a virtual address.
    #[inline]
    pub const fn vpn_of(self, va: VirtAddr) -> VirtPageNum {
        VirtPageNum::new(self.page_of(va.raw()))
    }

    /// Returns the physical frame number containing a physical address.
    #[inline]
    pub const fn frame_of(self, pa: PhysAddr) -> FrameNum {
        FrameNum::new(self.page_of(pa.raw()))
    }

    /// Returns the base virtual address of a virtual page number.
    #[inline]
    pub const fn vpn_base(self, vpn: VirtPageNum) -> VirtAddr {
        VirtAddr::new(vpn.raw() << self.offset_bits())
    }

    /// Returns the base physical address of a frame number.
    #[inline]
    pub const fn frame_base(self, frame: FrameNum) -> PhysAddr {
        PhysAddr::new(frame.raw() << self.offset_bits())
    }

    /// Number of frames needed to cover `memory_bytes` of physical memory.
    ///
    /// Partial trailing frames are rounded up.
    #[inline]
    pub const fn frames_in(self, memory_bytes: u64) -> u64 {
        memory_bytes.div_ceil(self.0)
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

impl Default for PageSize {
    /// Defaults to the paper's running-example size of 256 bytes.
    fn default() -> Self {
        PageSize::S256
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_sizes_are_valid() {
        for p in PageSize::PROTOTYPE_SIZES {
            assert_eq!(PageSize::new(p.bytes()).unwrap(), p);
        }
    }

    #[test]
    fn rejects_non_power_of_two_and_tiny() {
        assert!(PageSize::new(100).is_err());
        assert!(PageSize::new(0).is_err());
        assert!(PageSize::new(2).is_err());
        assert!(PageSize::new(4).is_ok());
    }

    #[test]
    fn geometry_256() {
        let p = PageSize::S256;
        assert_eq!(p.longwords(), 64);
        assert_eq!(p.offset_bits(), 8);
        assert_eq!(p.base_of(0x1ff), 0x100);
        assert_eq!(p.offset_of(0x1ff), 0xff);
        assert_eq!(p.page_of(0x1ff), 1);
    }

    #[test]
    fn vpn_and_frame_roundtrip() {
        let p = PageSize::S128;
        let va = VirtAddr::new(0x4321);
        let vpn = p.vpn_of(va);
        assert_eq!(p.vpn_base(vpn).raw(), p.base_of(va.raw()));
        let pa = PhysAddr::new(0x4321);
        let f = p.frame_of(pa);
        assert_eq!(p.frame_base(f).raw(), p.base_of(pa.raw()));
    }

    #[test]
    fn frames_in_rounds_up() {
        assert_eq!(PageSize::S256.frames_in(1024), 4);
        assert_eq!(PageSize::S256.frames_in(1025), 5);
        assert_eq!(PageSize::S256.frames_in(0), 0);
    }

    #[test]
    fn default_is_256() {
        assert_eq!(PageSize::default(), PageSize::S256);
    }
}
