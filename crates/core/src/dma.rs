//! DMA devices: unmodified VME masters made consistency-safe in software.
//!
//! Standard DMA devices issue plain (non-consistency) bus transfers that
//! no bus monitor reacts to. The paper's recipe (§3.3): the operating
//! system takes a lock on the target region, the managing processor
//! assert-ownerships every frame (flushing all cached copies machine-
//! wide) and sets its own action table to `10` to protect the region,
//! the device transfers, and the entries are cleared afterwards.
//! [`crate::Machine::queue_dma`] runs exactly this sequence.

use vmp_types::{FrameNum, ProcessorId};

/// Direction of a DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDirection {
    /// Device → memory (e.g. Ethernet receive).
    ToMemory,
    /// Memory → device (e.g. framebuffer scan-out, Ethernet send).
    FromMemory,
}

/// A DMA request: a set of frames and, for [`DmaDirection::ToMemory`],
/// the bytes to deposit (one full page per frame).
#[derive(Debug, Clone)]
pub struct DmaRequest {
    /// The physical frames to transfer, in order.
    pub frames: Vec<FrameNum>,
    /// Transfer direction.
    pub direction: DmaDirection,
    /// Source bytes for `ToMemory` (must be `frames.len() × page_size`);
    /// empty for `FromMemory`.
    pub data: Vec<u8>,
}

impl DmaRequest {
    /// A device-write request depositing `data` into `frames`.
    pub fn to_memory(frames: Vec<FrameNum>, data: Vec<u8>) -> Self {
        DmaRequest { frames, direction: DmaDirection::ToMemory, data }
    }

    /// A device-read request capturing the contents of `frames`.
    pub fn from_memory(frames: Vec<FrameNum>) -> Self {
        DmaRequest { frames, direction: DmaDirection::FromMemory, data: Vec::new() }
    }
}

/// Progress of a DMA engine through the §3.3 sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DmaPhase {
    /// Asserting ownership of frame `i` and protecting it.
    Setup(usize),
    /// Transferring frame `i` with plain bus transactions.
    Transfer(usize),
    /// Clearing the protect entries.
    Teardown,
    /// Finished.
    Done,
}

/// One in-flight DMA engine (internal to the machine).
#[derive(Debug)]
pub(crate) struct DmaEngine {
    pub(crate) id: ProcessorId,
    pub(crate) host: usize,
    pub(crate) request: DmaRequest,
    pub(crate) phase: DmaPhase,
    /// An earlier request touching the same frames; this one waits for
    /// it (the OS-level lock of §3.3 serializes overlapping regions).
    pub(crate) blocked_on: Option<usize>,
    buffer: Vec<u8>,
    seq: u64,
}

impl DmaEngine {
    pub(crate) fn new(id: ProcessorId, host: usize, request: DmaRequest) -> Self {
        assert!(!request.frames.is_empty(), "DMA request needs at least one frame");
        if request.direction == DmaDirection::ToMemory {
            assert!(!request.data.is_empty(), "ToMemory DMA requires source data");
        }
        DmaEngine {
            id,
            host,
            request,
            phase: DmaPhase::Setup(0),
            blocked_on: None,
            buffer: Vec::new(),
            seq: 0,
        }
    }

    pub(crate) fn bump_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }

    pub(crate) fn extend_buffer(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    pub(crate) fn buffer(&self) -> &[u8] {
        &self.buffer
    }

    /// Writes the engine's mid-transfer progress verbatim (checkpoint
    /// restore): phase, serialization edge, capture buffer and event
    /// sequence number.
    pub(crate) fn restore_progress(
        &mut self,
        phase: DmaPhase,
        blocked_on: Option<usize>,
        buffer: Vec<u8>,
        seq: u64,
    ) {
        self.phase = phase;
        self.blocked_on = blocked_on;
        self.buffer = buffer;
        self.seq = seq;
    }
}

/// A description of a DMA device for documentation and examples; the
/// machine drives [`DmaRequest`]s directly.
#[derive(Debug, Clone)]
pub struct DmaDevice {
    /// Human-readable name ("ethernet", "framebuffer").
    pub name: String,
}

impl DmaDevice {
    /// Creates a named device description.
    pub fn new(name: impl Into<String>) -> Self {
        DmaDevice { name: name.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors() {
        let r = DmaRequest::to_memory(vec![FrameNum::new(1)], vec![0; 128]);
        assert_eq!(r.direction, DmaDirection::ToMemory);
        let r = DmaRequest::from_memory(vec![FrameNum::new(2), FrameNum::new(3)]);
        assert_eq!(r.direction, DmaDirection::FromMemory);
        assert!(r.data.is_empty());
    }

    #[test]
    fn engine_sequences() {
        let mut e =
            DmaEngine::new(ProcessorId::new(5), 0, DmaRequest::from_memory(vec![FrameNum::new(0)]));
        assert_eq!(e.phase, DmaPhase::Setup(0));
        assert_eq!(e.bump_seq(), 1);
        assert_eq!(e.seq(), 1);
        e.extend_buffer(&[1, 2]);
        assert_eq!(e.buffer(), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn rejects_empty_request() {
        let _ = DmaEngine::new(ProcessorId::new(5), 0, DmaRequest::from_memory(vec![]));
    }

    #[test]
    #[should_panic(expected = "source data")]
    fn rejects_to_memory_without_data() {
        let _ = DmaEngine::new(
            ProcessorId::new(5),
            0,
            DmaRequest::to_memory(vec![FrameNum::new(0)], vec![]),
        );
    }

    #[test]
    fn device_name() {
        assert_eq!(DmaDevice::new("ethernet").name, "ethernet");
    }
}
