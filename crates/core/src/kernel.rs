//! The operating-system layer: address spaces and demand paging.

use std::collections::BTreeMap;

use vmp_types::{Asid, FrameNum, PageSize, VirtAddr, VirtPageNum};
use vmp_vm::{AddressSpace, FrameAllocator, Pte};

use crate::MachineError;

/// The kernel's memory-management state, shared by all processors.
///
/// In the real machine this state lives in (cacheable) shared memory and
/// is guarded by kernel locks; the simulator keeps it as one structure
/// and charges the *cache traffic* of page-table access separately, via
/// the PTE virtual addresses the miss handler references
/// ([`AddressSpace::pte_va`]).
///
/// # Examples
///
/// ```
/// use vmp_core::Kernel;
/// use vmp_types::{Asid, PageSize, VirtAddr};
///
/// let mut k = Kernel::new(PageSize::S256, 64, 0);
/// let vpn = PageSize::S256.vpn_of(VirtAddr::new(0x4000));
/// let frame = k.fault_in(Asid::new(1), vpn, VirtAddr::new(0x4000)).unwrap();
/// assert_eq!(k.translate(Asid::new(1), vpn).unwrap().frame, frame);
/// ```
#[derive(Debug)]
pub struct Kernel {
    page_size: PageSize,
    spaces: BTreeMap<Asid, AddressSpace>,
    allocator: FrameAllocator,
}

impl Kernel {
    /// Creates a kernel managing `frames` physical frames, with the
    /// first `reserved` frames excluded from allocation (boot, devices).
    pub fn new(page_size: PageSize, frames: u64, reserved: u64) -> Self {
        Kernel {
            page_size,
            spaces: BTreeMap::new(),
            allocator: FrameAllocator::with_reserved(frames, reserved),
        }
    }

    /// The translation page size.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Looks up an existing space.
    pub fn space(&self, asid: Asid) -> Option<&AddressSpace> {
        self.spaces.get(&asid)
    }

    /// Returns the space for `asid`, creating it on first use.
    pub fn space_mut(&mut self, asid: Asid) -> &mut AddressSpace {
        let page_size = self.page_size;
        self.spaces.entry(asid).or_insert_with(|| AddressSpace::new(asid, page_size))
    }

    /// Translates without faulting.
    pub fn translate(&self, asid: Asid, vpn: VirtPageNum) -> Option<Pte> {
        self.spaces.get(&asid)?.translate(vpn).copied()
    }

    /// Demand-zero fault: allocates a frame and maps `vpn` read-write.
    /// Returns the existing mapping's frame if one is already present.
    ///
    /// # Errors
    ///
    /// [`MachineError::OutOfMemory`] when no frame is free.
    pub fn fault_in(
        &mut self,
        asid: Asid,
        vpn: VirtPageNum,
        addr: VirtAddr,
    ) -> Result<FrameNum, MachineError> {
        if let Some(pte) = self.translate(asid, vpn) {
            return Ok(pte.frame);
        }
        let frame = self.allocator.alloc().ok_or(MachineError::OutOfMemory { asid, addr })?;
        let pte = if asid.is_kernel() { Pte::kernel_rw(frame) } else { Pte::user_rw(frame) };
        self.space_mut(asid).map(vpn, pte);
        Ok(frame)
    }

    /// Installs an explicit mapping (shared memory, aliases), returning
    /// any previous PTE.
    pub fn map(&mut self, asid: Asid, vpn: VirtPageNum, pte: Pte) -> Option<Pte> {
        self.space_mut(asid).map(vpn, pte)
    }

    /// Removes a mapping without freeing the frame (the caller decides,
    /// since frames may be shared between spaces).
    pub fn unmap(&mut self, asid: Asid, vpn: VirtPageNum) -> Option<Pte> {
        self.spaces.get_mut(&asid)?.unmap(vpn)
    }

    /// The kernel virtual address of the PTE for ⟨asid, vpn⟩ — the
    /// address the miss handler references during translation.
    pub fn pte_va(&mut self, asid: Asid, vpn: VirtPageNum) -> VirtAddr {
        self.space_mut(asid).pte_va(vpn)
    }

    /// Marks the referenced (and optionally modified) bit of a mapping.
    pub fn mark_used(&mut self, asid: Asid, vpn: VirtPageNum, written: bool) {
        if let Some(space) = self.spaces.get_mut(&asid) {
            if let Some(pte) = space.translate_mut(vpn) {
                pte.referenced = true;
                if written {
                    pte.modified = true;
                }
            }
        }
    }

    /// Clears the referenced and modified bits of a mapping, returning
    /// whether it had been referenced since the last sweep — the
    /// page-out daemon's working-set probe (§3.4).
    pub fn clear_referenced(&mut self, asid: Asid, vpn: VirtPageNum) -> bool {
        let Some(space) = self.spaces.get_mut(&asid) else { return false };
        let Some(pte) = space.translate_mut(vpn) else { return false };
        let was = pte.referenced;
        pte.referenced = false;
        pte.modified = false;
        was
    }

    /// Sets or clears the §5.4 non-shared hint on a mapping. Returns
    /// `false` if the page is not mapped.
    pub fn set_private_hint(&mut self, asid: Asid, vpn: VirtPageNum, hint: bool) -> bool {
        let Some(space) = self.spaces.get_mut(&asid) else { return false };
        let Some(pte) = space.translate_mut(vpn) else { return false };
        pte.hint_private = hint;
        true
    }

    /// All resident pages of a space, for teardown (§3.4).
    pub fn resident_pages(&self, asid: Asid) -> Vec<(VirtPageNum, FrameNum)> {
        self.spaces
            .get(&asid)
            .map(|s| s.iter().map(|(vpn, pte)| (vpn, pte.frame)).collect())
            .unwrap_or_default()
    }

    /// Unmaps one page and frees its frame unless another mapping still
    /// uses it. Returns the freed frame (the page-out daemon's reclaim
    /// step, §3.4).
    pub fn reclaim(&mut self, asid: Asid, vpn: VirtPageNum) -> Option<FrameNum> {
        let pte = self.unmap(asid, vpn)?;
        let shared = self.spaces.values().any(|s| !s.reverse_lookup(pte.frame).is_empty());
        if shared {
            None
        } else {
            let _ = self.allocator.free(pte.frame);
            Some(pte.frame)
        }
    }

    /// Destroys a space, freeing every frame exclusively mapped by it.
    ///
    /// Frames also mapped by another space are left allocated. Returns
    /// the frames that were freed.
    pub fn destroy_space(&mut self, asid: Asid) -> Vec<FrameNum> {
        let Some(space) = self.spaces.remove(&asid) else {
            return Vec::new();
        };
        let mut freed = Vec::new();
        for (_, pte) in space.iter() {
            let shared_elsewhere =
                self.spaces.values().any(|other| !other.reverse_lookup(pte.frame).is_empty());
            if !shared_elsewhere && self.allocator.free(pte.frame).is_ok() {
                freed.push(pte.frame);
            }
        }
        freed.sort();
        freed.dedup();
        freed
    }

    /// Frames still unallocated.
    pub fn free_frames(&self) -> u64 {
        self.allocator.free_frames()
    }

    /// Every ASID with a live address space, ascending — the snapshot
    /// layer serializes each space's mappings under this order.
    pub fn asids(&self) -> Vec<Asid> {
        self.spaces.keys().copied().collect()
    }

    /// The frame allocator's free list, ascending, for checkpointing.
    pub fn free_list(&self) -> Vec<u64> {
        self.allocator.free_list()
    }

    /// Replaces the allocator's free list with a checkpointed one so the
    /// lowest-first allocation sequence continues identically.
    pub fn restore_free_list(&mut self, free: Vec<u64>) {
        self.allocator.restore_free_list(free);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(PageSize::S256, 16, 0)
    }

    #[test]
    fn demand_zero_faults_allocate_once() {
        let mut k = kernel();
        let vpn = VirtPageNum::new(4);
        let f1 = k.fault_in(Asid::new(1), vpn, VirtAddr::new(0x400)).unwrap();
        let f2 = k.fault_in(Asid::new(1), vpn, VirtAddr::new(0x400)).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(k.free_frames(), 15);
    }

    #[test]
    fn kernel_space_gets_supervisor_mappings() {
        let mut k = kernel();
        let vpn = VirtPageNum::new(1);
        k.fault_in(Asid::KERNEL, vpn, VirtAddr::new(0x100)).unwrap();
        assert!(k.translate(Asid::KERNEL, vpn).unwrap().supervisor_only);
        assert!(!k
            .fault_in(Asid::new(2), vpn, VirtAddr::new(0x100))
            .map(|_| k.translate(Asid::new(2), vpn).unwrap().supervisor_only)
            .unwrap());
    }

    #[test]
    fn out_of_memory_reported() {
        let mut k = Kernel::new(PageSize::S256, 2, 0);
        k.fault_in(Asid::new(1), VirtPageNum::new(0), VirtAddr::new(0)).unwrap();
        k.fault_in(Asid::new(1), VirtPageNum::new(1), VirtAddr::new(256)).unwrap();
        let err = k.fault_in(Asid::new(1), VirtPageNum::new(2), VirtAddr::new(512));
        assert!(matches!(err, Err(MachineError::OutOfMemory { .. })));
    }

    #[test]
    fn destroy_space_frees_exclusive_frames_only() {
        let mut k = kernel();
        let f_shared = k.fault_in(Asid::new(1), VirtPageNum::new(0), VirtAddr::new(0)).unwrap();
        let _f_priv = k.fault_in(Asid::new(1), VirtPageNum::new(1), VirtAddr::new(256)).unwrap();
        // Space 2 shares frame f_shared at a different virtual page.
        k.map(Asid::new(2), VirtPageNum::new(9), Pte::user_ro(f_shared));
        let freed = k.destroy_space(Asid::new(1));
        assert_eq!(freed.len(), 1, "only the exclusive frame is freed");
        assert_ne!(freed[0], f_shared);
        assert!(k.space(Asid::new(1)).is_none());
        assert!(k.translate(Asid::new(2), VirtPageNum::new(9)).is_some());
    }

    #[test]
    fn mark_used_sets_bits() {
        let mut k = kernel();
        let vpn = VirtPageNum::new(3);
        k.fault_in(Asid::new(1), vpn, VirtAddr::new(0x300)).unwrap();
        k.mark_used(Asid::new(1), vpn, false);
        let pte = k.translate(Asid::new(1), vpn).unwrap();
        assert!(pte.referenced && !pte.modified);
        k.mark_used(Asid::new(1), vpn, true);
        assert!(k.translate(Asid::new(1), vpn).unwrap().modified);
    }

    #[test]
    fn resident_pages_lists_mappings() {
        let mut k = kernel();
        k.fault_in(Asid::new(1), VirtPageNum::new(0), VirtAddr::new(0)).unwrap();
        k.fault_in(Asid::new(1), VirtPageNum::new(7), VirtAddr::new(7 * 256)).unwrap();
        let pages = k.resident_pages(Asid::new(1));
        assert_eq!(pages.len(), 2);
        assert!(k.resident_pages(Asid::new(9)).is_empty());
    }

    #[test]
    fn clear_referenced_and_hint() {
        let mut k = kernel();
        let vpn = VirtPageNum::new(2);
        k.fault_in(Asid::new(1), vpn, VirtAddr::new(0x200)).unwrap();
        assert!(!k.clear_referenced(Asid::new(1), vpn), "fresh page unreferenced");
        k.mark_used(Asid::new(1), vpn, true);
        assert!(k.clear_referenced(Asid::new(1), vpn));
        assert!(!k.translate(Asid::new(1), vpn).unwrap().modified);
        assert!(k.set_private_hint(Asid::new(1), vpn, true));
        assert!(k.translate(Asid::new(1), vpn).unwrap().hint_private);
        assert!(!k.set_private_hint(Asid::new(9), vpn, true), "unmapped");
    }

    #[test]
    fn reclaim_frees_exclusive_frames() {
        let mut k = kernel();
        let vpn = VirtPageNum::new(3);
        let frame = k.fault_in(Asid::new(1), vpn, VirtAddr::new(0x300)).unwrap();
        let before = k.free_frames();
        assert_eq!(k.reclaim(Asid::new(1), vpn), Some(frame));
        assert_eq!(k.free_frames(), before + 1);
        assert!(k.translate(Asid::new(1), vpn).is_none());
        // Shared frame: unmapped but not freed.
        let f2 = k.fault_in(Asid::new(1), VirtPageNum::new(4), VirtAddr::new(0x400)).unwrap();
        k.map(Asid::new(2), VirtPageNum::new(8), Pte::user_ro(f2));
        assert_eq!(k.reclaim(Asid::new(1), VirtPageNum::new(4)), None);
        assert!(k.translate(Asid::new(2), VirtPageNum::new(8)).is_some());
    }

    #[test]
    fn pte_va_distinct_per_space() {
        let mut k = kernel();
        let a = k.pte_va(Asid::new(1), VirtPageNum::new(0));
        let b = k.pte_va(Asid::new(2), VirtPageNum::new(0));
        assert_ne!(a, b);
    }
}
