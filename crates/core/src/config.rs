//! Machine configuration.

use vmp_bus::BusTimings;
use vmp_cache::CacheConfig;
use vmp_mem::MemTimings;
use vmp_obs::ObsConfig;
use vmp_types::{ConfigError, Nanos, PageSize};

/// Software timing of the cache-management routines running on each CPU.
///
/// The miss-handler phase split (`miss_pre`/`miss_mid`/`miss_post`)
/// matches `vmp_analytic::MissCostModel::paper`: ≈13.6 µs total, with the
/// `mid` phase overlappable with a victim write-back (§5.1, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuTimings {
    /// Mean time per memory reference at full speed (2.4 MIPS ×
    /// 1.2 refs/instr → ≈347 ns).
    pub ref_cycle: Nanos,
    /// Miss-handler software before any transfer can start (exception
    /// entry, state save, decode).
    pub miss_pre: Nanos,
    /// Miss-handler software overlappable with a write-back transfer
    /// (translation, victim bookkeeping).
    pub miss_mid: Nanos,
    /// Miss-handler software after which the read transfer still
    /// completes (flag setup, RTE).
    pub miss_post: Nanos,
    /// Software cost of the write-permission upgrade trap
    /// (assert-ownership negotiation: trap + RTE, no transfer).
    pub upgrade_software: Nanos,
    /// Software cost of servicing one consistency-interrupt word.
    pub consistency_service: Nanos,
    /// Operating-system cost of a real page fault (demand-zero fill).
    pub page_fault: Nanos,
    /// Delay between an aborted bus transaction and the re-trap that
    /// retries the faulting instruction.
    pub retry_backoff: Nanos,
    /// Software cost of the FIFO-overflow recovery sweep, per valid
    /// cache slot examined.
    pub overflow_recovery_per_slot: Nanos,
    /// Timeout for a parked [`crate::Op::WaitNotify`]: the kernel
    /// "suspends for a timeout period" (§5.4), which also covers the
    /// missed-wakeup race between watch setup and notification.
    pub notify_timeout: Nanos,
    /// Cap on the exponential retry-backoff streak: the backoff grows as
    /// `retry_backoff << min(streak, max_retry_streak)`. Larger caps
    /// spread contending retriers further apart at the cost of latency
    /// after a burst of aborts.
    pub max_retry_streak: u32,
}

impl Default for CpuTimings {
    fn default() -> Self {
        CpuTimings {
            ref_cycle: Nanos::from_ns(347),
            miss_pre: Nanos::from_ns(6_000),
            miss_mid: Nanos::from_ns(3_400),
            miss_post: Nanos::from_ns(4_200),
            upgrade_software: Nanos::from_ns(10_200),
            consistency_service: Nanos::from_ns(3_000),
            page_fault: Nanos::from_ns(100_000),
            retry_backoff: Nanos::from_ns(1_000),
            overflow_recovery_per_slot: Nanos::from_ns(200),
            notify_timeout: Nanos::from_us(500),
            max_retry_streak: 3,
        }
    }
}

/// Liveness-watchdog thresholds.
///
/// Each limit of `0` (or [`Nanos::ZERO`]) means "derive a generous
/// default from the machine's timing configuration" — see the field
/// docs. The derived limits are far beyond anything a healthy machine
/// produces under the protocol's own recovery paths, so a watchdog trip
/// always indicates genuine starvation (or an out-of-contract fault
/// plan), never an unlucky-but-recovering run.
///
/// # Examples
///
/// ```
/// use vmp_core::{CpuTimings, WatchdogConfig};
///
/// let w = WatchdogConfig::default();
/// let cpu = CpuTimings::default();
/// assert_eq!(w.effective_retry_streak_limit(&cpu), 128);
/// assert_eq!(w.effective_zero_yield_limit(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogConfig {
    /// A single reference aborting and retrying this many consecutive
    /// times is starvation. `0` derives `32 × (max_retry_streak + 1)`.
    pub retry_streak_limit: u64,
    /// An interrupt word (or sticky overflow flag) left unserviced this
    /// long is a dropped wakeup. Zero derives `100 × notify_timeout`.
    pub interrupt_lag_limit: Nanos,
    /// A processor acquiring this many pages in a row with zero
    /// successful references between them is thrashing without progress.
    /// `0` derives `64`.
    pub zero_yield_limit: u64,
}

impl WatchdogConfig {
    /// The retry-streak limit after derivation.
    pub fn effective_retry_streak_limit(&self, cpu: &CpuTimings) -> u64 {
        if self.retry_streak_limit != 0 {
            self.retry_streak_limit
        } else {
            32 * (u64::from(cpu.max_retry_streak) + 1)
        }
    }

    /// The interrupt-service lag limit after derivation.
    pub fn effective_interrupt_lag_limit(&self, cpu: &CpuTimings) -> Nanos {
        if self.interrupt_lag_limit != Nanos::ZERO {
            self.interrupt_lag_limit
        } else {
            cpu.notify_timeout * 100
        }
    }

    /// The zero-yield acquisition limit after derivation.
    pub fn effective_zero_yield_limit(&self) -> u64 {
        if self.zero_yield_limit != 0 {
            self.zero_yield_limit
        } else {
            64
        }
    }
}

/// Configuration of a whole VMP machine.
///
/// # Examples
///
/// ```
/// use vmp_core::MachineConfig;
///
/// let config = MachineConfig::default();
/// assert_eq!(config.processors, 4);
/// let small = MachineConfig::small();
/// assert!(small.memory_bytes < config.memory_bytes);
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of processor boards.
    pub processors: usize,
    /// Per-processor cache geometry.
    pub cache: CacheConfig,
    /// Shared main-memory size in bytes (the prototype allows up to 8 MB).
    pub memory_bytes: u64,
    /// Bus timing parameters.
    pub bus: BusTimings,
    /// Main-memory block-transfer timing.
    pub mem_timings: MemTimings,
    /// CPU and handler software timing.
    pub cpu: CpuTimings,
    /// Run the protocol invariant validator after every processor step
    /// (slow; intended for tests).
    pub validate_each_step: bool,
    /// Run the protocol invariant validator every N delivered events,
    /// surfacing violations as [`crate::MachineError::AuditFailed`]. A
    /// cheaper production-style middle ground between `validate_each_step`
    /// and no checking at all. `None` disables the audit.
    pub audit_every: Option<u64>,
    /// Liveness watchdog thresholds; `None` disables the watchdog (the
    /// default, so benign runs are bit-identical with or without this
    /// subsystem compiled in).
    pub watchdog: Option<WatchdogConfig>,
    /// Observability: structured event recording, latency histograms and
    /// windowed series. Disabled by default; recording never feeds back
    /// into simulation state, so enabling it cannot perturb a run.
    pub obs: ObsConfig,
    /// Stop the simulation at this time even if programs have not halted.
    pub max_time: Nanos,
}

impl Default for MachineConfig {
    /// Four processors with the prototype cache (256 KB, 4-way, 256-byte
    /// pages) and 4 MB of main memory.
    fn default() -> Self {
        MachineConfig {
            processors: 4,
            cache: CacheConfig::prototype(),
            memory_bytes: 4 * 1024 * 1024,
            bus: BusTimings::default(),
            mem_timings: MemTimings::default(),
            cpu: CpuTimings::default(),
            validate_each_step: false,
            audit_every: None,
            watchdog: None,
            obs: ObsConfig::default(),
            max_time: Nanos::from_ms(10_000),
        }
    }
}

impl MachineConfig {
    /// A small configuration for unit tests and examples: two processors,
    /// an 8 KB 2-way cache of 128-byte pages, 64 KB of memory, with
    /// per-step validation enabled.
    pub fn small() -> Self {
        MachineConfig {
            processors: 2,
            cache: CacheConfig::new(PageSize::S128, 2, 8 * 1024)
                .expect("small geometry is statically valid"),
            memory_bytes: 64 * 1024,
            validate_each_step: true,
            ..MachineConfig::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if there are no processors, memory is
    /// smaller than one cache page, or memory is not a whole number of
    /// cache pages.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.processors == 0 {
            return Err(ConfigError::ZeroCount { what: "processors" });
        }
        let page = self.cache.page_size().bytes();
        if self.memory_bytes < page {
            return Err(ConfigError::Inconsistent { what: "memory smaller than one cache page" });
        }
        if !self.memory_bytes.is_multiple_of(page) {
            return Err(ConfigError::Inconsistent {
                what: "memory must be a whole number of cache pages",
            });
        }
        if self.audit_every == Some(0) {
            return Err(ConfigError::ZeroCount { what: "audit_every interval" });
        }
        if self.obs.enabled {
            if self.obs.ring_capacity == 0 {
                return Err(ConfigError::ZeroCount { what: "obs ring capacity" });
            }
            if self.obs.histogram_buckets == 0 || self.obs.histogram_buckets > 65 {
                return Err(ConfigError::Inconsistent {
                    what: "obs histogram buckets must be in 1..=65",
                });
            }
            if self.obs.window == Nanos::ZERO {
                return Err(ConfigError::ZeroCount { what: "obs window width" });
            }
            if self.obs.attrib && self.obs.attrib_window == Nanos::ZERO {
                return Err(ConfigError::ZeroCount { what: "obs attribution window" });
            }
            debug_assert!(self.obs.validate().is_ok());
        }
        Ok(())
    }

    /// Number of page frames in main memory.
    pub fn frames(&self) -> u64 {
        self.memory_bytes / self.cache.page_size().bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        MachineConfig::default().check().unwrap();
        MachineConfig::small().check().unwrap();
    }

    #[test]
    fn default_matches_prototype() {
        let c = MachineConfig::default();
        assert_eq!(c.cache.total_bytes(), 256 * 1024);
        assert_eq!(c.frames(), 4 * 1024 * 1024 / 256);
    }

    #[test]
    fn rejects_bad_configs() {
        let c = MachineConfig { processors: 0, ..MachineConfig::default() };
        assert!(c.check().is_err());
        let c = MachineConfig { memory_bytes: 100, ..MachineConfig::default() };
        assert!(c.check().is_err());
        let c = MachineConfig { memory_bytes: 256 * 3 + 1, ..MachineConfig::default() };
        assert!(c.check().is_err());
    }

    #[test]
    fn cpu_timings_match_analytic_model() {
        let t = CpuTimings::default();
        assert_eq!((t.miss_pre + t.miss_mid + t.miss_post).as_micros_f64(), 13.6);
        assert_eq!(t.upgrade_software, t.miss_pre + t.miss_post);
    }

    #[test]
    fn audit_interval_must_be_positive() {
        let c = MachineConfig { audit_every: Some(0), ..MachineConfig::default() };
        assert!(c.check().is_err());
        let c = MachineConfig { audit_every: Some(1), ..MachineConfig::default() };
        c.check().unwrap();
    }

    #[test]
    fn obs_config_is_validated_when_enabled() {
        let with_obs = |obs| MachineConfig { obs, ..MachineConfig::default() };
        let c = with_obs(ObsConfig { enabled: true, ring_capacity: 0, ..ObsConfig::default() });
        assert!(c.check().is_err());
        let c =
            with_obs(ObsConfig { enabled: true, histogram_buckets: 66, ..ObsConfig::default() });
        assert!(c.check().is_err());
        let c = with_obs(ObsConfig { enabled: true, window: Nanos::ZERO, ..ObsConfig::default() });
        assert!(c.check().is_err());
        // The same parameters pass when recording is off (they are unused)
        // and when recording is on with sane values.
        let c = with_obs(ObsConfig { attrib: true, attrib_window: Nanos::ZERO, ..ObsConfig::on() });
        assert!(c.check().is_err());
        with_obs(ObsConfig::with_attrib()).check().unwrap();
        let c = with_obs(ObsConfig { enabled: false, ring_capacity: 0, ..ObsConfig::default() });
        c.check().unwrap();
        with_obs(ObsConfig::on()).check().unwrap();
    }

    #[test]
    fn watchdog_limits_derive_from_timings() {
        let cpu = CpuTimings::default();
        let w = WatchdogConfig::default();
        assert_eq!(w.effective_retry_streak_limit(&cpu), 32 * 4);
        assert_eq!(w.effective_interrupt_lag_limit(&cpu), Nanos::from_ms(50));
        assert_eq!(w.effective_zero_yield_limit(), 64);
        // Explicit limits win over derivation.
        let w = WatchdogConfig {
            retry_streak_limit: 7,
            interrupt_lag_limit: Nanos::from_us(3),
            zero_yield_limit: 2,
        };
        assert_eq!(w.effective_retry_streak_limit(&cpu), 7);
        assert_eq!(w.effective_interrupt_lag_limit(&cpu), Nanos::from_us(3));
        assert_eq!(w.effective_zero_yield_limit(), 2);
    }
}

/// Builder for [`MachineConfig`] (and, via [`MachineBuilder::build`],
/// for a whole machine).
///
/// # Examples
///
/// ```
/// use vmp_core::MachineBuilder;
/// use vmp_types::PageSize;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let machine = MachineBuilder::new()
///     .processors(2)
///     .cache_geometry(PageSize::S128, 2, 16 * 1024)?
///     .memory_bytes(256 * 1024)
///     .validate_each_step(true)
///     .build()?;
/// assert_eq!(machine.processors(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    config: MachineConfig,
}

impl MachineBuilder {
    /// Starts from the default (prototype) configuration.
    pub fn new() -> Self {
        MachineBuilder { config: MachineConfig::default() }
    }

    /// Sets the number of processor boards.
    pub fn processors(mut self, n: usize) -> Self {
        self.config.processors = n;
        self
    }

    /// Sets the cache geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid geometry (see
    /// [`vmp_cache::CacheConfig::new`]).
    pub fn cache_geometry(
        mut self,
        page: PageSize,
        associativity: usize,
        total_bytes: u64,
    ) -> Result<Self, ConfigError> {
        self.config.cache = CacheConfig::new(page, associativity, total_bytes)?;
        Ok(self)
    }

    /// Sets the main-memory size in bytes.
    pub fn memory_bytes(mut self, bytes: u64) -> Self {
        self.config.memory_bytes = bytes;
        self
    }

    /// Replaces the CPU/handler timing parameters.
    pub fn cpu_timings(mut self, cpu: CpuTimings) -> Self {
        self.config.cpu = cpu;
        self
    }

    /// Sets the demand-zero page-fault service time (a common knob:
    /// experiments that study cache behaviour often zero it).
    pub fn page_fault(mut self, cost: Nanos) -> Self {
        self.config.cpu.page_fault = cost;
        self
    }

    /// Enables or disables per-event invariant validation.
    pub fn validate_each_step(mut self, on: bool) -> Self {
        self.config.validate_each_step = on;
        self
    }

    /// Runs the invariant validator every `events` delivered events
    /// (`None` disables the audit).
    pub fn audit_every(mut self, events: Option<u64>) -> Self {
        self.config.audit_every = events;
        self
    }

    /// Arms the liveness watchdog with the given thresholds
    /// (`WatchdogConfig::default()` derives everything from the timing
    /// configuration).
    pub fn watchdog(mut self, config: WatchdogConfig) -> Self {
        self.config.watchdog = Some(config);
        self
    }

    /// Sets the cap on the exponential retry-backoff streak.
    pub fn max_retry_streak(mut self, cap: u32) -> Self {
        self.config.cpu.max_retry_streak = cap;
        self
    }

    /// Configures observability (`ObsConfig::on()` enables recording
    /// with the default ring and histogram sizes).
    pub fn obs(mut self, config: ObsConfig) -> Self {
        self.config.obs = config;
        self
    }

    /// Sets the simulation time limit.
    pub fn max_time(mut self, limit: Nanos) -> Self {
        self.config.max_time = limit;
        self
    }

    /// Returns the accumulated configuration without building a machine.
    pub fn config(self) -> MachineConfig {
        self.config
    }

    /// Builds the machine.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MachineError::Config`] if the configuration is
    /// inconsistent.
    pub fn build(self) -> Result<crate::Machine, crate::MachineError> {
        crate::Machine::build(self.config)
    }
}

impl Default for MachineBuilder {
    fn default() -> Self {
        MachineBuilder::new()
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let config = MachineBuilder::new()
            .processors(3)
            .memory_bytes(1024 * 1024)
            .page_fault(Nanos::ZERO)
            .max_time(Nanos::from_ms(5))
            .validate_each_step(true)
            .config();
        assert_eq!(config.processors, 3);
        assert_eq!(config.memory_bytes, 1024 * 1024);
        assert_eq!(config.cpu.page_fault, Nanos::ZERO);
        assert_eq!(config.max_time, Nanos::from_ms(5));
        assert!(config.validate_each_step);
    }

    #[test]
    fn builder_rejects_bad_geometry() {
        assert!(MachineBuilder::new().cache_geometry(PageSize::S256, 3, 1000).is_err());
    }

    #[test]
    fn builder_builds_machine() {
        let m = MachineBuilder::new().processors(1).build().unwrap();
        assert_eq!(m.processors(), 1);
    }
}
