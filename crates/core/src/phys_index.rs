//! The software physical→cache-slot index kept in local memory.

use std::collections::{BTreeSet, HashMap};

use vmp_cache::SlotId;
use vmp_types::FrameNum;

/// The miss handler's record of which cache slots hold which physical
/// frames.
///
/// The cache itself is virtually indexed, but consistency interrupts
/// arrive with *physical* addresses, so "information about the state of
/// each cache page and the mapping from physical address to cache page is
/// maintained by the processor in the local memory" (paper §3.3). Because
/// of virtual-address aliasing one frame may occupy several slots.
///
/// # Examples
///
/// ```
/// use vmp_cache::SlotId;
/// use vmp_core::PhysIndex;
/// use vmp_types::FrameNum;
///
/// let mut idx = PhysIndex::new();
/// idx.insert(FrameNum::new(3), SlotId { set: 0, way: 1 });
/// assert_eq!(idx.slots(FrameNum::new(3)).len(), 1);
/// idx.remove(FrameNum::new(3), SlotId { set: 0, way: 1 });
/// assert!(idx.slots(FrameNum::new(3)).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhysIndex {
    by_frame: HashMap<FrameNum, BTreeSet<SlotId>>,
    by_slot: HashMap<SlotId, FrameNum>,
}

impl PhysIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `slot` now holds `frame`.
    ///
    /// If the slot previously held another frame, that stale entry is
    /// removed first (replacement without explicit invalidation).
    pub fn insert(&mut self, frame: FrameNum, slot: SlotId) {
        if let Some(old) = self.by_slot.insert(slot, frame) {
            if old != frame {
                if let Some(set) = self.by_frame.get_mut(&old) {
                    set.remove(&slot);
                    if set.is_empty() {
                        self.by_frame.remove(&old);
                    }
                }
            }
        }
        self.by_frame.entry(frame).or_default().insert(slot);
    }

    /// Removes the record for `slot` holding `frame`.
    pub fn remove(&mut self, frame: FrameNum, slot: SlotId) {
        if self.by_slot.get(&slot) == Some(&frame) {
            self.by_slot.remove(&slot);
        }
        if let Some(set) = self.by_frame.get_mut(&frame) {
            set.remove(&slot);
            if set.is_empty() {
                self.by_frame.remove(&frame);
            }
        }
    }

    /// All slots (aliases) currently holding `frame`, in deterministic
    /// order.
    pub fn slots(&self, frame: FrameNum) -> Vec<SlotId> {
        self.by_frame.get(&frame).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// The frame a slot holds, if recorded.
    pub fn frame_of(&self, slot: SlotId) -> Option<FrameNum> {
        self.by_slot.get(&slot).copied()
    }

    /// Number of distinct frames with at least one cached copy.
    pub fn frames_cached(&self) -> usize {
        self.by_frame.len()
    }

    /// Iterates over `(frame, slot)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (FrameNum, SlotId)> + '_ {
        let mut frames: Vec<_> = self.by_frame.iter().collect();
        frames.sort_by_key(|(f, _)| **f);
        frames
            .into_iter()
            .flat_map(|(f, slots)| slots.iter().map(move |s| (*f, *s)))
    }

    /// Forgets everything (address-space teardown, overflow recovery).
    pub fn clear(&mut self) {
        self.by_frame.clear();
        self.by_slot.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(set: usize, way: usize) -> SlotId {
        SlotId { set, way }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut idx = PhysIndex::new();
        idx.insert(FrameNum::new(1), slot(0, 0));
        idx.insert(FrameNum::new(1), slot(2, 1)); // alias
        idx.insert(FrameNum::new(2), slot(3, 0));
        assert_eq!(idx.slots(FrameNum::new(1)), vec![slot(0, 0), slot(2, 1)]);
        assert_eq!(idx.frame_of(slot(3, 0)), Some(FrameNum::new(2)));
        assert_eq!(idx.frames_cached(), 2);
        idx.remove(FrameNum::new(1), slot(0, 0));
        assert_eq!(idx.slots(FrameNum::new(1)), vec![slot(2, 1)]);
        idx.remove(FrameNum::new(1), slot(2, 1));
        assert_eq!(idx.frames_cached(), 1);
        assert_eq!(idx.frame_of(slot(0, 0)), None);
    }

    #[test]
    fn reinsert_slot_with_new_frame_clears_stale() {
        let mut idx = PhysIndex::new();
        idx.insert(FrameNum::new(1), slot(0, 0));
        // Replacement: same slot now holds a different frame.
        idx.insert(FrameNum::new(9), slot(0, 0));
        assert!(idx.slots(FrameNum::new(1)).is_empty());
        assert_eq!(idx.slots(FrameNum::new(9)), vec![slot(0, 0)]);
        assert_eq!(idx.frame_of(slot(0, 0)), Some(FrameNum::new(9)));
    }

    #[test]
    fn remove_with_wrong_frame_is_safe() {
        let mut idx = PhysIndex::new();
        idx.insert(FrameNum::new(1), slot(0, 0));
        idx.remove(FrameNum::new(2), slot(0, 0)); // mismatched: no effect on by_slot
        assert_eq!(idx.frame_of(slot(0, 0)), Some(FrameNum::new(1)));
    }

    #[test]
    fn iter_deterministic_and_clear() {
        let mut idx = PhysIndex::new();
        idx.insert(FrameNum::new(5), slot(1, 0));
        idx.insert(FrameNum::new(3), slot(0, 0));
        let pairs: Vec<_> = idx.iter().collect();
        assert_eq!(pairs[0].0, FrameNum::new(3));
        assert_eq!(pairs[1].0, FrameNum::new(5));
        idx.clear();
        assert_eq!(idx.frames_cached(), 0);
    }
}
