//! The software physical→cache-slot index kept in local memory.

use std::collections::HashMap;

use vmp_cache::SlotId;
use vmp_types::FrameNum;

/// The miss handler's record of which cache slots hold which physical
/// frames.
///
/// The cache itself is virtually indexed, but consistency interrupts
/// arrive with *physical* addresses, so "information about the state of
/// each cache page and the mapping from physical address to cache page is
/// maintained by the processor in the local memory" (paper §3.3). Because
/// of virtual-address aliasing one frame may occupy several slots.
///
/// Layout is tuned for the consistency hot path, which performs one
/// frame→slots lookup per snooped bus transaction: slots per frame live
/// in small sorted `Vec`s handed out by reference (no per-lookup
/// allocation, unlike the former `BTreeSet` + collect), and the reverse
/// slot→frame map is a flat array indexed by `set * ways + way` (one
/// load, no hashing). Build it with [`PhysIndex::with_geometry`] when
/// the cache shape is known; [`PhysIndex::new`] grows the flat array on
/// demand.
///
/// # Examples
///
/// ```
/// use vmp_cache::SlotId;
/// use vmp_core::PhysIndex;
/// use vmp_types::FrameNum;
///
/// let mut idx = PhysIndex::new();
/// idx.insert(FrameNum::new(3), SlotId { set: 0, way: 1 });
/// assert_eq!(idx.slots(FrameNum::new(3)).len(), 1);
/// idx.remove(FrameNum::new(3), SlotId { set: 0, way: 1 });
/// assert!(idx.slots(FrameNum::new(3)).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhysIndex {
    by_frame: HashMap<FrameNum, Vec<SlotId>>,
    /// Frame held by each slot, linearized as `set * ways + way`.
    by_slot: Vec<Option<FrameNum>>,
    ways: usize,
}

impl PhysIndex {
    /// Creates an empty index whose reverse map grows as slots appear.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty index pre-sized for a `sets` × `ways` cache, so
    /// the reverse map never reallocates during simulation.
    pub fn with_geometry(sets: usize, ways: usize) -> Self {
        let ways = ways.max(1);
        PhysIndex { by_frame: HashMap::new(), by_slot: vec![None; sets * ways], ways }
    }

    fn linear(&self, slot: SlotId) -> usize {
        slot.set * self.ways + slot.way
    }

    /// Grows the reverse map so `slot` has a cell, re-linearizing the
    /// existing entries if the way count increases. Cold: only reachable
    /// through [`PhysIndex::new`] with geometry unknown up front.
    fn ensure_cell(&mut self, slot: SlotId) {
        if slot.way >= self.ways {
            let ways = (slot.way + 1).max(self.ways * 2);
            let mut by_slot = vec![None; self.by_slot.len() / self.ways.max(1) * ways];
            for (lin, frame) in self.by_slot.iter().enumerate() {
                if let Some(f) = frame {
                    let (set, way) = (lin / self.ways, lin % self.ways);
                    let new_lin = set * ways + way;
                    if by_slot.len() <= new_lin {
                        by_slot.resize(new_lin + 1, None);
                    }
                    by_slot[new_lin] = Some(*f);
                }
            }
            self.by_slot = by_slot;
            self.ways = ways;
        }
        let lin = self.linear(slot);
        if lin >= self.by_slot.len() {
            self.by_slot.resize(lin + 1, None);
        }
    }

    /// Records that `slot` now holds `frame`.
    ///
    /// If the slot previously held another frame, that stale entry is
    /// removed first (replacement without explicit invalidation).
    pub fn insert(&mut self, frame: FrameNum, slot: SlotId) {
        self.ensure_cell(slot);
        let lin = self.linear(slot);
        if let Some(old) = self.by_slot[lin].replace(frame) {
            if old != frame {
                Self::detach(&mut self.by_frame, old, slot);
            }
        }
        let slots = self.by_frame.entry(frame).or_default();
        if let Err(pos) = slots.binary_search(&slot) {
            slots.insert(pos, slot);
        }
    }

    /// Removes the record for `slot` holding `frame`.
    pub fn remove(&mut self, frame: FrameNum, slot: SlotId) {
        if self.ways > 0 {
            let lin = self.linear(slot);
            if slot.way < self.ways && lin < self.by_slot.len() && self.by_slot[lin] == Some(frame)
            {
                self.by_slot[lin] = None;
            }
        }
        Self::detach(&mut self.by_frame, frame, slot);
    }

    fn detach(by_frame: &mut HashMap<FrameNum, Vec<SlotId>>, frame: FrameNum, slot: SlotId) {
        if let Some(slots) = by_frame.get_mut(&frame) {
            if let Ok(pos) = slots.binary_search(&slot) {
                slots.remove(pos);
            }
            if slots.is_empty() {
                by_frame.remove(&frame);
            }
        }
    }

    /// All slots (aliases) currently holding `frame`, sorted.
    ///
    /// Borrows from the index — the per-reference consistency path calls
    /// this once per snooped transaction, so it must not allocate.
    pub fn slots(&self, frame: FrameNum) -> &[SlotId] {
        self.by_frame.get(&frame).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The frame a slot holds, if recorded.
    pub fn frame_of(&self, slot: SlotId) -> Option<FrameNum> {
        if self.ways == 0 || slot.way >= self.ways {
            return None;
        }
        self.by_slot.get(self.linear(slot)).copied().flatten()
    }

    /// Number of distinct frames with at least one cached copy.
    pub fn frames_cached(&self) -> usize {
        self.by_frame.len()
    }

    /// Iterates over `(frame, slot)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (FrameNum, SlotId)> + '_ {
        let mut frames: Vec<_> = self.by_frame.iter().collect();
        frames.sort_by_key(|(f, _)| **f);
        frames.into_iter().flat_map(|(f, slots)| slots.iter().map(move |s| (*f, *s)))
    }

    /// Forgets everything (address-space teardown, overflow recovery).
    pub fn clear(&mut self) {
        self.by_frame.clear();
        self.by_slot.iter_mut().for_each(|c| *c = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(set: usize, way: usize) -> SlotId {
        SlotId { set, way }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut idx = PhysIndex::new();
        idx.insert(FrameNum::new(1), slot(0, 0));
        idx.insert(FrameNum::new(1), slot(2, 1)); // alias
        idx.insert(FrameNum::new(2), slot(3, 0));
        assert_eq!(idx.slots(FrameNum::new(1)), vec![slot(0, 0), slot(2, 1)]);
        assert_eq!(idx.frame_of(slot(3, 0)), Some(FrameNum::new(2)));
        assert_eq!(idx.frames_cached(), 2);
        idx.remove(FrameNum::new(1), slot(0, 0));
        assert_eq!(idx.slots(FrameNum::new(1)), vec![slot(2, 1)]);
        idx.remove(FrameNum::new(1), slot(2, 1));
        assert_eq!(idx.frames_cached(), 1);
        assert_eq!(idx.frame_of(slot(0, 0)), None);
    }

    #[test]
    fn reinsert_slot_with_new_frame_clears_stale() {
        let mut idx = PhysIndex::new();
        idx.insert(FrameNum::new(1), slot(0, 0));
        // Replacement: same slot now holds a different frame.
        idx.insert(FrameNum::new(9), slot(0, 0));
        assert!(idx.slots(FrameNum::new(1)).is_empty());
        assert_eq!(idx.slots(FrameNum::new(9)), vec![slot(0, 0)]);
        assert_eq!(idx.frame_of(slot(0, 0)), Some(FrameNum::new(9)));
    }

    #[test]
    fn remove_with_wrong_frame_is_safe() {
        let mut idx = PhysIndex::new();
        idx.insert(FrameNum::new(1), slot(0, 0));
        idx.remove(FrameNum::new(2), slot(0, 0)); // mismatched: no effect on by_slot
        assert_eq!(idx.frame_of(slot(0, 0)), Some(FrameNum::new(1)));
    }

    #[test]
    fn iter_deterministic_and_clear() {
        let mut idx = PhysIndex::new();
        idx.insert(FrameNum::new(5), slot(1, 0));
        idx.insert(FrameNum::new(3), slot(0, 0));
        let pairs: Vec<_> = idx.iter().collect();
        assert_eq!(pairs[0].0, FrameNum::new(3));
        assert_eq!(pairs[1].0, FrameNum::new(5));
        idx.clear();
        assert_eq!(idx.frames_cached(), 0);
        assert_eq!(idx.frame_of(slot(1, 0)), None);
    }

    #[test]
    fn with_geometry_matches_grown_index() {
        let mut pre = PhysIndex::with_geometry(8, 2);
        let mut grown = PhysIndex::new();
        for (f, s) in [(1, slot(0, 0)), (1, slot(7, 1)), (4, slot(3, 1)), (2, slot(3, 0))] {
            pre.insert(FrameNum::new(f), s);
            grown.insert(FrameNum::new(f), s);
        }
        for f in [1u64, 2, 4, 9] {
            assert_eq!(pre.slots(FrameNum::new(f)), grown.slots(FrameNum::new(f)));
        }
        for s in [slot(0, 0), slot(7, 1), slot(3, 1), slot(3, 0), slot(5, 0)] {
            assert_eq!(pre.frame_of(s), grown.frame_of(s));
        }
        assert_eq!(pre.iter().collect::<Vec<_>>(), grown.iter().collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut idx = PhysIndex::with_geometry(4, 2);
        idx.insert(FrameNum::new(7), slot(1, 1));
        idx.insert(FrameNum::new(7), slot(1, 1));
        assert_eq!(idx.slots(FrameNum::new(7)), vec![slot(1, 1)]);
        idx.remove(FrameNum::new(7), slot(1, 1));
        assert!(idx.slots(FrameNum::new(7)).is_empty());
        assert_eq!(idx.frames_cached(), 0);
    }
}
