//! The full VMP machine model — the paper's primary contribution.
//!
//! A [`Machine`] is a set of processor boards (68020-class CPU +
//! virtually-addressed [`vmp_cache::DataCache`] + local memory + block
//! copier + [`vmp_bus::BusMonitor`]) on one shared VMEbus with common
//! main memory. Cache misses are handled in *software*: the processor
//! traps, saves state in local memory, walks the page tables (possibly
//! missing recursively on PTE pages), writes back the victim, directs the
//! block copier, and retries — with the phase timings of §5.1. The
//! two-state shared/private ownership protocol of §3 is enforced entirely
//! by the bus monitors' action tables plus the consistency-interrupt
//! service routine modelled here.
//!
//! Programs drive the processors through the [`Program`] trait: trace
//! playback ([`TraceProgram`]), scripted operation lists
//! ([`ScriptProgram`]), or the synchronization workloads of §5.4
//! ([`workloads`]). DMA devices ([`DmaDevice`]) transfer through plain
//! bus transactions under assert-ownership protection, exactly as §3.3
//! prescribes.
//!
//! # Examples
//!
//! ```
//! use vmp_core::{Machine, MachineConfig, Op, ScriptProgram};
//! use vmp_types::VirtAddr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::build(MachineConfig::small())?;
//! machine.set_program(
//!     0,
//!     ScriptProgram::new(vec![
//!         Op::Write(VirtAddr::new(0x1000), 42),
//!         Op::Read(VirtAddr::new(0x1000)),
//!         Op::Halt,
//!     ]),
//! )?;
//! let report = machine.run()?;
//! assert_eq!(report.processors[0].misses(), 1); // one page fetch
//! machine.validate().expect("protocol invariants hold");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dma;
mod error;
mod kernel;
mod machine;
mod phys_index;
mod program;
mod snapshot;
mod stats;
mod validate;
pub mod workloads;

pub use config::{CpuTimings, MachineBuilder, MachineConfig, WatchdogConfig};
pub use dma::{DmaDevice, DmaDirection, DmaRequest};
pub use error::{MachineError, WatchdogViolation};
pub use kernel::Kernel;
pub use machine::Machine;
pub use phys_index::PhysIndex;
pub use program::{sweep_refs, Op, OpResult, Program, ScriptProgram, TraceProgram};
pub use snapshot::MachineSnapshot;
pub use stats::{bus_stats_json, FaultStats, MachineReport, ProcessorStats};
pub use vmp_obs::{MachineObs, ObsConfig};
