//! Synchronization and contention workloads (§5.4).
//!
//! The paper warns that "straightforward use of test-and-set locks on the
//! same cache pages as the data being modified could result in enormous
//! consistency overhead", and proposes kernel notification locks built on
//! the bus monitor's `11` code. These workloads reproduce both designs so
//! the contention ablation can measure the difference.

use vmp_obs::json::Value;
use vmp_types::{Nanos, VirtAddr};

use crate::{Op, OpResult, Program};

/// Fetches a `u64` field from a workload state object.
fn get_u64(state: &Value, key: &str) -> Option<u64> {
    state.get(key).and_then(Value::as_u64)
}

/// Fetches a `u32` field from a workload state object.
fn get_u32(state: &Value, key: &str) -> Option<u32> {
    get_u64(state, key).and_then(|v| u32::try_from(v).ok())
}

/// Fetches a duration field (stored as nanoseconds) from a workload
/// state object.
fn get_ns(state: &Value, key: &str) -> Option<Nanos> {
    get_u64(state, key).map(Nanos::from_ns)
}

/// How a [`LockWorker`] waits for a contended lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockDiscipline {
    /// Busy-wait with test-and-set: each attempt acquires the lock page
    /// exclusively, ping-ponging ownership (the §5.4 anti-pattern).
    Spin,
    /// Notification lock: on failure, flush the lock page, set the
    /// action table to `11`, and sleep until the holder notifies (§5.4).
    Notify,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockState {
    Idle,
    TryLock,
    AwaitWatchSet,
    Waiting,
    ReadCounter,
    CriticalCompute,
    Unlock,
    NotifyWaiters,
    Think,
}

impl LockState {
    fn idx(self) -> u64 {
        match self {
            LockState::Idle => 0,
            LockState::TryLock => 1,
            LockState::AwaitWatchSet => 2,
            LockState::Waiting => 3,
            LockState::ReadCounter => 4,
            LockState::CriticalCompute => 5,
            LockState::Unlock => 6,
            LockState::NotifyWaiters => 7,
            LockState::Think => 8,
        }
    }

    fn from_idx(i: u64) -> Option<Self> {
        Some(match i {
            0 => LockState::Idle,
            1 => LockState::TryLock,
            2 => LockState::AwaitWatchSet,
            3 => LockState::Waiting,
            4 => LockState::ReadCounter,
            5 => LockState::CriticalCompute,
            6 => LockState::Unlock,
            7 => LockState::NotifyWaiters,
            8 => LockState::Think,
            _ => return None,
        })
    }
}

/// A worker that repeatedly acquires a lock, increments a shared counter
/// in its critical section, and releases.
///
/// The shared counter makes correctness observable: after all workers
/// halt, the counter must equal the total number of critical sections
/// executed — any lost update means mutual exclusion or coherence broke.
///
/// # Examples
///
/// ```
/// use vmp_core::workloads::{LockDiscipline, LockWorker};
/// use vmp_types::{Nanos, VirtAddr};
///
/// let w = LockWorker::new(
///     LockDiscipline::Spin,
///     VirtAddr::new(0x1000), // lock word
///     VirtAddr::new(0x2000), // counter word (different page)
///     10,                    // critical sections to run
///     Nanos::from_us(2),     // critical-section compute
///     Nanos::from_us(5),     // think time between sections
/// );
/// assert_eq!(w.completed(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct LockWorker {
    discipline: LockDiscipline,
    lock: VirtAddr,
    counter: VirtAddr,
    iterations: u64,
    completed: u64,
    cs_compute: Nanos,
    think: Nanos,
    state: LockState,
    counter_seen: u32,
    /// TAS attempts that found the lock held.
    contended_attempts: u64,
}

impl LockWorker {
    /// Creates a worker that will run `iterations` critical sections.
    pub fn new(
        discipline: LockDiscipline,
        lock: VirtAddr,
        counter: VirtAddr,
        iterations: u64,
        cs_compute: Nanos,
        think: Nanos,
    ) -> Self {
        LockWorker {
            discipline,
            lock,
            counter,
            iterations,
            completed: 0,
            cs_compute,
            think,
            state: LockState::Idle,
            counter_seen: 0,
            contended_attempts: 0,
        }
    }

    /// Critical sections completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// TAS attempts that found the lock already held.
    pub fn contended_attempts(&self) -> u64 {
        self.contended_attempts
    }
}

impl Program for LockWorker {
    fn next_op(&mut self, last: OpResult) -> Op {
        loop {
            match self.state {
                LockState::Idle => {
                    if self.completed >= self.iterations {
                        return Op::Halt;
                    }
                    self.state = LockState::TryLock;
                    return Op::Tas(self.lock);
                }
                LockState::TryLock => match last {
                    OpResult::Tas(0) => {
                        self.state = LockState::ReadCounter;
                        return Op::Read(self.counter);
                    }
                    OpResult::Tas(_) => {
                        self.contended_attempts += 1;
                        match self.discipline {
                            LockDiscipline::Spin => {
                                // Stay in TryLock and hammer the lock.
                                return Op::Tas(self.lock);
                            }
                            LockDiscipline::Notify => {
                                self.state = LockState::AwaitWatchSet;
                                return Op::WatchNotify(self.lock);
                            }
                        }
                    }
                    _ => {
                        // Re-entered after an unrelated result; retry.
                        return Op::Tas(self.lock);
                    }
                },
                LockState::AwaitWatchSet => {
                    self.state = LockState::Waiting;
                    return Op::WaitNotify;
                }
                LockState::Waiting => {
                    // Either notified or timed out: retry the lock.
                    self.state = LockState::TryLock;
                    return Op::Tas(self.lock);
                }
                LockState::ReadCounter => {
                    if let OpResult::Read(v) = last {
                        self.counter_seen = v;
                        self.state = LockState::CriticalCompute;
                        return Op::Write(self.counter, v + 1);
                    }
                    // Shouldn't happen; be defensive.
                    return Op::Read(self.counter);
                }
                LockState::CriticalCompute => {
                    self.state = LockState::Unlock;
                    return Op::Compute(self.cs_compute);
                }
                LockState::Unlock => {
                    self.state = match self.discipline {
                        LockDiscipline::Spin => LockState::Think,
                        LockDiscipline::Notify => LockState::NotifyWaiters,
                    };
                    self.completed += 1;
                    return Op::Write(self.lock, 0);
                }
                LockState::NotifyWaiters => {
                    self.state = LockState::Think;
                    return Op::Notify(self.lock);
                }
                LockState::Think => {
                    self.state = LockState::Idle;
                    if self.think > Nanos::ZERO {
                        return Op::Compute(self.think);
                    }
                    // Fall through to Idle without an op.
                }
            }
        }
    }

    fn save_state(&self) -> Option<Value> {
        Some(
            Value::obj()
                .set("type", "lock")
                .set(
                    "discipline",
                    match self.discipline {
                        LockDiscipline::Spin => "spin",
                        LockDiscipline::Notify => "notify",
                    },
                )
                .set("lock", self.lock.raw())
                .set("counter", self.counter.raw())
                .set("iterations", self.iterations)
                .set("cs_compute", self.cs_compute.as_ns())
                .set("think", self.think.as_ns())
                .set("completed", self.completed)
                .set("state", self.state.idx())
                .set("counter_seen", self.counter_seen)
                .set("contended_attempts", self.contended_attempts),
        )
    }

    fn restore_state(&mut self, state: &Value) -> bool {
        if state.get("type").and_then(Value::as_str) != Some("lock") {
            return false;
        }
        let discipline = match self.discipline {
            LockDiscipline::Spin => "spin",
            LockDiscipline::Notify => "notify",
        };
        if state.get("discipline").and_then(Value::as_str) != Some(discipline)
            || get_u64(state, "lock") != Some(self.lock.raw())
            || get_u64(state, "counter") != Some(self.counter.raw())
            || get_u64(state, "iterations") != Some(self.iterations)
            || get_ns(state, "cs_compute") != Some(self.cs_compute)
            || get_ns(state, "think") != Some(self.think)
        {
            return false;
        }
        let (Some(completed), Some(st), Some(counter_seen), Some(contended)) = (
            get_u64(state, "completed"),
            get_u64(state, "state").and_then(LockState::from_idx),
            get_u32(state, "counter_seen"),
            get_u64(state, "contended_attempts"),
        ) else {
            return false;
        };
        self.completed = completed;
        self.state = st;
        self.counter_seen = counter_seen;
        self.contended_attempts = contended;
        true
    }
}

/// A worker that sweeps an array of words, reading or writing each —
/// useful for sharing/false-sharing experiments: two sweepers writing
/// disjoint words of the *same* pages ping-pong ownership.
#[derive(Debug, Clone)]
pub struct SweepWorker {
    base: VirtAddr,
    words: u64,
    stride_bytes: u64,
    rounds: u64,
    write: bool,
    pos: u64,
    round: u64,
}

impl SweepWorker {
    /// Creates a sweeper over `words` words starting at `base`, striding
    /// `stride_bytes`, repeating `rounds` times.
    pub fn new(base: VirtAddr, words: u64, stride_bytes: u64, rounds: u64, write: bool) -> Self {
        assert!(words > 0 && rounds > 0 && stride_bytes >= 4, "degenerate sweep");
        SweepWorker { base, words, stride_bytes, rounds, write, pos: 0, round: 0 }
    }
}

impl Program for SweepWorker {
    fn next_op(&mut self, _last: OpResult) -> Op {
        if self.round >= self.rounds {
            return Op::Halt;
        }
        let addr = VirtAddr::new(self.base.raw() + self.pos * self.stride_bytes);
        self.pos += 1;
        if self.pos == self.words {
            self.pos = 0;
            self.round += 1;
        }
        if self.write {
            Op::Write(addr, (self.round as u32) << 16 | self.pos as u32)
        } else {
            Op::Read(addr)
        }
    }

    fn save_state(&self) -> Option<Value> {
        Some(
            Value::obj()
                .set("type", "sweep")
                .set("base", self.base.raw())
                .set("words", self.words)
                .set("stride_bytes", self.stride_bytes)
                .set("rounds", self.rounds)
                .set("write", self.write)
                .set("pos", self.pos)
                .set("round", self.round),
        )
    }

    fn restore_state(&mut self, state: &Value) -> bool {
        if state.get("type").and_then(Value::as_str) != Some("sweep")
            || get_u64(state, "base") != Some(self.base.raw())
            || get_u64(state, "words") != Some(self.words)
            || get_u64(state, "stride_bytes") != Some(self.stride_bytes)
            || get_u64(state, "rounds") != Some(self.rounds)
            || state.get("write").and_then(Value::as_bool) != Some(self.write)
        {
            return false;
        }
        let (Some(pos), Some(round)) = (get_u64(state, "pos"), get_u64(state, "round")) else {
            return false;
        };
        self.pos = pos;
        self.round = round;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_worker_happy_path() {
        let mut w = LockWorker::new(
            LockDiscipline::Spin,
            VirtAddr::new(0x100),
            VirtAddr::new(0x200),
            1,
            Nanos::from_us(1),
            Nanos::ZERO,
        );
        assert_eq!(w.next_op(OpResult::None), Op::Tas(VirtAddr::new(0x100)));
        assert_eq!(w.next_op(OpResult::Tas(0)), Op::Read(VirtAddr::new(0x200)));
        assert_eq!(w.next_op(OpResult::Read(5)), Op::Write(VirtAddr::new(0x200), 6));
        assert_eq!(w.next_op(OpResult::None), Op::Compute(Nanos::from_us(1)));
        assert_eq!(w.next_op(OpResult::None), Op::Write(VirtAddr::new(0x100), 0));
        assert_eq!(w.completed(), 1);
        assert_eq!(w.next_op(OpResult::None), Op::Halt);
    }

    #[test]
    fn spin_worker_spins_on_contention() {
        let mut w = LockWorker::new(
            LockDiscipline::Spin,
            VirtAddr::new(0x100),
            VirtAddr::new(0x200),
            1,
            Nanos::ZERO,
            Nanos::ZERO,
        );
        let _ = w.next_op(OpResult::None);
        assert_eq!(w.next_op(OpResult::Tas(1)), Op::Tas(VirtAddr::new(0x100)));
        assert_eq!(w.next_op(OpResult::Tas(1)), Op::Tas(VirtAddr::new(0x100)));
        assert_eq!(w.contended_attempts(), 2);
    }

    #[test]
    fn notify_worker_parks_on_contention() {
        let mut w = LockWorker::new(
            LockDiscipline::Notify,
            VirtAddr::new(0x100),
            VirtAddr::new(0x200),
            1,
            Nanos::ZERO,
            Nanos::ZERO,
        );
        let _ = w.next_op(OpResult::None);
        assert_eq!(w.next_op(OpResult::Tas(1)), Op::WatchNotify(VirtAddr::new(0x100)));
        assert_eq!(w.next_op(OpResult::None), Op::WaitNotify);
        assert_eq!(
            w.next_op(OpResult::Notified(VirtAddr::new(0x100))),
            Op::Tas(VirtAddr::new(0x100))
        );
    }

    #[test]
    fn notify_worker_notifies_after_unlock() {
        let mut w = LockWorker::new(
            LockDiscipline::Notify,
            VirtAddr::new(0x100),
            VirtAddr::new(0x200),
            1,
            Nanos::ZERO,
            Nanos::ZERO,
        );
        let _ = w.next_op(OpResult::None); // TAS
        let _ = w.next_op(OpResult::Tas(0)); // read counter
        let _ = w.next_op(OpResult::Read(0)); // write counter
        let _ = w.next_op(OpResult::None); // critical-section compute
        assert_eq!(w.next_op(OpResult::None), Op::Write(VirtAddr::new(0x100), 0)); // unlock
        assert_eq!(w.next_op(OpResult::None), Op::Notify(VirtAddr::new(0x100)));
    }

    #[test]
    fn sweep_worker_walks_and_halts() {
        let mut w = SweepWorker::new(VirtAddr::new(0), 2, 4, 2, false);
        assert_eq!(w.next_op(OpResult::None), Op::Read(VirtAddr::new(0)));
        assert_eq!(w.next_op(OpResult::None), Op::Read(VirtAddr::new(4)));
        assert_eq!(w.next_op(OpResult::None), Op::Read(VirtAddr::new(0)));
        assert_eq!(w.next_op(OpResult::None), Op::Read(VirtAddr::new(4)));
        assert_eq!(w.next_op(OpResult::None), Op::Halt);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn sweep_rejects_zero_words() {
        let _ = SweepWorker::new(VirtAddr::new(0), 0, 4, 1, false);
    }
}

/// Sends words to a mailbox page and notifies watchers — the
/// interprocessor-message use of the bus monitor suggested in §5.4
/// ("the bus monitor would interrupt the processor when a message is
/// written to the cache page corresponding to its mailbox").
#[derive(Debug, Clone)]
pub struct MessageSender {
    mailbox: VirtAddr,
    messages: Vec<u32>,
    gap: Nanos,
    next: usize,
    stage: SenderStage,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderStage {
    Gap,
    Write,
    Notify,
}

impl MessageSender {
    /// Creates a sender that posts `messages` to `mailbox`, pausing
    /// `gap` between messages (give receivers time to re-arm).
    pub fn new(mailbox: VirtAddr, messages: Vec<u32>, gap: Nanos) -> Self {
        MessageSender { mailbox, messages, gap, next: 0, stage: SenderStage::Gap }
    }
}

impl Program for MessageSender {
    fn next_op(&mut self, _last: OpResult) -> Op {
        if self.next >= self.messages.len() {
            return Op::Halt;
        }
        match self.stage {
            SenderStage::Gap => {
                self.stage = SenderStage::Write;
                Op::Compute(self.gap)
            }
            SenderStage::Write => {
                self.stage = SenderStage::Notify;
                Op::Write(self.mailbox, self.messages[self.next])
            }
            SenderStage::Notify => {
                self.stage = SenderStage::Gap;
                self.next += 1;
                Op::Notify(self.mailbox)
            }
        }
    }

    fn save_state(&self) -> Option<Value> {
        Some(
            Value::obj()
                .set("type", "msg-sender")
                .set("mailbox", self.mailbox.raw())
                .set(
                    "messages",
                    Value::Arr(self.messages.iter().map(|&m| Value::from(m)).collect()),
                )
                .set("gap", self.gap.as_ns())
                .set("next", self.next as u64)
                .set(
                    "stage",
                    match self.stage {
                        SenderStage::Gap => 0u64,
                        SenderStage::Write => 1,
                        SenderStage::Notify => 2,
                    },
                ),
        )
    }

    fn restore_state(&mut self, state: &Value) -> bool {
        if state.get("type").and_then(Value::as_str) != Some("msg-sender")
            || get_u64(state, "mailbox") != Some(self.mailbox.raw())
            || get_ns(state, "gap") != Some(self.gap)
        {
            return false;
        }
        let Some(messages) = state.get("messages").and_then(Value::as_arr) else {
            return false;
        };
        if messages.len() != self.messages.len()
            || messages.iter().zip(&self.messages).any(|(v, &m)| v.as_u64() != Some(u64::from(m)))
        {
            return false;
        }
        let (Some(next), Some(stage)) = (get_u64(state, "next"), get_u64(state, "stage")) else {
            return false;
        };
        if next as usize > self.messages.len() {
            return false;
        }
        self.next = next as usize;
        self.stage = match stage {
            0 => SenderStage::Gap,
            1 => SenderStage::Write,
            2 => SenderStage::Notify,
            _ => return false,
        };
        true
    }
}

/// Receives words from a mailbox page by watching it with action-table
/// code `11` and sleeping until notified; each received word is copied
/// to an acknowledgement cell so tests can observe delivery.
///
/// An empty mailbox reads zero (messages must be non-zero); the receiver
/// clears the word after consuming it, so a spurious timeout wakeup —
/// the race the §5.4 kernel lock also tolerates — is simply re-armed.
#[derive(Debug, Clone)]
pub struct MessageReceiver {
    mailbox: VirtAddr,
    ack: VirtAddr,
    expect: usize,
    received: u64,
    stage: ReceiverStage,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReceiverStage {
    Arm,
    Wait,
    Fetch,
    Check,
    Clear,
}

impl MessageReceiver {
    /// Creates a receiver expecting `expect` messages on `mailbox`,
    /// acknowledging each into `ack`.
    pub fn new(mailbox: VirtAddr, ack: VirtAddr, expect: usize) -> Self {
        MessageReceiver { mailbox, ack, expect, received: 0, stage: ReceiverStage::Arm }
    }

    /// Messages received so far.
    pub fn received(&self) -> u64 {
        self.received
    }
}

impl Program for MessageReceiver {
    fn next_op(&mut self, last: OpResult) -> Op {
        loop {
            match self.stage {
                ReceiverStage::Arm => {
                    if self.received as usize >= self.expect {
                        return Op::Halt;
                    }
                    self.stage = ReceiverStage::Wait;
                    return Op::WatchNotify(self.mailbox);
                }
                ReceiverStage::Wait => {
                    self.stage = ReceiverStage::Fetch;
                    return Op::WaitNotify;
                }
                ReceiverStage::Fetch => {
                    // Notified (or timed out): read the mailbox either way
                    // — the timeout covers the missed-wakeup race.
                    self.stage = ReceiverStage::Check;
                    return Op::Read(self.mailbox);
                }
                ReceiverStage::Check => match last {
                    OpResult::Read(0) | OpResult::None => {
                        // Spurious wakeup: nothing delivered yet.
                        self.stage = ReceiverStage::Arm;
                    }
                    OpResult::Read(v) => {
                        self.received += 1;
                        self.stage = ReceiverStage::Clear;
                        return Op::Write(self.ack, v);
                    }
                    _ => {
                        self.stage = ReceiverStage::Arm;
                    }
                },
                ReceiverStage::Clear => {
                    self.stage = ReceiverStage::Arm;
                    return Op::Write(self.mailbox, 0);
                }
            }
        }
    }

    fn save_state(&self) -> Option<Value> {
        Some(
            Value::obj()
                .set("type", "msg-receiver")
                .set("mailbox", self.mailbox.raw())
                .set("ack", self.ack.raw())
                .set("expect", self.expect as u64)
                .set("received", self.received)
                .set(
                    "stage",
                    match self.stage {
                        ReceiverStage::Arm => 0u64,
                        ReceiverStage::Wait => 1,
                        ReceiverStage::Fetch => 2,
                        ReceiverStage::Check => 3,
                        ReceiverStage::Clear => 4,
                    },
                ),
        )
    }

    fn restore_state(&mut self, state: &Value) -> bool {
        if state.get("type").and_then(Value::as_str) != Some("msg-receiver")
            || get_u64(state, "mailbox") != Some(self.mailbox.raw())
            || get_u64(state, "ack") != Some(self.ack.raw())
            || get_u64(state, "expect") != Some(self.expect as u64)
        {
            return false;
        }
        let (Some(received), Some(stage)) = (get_u64(state, "received"), get_u64(state, "stage"))
        else {
            return false;
        };
        self.received = received;
        self.stage = match stage {
            0 => ReceiverStage::Arm,
            1 => ReceiverStage::Wait,
            2 => ReceiverStage::Fetch,
            3 => ReceiverStage::Check,
            4 => ReceiverStage::Clear,
            _ => return false,
        };
        true
    }
}

#[cfg(test)]
mod message_tests {
    use super::*;

    #[test]
    fn sender_emits_write_then_notify() {
        let mut s = MessageSender::new(VirtAddr::new(0x100), vec![7, 8], Nanos::from_us(1));
        assert_eq!(s.next_op(OpResult::None), Op::Compute(Nanos::from_us(1)));
        assert_eq!(s.next_op(OpResult::None), Op::Write(VirtAddr::new(0x100), 7));
        assert_eq!(s.next_op(OpResult::None), Op::Notify(VirtAddr::new(0x100)));
        assert_eq!(s.next_op(OpResult::None), Op::Compute(Nanos::from_us(1)));
        assert_eq!(s.next_op(OpResult::None), Op::Write(VirtAddr::new(0x100), 8));
        assert_eq!(s.next_op(OpResult::None), Op::Notify(VirtAddr::new(0x100)));
        assert_eq!(s.next_op(OpResult::None), Op::Halt);
    }

    #[test]
    fn receiver_arms_waits_fetches_acks() {
        let mb = VirtAddr::new(0x100);
        let ack = VirtAddr::new(0x200);
        let mut r = MessageReceiver::new(mb, ack, 1);
        assert_eq!(r.next_op(OpResult::None), Op::WatchNotify(mb));
        assert_eq!(r.next_op(OpResult::None), Op::WaitNotify);
        assert_eq!(r.next_op(OpResult::Notified(mb)), Op::Read(mb));
        assert_eq!(r.next_op(OpResult::Read(99)), Op::Write(ack, 99));
        assert_eq!(r.received(), 1);
        assert_eq!(r.next_op(OpResult::None), Op::Write(mb, 0)); // consume
        assert_eq!(r.next_op(OpResult::None), Op::Halt);
    }

    #[test]
    fn receiver_ignores_spurious_timeout_wakeups() {
        let mb = VirtAddr::new(0x100);
        let ack = VirtAddr::new(0x200);
        let mut r = MessageReceiver::new(mb, ack, 1);
        let _ = r.next_op(OpResult::None); // watch
        let _ = r.next_op(OpResult::None); // wait
        assert_eq!(r.next_op(OpResult::None), Op::Read(mb)); // timeout fires
                                                             // Mailbox empty: re-arm without counting.
        assert_eq!(r.next_op(OpResult::Read(0)), Op::WatchNotify(mb));
        assert_eq!(r.received(), 0);
    }
}

/// A generation-counting barrier built from VMP's primitives: a
/// test-and-set lock guards the arrival counter; the last arriver bumps
/// a generation word and broadcasts one notify transaction, waking every
/// watcher at once (each waiter's monitor holds code `11` on the barrier
/// frame — the multi-watcher use of §5.4's notification facility).
#[derive(Debug, Clone)]
pub struct BarrierWorker {
    workers: u32,
    rounds: u64,
    lock: VirtAddr,
    counter: VirtAddr,
    barrier: VirtAddr,
    work: Nanos,
    round: u64,
    my_gen: u32,
    pending_count: u32,
    state: BarrierState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BarrierState {
    Work,
    TryLock,
    ReadGen,
    ReadCount,
    StoreCount,
    BumpGen,
    UnlockThenWait,
    UnlockThenNotify,
    NotifyAll,
    Watch,
    Wait,
    CheckGen,
    RoundDone,
}

impl BarrierState {
    fn idx(self) -> u64 {
        match self {
            BarrierState::Work => 0,
            BarrierState::TryLock => 1,
            BarrierState::ReadGen => 2,
            BarrierState::ReadCount => 3,
            BarrierState::StoreCount => 4,
            BarrierState::BumpGen => 5,
            BarrierState::UnlockThenWait => 6,
            BarrierState::UnlockThenNotify => 7,
            BarrierState::NotifyAll => 8,
            BarrierState::Watch => 9,
            BarrierState::Wait => 10,
            BarrierState::CheckGen => 11,
            BarrierState::RoundDone => 12,
        }
    }

    fn from_idx(i: u64) -> Option<Self> {
        Some(match i {
            0 => BarrierState::Work,
            1 => BarrierState::TryLock,
            2 => BarrierState::ReadGen,
            3 => BarrierState::ReadCount,
            4 => BarrierState::StoreCount,
            5 => BarrierState::BumpGen,
            6 => BarrierState::UnlockThenWait,
            7 => BarrierState::UnlockThenNotify,
            8 => BarrierState::NotifyAll,
            9 => BarrierState::Watch,
            10 => BarrierState::Wait,
            11 => BarrierState::CheckGen,
            12 => BarrierState::RoundDone,
            _ => return None,
        })
    }
}

impl BarrierWorker {
    /// Creates one worker of an `workers`-wide barrier running `rounds`
    /// rounds with `work` of computation per round. `lock`, `counter`
    /// and `barrier` must be the same addresses on every worker (and
    /// ideally on separate pages).
    pub fn new(
        workers: u32,
        rounds: u64,
        lock: VirtAddr,
        counter: VirtAddr,
        barrier: VirtAddr,
        work: Nanos,
    ) -> Self {
        assert!(workers > 0 && rounds > 0, "degenerate barrier");
        BarrierWorker {
            workers,
            rounds,
            lock,
            counter,
            barrier,
            work,
            round: 0,
            my_gen: 0,
            pending_count: 0,
            state: BarrierState::Work,
        }
    }

    /// Rounds completed so far.
    pub fn completed_rounds(&self) -> u64 {
        self.round
    }
}

impl Program for BarrierWorker {
    fn next_op(&mut self, last: OpResult) -> Op {
        loop {
            match self.state {
                BarrierState::Work => {
                    if self.round >= self.rounds {
                        return Op::Halt;
                    }
                    self.state = BarrierState::TryLock;
                    if self.work > Nanos::ZERO {
                        return Op::Compute(self.work);
                    }
                }
                BarrierState::TryLock => {
                    match last {
                        OpResult::Tas(0) => {
                            self.state = BarrierState::ReadGen;
                            return Op::Read(self.barrier);
                        }
                        _ => return Op::Tas(self.lock),
                    };
                }
                BarrierState::ReadGen => {
                    if let OpResult::Read(g) = last {
                        self.my_gen = g;
                        self.state = BarrierState::ReadCount;
                        return Op::Read(self.counter);
                    }
                    return Op::Read(self.barrier);
                }
                BarrierState::ReadCount => {
                    if let OpResult::Read(c) = last {
                        self.pending_count = c + 1;
                        if self.pending_count == self.workers {
                            self.state = BarrierState::BumpGen;
                            return Op::Write(self.counter, 0);
                        }
                        self.state = BarrierState::StoreCount;
                        return Op::Write(self.counter, self.pending_count);
                    }
                    return Op::Read(self.counter);
                }
                BarrierState::StoreCount => {
                    self.state = BarrierState::UnlockThenWait;
                    return Op::Write(self.lock, 0);
                }
                BarrierState::BumpGen => {
                    self.state = BarrierState::UnlockThenNotify;
                    return Op::Write(self.barrier, self.my_gen + 1);
                }
                BarrierState::UnlockThenNotify => {
                    self.state = BarrierState::NotifyAll;
                    return Op::Write(self.lock, 0);
                }
                BarrierState::NotifyAll => {
                    self.state = BarrierState::RoundDone;
                    return Op::Notify(self.barrier);
                }
                BarrierState::UnlockThenWait => {
                    self.state = BarrierState::Watch;
                }
                BarrierState::Watch => {
                    self.state = BarrierState::Wait;
                    return Op::WatchNotify(self.barrier);
                }
                BarrierState::Wait => {
                    self.state = BarrierState::CheckGen;
                    return Op::WaitNotify;
                }
                BarrierState::CheckGen => {
                    self.state = BarrierState::RoundDone; // tentatively
                    return Op::Read(self.barrier);
                }
                BarrierState::RoundDone => {
                    match last {
                        OpResult::Read(g) if g <= self.my_gen => {
                            // Spurious wakeup: generation unchanged.
                            self.state = BarrierState::Watch;
                            continue;
                        }
                        _ => {}
                    }
                    self.round += 1;
                    self.state = BarrierState::Work;
                }
            }
        }
    }

    fn save_state(&self) -> Option<Value> {
        Some(
            Value::obj()
                .set("type", "barrier")
                .set("workers", self.workers)
                .set("rounds", self.rounds)
                .set("lock", self.lock.raw())
                .set("counter", self.counter.raw())
                .set("barrier", self.barrier.raw())
                .set("work", self.work.as_ns())
                .set("round", self.round)
                .set("my_gen", self.my_gen)
                .set("pending_count", self.pending_count)
                .set("state", self.state.idx()),
        )
    }

    fn restore_state(&mut self, state: &Value) -> bool {
        if state.get("type").and_then(Value::as_str) != Some("barrier")
            || get_u32(state, "workers") != Some(self.workers)
            || get_u64(state, "rounds") != Some(self.rounds)
            || get_u64(state, "lock") != Some(self.lock.raw())
            || get_u64(state, "counter") != Some(self.counter.raw())
            || get_u64(state, "barrier") != Some(self.barrier.raw())
            || get_ns(state, "work") != Some(self.work)
        {
            return false;
        }
        let (Some(round), Some(my_gen), Some(pending_count), Some(st)) = (
            get_u64(state, "round"),
            get_u32(state, "my_gen"),
            get_u32(state, "pending_count"),
            get_u64(state, "state").and_then(BarrierState::from_idx),
        ) else {
            return false;
        };
        self.round = round;
        self.my_gen = my_gen;
        self.pending_count = pending_count;
        self.state = st;
        true
    }
}

#[cfg(test)]
mod barrier_tests {
    use super::*;

    #[test]
    fn single_worker_never_waits() {
        let mut w = BarrierWorker::new(
            1,
            2,
            VirtAddr::new(0x100),
            VirtAddr::new(0x200),
            VirtAddr::new(0x300),
            Nanos::ZERO,
        );
        assert_eq!(w.next_op(OpResult::None), Op::Tas(VirtAddr::new(0x100)));
        assert_eq!(w.next_op(OpResult::Tas(0)), Op::Read(VirtAddr::new(0x300)));
        assert_eq!(w.next_op(OpResult::Read(0)), Op::Read(VirtAddr::new(0x200)));
        // Sole arriver is the last: reset counter, bump generation.
        assert_eq!(w.next_op(OpResult::Read(0)), Op::Write(VirtAddr::new(0x200), 0));
        assert_eq!(w.next_op(OpResult::None), Op::Write(VirtAddr::new(0x300), 1));
        assert_eq!(w.next_op(OpResult::None), Op::Write(VirtAddr::new(0x100), 0));
        assert_eq!(w.next_op(OpResult::None), Op::Notify(VirtAddr::new(0x300)));
        assert_eq!(w.completed_rounds(), 0);
        // Second round begins immediately (no work configured).
        assert_eq!(w.next_op(OpResult::None), Op::Tas(VirtAddr::new(0x100)));
        assert_eq!(w.completed_rounds(), 1);
    }

    #[test]
    fn non_last_arrival_waits_for_generation() {
        let mut w = BarrierWorker::new(
            2,
            1,
            VirtAddr::new(0x100),
            VirtAddr::new(0x200),
            VirtAddr::new(0x300),
            Nanos::ZERO,
        );
        let _ = w.next_op(OpResult::None); // TAS
        let _ = w.next_op(OpResult::Tas(0)); // read gen
        let _ = w.next_op(OpResult::Read(0)); // gen=0 → read count
                                              // Count 0+1 < 2: store it, unlock, watch, wait.
        assert_eq!(w.next_op(OpResult::Read(0)), Op::Write(VirtAddr::new(0x200), 1));
        assert_eq!(w.next_op(OpResult::None), Op::Write(VirtAddr::new(0x100), 0));
        assert_eq!(w.next_op(OpResult::None), Op::WatchNotify(VirtAddr::new(0x300)));
        assert_eq!(w.next_op(OpResult::None), Op::WaitNotify);
        assert_eq!(
            w.next_op(OpResult::Notified(VirtAddr::new(0x300))),
            Op::Read(VirtAddr::new(0x300))
        );
        // Generation advanced: round complete, program halts (1 round).
        assert_eq!(w.next_op(OpResult::Read(1)), Op::Halt);
        assert_eq!(w.completed_rounds(), 1);
    }

    #[test]
    fn spurious_wakeup_rewatches() {
        let mut w = BarrierWorker::new(
            2,
            1,
            VirtAddr::new(0x100),
            VirtAddr::new(0x200),
            VirtAddr::new(0x300),
            Nanos::ZERO,
        );
        let _ = w.next_op(OpResult::None); // TAS
        let _ = w.next_op(OpResult::Tas(0)); // read gen
        let _ = w.next_op(OpResult::Read(0)); // read count
        let _ = w.next_op(OpResult::Read(0)); // store count
        let _ = w.next_op(OpResult::None); // unlock
        let _ = w.next_op(OpResult::None); // watch
        let _ = w.next_op(OpResult::None); // wait
        assert_eq!(w.next_op(OpResult::None), Op::Read(VirtAddr::new(0x300))); // timeout → poll gen
                                                                               // Generation unchanged → re-watch.
        assert_eq!(w.next_op(OpResult::Read(0)), Op::WatchNotify(VirtAddr::new(0x300)));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_zero_workers() {
        let _ = BarrierWorker::new(
            0,
            1,
            VirtAddr::new(0),
            VirtAddr::new(0x100),
            VirtAddr::new(0x200),
            Nanos::ZERO,
        );
    }
}

/// A lock kept in *uncached, globally-addressable physical memory* —
/// §5.4's other locking option. Spinning costs one plain bus word
/// transaction per attempt but never migrates cache-page ownership, so
/// it cannot thrash the consistency protocol the way a cached
/// test-and-set lock does.
#[derive(Debug, Clone)]
pub struct UncachedLockWorker {
    lock: vmp_types::PhysAddr,
    counter: VirtAddr,
    iterations: u64,
    completed: u64,
    cs_compute: Nanos,
    think: Nanos,
    backoff: Nanos,
    state: ULockState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ULockState {
    Idle,
    TryLock,
    Backoff,
    ReadCounter,
    CriticalCompute,
    Unlock,
    Think,
}

impl UncachedLockWorker {
    /// Creates a worker incrementing `counter` (ordinary cached memory)
    /// under the uncached lock word at `lock`, with a fixed spin backoff.
    pub fn new(
        lock: vmp_types::PhysAddr,
        counter: VirtAddr,
        iterations: u64,
        cs_compute: Nanos,
        think: Nanos,
        backoff: Nanos,
    ) -> Self {
        UncachedLockWorker {
            lock,
            counter,
            iterations,
            completed: 0,
            cs_compute,
            think,
            backoff,
            state: ULockState::Idle,
        }
    }

    /// Critical sections completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

impl Program for UncachedLockWorker {
    fn next_op(&mut self, last: OpResult) -> Op {
        loop {
            match self.state {
                ULockState::Idle => {
                    if self.completed >= self.iterations {
                        return Op::Halt;
                    }
                    self.state = ULockState::TryLock;
                    return Op::UncachedTas(self.lock);
                }
                ULockState::TryLock => match last {
                    OpResult::Tas(0) => {
                        self.state = ULockState::ReadCounter;
                        return Op::Read(self.counter);
                    }
                    _ => {
                        self.state = ULockState::Backoff;
                        if self.backoff > Nanos::ZERO {
                            return Op::Compute(self.backoff);
                        }
                    }
                },
                ULockState::Backoff => {
                    self.state = ULockState::TryLock;
                    return Op::UncachedTas(self.lock);
                }
                ULockState::ReadCounter => {
                    if let OpResult::Read(v) = last {
                        self.state = ULockState::CriticalCompute;
                        return Op::Write(self.counter, v + 1);
                    }
                    return Op::Read(self.counter);
                }
                ULockState::CriticalCompute => {
                    self.state = ULockState::Unlock;
                    return Op::Compute(self.cs_compute);
                }
                ULockState::Unlock => {
                    self.completed += 1;
                    self.state = ULockState::Think;
                    return Op::UncachedWrite(self.lock, 0);
                }
                ULockState::Think => {
                    self.state = ULockState::Idle;
                    if self.think > Nanos::ZERO {
                        return Op::Compute(self.think);
                    }
                }
            }
        }
    }

    fn save_state(&self) -> Option<Value> {
        Some(
            Value::obj()
                .set("type", "uncached-lock")
                .set("lock", self.lock.raw())
                .set("counter", self.counter.raw())
                .set("iterations", self.iterations)
                .set("cs_compute", self.cs_compute.as_ns())
                .set("think", self.think.as_ns())
                .set("backoff", self.backoff.as_ns())
                .set("completed", self.completed)
                .set(
                    "state",
                    match self.state {
                        ULockState::Idle => 0u64,
                        ULockState::TryLock => 1,
                        ULockState::Backoff => 2,
                        ULockState::ReadCounter => 3,
                        ULockState::CriticalCompute => 4,
                        ULockState::Unlock => 5,
                        ULockState::Think => 6,
                    },
                ),
        )
    }

    fn restore_state(&mut self, state: &Value) -> bool {
        if state.get("type").and_then(Value::as_str) != Some("uncached-lock")
            || get_u64(state, "lock") != Some(self.lock.raw())
            || get_u64(state, "counter") != Some(self.counter.raw())
            || get_u64(state, "iterations") != Some(self.iterations)
            || get_ns(state, "cs_compute") != Some(self.cs_compute)
            || get_ns(state, "think") != Some(self.think)
            || get_ns(state, "backoff") != Some(self.backoff)
        {
            return false;
        }
        let (Some(completed), Some(stage)) = (get_u64(state, "completed"), get_u64(state, "state"))
        else {
            return false;
        };
        self.completed = completed;
        self.state = match stage {
            0 => ULockState::Idle,
            1 => ULockState::TryLock,
            2 => ULockState::Backoff,
            3 => ULockState::ReadCounter,
            4 => ULockState::CriticalCompute,
            5 => ULockState::Unlock,
            6 => ULockState::Think,
            _ => return false,
        };
        true
    }
}

#[cfg(test)]
mod uncached_tests {
    use super::*;
    use vmp_types::PhysAddr;

    #[test]
    fn acquire_and_release_sequence() {
        let pa = PhysAddr::new(0x400);
        let counter = VirtAddr::new(0x2000);
        let mut w =
            UncachedLockWorker::new(pa, counter, 1, Nanos::ZERO, Nanos::ZERO, Nanos::from_us(1));
        assert_eq!(w.next_op(OpResult::None), Op::UncachedTas(pa));
        assert_eq!(w.next_op(OpResult::Tas(0)), Op::Read(counter));
        assert_eq!(w.next_op(OpResult::Read(4)), Op::Write(counter, 5));
        let _ = w.next_op(OpResult::None); // critical-section compute
        assert_eq!(w.next_op(OpResult::None), Op::UncachedWrite(pa, 0)); // unlock
        assert_eq!(w.completed(), 1);
        assert_eq!(w.next_op(OpResult::None), Op::Halt);
    }

    #[test]
    fn contended_attempt_backs_off_then_retries() {
        let pa = PhysAddr::new(0x400);
        let mut w = UncachedLockWorker::new(
            pa,
            VirtAddr::new(0x2000),
            1,
            Nanos::ZERO,
            Nanos::ZERO,
            Nanos::from_us(2),
        );
        let _ = w.next_op(OpResult::None);
        assert_eq!(w.next_op(OpResult::Tas(1)), Op::Compute(Nanos::from_us(2)));
        assert_eq!(w.next_op(OpResult::None), Op::UncachedTas(pa));
    }
}
