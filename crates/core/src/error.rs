//! Machine-level errors.

use core::fmt;

use vmp_types::{Asid, ConfigError, Nanos, ProcessorId, VirtAddr};

/// Errors from building or driving a [`crate::Machine`].
#[derive(Debug)]
#[non_exhaustive]
pub enum MachineError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// A processor index was out of range.
    NoSuchProcessor {
        /// The offending index.
        index: usize,
        /// How many processors the machine has.
        processors: usize,
    },
    /// Main memory is exhausted: a demand-zero page fault could not
    /// allocate a frame.
    OutOfMemory {
        /// The faulting address space.
        asid: Asid,
        /// The faulting address.
        addr: VirtAddr,
    },
    /// The simulation hit `max_time` before all programs halted.
    TimeLimit {
        /// Processors still running at the limit.
        still_running: Vec<ProcessorId>,
    },
    /// A protocol invariant was violated (a simulator bug, not a
    /// workload error).
    InvariantViolated(String),
    /// A notification was issued for an unmapped address.
    UnmappedNotify {
        /// The address space.
        asid: Asid,
        /// The unmapped address.
        addr: VirtAddr,
    },
    /// The liveness watchdog detected starvation: some processor stopped
    /// making forward progress in a way the protocol's own recovery
    /// machinery can never repair.
    Watchdog(WatchdogViolation),
    /// A periodic invariant audit (`audit_every`) found the machine in an
    /// inconsistent state.
    AuditFailed {
        /// Simulated time of the failing audit.
        at: Nanos,
        /// The validator's description of the violation.
        detail: String,
    },
    /// The machine (or one of its programs) cannot be captured in a
    /// snapshot right now — e.g. a watchdog violation is latched, or a
    /// running program does not implement state capture.
    SnapshotUnsupported {
        /// What prevented the capture.
        detail: String,
    },
    /// A snapshot's bytes could not be decoded (bad magic, truncated
    /// blob, malformed header).
    SnapshotCorrupt {
        /// What failed to decode.
        detail: String,
    },
    /// A snapshot does not match the machine it is being restored into
    /// (different geometry, missing program/hook, version drift).
    SnapshotMismatch {
        /// The mismatching field.
        detail: String,
    },
}

/// A specific liveness failure the watchdog detected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WatchdogViolation {
    /// One reference aborted and retried past the configured streak
    /// limit: the backoff protocol is not converging.
    RetryStreak {
        /// The starving processor.
        cpu: ProcessorId,
        /// Consecutive aborted attempts observed.
        streak: u64,
        /// The configured (or derived) limit it exceeded.
        limit: u64,
    },
    /// An interrupt word or sticky overflow flag sat unserviced longer
    /// than the lag limit: a wakeup has effectively been lost.
    InterruptStarved {
        /// The processor whose monitor is being ignored.
        cpu: ProcessorId,
        /// How long attention has been pending.
        waited: Nanos,
        /// The configured (or derived) limit it exceeded.
        limit: Nanos,
    },
    /// A processor kept acquiring pages without completing a single
    /// reference in between: ping-pong thrashing with zero yield.
    ZeroYieldAcquires {
        /// The thrashing processor.
        cpu: ProcessorId,
        /// Consecutive acquisitions with no completed reference.
        acquires: u64,
        /// The configured (or derived) limit it exceeded.
        limit: u64,
    },
    /// An in-step kernel service loop (flush/fetch) exceeded its
    /// iteration cap: the machine is livelocked inside one event.
    KernelLoopStuck {
        /// The processor running the stuck loop.
        cpu: ProcessorId,
        /// Which loop got stuck.
        what: &'static str,
        /// Iterations executed before giving up.
        iterations: u64,
    },
}

impl fmt::Display for WatchdogViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchdogViolation::RetryStreak { cpu, streak, limit } => {
                write!(f, "{cpu} retried one reference {streak} times (limit {limit})")
            }
            WatchdogViolation::InterruptStarved { cpu, waited, limit } => {
                write!(f, "{cpu} monitor unserviced for {waited} (limit {limit})")
            }
            WatchdogViolation::ZeroYieldAcquires { cpu, acquires, limit } => {
                write!(f, "{cpu} acquired {acquires} pages with zero references (limit {limit})")
            }
            WatchdogViolation::KernelLoopStuck { cpu, what, iterations } => {
                write!(f, "{cpu} stuck in {what} after {iterations} iterations")
            }
        }
    }
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Config(e) => write!(f, "invalid machine configuration: {e}"),
            MachineError::NoSuchProcessor { index, processors } => {
                write!(f, "processor {index} out of range (machine has {processors})")
            }
            MachineError::OutOfMemory { asid, addr } => {
                write!(f, "out of physical memory faulting {addr} in {asid}")
            }
            MachineError::TimeLimit { still_running } => {
                write!(f, "time limit reached with {} processors running", still_running.len())
            }
            MachineError::InvariantViolated(msg) => write!(f, "protocol invariant violated: {msg}"),
            MachineError::UnmappedNotify { asid, addr } => {
                write!(f, "notify on unmapped address {addr} in {asid}")
            }
            MachineError::Watchdog(v) => write!(f, "liveness watchdog: {v}"),
            MachineError::AuditFailed { at, detail } => {
                write!(f, "invariant audit failed at {at}: {detail}")
            }
            MachineError::SnapshotUnsupported { detail } => {
                write!(f, "machine state cannot be snapshotted: {detail}")
            }
            MachineError::SnapshotCorrupt { detail } => {
                write!(f, "snapshot bytes are corrupt: {detail}")
            }
            MachineError::SnapshotMismatch { detail } => {
                write!(f, "snapshot does not match this machine: {detail}")
            }
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for MachineError {
    fn from(e: ConfigError) -> Self {
        MachineError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = MachineError::NoSuchProcessor { index: 9, processors: 2 };
        assert!(e.to_string().contains('9'));
        let e = MachineError::OutOfMemory { asid: Asid::new(1), addr: VirtAddr::new(0x10) };
        assert!(e.to_string().contains("memory"));
        let e = MachineError::TimeLimit { still_running: vec![ProcessorId::new(0)] };
        assert!(e.to_string().contains("time limit"));
        let e = MachineError::InvariantViolated("two owners".into());
        assert!(e.to_string().contains("two owners"));
    }

    #[test]
    fn config_error_converts_with_source() {
        use std::error::Error;
        let e: MachineError = ConfigError::ZeroCount { what: "processors" }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("processors"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<MachineError>();
        check::<WatchdogViolation>();
    }

    #[test]
    fn watchdog_violations_display() {
        let v =
            WatchdogViolation::RetryStreak { cpu: ProcessorId::new(1), streak: 200, limit: 128 };
        let e = MachineError::Watchdog(v.clone());
        assert!(e.to_string().contains("watchdog"), "{e}");
        assert!(v.to_string().contains("200"), "{v}");
        let v = WatchdogViolation::InterruptStarved {
            cpu: ProcessorId::new(0),
            waited: Nanos::from_ms(60),
            limit: Nanos::from_ms(50),
        };
        assert!(v.to_string().contains("unserviced"), "{v}");
        let v = WatchdogViolation::ZeroYieldAcquires {
            cpu: ProcessorId::new(2),
            acquires: 65,
            limit: 64,
        };
        assert!(v.to_string().contains("zero references"), "{v}");
        let v = WatchdogViolation::KernelLoopStuck {
            cpu: ProcessorId::new(0),
            what: "flush-own-then-assert",
            iterations: 4096,
        };
        assert!(v.to_string().contains("stuck"), "{v}");
        let e = MachineError::AuditFailed { at: Nanos::from_us(9), detail: "two owners".into() };
        assert!(e.to_string().contains("audit") && e.to_string().contains("two owners"), "{e}");
    }
}
