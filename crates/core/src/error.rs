//! Machine-level errors.

use core::fmt;

use vmp_types::{Asid, ConfigError, ProcessorId, VirtAddr};

/// Errors from building or driving a [`crate::Machine`].
#[derive(Debug)]
#[non_exhaustive]
pub enum MachineError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// A processor index was out of range.
    NoSuchProcessor {
        /// The offending index.
        index: usize,
        /// How many processors the machine has.
        processors: usize,
    },
    /// Main memory is exhausted: a demand-zero page fault could not
    /// allocate a frame.
    OutOfMemory {
        /// The faulting address space.
        asid: Asid,
        /// The faulting address.
        addr: VirtAddr,
    },
    /// The simulation hit `max_time` before all programs halted.
    TimeLimit {
        /// Processors still running at the limit.
        still_running: Vec<ProcessorId>,
    },
    /// A protocol invariant was violated (a simulator bug, not a
    /// workload error).
    InvariantViolated(String),
    /// A notification was issued for an unmapped address.
    UnmappedNotify {
        /// The address space.
        asid: Asid,
        /// The unmapped address.
        addr: VirtAddr,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Config(e) => write!(f, "invalid machine configuration: {e}"),
            MachineError::NoSuchProcessor { index, processors } => {
                write!(f, "processor {index} out of range (machine has {processors})")
            }
            MachineError::OutOfMemory { asid, addr } => {
                write!(f, "out of physical memory faulting {addr} in {asid}")
            }
            MachineError::TimeLimit { still_running } => {
                write!(f, "time limit reached with {} processors running", still_running.len())
            }
            MachineError::InvariantViolated(msg) => write!(f, "protocol invariant violated: {msg}"),
            MachineError::UnmappedNotify { asid, addr } => {
                write!(f, "notify on unmapped address {addr} in {asid}")
            }
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for MachineError {
    fn from(e: ConfigError) -> Self {
        MachineError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = MachineError::NoSuchProcessor { index: 9, processors: 2 };
        assert!(e.to_string().contains('9'));
        let e = MachineError::OutOfMemory { asid: Asid::new(1), addr: VirtAddr::new(0x10) };
        assert!(e.to_string().contains("memory"));
        let e = MachineError::TimeLimit { still_running: vec![ProcessorId::new(0)] };
        assert!(e.to_string().contains("time limit"));
        let e = MachineError::InvariantViolated("two owners".into());
        assert!(e.to_string().contains("two owners"));
    }

    #[test]
    fn config_error_converts_with_source() {
        use std::error::Error;
        let e: MachineError = ConfigError::ZeroCount { what: "processors" }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("processors"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<MachineError>();
    }
}
