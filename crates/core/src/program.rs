//! Programs: what a processor executes.

use std::collections::VecDeque;
use std::fmt;

use vmp_obs::json::Value;
use vmp_trace::MemRef;
use vmp_types::{AccessKind, Asid, Nanos, PhysAddr, VirtAddr};

use crate::snapshot::{op_from_value, op_result_from_value, op_result_to_value, op_to_value};

/// One operation a program asks its processor to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Execute for the given time without touching shared memory
    /// (instruction execution, local-memory work).
    Compute(Nanos),
    /// Read a 32-bit word.
    Read(VirtAddr),
    /// Write a 32-bit word.
    Write(VirtAddr, u32),
    /// Atomic test-and-set of a word: acquires exclusive ownership,
    /// reads the old value, writes 1. The old value is reported through
    /// [`OpResult::Tas`].
    Tas(VirtAddr),
    /// Issue a notify bus transaction on the frame backing this address
    /// (wakes processors whose action table watches it — §5.4).
    Notify(VirtAddr),
    /// Watch the frame backing this address for notifications: flushes
    /// any cached copy and sets the action-table entry to `11`.
    WatchNotify(VirtAddr),
    /// Park until a notification arrives for a watched frame.
    WaitNotify,
    /// Read a word of *uncached, globally-addressable physical memory*
    /// (§5.4's alternative home for kernel locks): one plain bus word
    /// transaction, no cache, no consistency traffic.
    UncachedRead(PhysAddr),
    /// Write a word of uncached physical memory.
    UncachedWrite(PhysAddr, u32),
    /// Atomic test-and-set on uncached physical memory (a VME
    /// read-modify-write cycle).
    UncachedTas(PhysAddr),
    /// Stop executing.
    Halt,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Compute(t) => write!(f, "compute {t}"),
            Op::Read(a) => write!(f, "read {a}"),
            Op::Write(a, v) => write!(f, "write {a} = {v}"),
            Op::Tas(a) => write!(f, "tas {a}"),
            Op::Notify(a) => write!(f, "notify {a}"),
            Op::WatchNotify(a) => write!(f, "watch {a}"),
            Op::WaitNotify => write!(f, "wait-notify"),
            Op::UncachedRead(a) => write!(f, "uncached-read {a}"),
            Op::UncachedWrite(a, v) => write!(f, "uncached-write {a} = {v}"),
            Op::UncachedTas(a) => write!(f, "uncached-tas {a}"),
            Op::Halt => write!(f, "halt"),
        }
    }
}

/// The result of the previously executed operation, passed back to the
/// program when it is asked for its next operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpResult {
    /// No previous operation (first call) or no value to report.
    #[default]
    None,
    /// Value returned by a `Read`.
    Read(u32),
    /// Old value seen by a `Tas` (`0` means the lock was acquired).
    Tas(u32),
    /// A notification arrived (after `WaitNotify`, or asynchronously).
    Notified(VirtAddr),
}

/// A program drives one processor: the machine repeatedly executes the
/// operation returned by [`Program::next_op`], feeding back each result.
///
/// Programs are sequential state machines — all concurrency lives in the
/// machine. The default `on_notify` ignores asynchronous notifications;
/// programs built around [`Op::WaitNotify`] receive them as the
/// [`OpResult::Notified`] result instead.
pub trait Program {
    /// Returns the next operation given the previous operation's result.
    fn next_op(&mut self, last: OpResult) -> Op;

    /// Called when a notification arrives while the program is *not*
    /// parked in [`Op::WaitNotify`].
    fn on_notify(&mut self, _addr: VirtAddr) {}

    /// Captures the program's execution state for a machine snapshot.
    ///
    /// Returning `None` (the default) marks the program as
    /// non-checkpointable; [`crate::Machine::snapshot`] refuses to
    /// capture a machine whose non-halted processors run such programs.
    fn save_state(&self) -> Option<Value> {
        None
    }

    /// Restores execution state captured by [`Program::save_state`] into
    /// a freshly constructed instance of the same program.
    ///
    /// Returns `false` (the default) when the state is unrecognized or
    /// the fresh instance was configured differently than the captured
    /// one; [`crate::Machine::resume`] turns that into an error.
    fn restore_state(&mut self, _state: &Value) -> bool {
        false
    }
}

/// A program from an explicit operation list.
///
/// # Examples
///
/// ```
/// use vmp_core::{Op, OpResult, Program, ScriptProgram};
/// use vmp_types::VirtAddr;
///
/// let mut p = ScriptProgram::new(vec![Op::Read(VirtAddr::new(0)), Op::Halt]);
/// assert_eq!(p.next_op(OpResult::None), Op::Read(VirtAddr::new(0)));
/// assert_eq!(p.next_op(OpResult::Read(7)), Op::Halt);
/// assert_eq!(p.next_op(OpResult::None), Op::Halt); // stays halted
/// ```
#[derive(Debug, Clone)]
pub struct ScriptProgram {
    ops: VecDeque<Op>,
    /// Results observed, for test assertions.
    observed: Vec<OpResult>,
}

impl ScriptProgram {
    /// Creates a script from operations executed in order.
    pub fn new(ops: impl IntoIterator<Item = Op>) -> Self {
        ScriptProgram { ops: ops.into_iter().collect(), observed: Vec::new() }
    }

    /// Every non-`None` result the script has observed (read values, TAS
    /// outcomes, notifications) — handy for asserting on data flow.
    pub fn observed(&self) -> &[OpResult] {
        &self.observed
    }
}

impl Program for ScriptProgram {
    fn next_op(&mut self, last: OpResult) -> Op {
        if last != OpResult::None {
            self.observed.push(last);
        }
        self.ops.pop_front().unwrap_or(Op::Halt)
    }

    fn save_state(&self) -> Option<Value> {
        Some(
            Value::obj()
                .set("type", "script")
                .set("ops", Value::Arr(self.ops.iter().map(op_to_value).collect()))
                .set(
                    "observed",
                    Value::Arr(self.observed.iter().map(op_result_to_value).collect()),
                ),
        )
    }

    fn restore_state(&mut self, state: &Value) -> bool {
        if state.get("type").and_then(Value::as_str) != Some("script") {
            return false;
        }
        let (Some(ops), Some(observed)) = (
            state.get("ops").and_then(Value::as_arr),
            state.get("observed").and_then(Value::as_arr),
        ) else {
            return false;
        };
        let Some(ops) = ops.iter().map(op_from_value).collect::<Option<VecDeque<Op>>>() else {
            return false;
        };
        let Some(observed) =
            observed.iter().map(op_result_from_value).collect::<Option<Vec<OpResult>>>()
        else {
            return false;
        };
        self.ops = ops;
        self.observed = observed;
        true
    }
}

/// Replays a reference trace, spending `think` time per reference.
///
/// Instruction fetches and reads become [`Op::Read`]; writes become
/// [`Op::Write`] (of an arbitrary marker value). The trace's own ASID
/// field is ignored — the processor's configured address space is used —
/// so a single-process trace can be replayed on any CPU.
pub struct TraceProgram {
    refs: Box<dyn Iterator<Item = MemRef> + Send>,
    think: Nanos,
    pending_ref: Option<MemRef>,
    thinking: bool,
    emitted: u64,
}

impl fmt::Debug for TraceProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceProgram")
            .field("think", &self.think)
            .field("emitted", &self.emitted)
            .finish_non_exhaustive()
    }
}

impl TraceProgram {
    /// Creates a trace program with zero extra think time (the machine
    /// already charges the per-reference cycle).
    pub fn new<I>(refs: I) -> Self
    where
        I: IntoIterator<Item = MemRef>,
        I::IntoIter: Send + 'static,
    {
        Self::with_think(refs, Nanos::ZERO)
    }

    /// Creates a trace program that computes for `think` between
    /// references.
    pub fn with_think<I>(refs: I, think: Nanos) -> Self
    where
        I: IntoIterator<Item = MemRef>,
        I::IntoIter: Send + 'static,
    {
        TraceProgram {
            refs: Box::new(refs.into_iter()),
            think,
            pending_ref: None,
            thinking: false,
            emitted: 0,
        }
    }

    /// References emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl Program for TraceProgram {
    fn next_op(&mut self, _last: OpResult) -> Op {
        if self.think > Nanos::ZERO && !self.thinking {
            if let Some(r) = self.pending_ref.take().or_else(|| self.refs.next()) {
                self.pending_ref = Some(r);
                self.thinking = true;
                return Op::Compute(self.think);
            }
            return Op::Halt;
        }
        self.thinking = false;
        let r = match self.pending_ref.take().or_else(|| self.refs.next()) {
            Some(r) => r,
            None => return Op::Halt,
        };
        self.emitted += 1;
        match r.kind {
            AccessKind::Write => Op::Write(r.addr, 0xdead_0000 | (self.emitted as u32 & 0xffff)),
            AccessKind::Read | AccessKind::IFetch => Op::Read(r.addr),
        }
    }

    fn save_state(&self) -> Option<Value> {
        // The reference stream itself is not serialized: the trace is an
        // input artifact the resuming caller re-supplies, and the cursor
        // below fast-forwards a fresh iterator to the captured position.
        Some(
            Value::obj()
                .set("type", "trace")
                .set("emitted", self.emitted)
                .set("thinking", self.thinking)
                .set("has_pending", self.pending_ref.is_some()),
        )
    }

    fn restore_state(&mut self, state: &Value) -> bool {
        if state.get("type").and_then(Value::as_str) != Some("trace") {
            return false;
        }
        let (Some(emitted), Some(thinking), Some(has_pending)) = (
            state.get("emitted").and_then(Value::as_u64),
            state.get("thinking").and_then(Value::as_bool),
            state.get("has_pending").and_then(Value::as_bool),
        ) else {
            return false;
        };
        if self.emitted != 0 || self.pending_ref.is_some() {
            return false; // must restore into a fresh instance
        }
        for _ in 0..emitted {
            if self.refs.next().is_none() {
                return false; // supplied trace shorter than the captured one
            }
        }
        if has_pending {
            self.pending_ref = self.refs.next();
            if self.pending_ref.is_none() {
                return false;
            }
        }
        self.emitted = emitted;
        self.thinking = thinking;
        true
    }
}

/// Builds a simple sequential-sweep reference stream for tests and
/// examples: `count` word reads walking from `base`.
pub fn sweep_refs(asid: Asid, base: u64, count: u64) -> impl Iterator<Item = MemRef> + Send {
    (0..count).map(move |i| MemRef::read(asid, VirtAddr::new(base + i * 4)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_runs_in_order_then_halts() {
        let mut p = ScriptProgram::new([
            Op::Compute(Nanos::from_ns(10)),
            Op::Write(VirtAddr::new(4), 1),
            Op::Halt,
        ]);
        assert_eq!(p.next_op(OpResult::None), Op::Compute(Nanos::from_ns(10)));
        assert_eq!(p.next_op(OpResult::None), Op::Write(VirtAddr::new(4), 1));
        assert_eq!(p.next_op(OpResult::None), Op::Halt);
        assert_eq!(p.next_op(OpResult::None), Op::Halt);
    }

    #[test]
    fn script_records_results() {
        let mut p = ScriptProgram::new([Op::Read(VirtAddr::new(0)), Op::Halt]);
        let _ = p.next_op(OpResult::None);
        let _ = p.next_op(OpResult::Read(99));
        assert_eq!(p.observed(), &[OpResult::Read(99)]);
    }

    #[test]
    fn trace_program_maps_kinds() {
        let refs = vec![
            MemRef::read(Asid::new(1), VirtAddr::new(0)),
            MemRef::write(Asid::new(1), VirtAddr::new(4)),
            MemRef::ifetch(Asid::new(1), VirtAddr::new(8)),
        ];
        let mut p = TraceProgram::new(refs);
        assert_eq!(p.next_op(OpResult::None), Op::Read(VirtAddr::new(0)));
        match p.next_op(OpResult::None) {
            Op::Write(a, _) => assert_eq!(a, VirtAddr::new(4)),
            other => panic!("expected write, got {other}"),
        }
        assert_eq!(p.next_op(OpResult::None), Op::Read(VirtAddr::new(8)));
        assert_eq!(p.next_op(OpResult::None), Op::Halt);
        assert_eq!(p.emitted(), 3);
    }

    #[test]
    fn trace_program_interleaves_think_time() {
        let refs = vec![MemRef::read(Asid::new(1), VirtAddr::new(0))];
        let mut p = TraceProgram::with_think(refs, Nanos::from_ns(500));
        assert_eq!(p.next_op(OpResult::None), Op::Compute(Nanos::from_ns(500)));
        assert_eq!(p.next_op(OpResult::None), Op::Read(VirtAddr::new(0)));
        assert_eq!(p.next_op(OpResult::None), Op::Halt);
    }

    #[test]
    fn sweep_refs_walks_words() {
        let v: Vec<MemRef> = sweep_refs(Asid::new(2), 0x100, 3).collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v[2].addr, VirtAddr::new(0x108));
        assert!(v.iter().all(|r| r.kind.is_read()));
    }

    #[test]
    fn op_displays() {
        assert_eq!(Op::Halt.to_string(), "halt");
        assert!(Op::Tas(VirtAddr::new(8)).to_string().contains("tas"));
        assert!(Op::WaitNotify.to_string().contains("wait"));
        assert!(Op::UncachedTas(PhysAddr::new(8)).to_string().contains("uncached"));
        assert!(Op::UncachedWrite(PhysAddr::new(8), 1).to_string().contains("= 1"));
        assert!(Op::UncachedRead(PhysAddr::new(8)).to_string().contains("read"));
    }
}
