//! Per-processor and machine-level run statistics.

use core::fmt;

use vmp_bus::{BusStats, BusTxKind};
use vmp_obs::json::Value;
use vmp_types::{Nanos, ProcessorId};

/// Counters for one processor over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessorStats {
    /// Memory references executed (reads + writes + TAS).
    pub refs: u64,
    /// Reads (including TAS reads).
    pub reads: u64,
    /// Writes (including TAS writes).
    pub writes: u64,
    /// Cache read misses (block fetch via read-shared).
    pub read_misses: u64,
    /// Cache write misses (block fetch via read-private).
    pub write_misses: u64,
    /// Write-permission upgrades (assert-ownership on a shared page).
    pub upgrades: u64,
    /// Nested misses taken on page-table (PTE) pages during translation.
    pub pte_misses: u64,
    /// Real page faults (demand-zero fills) taken.
    pub page_faults: u64,
    /// Victim write-backs performed by the miss handler.
    pub writebacks: u64,
    /// Own bus transactions aborted by some monitor (each causes a
    /// re-trap and retry).
    pub retries: u64,
    /// Consistency-interrupt words serviced.
    pub consistency_interrupts: u64,
    /// Pages invalidated by consistency service.
    pub invalidations: u64,
    /// Pages downgraded private→shared by consistency service.
    pub downgrades: u64,
    /// Notifications delivered.
    pub notifies: u64,
    /// FIFO-overflow recoveries executed.
    pub fifo_recoveries: u64,
    /// Protocol-violation words observed (foreign write-back on a page
    /// we hold) — should stay zero.
    pub violations: u64,
    /// Time spent computing / executing references at full speed.
    pub useful_time: Nanos,
    /// Time spent in miss handling, retries and consistency service.
    pub stall_time: Nanos,
}

impl ProcessorStats {
    /// Total cache misses of all kinds (excluding upgrades).
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss ratio over executed references.
    pub fn miss_ratio(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.misses() as f64 / self.refs as f64
        }
    }

    /// Normalized processor performance: useful time over total busy
    /// time (the machine analogue of Figure 3's y-axis).
    pub fn performance(&self) -> f64 {
        let total = self.useful_time + self.stall_time;
        if total == Nanos::ZERO {
            1.0
        } else {
            self.useful_time.as_ns() as f64 / total.as_ns() as f64
        }
    }

    /// Renders the counters plus the derived ratios as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj()
            .set("refs", self.refs)
            .set("reads", self.reads)
            .set("writes", self.writes)
            .set("read_misses", self.read_misses)
            .set("write_misses", self.write_misses)
            .set("upgrades", self.upgrades)
            .set("pte_misses", self.pte_misses)
            .set("page_faults", self.page_faults)
            .set("writebacks", self.writebacks)
            .set("retries", self.retries)
            .set("consistency_interrupts", self.consistency_interrupts)
            .set("invalidations", self.invalidations)
            .set("downgrades", self.downgrades)
            .set("notifies", self.notifies)
            .set("fifo_recoveries", self.fifo_recoveries)
            .set("violations", self.violations)
            .set("useful_ns", self.useful_time.as_ns())
            .set("stall_ns", self.stall_time.as_ns())
            .set("miss_ratio", self.miss_ratio())
            .set("performance", self.performance())
    }
}

impl fmt::Display for ProcessorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refs={} misses={} ({:.3}%) upgrades={} retries={} irqs={} perf={:.1}%",
            self.refs,
            self.misses(),
            100.0 * self.miss_ratio(),
            self.upgrades,
            self.retries,
            self.consistency_interrupts,
            100.0 * self.performance(),
        )
    }
}

/// Machine-side accounting of injected faults, by class: what the
/// machine *absorbed* through its recovery paths. Mirrors the injecting
/// hook's own counts (`vmp-faults` tracks what it handed out; these
/// track what the machine actually paid for), so a chaos harness can
/// cross-check the two.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transactions spuriously aborted by the fault hook (also folded
    /// into the bus's injected-abort counter).
    pub injected_aborts: u64,
    /// Interrupt words dropped from monitor FIFOs (each marks the FIFO
    /// overflowed, forcing a §3.3 recovery scan).
    pub dropped_words: u64,
    /// Sticky overflow flags forced without losing a word.
    pub forced_overflows: u64,
    /// Failed block-copier attempts absorbed by bounded retry.
    pub copier_retries: u64,
    /// Extra transfer time paid for those copier retries.
    pub copier_retry_time: Nanos,
    /// Arbitration stalls suffered.
    pub stalls: u64,
    /// Total injected arbitration-stall time.
    pub stall_time: Nanos,
}

impl FaultStats {
    /// Total fault events of all classes.
    pub fn total(&self) -> u64 {
        self.injected_aborts
            + self.dropped_words
            + self.forced_overflows
            + self.copier_retries
            + self.stalls
    }

    /// Renders the per-class counters as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj()
            .set("injected_aborts", self.injected_aborts)
            .set("dropped_words", self.dropped_words)
            .set("forced_overflows", self.forced_overflows)
            .set("copier_retries", self.copier_retries)
            .set("copier_retry_ns", self.copier_retry_time.as_ns())
            .set("stalls", self.stalls)
            .set("stall_ns", self.stall_time.as_ns())
            .set("total", self.total())
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults: {} aborts, {} drops, {} overflows, {} copier ({}), {} stalls ({})",
            self.injected_aborts,
            self.dropped_words,
            self.forced_overflows,
            self.copier_retries,
            self.copier_retry_time,
            self.stalls,
            self.stall_time,
        )
    }
}

/// The result of a completed machine run.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Simulated time at completion.
    pub elapsed: Nanos,
    /// Per-processor counters, indexed by processor.
    pub processors: Vec<ProcessorStats>,
    /// Shared-bus statistics.
    pub bus: BusStats,
    /// Faults absorbed over the run (all zero without a fault hook).
    pub faults: FaultStats,
}

impl MachineReport {
    /// Aggregate references across processors.
    pub fn total_refs(&self) -> u64 {
        self.processors.iter().map(|p| p.refs).sum()
    }

    /// Aggregate misses across processors.
    pub fn total_misses(&self) -> u64 {
        self.processors.iter().map(|p| p.misses()).sum()
    }

    /// Bus utilization over the run.
    pub fn bus_utilization(&self) -> f64 {
        self.bus.utilization(self.elapsed)
    }

    /// Processors that executed at least one reference.
    pub fn active_processors(&self) -> Vec<ProcessorId> {
        self.processors
            .iter()
            .enumerate()
            .filter(|(_, p)| p.refs > 0)
            .map(|(i, _)| ProcessorId::new(i))
            .collect()
    }

    /// Renders the whole report — per-processor counters, bus statistics
    /// and absorbed faults — as one machine-readable JSON document.
    pub fn to_json(&self) -> Value {
        Value::obj()
            .set("elapsed_ns", self.elapsed.as_ns())
            .set("total_refs", self.total_refs())
            .set("total_misses", self.total_misses())
            .set("bus_utilization", self.bus_utilization())
            .set(
                "processors",
                self.processors.iter().map(ProcessorStats::to_json).collect::<Vec<_>>(),
            )
            .set("bus", bus_stats_json(&self.bus))
            .set("faults", self.faults.to_json())
    }
}

/// Renders shared-bus statistics as a JSON object with per-kind
/// completed/aborted transaction counts keyed by the kind labels.
pub fn bus_stats_json(bus: &BusStats) -> Value {
    let mut counts = Value::obj();
    let mut aborts = Value::obj();
    for kind in BusTxKind::ALL {
        counts = counts.set(kind.label(), bus.count(kind));
        aborts = aborts.set(kind.label(), bus.abort_count(kind));
    }
    Value::obj()
        .set("completed", bus.total())
        .set("counts", counts)
        .set("aborts", bus.aborts)
        .set("injected_aborts", bus.injected_aborts)
        .set("protocol_aborts", bus.protocol_aborts())
        .set("abort_counts", aborts)
        .set("busy_ns", bus.busy.busy().as_ns())
        .set(
            "arbitration",
            Value::obj()
                .set("reservations", bus.reservations)
                .set("wait_total_ns", bus.arb_wait_total.as_ns())
                .set("wait_max_ns", bus.arb_wait_max.as_ns())
                .set("wait_mean_ns", bus.mean_arb_wait().as_ns()),
        )
}

impl fmt::Display for MachineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "elapsed {} | bus util {:.1}%", self.elapsed, 100.0 * self.bus_utilization())?;
        for (i, p) in self.processors.iter().enumerate() {
            writeln!(f, "  cpu{i}: {p}")?;
        }
        write!(f, "  {}", self.bus)?;
        if self.faults.total() > 0 {
            write!(f, "\n  {}", self.faults)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = ProcessorStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.performance(), 1.0);
        s.refs = 1000;
        s.read_misses = 3;
        s.write_misses = 2;
        s.useful_time = Nanos::from_us(90);
        s.stall_time = Nanos::from_us(10);
        assert_eq!(s.misses(), 5);
        assert!((s.miss_ratio() - 0.005).abs() < 1e-12);
        assert!((s.performance() - 0.9).abs() < 1e-12);
        assert!(s.to_string().contains("0.500%"));
    }

    #[test]
    fn report_aggregates() {
        let a = ProcessorStats { refs: 10, read_misses: 1, ..ProcessorStats::default() };
        let b = ProcessorStats::default();
        let report = MachineReport {
            elapsed: Nanos::from_us(100),
            processors: vec![a, b],
            bus: BusStats::default(),
            faults: FaultStats::default(),
        };
        assert_eq!(report.total_refs(), 10);
        assert_eq!(report.total_misses(), 1);
        assert_eq!(report.active_processors(), vec![ProcessorId::new(0)]);
        assert_eq!(report.bus_utilization(), 0.0);
        assert!(report.to_string().contains("cpu0"));
        assert!(!report.to_string().contains("faults:"), "quiet runs omit the fault line");
    }

    #[test]
    fn report_serializes_to_json() {
        let p = ProcessorStats {
            refs: 100,
            read_misses: 4,
            useful_time: Nanos::from_us(30),
            stall_time: Nanos::from_us(10),
            ..ProcessorStats::default()
        };
        let report = MachineReport {
            elapsed: Nanos::from_us(40),
            processors: vec![p],
            bus: BusStats::default(),
            faults: FaultStats { injected_aborts: 2, ..FaultStats::default() },
        };
        let text = report.to_json().to_string();
        let doc = vmp_obs::json::parse(&text).unwrap();
        assert_eq!(doc.get("elapsed_ns").unwrap().as_u64(), Some(40_000));
        assert_eq!(doc.get("total_refs").unwrap().as_u64(), Some(100));
        let cpu = &doc.get("processors").unwrap().as_arr().unwrap()[0];
        assert_eq!(cpu.get("read_misses").unwrap().as_u64(), Some(4));
        assert!((cpu.get("performance").unwrap().as_f64().unwrap() - 0.75).abs() < 1e-12);
        let bus = doc.get("bus").unwrap();
        assert_eq!(bus.get("counts").unwrap().get("read-shared").unwrap().as_u64(), Some(0));
        assert_eq!(bus.get("arbitration").unwrap().get("reservations").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("faults").unwrap().get("injected_aborts").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn fault_stats_total_and_display() {
        let f = FaultStats {
            injected_aborts: 3,
            dropped_words: 2,
            stalls: 1,
            stall_time: Nanos::from_us(4),
            ..FaultStats::default()
        };
        assert_eq!(f.total(), 6);
        let s = f.to_string();
        assert!(s.contains("3 aborts") && s.contains("2 drops") && s.contains("1 stalls"), "{s}");
        let report = MachineReport {
            elapsed: Nanos::from_us(1),
            processors: vec![],
            bus: BusStats::default(),
            faults: f,
        };
        assert!(report.to_string().contains("faults:"));
    }
}
