//! The machine: processors, caches, monitors, bus, memory and kernel
//! wired together under a deterministic event loop.

use std::collections::BTreeMap;

use vmp_bus::{
    ActionCode, BusMonitor, BusTransaction, BusTxKind, FaultClass, FaultHook, InterruptWord,
    NoFaults, VmeBus,
};
use vmp_cache::{DataCache, SlotFlags, SlotId, Tag};
use vmp_mem::{LocalMemory, MainMemory};
use vmp_obs::{EventKind, MachineObs, MissCause};
use vmp_sim::{AttentionClock, EventQueue, Histogram};
use vmp_trace::MemRef;
use vmp_types::{Asid, FrameNum, Nanos, PageSize, PhysAddr, ProcessorId, VirtAddr, VirtPageNum};

use crate::dma::{DmaDirection, DmaEngine, DmaPhase, DmaRequest};
use crate::{
    FaultStats, Kernel, MachineConfig, MachineError, MachineReport, Op, OpResult, PhysIndex,
    ProcessorStats, Program, TraceProgram, WatchdogViolation,
};

/// Maximum depth of nested page-table misses: the leaf PTE page is
/// reached through the cache; the root/directory information is kept in
/// local memory (paper §2: "a small bounded depth to page table misses").
const MAX_PT_DEPTH: u8 = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CpuState {
    /// No program loaded or program finished.
    Halted,
    /// Executing; a wake event is scheduled.
    Ready,
    /// Parked in [`Op::WaitNotify`].
    Parked,
    /// Inside an [`Op::Compute`] block. Unlike a memory operation, a
    /// compute block spans many instructions, so consistency interrupts
    /// are serviced *during* it (between instructions) and push its
    /// completion back by the service time.
    Computing { until: Nanos },
}

/// Work to resume at the next wake.
///
/// When a bus transaction is aborted, the cache controller "retries the
/// bus transaction" (paper §3.2) — *not* the whole software handler. The
/// transaction-level continuations below give the aborted requester a
/// fast retry that can land between the owner's flush and the owner's
/// next reacquisition; re-running the full 13.6 µs handler would lose
/// that race forever against a spinning competitor.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PendingWork {
    /// Re-execute the whole operation (nested-translation aborts).
    FullOp(Op),
    /// Re-issue the block-fetch transaction of a miss whose victim has
    /// already been evicted.
    FetchTx(FetchCont),
    /// Re-issue the assert-ownership transaction of a write upgrade.
    UpgradeTx(UpgradeCont),
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct FetchCont {
    pub(crate) op: Op,
    pub(crate) asid: Asid,
    pub(crate) va: VirtAddr,
    pub(crate) want_private: bool,
    pub(crate) cause: MissCause,
    pub(crate) frame: FrameNum,
    pub(crate) slot: SlotId,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct UpgradeCont {
    pub(crate) op: Op,
    pub(crate) va: VirtAddr,
    pub(crate) slot: SlotId,
    pub(crate) frame: FrameNum,
}

pub(crate) struct Cpu {
    pub(crate) id: ProcessorId,
    pub(crate) asid: Asid,
    pub(crate) cache: DataCache,
    pub(crate) monitor: BusMonitor,
    /// Modelled local RAM; handler data structures conceptually live here.
    #[allow(dead_code)]
    pub(crate) local: LocalMemory,
    pub(crate) phys: PhysIndex,
    pub(crate) program: Option<Box<dyn Program>>,
    pub(crate) state: CpuState,
    pub(crate) pending: Option<PendingWork>,
    pub(crate) last_result: OpResult,
    pub(crate) wake_seq: u64,
    pub(crate) wake_pending: bool,
    /// Frames watched for notification → the virtual address the program
    /// used, for delivering [`OpResult::Notified`].
    pub(crate) watches: BTreeMap<FrameNum, VirtAddr>,
    pub(crate) pending_notify: Option<VirtAddr>,
    /// Deadline for a pending [`Op::WaitNotify`] park.
    pub(crate) park_deadline: Option<Nanos>,
    /// Consecutive aborted attempts; lengthens the retry backoff so
    /// symmetric contenders cannot phase-lock.
    pub(crate) retry_streak: u32,
    /// Pages acquired since the last completed reference — thrashing
    /// signal for the liveness watchdog (acquisitions should yield work).
    pub(crate) zero_yield_acquires: u64,
    /// Armed while this board's monitor holds unserviced interrupt words
    /// or an unserviced overflow flag; the watchdog flags starvation.
    pub(crate) attention: AttentionClock,
    /// When the current operation began (first attempt), for latency
    /// instrumentation across retries.
    pub(crate) op_start: Nanos,
    /// The current operation took at least one miss/upgrade.
    pub(crate) op_stalled: bool,
    /// Distribution of complete memory-operation latencies that involved
    /// miss handling — the paper's "highly instrumented" prototype in
    /// simulator form (§5).
    pub(crate) miss_latency: Histogram,
    pub(crate) stats: ProcessorStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    Wake { cpu: usize, seq: u64 },
    Dma { dma: usize, seq: u64 },
}

/// Outcome of executing or resuming one operation.
enum Exec {
    /// Finished at the given time with a result for the program.
    Done(Nanos, OpResult),
    /// Entered an interruptible compute block ending at the given time.
    Compute(Nanos),
    /// Retry at the given time with the given continuation.
    Retry(Nanos, PendingWork),
    /// Parked waiting for a notification (with a timeout deadline).
    Park(Nanos),
    /// The program halted.
    Halt,
}

enum FetchOutcome {
    Loaded {
        slot: SlotId,
        end: Nanos,
    },
    /// The block-fetch transaction aborted; the victim slot is reserved.
    TxAborted {
        at: Nanos,
        frame: FrameNum,
        slot: SlotId,
    },
    /// A nested (translation) step aborted; re-run the whole handler.
    Restart(Nanos),
}

enum ResolveOutcome {
    Frame(FrameNum, Nanos),
    Restart(Nanos),
}

/// Watchdog limits with the derive-from-timings defaults already
/// resolved at build time.
#[derive(Debug, Clone, Copy)]
struct ResolvedWatchdog {
    retry_limit: u64,
    lag_limit: Nanos,
    zero_yield_limit: u64,
}

/// The whole VMP machine.
///
/// See the [crate documentation](crate) for an overview and example.
pub struct Machine {
    pub(crate) config: MachineConfig,
    pub(crate) now: Nanos,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) bus: VmeBus,
    pub(crate) memory: MainMemory,
    pub(crate) kernel: Kernel,
    pub(crate) cpus: Vec<Cpu>,
    pub(crate) dmas: Vec<DmaEngine>,
    /// Frames protected for DMA → host processor index (validator input).
    pub(crate) dma_protected: BTreeMap<FrameNum, usize>,
    /// Backing store for reclaimed pages: the page-out daemon (§3.4)
    /// saves contents here and the page-fault path restores them.
    pub(crate) swap: BTreeMap<(Asid, VirtPageNum), Vec<u8>>,
    /// Fault injector consulted at the bus/monitor/memory boundaries;
    /// [`NoFaults`] (the default) keeps every call a no-op.
    pub(crate) fault_hook: Box<dyn FaultHook>,
    /// Machine-side accounting of the faults absorbed so far.
    pub(crate) fault_stats: FaultStats,
    /// Event recorder, allocated only when `config.obs.enabled`: the
    /// disabled path is a single branch per instrumentation site, and
    /// recording only ever reads simulator state, so enabling it cannot
    /// perturb a run.
    obs: Option<Box<MachineObs>>,
    /// Liveness watchdog, resolved from the configuration at build.
    watchdog: Option<ResolvedWatchdog>,
    /// Violation detected inside a kernel service loop (which cannot
    /// return an error); surfaced by the event loop.
    pub(crate) stuck: Option<WatchdogViolation>,
    /// Events delivered so far, for the periodic `audit_every` check.
    pub(crate) events_delivered: u64,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("processors", &self.cpus.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine from a configuration. All processors start
    /// halted; load work with [`Machine::set_program`] or
    /// [`Machine::load_trace`].
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Config`] for invalid configurations.
    pub fn build(config: MachineConfig) -> Result<Machine, MachineError> {
        config.check()?;
        let page = config.cache.page_size();
        let frames = config.frames();
        let memory = MainMemory::with_timings(page, config.memory_bytes, config.mem_timings);
        let bus = VmeBus::with_timings(page, config.bus, config.mem_timings);
        let kernel = Kernel::new(page, frames, 0);
        let cpus = (0..config.processors)
            .map(|i| Cpu {
                id: ProcessorId::new(i),
                asid: Asid::new(1),
                cache: DataCache::new(config.cache),
                monitor: BusMonitor::new(ProcessorId::new(i), frames),
                local: LocalMemory::default(),
                phys: PhysIndex::with_geometry(config.cache.sets(), config.cache.associativity()),
                program: None,
                state: CpuState::Halted,
                pending: None,
                last_result: OpResult::None,
                wake_seq: 0,
                wake_pending: false,
                watches: BTreeMap::new(),
                pending_notify: None,
                park_deadline: None,
                retry_streak: 0,
                zero_yield_acquires: 0,
                attention: AttentionClock::new(),
                op_start: Nanos::ZERO,
                op_stalled: false,
                miss_latency: Histogram::new(Nanos::from_us(2), 64),
                stats: ProcessorStats::default(),
            })
            .collect();
        let watchdog = config.watchdog.map(|w| ResolvedWatchdog {
            retry_limit: w.effective_retry_streak_limit(&config.cpu),
            lag_limit: w.effective_interrupt_lag_limit(&config.cpu),
            zero_yield_limit: w.effective_zero_yield_limit(),
        });
        let obs =
            config.obs.enabled.then(|| Box::new(MachineObs::new(&config.obs, config.processors)));
        Ok(Machine {
            config,
            now: Nanos::ZERO,
            queue: EventQueue::new(),
            bus,
            memory,
            kernel,
            cpus,
            dmas: Vec::new(),
            dma_protected: BTreeMap::new(),
            swap: BTreeMap::new(),
            fault_hook: Box::new(NoFaults),
            fault_stats: FaultStats::default(),
            obs,
            watchdog,
            stuck: None,
            events_delivered: 0,
        })
    }

    /// Installs a fault hook consulted at the bus/monitor/memory
    /// boundaries, replacing the previous one (initially the inert
    /// [`NoFaults`]). Typically a `vmp-faults` `FaultPlan`.
    pub fn install_fault_hook(&mut self, hook: impl FaultHook + 'static) {
        self.fault_hook = Box::new(hook);
    }

    /// Removes the installed fault hook (restoring [`NoFaults`]) and
    /// returns it, so its own injection counts can be inspected.
    pub fn take_fault_hook(&mut self) -> Box<dyn FaultHook> {
        std::mem::replace(&mut self.fault_hook, Box::new(NoFaults))
    }

    /// Machine-side fault accounting for the run so far.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// The event recorder, when observability is enabled
    /// (`MachineConfig::obs`); feed it to [`vmp_obs::chrome_trace`] or
    /// [`vmp_obs::metrics_json`].
    pub fn obs(&self) -> Option<&MachineObs> {
        self.obs.as_deref()
    }

    /// Simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The cache-page size of this machine.
    pub fn page_size(&self) -> PageSize {
        self.config.cache.page_size()
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.cpus.len()
    }

    /// Read access to the kernel (mappings, free frames).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    fn check_cpu(&self, index: usize) -> Result<(), MachineError> {
        if index < self.cpus.len() {
            Ok(())
        } else {
            Err(MachineError::NoSuchProcessor { index, processors: self.cpus.len() })
        }
    }

    /// Loads a program onto a processor, replacing any previous one.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoSuchProcessor`] for a bad index.
    pub fn set_program<P: Program + 'static>(
        &mut self,
        cpu: usize,
        program: P,
    ) -> Result<(), MachineError> {
        self.set_program_boxed(cpu, Box::new(program))
    }

    /// Loads an already-boxed program onto a processor — the dynamic
    /// counterpart of [`Machine::set_program`], for callers that build
    /// program sets generically (snapshot tooling, sweep harnesses).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoSuchProcessor`] for a bad index.
    pub fn set_program_boxed(
        &mut self,
        cpu: usize,
        program: Box<dyn Program>,
    ) -> Result<(), MachineError> {
        self.check_cpu(cpu)?;
        self.cpus[cpu].program = Some(program);
        self.cpus[cpu].state = CpuState::Ready;
        self.cpus[cpu].pending = None;
        self.cpus[cpu].last_result = OpResult::None;
        Ok(())
    }

    /// Sets the address space a processor's program runs in
    /// (default: ASID 1 on every processor, i.e. one shared space).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoSuchProcessor`] for a bad index.
    pub fn set_asid(&mut self, cpu: usize, asid: Asid) -> Result<(), MachineError> {
        self.check_cpu(cpu)?;
        self.cpus[cpu].asid = asid;
        Ok(())
    }

    /// Convenience: run a reference trace on a processor
    /// (wraps it in a [`TraceProgram`]).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoSuchProcessor`] for a bad index.
    pub fn load_trace<I>(&mut self, cpu: usize, refs: I) -> Result<(), MachineError>
    where
        I: IntoIterator<Item = MemRef>,
        I::IntoIter: Send + 'static,
    {
        self.set_program(cpu, TraceProgram::new(refs))
    }

    /// Pre-maps one page of every listed address space to a single
    /// shared frame, returning the frame. Used to set up shared-memory
    /// workloads and alias experiments.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfMemory`] when no frame is free.
    pub fn map_shared(&mut self, mappings: &[(Asid, VirtAddr)]) -> Result<FrameNum, MachineError> {
        let page = self.page_size();
        let (first_asid, first_va) = mappings.first().expect("at least one mapping");
        let frame = self.kernel.fault_in(*first_asid, page.vpn_of(*first_va), *first_va)?;
        for (asid, va) in &mappings[1..] {
            self.kernel.map(*asid, page.vpn_of(*va), vmp_vm::Pte::user_rw(frame));
        }
        Ok(frame)
    }

    /// Schedules a DMA request managed by `host` (the processor whose
    /// monitor protects the frames, §3.3). Returns a handle for
    /// [`Machine::dma_result`].
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoSuchProcessor`] for a bad host index.
    pub fn queue_dma(&mut self, host: usize, request: DmaRequest) -> Result<usize, MachineError> {
        self.check_cpu(host)?;
        let id = ProcessorId::new(self.cpus.len() + self.dmas.len());
        let handle = self.dmas.len();
        let mut engine = DmaEngine::new(id, host, request);
        // Serialize against any in-flight request touching the same
        // frames — the paper's OS-level region lock (§3.3).
        engine.blocked_on = self
            .dmas
            .iter()
            .enumerate()
            .rev()
            .find(|(_, d)| {
                d.phase != DmaPhase::Done
                    && d.request.frames.iter().any(|f| engine.request.frames.contains(f))
            })
            .map(|(i, _)| i);
        self.dmas.push(engine);
        let seq = self.dmas[handle].bump_seq();
        self.queue.schedule(self.now, Event::Dma { dma: handle, seq });
        Ok(handle)
    }

    /// The data read by a completed [`DmaDirection::FromMemory`] request;
    /// `None` while the transfer is in progress or for device-write
    /// ([`DmaDirection::ToMemory`]) requests, which capture nothing.
    pub fn dma_result(&self, handle: usize) -> Option<&[u8]> {
        let d = self.dmas.get(handle)?;
        if d.phase == DmaPhase::Done && d.request.direction == DmaDirection::FromMemory {
            Some(d.buffer())
        } else {
            None
        }
    }

    /// Reads the current coherent value of the word at ⟨asid, va⟩
    /// without simulating any traffic: if some cache owns the page
    /// privately, its copy is authoritative; otherwise main memory is.
    /// Intended for test assertions and post-run inspection.
    pub fn peek_word(&self, asid: Asid, va: VirtAddr) -> Option<u32> {
        let page = self.page_size();
        let vpn = page.vpn_of(va);
        let frame = self.kernel.translate(asid, vpn)?.frame;
        let offset = (page.offset_of(va.raw()) & !3) as usize;
        for cpu in &self.cpus {
            for &slot in cpu.phys.slots(frame) {
                if cpu.cache.flags(slot).exclusive {
                    return Some(read_u32(cpu.cache.read(slot, offset, 4)));
                }
            }
        }
        Some(self.memory.read_u32(page.frame_base(frame).add(offset as u64)))
    }

    /// The physical frame currently backing ⟨asid, va⟩, if mapped.
    pub fn frame_of(&self, asid: Asid, va: VirtAddr) -> Option<FrameNum> {
        self.kernel.translate(asid, self.page_size().vpn_of(va)).map(|p| p.frame)
    }

    /// Statistics of one processor so far.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn cpu_stats(&self, cpu: usize) -> &ProcessorStats {
        &self.cpus[cpu].stats
    }

    /// Latency distribution of the memory operations that took a miss or
    /// ownership upgrade on this processor (2 µs buckets), measured from
    /// first attempt to completion — retries included.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn miss_latency(&self, cpu: usize) -> &Histogram {
        &self.cpus[cpu].miss_latency
    }

    /// Runs until every program has halted and all DMA has drained.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::TimeLimit`] if `max_time` elapses first,
    /// or any error raised by a processor step.
    pub fn run(&mut self) -> Result<MachineReport, MachineError> {
        self.run_until(self.config.max_time)?;
        let still_running: Vec<ProcessorId> =
            self.cpus.iter().filter(|c| c.state != CpuState::Halted).map(|c| c.id).collect();
        if !still_running.is_empty() {
            return Err(MachineError::TimeLimit { still_running });
        }
        Ok(self.report())
    }

    /// Runs until the event queue drains or simulated time reaches
    /// `deadline`.
    ///
    /// # Errors
    ///
    /// Propagates processor-step errors.
    pub fn run_until(&mut self, deadline: Nanos) -> Result<MachineReport, MachineError> {
        // Kick ready CPUs without an outstanding wake (fresh or re-loaded
        // programs).
        for i in 0..self.cpus.len() {
            if self.cpus[i].state == CpuState::Ready && !self.cpus[i].wake_pending {
                self.schedule_wake(i, self.now);
            }
        }
        // Fused peek+pop: one heap descent per delivered event.
        while let Some((t, event)) = self.queue.pop_if_at_or_before(deadline) {
            self.now = self.now.max(t);
            self.bus.advance_to(self.now);
            match event {
                Event::Wake { cpu, seq } => {
                    if self.cpus[cpu].wake_seq == seq {
                        self.cpus[cpu].wake_pending = false;
                        self.step_cpu(cpu)?;
                    }
                }
                Event::Dma { dma, seq } => {
                    if self.dmas[dma].seq() == seq {
                        self.step_dma(dma);
                    }
                }
            }
            if self.obs.is_some() {
                let now = self.now;
                let busy = self.bus.stats().busy.busy();
                let o = self.obs.as_deref_mut().expect("checked above");
                o.sample_bus(now, busy);
                for (i, c) in self.cpus.iter().enumerate() {
                    o.sample_cpu(i, now, c.stats.useful_time, c.stats.stall_time);
                }
            }
            if let Some(w) = self.watchdog {
                if let Some(v) = self.stuck.take() {
                    return Err(MachineError::Watchdog(v));
                }
                for c in &self.cpus {
                    if c.attention.exceeded(self.now, w.lag_limit) {
                        return Err(MachineError::Watchdog(WatchdogViolation::InterruptStarved {
                            cpu: c.id,
                            waited: c.attention.waiting(self.now).unwrap_or(Nanos::ZERO),
                            limit: w.lag_limit,
                        }));
                    }
                }
            }
            if self.config.validate_each_step {
                self.validate().map_err(MachineError::InvariantViolated)?;
            }
            if let Some(every) = self.config.audit_every {
                self.events_delivered += 1;
                if self.events_delivered.is_multiple_of(every) {
                    self.validate()
                        .map_err(|detail| MachineError::AuditFailed { at: self.now, detail })?;
                }
            }
        }
        Ok(self.report())
    }

    /// Builds a statistics report for the run so far.
    pub fn report(&self) -> MachineReport {
        MachineReport {
            elapsed: self.now,
            processors: self.cpus.iter().map(|c| c.stats.clone()).collect(),
            bus: self.bus.stats().clone(),
            faults: self.fault_stats,
        }
    }

    fn schedule_wake(&mut self, cpu: usize, at: Nanos) {
        self.cpus[cpu].wake_seq += 1;
        self.cpus[cpu].wake_pending = true;
        let seq = self.cpus[cpu].wake_seq;
        self.queue.schedule(at.max(self.now), Event::Wake { cpu, seq });
    }

    // ------------------------------------------------------------------
    // Bus helpers
    // ------------------------------------------------------------------

    /// Issues one bus transaction at (or after) `ready`: arbitration,
    /// monitor checks on every board, completion or abort — with the
    /// fault hook consulted at each boundary (all of its calls are inert
    /// no-ops under the default [`NoFaults`]).
    ///
    /// Returns `(end_time, completed)`.
    fn bus_transaction(&mut self, tx: BusTransaction, ready: Nanos) -> (Nanos, bool) {
        // Injected arbitration stall: the arbiter keeps granting other
        // masters before this one wins the bus.
        let stall = self.fault_hook.arbitration_stall(self.now, &tx);
        let ready = if stall > Nanos::ZERO {
            self.fault_stats.stalls += 1;
            self.fault_stats.stall_time += stall;
            if let Some(o) = self.obs.as_deref_mut() {
                o.bus_event(self.now, EventKind::Fault { class: FaultClass::ArbitrationStall });
            }
            ready + stall
        } else {
            ready
        };
        let mut abort = false;
        let mut interrupted: Vec<usize> = Vec::new();
        let mut queued: Vec<usize> = Vec::new();
        let mut overflowed: Vec<usize> = Vec::new();
        for (j, cpu) in self.cpus.iter_mut().enumerate() {
            let d = cpu.monitor.observe(&tx);
            abort |= d.abort;
            if d.interrupted {
                interrupted.push(j);
            }
            if d.queued {
                queued.push(j);
            }
            if d.dropped {
                overflowed.push(j);
            }
        }
        // Spurious abort injection, restricted to kinds whose issuers
        // have a retry path. Write-backs are never aborted (a protocol
        // guarantee the rest of the machine relies on) and plain cycles
        // have no retry trap.
        let mut injected = false;
        if !abort && can_inject_abort(tx.kind) && self.fault_hook.inject_abort(self.now, &tx) {
            abort = true;
            injected = true;
            self.fault_stats.injected_aborts += 1;
            if let Some(o) = self.obs.as_deref_mut() {
                o.bus_event(self.now, EventKind::Fault { class: FaultClass::InjectedAbort });
            }
        }
        let end = if abort {
            // Address-phase abort: terminated immediately, the block
            // transfer never starts, queued transfers are not delayed.
            self.bus.abort(tx.kind, injected);
            if let Some(o) = self.obs.as_deref_mut() {
                o.bus_event(
                    ready + self.config.bus.arbitration,
                    EventKind::BusTx {
                        kind: tx.kind,
                        frame: tx.frame,
                        issuer: tx.issuer,
                        wait: self.config.bus.arbitration,
                        dur: self.bus.abort_duration(),
                        aborted: true,
                    },
                );
            }
            ready + self.config.bus.arbitration + self.bus.abort_duration()
        } else {
            let mut dur = self.bus.duration(tx.kind);
            let mut copier_failures = 0u32;
            if tx.kind.is_block_transfer() {
                // Transient copier errors: each failed attempt occupies
                // one full transfer slot before the bounded retry wins.
                let failures = self.fault_hook.copier_failures(self.now, &tx);
                if failures > 0 {
                    let extra = dur * u64::from(failures);
                    self.fault_stats.copier_retries += u64::from(failures);
                    self.fault_stats.copier_retry_time += extra;
                    dur += extra;
                    copier_failures = failures;
                }
            }
            let start = self.bus.reserve(ready, dur);
            self.bus.complete(tx.kind, dur);
            if let Some(o) = self.obs.as_deref_mut() {
                let wait = start.saturating_sub(ready);
                o.arb_wait.record(wait);
                o.bus_event(
                    start,
                    EventKind::BusTx {
                        kind: tx.kind,
                        frame: tx.frame,
                        issuer: tx.issuer,
                        wait,
                        dur,
                        aborted: false,
                    },
                );
                if copier_failures > 0 {
                    o.bus_event(start, EventKind::Fault { class: FaultClass::CopierRetry });
                }
            }
            start + dur
        };
        // Contention attribution: the four tracked kinds flow only
        // through this chokepoint, so the table's per-class totals stay
        // in lock-step with the bus's own counters.
        if let Some(o) = self.obs.as_deref_mut() {
            if let Some(a) = o.attrib_mut() {
                a.record_tx(tx.frame, tx.issuer.index(), tx.kind, abort, end);
            }
        }
        // Real FIFO overflows observed during the address phase: the
        // monitor lost the word and raised its sticky flag.
        if !overflowed.is_empty() {
            if let Some(o) = self.obs.as_deref_mut() {
                for &j in &overflowed {
                    o.cpu_event(j, end, EventKind::FifoOverflow);
                }
            }
        }
        // Injected FIFO word drops: a freshly queued word vanishes, but
        // always marks the FIFO overflowed — an injected drop is
        // indistinguishable from a real overflow, so the §3.3 recovery
        // scan repairs it (the fault-transparency contract).
        for &j in &queued {
            let word = InterruptWord { kind: tx.kind, frame: tx.frame, issuer: tx.issuer };
            if self.fault_hook.drop_interrupt_word(self.now, self.cpus[j].id, &word)
                && self.cpus[j].monitor.drop_newest().is_some()
            {
                self.fault_stats.dropped_words += 1;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.cpu_event(j, end, EventKind::Fault { class: FaultClass::DroppedWord });
                    o.cpu_event(j, end, EventKind::FifoOverflow);
                }
            }
        }
        // Forced overflow: the sticky flag rises without losing a word,
        // triggering a spurious (but harmless) recovery scan on the
        // issuer's own monitor.
        if let Some(j) = self.cpus.iter().position(|c| c.id == tx.issuer) {
            if self.fault_hook.force_overflow(self.now, self.cpus[j].id) {
                self.cpus[j].monitor.force_overflow();
                self.fault_stats.forced_overflows += 1;
                self.cpus[j].attention.note(end);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.cpu_event(j, end, EventKind::Fault { class: FaultClass::ForcedOverflow });
                    o.cpu_event(j, end, EventKind::FifoOverflow);
                }
            }
        }
        // Track service attention for every board that now holds work.
        for &j in &queued {
            self.cpus[j].attention.note(end);
        }
        // Parked, halted and computing processors service interrupts only
        // when woken; a CPU mid-memory-operation services at its end.
        for j in interrupted {
            match self.cpus[j].state {
                CpuState::Parked | CpuState::Halted | CpuState::Computing { .. } => {
                    let at = end + self.config.bus.check_interval;
                    self.schedule_wake(j, at);
                }
                CpuState::Ready => {}
            }
        }
        (end, !abort)
    }

    /// Backoff before retrying an aborted transaction: grows with the
    /// retry streak so symmetric contenders cannot phase-lock forever.
    fn retry_at(&mut self, cpu: usize, abort_end: Nanos) -> Nanos {
        let streak = u64::from(self.cpus[cpu].retry_streak.min(self.config.cpu.max_retry_streak));
        self.cpus[cpu].retry_streak += 1;
        if let Some(o) = self.obs.as_deref_mut() {
            o.cpu_event(cpu, abort_end, EventKind::Retry { streak: self.cpus[cpu].retry_streak });
        }
        abort_end + self.config.cpu.retry_backoff * (1 + streak)
    }

    // ------------------------------------------------------------------
    // Consistency-interrupt service (§3.3)
    // ------------------------------------------------------------------

    /// Services every pending interrupt word for `cpu`; returns the time
    /// when service completes.
    fn service_interrupts(&mut self, cpu: usize, mut t: Nanos) -> Nanos {
        let t0 = t;
        let pending = self.cpus[cpu].monitor.pending() as u32;
        let had_work = pending > 0 || self.cpus[cpu].monitor.overflowed();
        if had_work {
            if let Some(o) = self.obs.as_deref_mut() {
                // Queued-to-service latency, measured from the oldest
                // unserviced word's onset.
                if let Some(waited) = self.cpus[cpu].attention.waiting(t0) {
                    o.irq_latency.record(waited);
                }
                o.cpu_event(cpu, t0, EventKind::IrqBegin { pending });
            }
        }
        if self.cpus[cpu].monitor.overflowed() {
            t = self.recover_overflow(cpu, t);
        }
        let mut serviced: u32 = 0;
        while let Some(word) = self.cpus[cpu].monitor.pop_interrupt() {
            // A stale word (the frame's code already cleared by an earlier
            // service) is dismissed after a quick table check; a live one
            // pays the full handler cost.
            let code = self.cpus[cpu].monitor.table().get(word.frame);
            let stale = code == vmp_bus::ActionCode::Ignore && word.kind != BusTxKind::Notify;
            t += if stale {
                self.config.cpu.consistency_service / 8
            } else {
                self.config.cpu.consistency_service
            };
            self.cpus[cpu].stats.consistency_interrupts += 1;
            serviced += 1;
            t = self.service_word(cpu, word, t);
        }
        // Fully drained (service never queues words on its own monitor):
        // stand down the starvation clock.
        if self.cpus[cpu].monitor.pending() == 0 && !self.cpus[cpu].monitor.overflowed() {
            self.cpus[cpu].attention.clear();
        }
        if had_work {
            if let Some(o) = self.obs.as_deref_mut() {
                o.cpu_event(cpu, t, EventKind::IrqEnd { serviced });
            }
        }
        t
    }

    fn service_word(&mut self, cpu: usize, word: InterruptWord, mut t: Nanos) -> Nanos {
        let frame = word.frame;
        let code = self.cpus[cpu].monitor.table().get(frame);
        match word.kind {
            BusTxKind::Notify => {
                if let Some(va) = self.cpus[cpu].watches.remove(&frame) {
                    self.cpus[cpu].stats.notifies += 1;
                    self.cpus[cpu].monitor.table_mut().set(frame, ActionCode::Ignore);
                    if self.cpus[cpu].state == CpuState::Parked {
                        self.cpus[cpu].pending_notify = Some(va);
                    } else if let Some(program) = self.cpus[cpu].program.as_mut() {
                        program.on_notify(va);
                    }
                }
            }
            BusTxKind::ReadPrivate | BusTxKind::AssertOwnership => match code {
                ActionCode::InterruptOnOwnership | ActionCode::Protect => {
                    // Shared: discard copies. Private: write back, then
                    // discard (the aborted requester will retry).
                    t = self.flush_frame(cpu, frame, /*downgrade=*/ false, t);
                }
                _ => {} // stale word
            },
            BusTxKind::ReadShared if code == ActionCode::Protect => {
                // Downgrade private → shared: write back, keep copy.
                t = self.flush_frame(cpu, frame, /*downgrade=*/ true, t);
            }
            BusTxKind::ReadShared => {} // stale word
            BusTxKind::WriteBack => match code {
                ActionCode::InterruptOnOwnership => {
                    // Stale-sharer race: the new owner wrote the page back
                    // before we serviced its invalidation word. Our copy
                    // is stale — drop it (no write-back: shared ⇒ clean).
                    t = self.flush_frame(cpu, frame, /*downgrade=*/ false, t);
                }
                ActionCode::Protect => {
                    // A foreign write-back on a page we own: two owners —
                    // a genuine protocol violation.
                    self.cpus[cpu].stats.violations += 1;
                }
                _ => {} // stale word
            },
            _ => {}
        }
        t
    }

    /// Writes back (if dirty) and invalidates — or downgrades — every
    /// slot of `cpu` holding `frame`; updates the action table.
    fn flush_frame(&mut self, cpu: usize, frame: FrameNum, downgrade: bool, mut t: Nanos) -> Nanos {
        // Owned copy: the loop below mutates the cache and the index.
        let slots = self.cpus[cpu].phys.slots(frame).to_vec();
        if slots.is_empty() {
            return t;
        }
        let mut dirty_bytes: Option<Vec<u8>> = None;
        for slot in &slots {
            if self.cpus[cpu].cache.flags(*slot).modified {
                dirty_bytes = Some(self.cpus[cpu].cache.snapshot(*slot));
            }
        }
        if let Some(bytes) = dirty_bytes {
            // Write-back bus transaction; never aborted for the owner.
            let tx = BusTransaction::new(BusTxKind::WriteBack, frame, self.cpus[cpu].id);
            let (end, ok) = self.bus_transaction(tx, t);
            debug_assert!(ok, "own write-back must not abort");
            self.memory.write_frame(frame, &bytes);
            self.cpus[cpu].stats.writebacks += 1;
            if let Some(o) = self.obs.as_deref_mut() {
                o.cpu_event(cpu, end, EventKind::WriteBack { frame });
            }
            t = end;
        }
        for slot in slots {
            if downgrade {
                let flags = self.cpus[cpu].cache.flags(slot);
                self.cpus[cpu].cache.set_flags(slot, flags.downgraded());
                self.cpus[cpu].stats.downgrades += 1;
            } else {
                self.cpus[cpu].cache.invalidate(slot);
                self.cpus[cpu].phys.remove(frame, slot);
                self.cpus[cpu].stats.invalidations += 1;
            }
        }
        let new_code =
            if downgrade { ActionCode::InterruptOnOwnership } else { ActionCode::Ignore };
        self.cpus[cpu].monitor.table_mut().set(frame, new_code);
        t
    }

    /// FIFO-overflow recovery (§3.3): invalidate every shared entry,
    /// rebuild the table from the (still-correct) private entries, and
    /// clear the flag. Privately owned pages are safe because requests
    /// for them are aborted and retried regardless of the lost words.
    fn recover_overflow(&mut self, cpu: usize, mut t: Nanos) -> Nanos {
        let t0 = t;
        self.cpus[cpu].stats.fifo_recoveries += 1;
        let per_slot = self.config.cpu.overflow_recovery_per_slot;
        let shared: Vec<(SlotId, FrameNum)> = self.cpus[cpu]
            .cache
            .iter_valid()
            .filter(|(_, _, flags)| !flags.exclusive)
            .map(|(slot, _, _)| {
                let frame = self.cpus[cpu].phys.frame_of(slot).expect("indexed slot");
                (slot, frame)
            })
            .collect();
        let scanned = self.cpus[cpu].cache.valid_count() as u64;
        t += per_slot * scanned;
        for (slot, frame) in shared {
            self.cpus[cpu].cache.invalidate(slot);
            self.cpus[cpu].phys.remove(frame, slot);
            self.cpus[cpu].stats.invalidations += 1;
            if self.cpus[cpu].phys.slots(frame).is_empty() {
                self.cpus[cpu].monitor.table_mut().set(frame, ActionCode::Ignore);
            }
        }
        self.cpus[cpu].monitor.drain();
        self.cpus[cpu].monitor.clear_overflow();
        if let Some(o) = self.obs.as_deref_mut() {
            o.cpu_event(
                cpu,
                t0,
                EventKind::FifoRecovery { dur: t.saturating_sub(t0), scanned: scanned as u32 },
            );
        }
        t
    }

    // ------------------------------------------------------------------
    // Processor step
    // ------------------------------------------------------------------

    fn step_cpu(&mut self, cpu: usize) -> Result<(), MachineError> {
        let t0 = self.now;
        let had_words = self.cpus[cpu].monitor.pending() > 0 || self.cpus[cpu].monitor.overflowed();
        // Interrupts are serviced between instructions, before any retry
        // or new op — this is what releases pages competitors wait for.
        let t = self.service_interrupts(cpu, t0);
        self.cpus[cpu].stats.stall_time += t - t0;

        // The interrupt handler returns before the program resumes: end
        // the step here so that events already queued by other processors
        // (e.g. retries of transactions we aborted) interleave with the
        // pages we just released. Without this, a spinning owner's flush
        // and reacquisition would be atomic and waiters could never win.
        if had_words && self.cpus[cpu].state == CpuState::Ready {
            self.schedule_wake(cpu, t);
            return Ok(());
        }

        match self.cpus[cpu].state {
            CpuState::Halted => return Ok(()),
            CpuState::Computing { until } => {
                // Interrupt service pushed the block back by its duration.
                let until = until + (t - t0);
                if t < until {
                    self.cpus[cpu].state = CpuState::Computing { until };
                    self.schedule_wake(cpu, until);
                    return Ok(());
                }
                self.cpus[cpu].state = CpuState::Ready;
                self.cpus[cpu].last_result = OpResult::None;
            }
            CpuState::Parked => {
                if let Some(va) = self.cpus[cpu].pending_notify.take() {
                    self.cpus[cpu].state = CpuState::Ready;
                    self.cpus[cpu].last_result = OpResult::Notified(va);
                    self.cpus[cpu].park_deadline = None;
                } else if self.cpus[cpu].park_deadline.is_some_and(|d| t >= d) {
                    // Timed out: resume with no result; the program retries.
                    self.cpus[cpu].state = CpuState::Ready;
                    self.cpus[cpu].last_result = OpResult::None;
                    self.cpus[cpu].park_deadline = None;
                } else {
                    // Still parked (woken only to service interrupts). This
                    // wake superseded every earlier one — including the
                    // park-deadline wake scheduled by `Exec::Park` — so the
                    // timeout must be re-armed or a dropped notification
                    // strands the processor forever.
                    if let Some(d) = self.cpus[cpu].park_deadline {
                        self.schedule_wake(cpu, d);
                    }
                    return Ok(());
                }
            }
            CpuState::Ready => {}
        }

        let outcome = match self.cpus[cpu].pending.take() {
            Some(PendingWork::FullOp(op)) => self.execute(cpu, op, t)?,
            Some(PendingWork::FetchTx(cont)) => self.resume_fetch(cpu, cont, t),
            Some(PendingWork::UpgradeTx(cont)) => self.resume_upgrade(cpu, cont, t)?,
            None => {
                let last = std::mem::take(&mut self.cpus[cpu].last_result);
                let op =
                    self.cpus[cpu].program.as_mut().expect("ready CPU has a program").next_op(last);
                self.cpus[cpu].op_start = t;
                self.cpus[cpu].op_stalled = false;
                self.execute(cpu, op, t)?
            }
        };

        match outcome {
            Exec::Done(end, result) => {
                if self.cpus[cpu].op_stalled {
                    let latency = end.saturating_sub(self.cpus[cpu].op_start);
                    self.cpus[cpu].miss_latency.record(latency);
                }
                self.cpus[cpu].last_result = result;
                self.cpus[cpu].retry_streak = 0;
                self.schedule_wake(cpu, end);
            }
            Exec::Compute(until) => {
                self.cpus[cpu].state = CpuState::Computing { until };
                self.cpus[cpu].retry_streak = 0;
                self.schedule_wake(cpu, until);
            }
            Exec::Retry(at, pending) => {
                self.cpus[cpu].pending = Some(pending);
                self.cpus[cpu].stats.retries += 1;
                self.cpus[cpu].stats.stall_time += at.saturating_sub(t);
                self.schedule_wake(cpu, at);
            }
            Exec::Park(deadline) => {
                self.cpus[cpu].state = CpuState::Parked;
                self.cpus[cpu].park_deadline = Some(deadline);
                self.schedule_wake(cpu, deadline);
            }
            Exec::Halt => {
                self.cpus[cpu].state = CpuState::Halted;
            }
        }
        if let Some(w) = self.watchdog {
            let c = &self.cpus[cpu];
            let streak = u64::from(c.retry_streak);
            if streak > w.retry_limit {
                return Err(MachineError::Watchdog(WatchdogViolation::RetryStreak {
                    cpu: c.id,
                    streak,
                    limit: w.retry_limit,
                }));
            }
            if c.zero_yield_acquires > w.zero_yield_limit {
                return Err(MachineError::Watchdog(WatchdogViolation::ZeroYieldAcquires {
                    cpu: c.id,
                    acquires: c.zero_yield_acquires,
                    limit: w.zero_yield_limit,
                }));
            }
        }
        Ok(())
    }

    fn execute(&mut self, cpu: usize, op: Op, t: Nanos) -> Result<Exec, MachineError> {
        match op {
            Op::Compute(d) => {
                self.cpus[cpu].stats.useful_time += d;
                if d == Nanos::ZERO {
                    Ok(Exec::Done(t, OpResult::None))
                } else {
                    Ok(Exec::Compute(t + d))
                }
            }
            Op::Read(va) => self.mem_access(cpu, op, va, false, t),
            Op::Write(va, _) => self.mem_access(cpu, op, va, true, t),
            Op::Tas(va) => self.mem_access(cpu, op, va, true, t),
            Op::Notify(va) => self.do_notify(cpu, op, va, t),
            Op::WatchNotify(va) => self.do_watch(cpu, va, t),
            Op::WaitNotify => {
                if let Some(va) = self.cpus[cpu].pending_notify.take() {
                    Ok(Exec::Done(t, OpResult::Notified(va)))
                } else {
                    Ok(Exec::Park(t + self.config.cpu.notify_timeout))
                }
            }
            Op::UncachedRead(pa) => Ok(self.uncached_access(cpu, pa, None, false, t)),
            Op::UncachedWrite(pa, v) => Ok(self.uncached_access(cpu, pa, Some(v), false, t)),
            Op::UncachedTas(pa) => Ok(self.uncached_access(cpu, pa, None, true, t)),
            Op::Halt => Ok(Exec::Halt),
        }
    }

    /// A word access to uncached, globally-addressable physical memory
    /// (§5.4): one plain bus transaction, never checked by monitors.
    /// `tas` performs a read-modify-write cycle (two word times on the
    /// bus, atomic because the bus is held).
    fn uncached_access(
        &mut self,
        cpu: usize,
        pa: PhysAddr,
        write: Option<u32>,
        tas: bool,
        t: Nanos,
    ) -> Exec {
        let kind =
            if write.is_some() || tas { BusTxKind::PlainWrite } else { BusTxKind::PlainRead };
        let dur = if tas {
            self.bus.duration(kind) * 2 // read-modify-write cycle
        } else {
            self.bus.duration(kind)
        };
        let start = self.bus.reserve(t, dur);
        self.bus.complete(kind, dur);
        let end = start + dur;
        if let Some(o) = self.obs.as_deref_mut() {
            let wait = start.saturating_sub(t);
            o.arb_wait.record(wait);
            o.bus_event(
                start,
                EventKind::BusTx {
                    kind,
                    frame: FrameNum::new(pa.raw() / self.config.cache.page_size().bytes()),
                    issuer: self.cpus[cpu].id,
                    wait,
                    dur,
                    aborted: false,
                },
            );
        }
        self.cpus[cpu].stats.refs += 1;
        self.cpus[cpu].stats.useful_time += end.saturating_sub(t);
        let result = if tas {
            self.cpus[cpu].stats.reads += 1;
            self.cpus[cpu].stats.writes += 1;
            let old = self.memory.read_u32(pa);
            self.memory.write_u32(pa, 1);
            OpResult::Tas(old)
        } else if let Some(v) = write {
            self.cpus[cpu].stats.writes += 1;
            self.memory.write_u32(pa, v);
            OpResult::None
        } else {
            self.cpus[cpu].stats.reads += 1;
            OpResult::Read(self.memory.read_u32(pa))
        };
        Exec::Done(end, result)
    }

    /// Reserves one physical frame of uncached global memory (it is
    /// never mapped, so no cache can hold it) and returns the physical
    /// address of its first word — a home for §5.4 uncached locks.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfMemory`] when no frame is free.
    pub fn alloc_uncached_frame(&mut self) -> Result<PhysAddr, MachineError> {
        // Grab a frame through a throwaway kernel mapping, then unmap it:
        // the allocator keeps it allocated, nothing references it.
        let probe = VirtPageNum::new(0x00ff_ff00 + self.dma_protected.len() as u64);
        let frame = self.kernel.fault_in(
            Asid::KERNEL,
            probe,
            VirtAddr::new(probe.raw() * self.page_size().bytes()),
        )?;
        self.kernel.unmap(Asid::KERNEL, probe);
        Ok(self.page_size().frame_base(frame))
    }

    /// A read, write or TAS against the cache.
    fn mem_access(
        &mut self,
        cpu: usize,
        op: Op,
        va: VirtAddr,
        is_write: bool,
        t: Nanos,
    ) -> Result<Exec, MachineError> {
        let asid = self.cpus[cpu].asid;
        if let Some(slot) = self.cpus[cpu].cache.lookup(asid, va) {
            let flags = self.cpus[cpu].cache.flags(slot);
            if is_write && !flags.exclusive {
                // Write to a shared page: negotiate ownership (§2).
                self.cpus[cpu].op_stalled = true;
                let frame = self.cpus[cpu].phys.frame_of(slot).expect("resident slot indexed");
                let t1 = t + self.config.cpu.upgrade_software;
                return Ok(self.issue_upgrade(cpu, UpgradeCont { op, va, slot, frame }, t1));
            }
            let end = t + self.config.cpu.ref_cycle;
            self.cpus[cpu].stats.useful_time += self.config.cpu.ref_cycle;
            let result = self.data_op(cpu, slot, va, op);
            if is_write {
                let vpn = self.page_size().vpn_of(va);
                self.kernel.mark_used(asid, vpn, true);
            }
            return Ok(Exec::Done(end, result));
        }
        self.cpus[cpu].op_stalled = true;
        // Miss: run the software handler. A read miss on a page marked
        // non-shared (§5.4) fetches it private immediately, avoiding the
        // assert-ownership upgrade on the first write.
        if is_write {
            self.cpus[cpu].stats.write_misses += 1;
        } else {
            self.cpus[cpu].stats.read_misses += 1;
        }
        let vpn = self.page_size().vpn_of(va);
        let hinted = self.kernel.translate(asid, vpn).is_some_and(|pte| pte.hint_private);
        let want_private = is_write || hinted;
        let cause = if is_write { MissCause::Write } else { MissCause::Read };
        match self.fetch_page(cpu, asid, va, want_private, cause, t, 0)? {
            FetchOutcome::Restart(at) => Ok(Exec::Retry(at, PendingWork::FullOp(op))),
            FetchOutcome::TxAborted { at, frame, slot } => Ok(Exec::Retry(
                at,
                PendingWork::FetchTx(FetchCont { op, asid, va, want_private, cause, frame, slot }),
            )),
            FetchOutcome::Loaded { slot, end } => {
                self.cpus[cpu].stats.stall_time += end.saturating_sub(t);
                Ok(self.finish_access(cpu, op, va, slot, end))
            }
        }
    }

    /// Completes a memory access once the page is resident with the
    /// right ownership: performs the word operation and charges the
    /// retried reference cycle.
    fn finish_access(&mut self, cpu: usize, op: Op, va: VirtAddr, slot: SlotId, t: Nanos) -> Exec {
        let end = t + self.config.cpu.ref_cycle;
        self.cpus[cpu].stats.useful_time += self.config.cpu.ref_cycle;
        let result = self.data_op(cpu, slot, va, op);
        let is_write = matches!(op, Op::Write(..) | Op::Tas(_));
        let asid = self.cpus[cpu].asid;
        self.kernel.mark_used(asid, self.page_size().vpn_of(va), is_write);
        Exec::Done(end, result)
    }

    /// Performs the word access on a resident slot and builds the result.
    fn data_op(&mut self, cpu: usize, slot: SlotId, va: VirtAddr, op: Op) -> OpResult {
        let page = self.page_size();
        let offset = (page.offset_of(va.raw()) & !3) as usize;
        let asid = self.cpus[cpu].asid;
        if let Some(o) = self.obs.as_deref_mut() {
            if let Some(a) = o.attrib_mut() {
                let write = matches!(op, Op::Write(..) | Op::Tas(_));
                a.record_touch(
                    asid,
                    page.vpn_of(va),
                    cpu,
                    offset as u32,
                    page.bytes() as u32,
                    write,
                );
            }
        }
        self.cpus[cpu].stats.refs += 1;
        self.cpus[cpu].zero_yield_acquires = 0;
        match op {
            Op::Write(_, v) => {
                self.cpus[cpu].stats.writes += 1;
                self.cpus[cpu].cache.write(slot, offset, &v.to_le_bytes());
                OpResult::None
            }
            Op::Tas(_) => {
                self.cpus[cpu].stats.writes += 1;
                self.cpus[cpu].stats.reads += 1;
                let old = read_u32(self.cpus[cpu].cache.read(slot, offset, 4));
                self.cpus[cpu].cache.write(slot, offset, &1u32.to_le_bytes());
                OpResult::Tas(old)
            }
            _ => {
                self.cpus[cpu].stats.reads += 1;
                OpResult::Read(read_u32(self.cpus[cpu].cache.read(slot, offset, 4)))
            }
        }
    }

    /// Issues (or re-issues) the assert-ownership transaction of a write
    /// upgrade.
    fn issue_upgrade(&mut self, cpu: usize, cont: UpgradeCont, t: Nanos) -> Exec {
        if let Some(o) = self.obs.as_deref_mut() {
            o.cpu_event(cpu, t, EventKind::MissBegin { cause: MissCause::Upgrade });
        }
        let tx = BusTransaction::new(BusTxKind::AssertOwnership, cont.frame, self.cpus[cpu].id);
        let (end, ok) = self.bus_transaction(tx, t);
        if !ok {
            if let Some(o) = self.obs.as_deref_mut() {
                o.cpu_event(
                    cpu,
                    end,
                    EventKind::MissEnd { cause: MissCause::Upgrade, completed: false },
                );
            }
            let at = self.retry_at(cpu, end);
            return Exec::Retry(at, PendingWork::UpgradeTx(cont));
        }
        self.cpus[cpu].stats.upgrades += 1;
        // A private page is single-copy: drop our other aliases.
        for other in self.cpus[cpu].phys.slots(cont.frame).to_vec() {
            if other != cont.slot {
                self.cpus[cpu].cache.invalidate(other);
                self.cpus[cpu].phys.remove(cont.frame, other);
            }
        }
        self.cpus[cpu].cache.set_flags(cont.slot, SlotFlags::private_page());
        self.cpus[cpu].monitor.table_mut().set(cont.frame, ActionCode::Protect);
        self.cpus[cpu].zero_yield_acquires += 1;
        self.cpus[cpu].stats.stall_time += end.saturating_sub(t);
        let asid = self.cpus[cpu].asid;
        let vpn = self.page_size().vpn_of(cont.va);
        if let Some(o) = self.obs.as_deref_mut() {
            o.cpu_event(
                cpu,
                end,
                EventKind::MissEnd { cause: MissCause::Upgrade, completed: true },
            );
            o.miss_service.record(end.saturating_sub(t));
            if let Some(a) = o.attrib_mut() {
                a.record_service(asid, vpn, end.saturating_sub(t));
            }
        }
        self.finish_access(cpu, cont.op, cont.va, cont.slot, end)
    }

    /// Resumes an upgrade whose assert-ownership was aborted. If our
    /// shared copy was invalidated while we waited, fall back to a full
    /// re-execution (it will take the miss path).
    fn resume_upgrade(
        &mut self,
        cpu: usize,
        cont: UpgradeCont,
        t: Nanos,
    ) -> Result<Exec, MachineError> {
        let asid = self.cpus[cpu].asid;
        match self.cpus[cpu].cache.probe(asid, cont.va) {
            Some(slot) if slot == cont.slot => Ok(self.issue_upgrade(cpu, cont, t)),
            _ => self.execute(cpu, cont.op, t),
        }
    }

    /// Resumes a miss whose block-fetch transaction was aborted: re-issue
    /// just the transaction (§3.2) into the already-reserved victim slot.
    fn resume_fetch(&mut self, cpu: usize, cont: FetchCont, t: Nanos) -> Exec {
        if let Some(o) = self.obs.as_deref_mut() {
            o.cpu_event(cpu, t, EventKind::MissBegin { cause: cont.cause });
        }
        let kind = if cont.want_private { BusTxKind::ReadPrivate } else { BusTxKind::ReadShared };
        let tx = BusTransaction::new(kind, cont.frame, self.cpus[cpu].id);
        let (end, ok) = self.bus_transaction(tx, t);
        if !ok {
            if let Some(o) = self.obs.as_deref_mut() {
                o.cpu_event(cpu, end, EventKind::MissEnd { cause: cont.cause, completed: false });
            }
            let at = self.retry_at(cpu, end);
            return Exec::Retry(at, PendingWork::FetchTx(cont));
        }
        let slot = self.install_fetched(cpu, &cont);
        self.cpus[cpu].stats.stall_time += end.saturating_sub(t);
        let vpn = self.page_size().vpn_of(cont.va);
        if let Some(o) = self.obs.as_deref_mut() {
            o.cpu_event(cpu, end, EventKind::MissEnd { cause: cont.cause, completed: true });
            o.miss_service.record(end.saturating_sub(t));
            if let Some(a) = o.attrib_mut() {
                a.record_service(cont.asid, vpn, end.saturating_sub(t));
            }
        }
        self.finish_access(cpu, cont.op, cont.va, slot, end)
    }

    /// Installs the fetched page into the reserved slot and updates the
    /// software phys-index and action table.
    fn install_fetched(&mut self, cpu: usize, cont: &FetchCont) -> SlotId {
        if cont.want_private {
            // A private page must be the only copy anywhere, including our
            // own aliases under other virtual addresses.
            for other in self.cpus[cpu].phys.slots(cont.frame).to_vec() {
                self.cpus[cpu].cache.invalidate(other);
                self.cpus[cpu].phys.remove(cont.frame, other);
            }
        }
        let data = self.memory.read_frame(cont.frame);
        let flags =
            if cont.want_private { SlotFlags::private_page() } else { SlotFlags::shared_clean() };
        let vpn = self.page_size().vpn_of(cont.va);
        self.cpus[cpu].cache.install(cont.slot, Tag::new(cont.asid, vpn), flags, data);
        self.cpus[cpu].phys.insert(cont.frame, cont.slot);
        let code =
            if cont.want_private { ActionCode::Protect } else { ActionCode::InterruptOnOwnership };
        self.cpus[cpu].monitor.table_mut().set(cont.frame, code);
        self.cpus[cpu].zero_yield_acquires += 1;
        if let Some(o) = self.obs.as_deref_mut() {
            if let Some(a) = o.attrib_mut() {
                a.map_frame(cont.frame, cont.asid, vpn);
            }
        }
        cont.slot
    }

    /// The software cache-miss handler (§2, §5.1): exception entry,
    /// translation (possibly nested PTE misses), victim write-back
    /// overlapped with bookkeeping, block fetch.
    #[allow(clippy::too_many_arguments)]
    fn fetch_page(
        &mut self,
        cpu: usize,
        asid: Asid,
        va: VirtAddr,
        want_private: bool,
        cause: MissCause,
        t: Nanos,
        depth: u8,
    ) -> Result<FetchOutcome, MachineError> {
        let t_begin = t;
        if let Some(o) = self.obs.as_deref_mut() {
            o.cpu_event(cpu, t_begin, EventKind::MissBegin { cause });
        }
        let t = t + self.config.cpu.miss_pre;

        // --- Translation, charging PTE cache traffic (§2). ---
        let vpn = self.page_size().vpn_of(va);
        let (frame, t) = match self.resolve_frame(cpu, asid, vpn, va, t, depth)? {
            ResolveOutcome::Frame(frame, t) => (frame, t),
            ResolveOutcome::Restart(at) => {
                if let Some(o) = self.obs.as_deref_mut() {
                    o.cpu_event(cpu, at, EventKind::MissEnd { cause, completed: false });
                }
                return Ok(FetchOutcome::Restart(at));
            }
        };

        // --- Victim selection and write-back (overlapped with `mid`). ---
        let victim = self.cpus[cpu].cache.victim_for(asid, va);
        let slot = victim.slot;
        let mut wb_end = t;
        if victim.evicted.is_some() {
            let (_tag, flags, bytes) =
                self.cpus[cpu].cache.invalidate(slot).expect("victim is valid");
            let vframe = self.cpus[cpu].phys.frame_of(slot).expect("victim is indexed");
            self.cpus[cpu].phys.remove(vframe, slot);
            if flags.modified {
                let tx = BusTransaction::new(BusTxKind::WriteBack, vframe, self.cpus[cpu].id);
                let (end, ok) = self.bus_transaction(tx, t);
                debug_assert!(ok, "own write-back must not abort");
                self.memory.write_frame(vframe, &bytes);
                self.cpus[cpu].stats.writebacks += 1;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.cpu_event(cpu, end, EventKind::WriteBack { frame: vframe });
                }
                wb_end = end;
            }
            if self.cpus[cpu].phys.slots(vframe).is_empty() {
                self.cpus[cpu].monitor.table_mut().set(vframe, ActionCode::Ignore);
            }
        }
        let t = (t + self.config.cpu.miss_mid).max(wb_end) + self.config.cpu.miss_post;

        // --- Block fetch with ownership (§3.1). ---
        let kind = if want_private { BusTxKind::ReadPrivate } else { BusTxKind::ReadShared };
        let tx = BusTransaction::new(kind, frame, self.cpus[cpu].id);
        let (end, ok) = self.bus_transaction(tx, t);
        if !ok {
            if let Some(o) = self.obs.as_deref_mut() {
                o.cpu_event(cpu, end, EventKind::MissEnd { cause, completed: false });
            }
            let at = self.retry_at(cpu, end);
            return Ok(FetchOutcome::TxAborted { at, frame, slot });
        }
        let cont = FetchCont { op: Op::Halt, asid, va, want_private, cause, frame, slot };
        let slot = self.install_fetched(cpu, &cont);
        if let Some(o) = self.obs.as_deref_mut() {
            o.cpu_event(cpu, end, EventKind::MissEnd { cause, completed: true });
            if depth == 0 {
                o.miss_service.record(end.saturating_sub(t_begin));
                if let Some(a) = o.attrib_mut() {
                    a.record_service(asid, vpn, end.saturating_sub(t_begin));
                }
            }
        }
        Ok(FetchOutcome::Loaded { slot, end })
    }

    /// Virtual-to-physical translation during miss handling. At depth 0
    /// the PTE is referenced *through the cache* (kernel space), so a
    /// cold PTE page costs a nested miss; beyond [`MAX_PT_DEPTH`] the
    /// root tables live in local memory (§2).
    fn resolve_frame(
        &mut self,
        cpu: usize,
        asid: Asid,
        vpn: VirtPageNum,
        va: VirtAddr,
        mut t: Nanos,
        depth: u8,
    ) -> Result<ResolveOutcome, MachineError> {
        if depth < MAX_PT_DEPTH {
            let pte_va = self.kernel.pte_va(asid, vpn);
            if self.cpus[cpu].cache.lookup(Asid::KERNEL, pte_va).is_some() {
                t += self.config.cpu.ref_cycle;
            } else {
                self.cpus[cpu].stats.pte_misses += 1;
                match self.fetch_page(
                    cpu,
                    Asid::KERNEL,
                    pte_va,
                    false,
                    MissCause::Pte,
                    t,
                    depth + 1,
                )? {
                    FetchOutcome::Loaded { end, .. } => t = end + self.config.cpu.ref_cycle,
                    FetchOutcome::TxAborted { at, .. } | FetchOutcome::Restart(at) => {
                        // Nested aborts restart the whole handler; PTE
                        // pages are rarely contended.
                        return Ok(ResolveOutcome::Restart(at));
                    }
                }
            }
        } else {
            // Root-table information in local memory: one local reference.
            t += self.config.cpu.ref_cycle;
        }
        let frame = match self.kernel.translate(asid, vpn) {
            Some(pte) => pte.frame,
            None => {
                // Real page fault: the OS allocates and zero-fills a frame.
                self.cpus[cpu].stats.page_faults += 1;
                t += self.config.cpu.page_fault;
                let frame = self.kernel.fault_in(asid, vpn, va)?;
                // Restore from the backing store if the page was
                // reclaimed earlier; otherwise demand-zero.
                let bytes = self
                    .swap
                    .remove(&(asid, vpn))
                    .unwrap_or_else(|| vec![0u8; self.page_size().bytes() as usize]);
                self.memory.write_frame(frame, &bytes);
                frame
            }
        };
        // Teach attribution the frame's identity *before* the block
        // fetch, so even a page's very first transaction attributes.
        if let Some(o) = self.obs.as_deref_mut() {
            if let Some(a) = o.attrib_mut() {
                a.map_frame(frame, asid, vpn);
            }
        }
        Ok(ResolveOutcome::Frame(frame, t))
    }

    // ------------------------------------------------------------------
    // Notification (§5.4)
    // ------------------------------------------------------------------

    fn do_notify(
        &mut self,
        cpu: usize,
        op: Op,
        va: VirtAddr,
        t: Nanos,
    ) -> Result<Exec, MachineError> {
        let asid = self.cpus[cpu].asid;
        let vpn = self.page_size().vpn_of(va);
        let frame = match self.kernel.translate(asid, vpn) {
            Some(pte) => pte.frame,
            None => return Err(MachineError::UnmappedNotify { asid, addr: va }),
        };
        let tx = BusTransaction::new(BusTxKind::Notify, frame, self.cpus[cpu].id);
        let (end, ok) = self.bus_transaction(tx, t);
        if !ok {
            let at = self.retry_at(cpu, end);
            return Ok(Exec::Retry(at, PendingWork::FullOp(op)));
        }
        self.cpus[cpu].stats.useful_time += end.saturating_sub(t);
        Ok(Exec::Done(end, OpResult::None))
    }

    fn do_watch(&mut self, cpu: usize, va: VirtAddr, t: Nanos) -> Result<Exec, MachineError> {
        let asid = self.cpus[cpu].asid;
        let vpn = self.page_size().vpn_of(va);
        let frame = match self.kernel.translate(asid, vpn) {
            Some(pte) => pte.frame,
            None => self.kernel.fault_in(asid, vpn, va)?,
        };
        // Flush any cached copy first: one action-table entry per frame,
        // and a watched frame must not be cached (the notify code `11`
        // replaces the consistency codes).
        let t1 = self.flush_frame(cpu, frame, false, t);
        // Standalone table update: the explicit write-action-table
        // transaction (§3.1).
        let tx = BusTransaction::new(BusTxKind::WriteActionTable, frame, self.cpus[cpu].id);
        let (end, _ok) = self.bus_transaction(tx, t1);
        self.cpus[cpu].monitor.table_mut().set(frame, ActionCode::NotifyWatch);
        self.cpus[cpu].watches.insert(frame, va);
        self.cpus[cpu].stats.stall_time += end.saturating_sub(t);
        Ok(Exec::Done(end, OpResult::None))
    }

    // ------------------------------------------------------------------
    // Kernel-level operations (§3.3, §3.4)
    // ------------------------------------------------------------------

    /// Changes the mapping of ⟨asid, va⟩ to `new_frame`, executing the
    /// §3.4 translation-consistency sequence on processor `by`:
    /// read-private of the PTE page, assert-ownership on the old frame
    /// (flushing every cached copy machine-wide), table update, release.
    ///
    /// Returns the old frame.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoSuchProcessor`] for a bad index.
    ///
    /// # Panics
    ///
    /// Panics if the page is not currently mapped (a kernel bug).
    pub fn change_mapping(
        &mut self,
        by: usize,
        asid: Asid,
        va: VirtAddr,
        new_frame: FrameNum,
    ) -> Result<FrameNum, MachineError> {
        self.check_cpu(by)?;
        let vpn = self.page_size().vpn_of(va);
        let old = self.kernel.translate(asid, vpn).expect("change_mapping of unmapped page");
        let t = self.now;
        // 1. Exclusive ownership of the PTE page.
        let pte_va = self.kernel.pte_va(asid, vpn);
        let t = self.fetch_private_for_kernel(by, pte_va, t)?;
        // 2. Assert-ownership on the old frame: every cache discards or
        //    writes back its copies (their monitors interrupt them).
        let t = self.flush_own_then_assert(by, old.frame, t);
        // 3. Update the page table.
        let mut pte = old;
        pte.frame = new_frame;
        pte.referenced = false;
        pte.modified = false;
        self.kernel.map(asid, vpn, pte);
        // 4. Release ownership of the asserted frame (we never cached it).
        self.cpus[by].monitor.table_mut().set(old.frame, ActionCode::Ignore);
        self.now = self.now.max(t);
        Ok(old.frame)
    }

    /// Deletes an address space (§3.4): assert-ownership on every
    /// resident page so all caches flush, then unmap and free frames.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoSuchProcessor`] for a bad index.
    pub fn delete_address_space(&mut self, by: usize, asid: Asid) -> Result<(), MachineError> {
        self.check_cpu(by)?;
        let mut t = self.now;
        for (_, frame) in self.kernel.resident_pages(asid) {
            t = self.flush_own_then_assert(by, frame, t);
            self.cpus[by].monitor.table_mut().set(frame, ActionCode::Ignore);
        }
        self.kernel.destroy_space(asid);
        self.swap.retain(|(a, _), _| *a != asid);
        self.now = self.now.max(t);
        Ok(())
    }

    /// Marks a mapped page as non-shared (§5.4): subsequent read misses
    /// fetch it private, eliminating the later assert-ownership upgrade.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::UnmappedNotify`] (reused for "operation on
    /// unmapped page") if the page has no mapping yet.
    pub fn set_private_hint(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        hint: bool,
    ) -> Result<(), MachineError> {
        let vpn = self.page_size().vpn_of(va);
        if self.kernel.set_private_hint(asid, vpn, hint) {
            Ok(())
        } else {
            Err(MachineError::UnmappedNotify { asid, addr: va })
        }
    }

    /// Page-out daemon, pass 1 (§3.4): clears the referenced/modified
    /// bits of every resident page of `asid` and flushes the pages from
    /// all caches with assert-ownership, so that subsequent touches miss
    /// and re-set the reference information. Returns how many pages had
    /// been referenced since the previous sweep.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoSuchProcessor`] for a bad index.
    pub fn sweep_reference_bits(&mut self, by: usize, asid: Asid) -> Result<usize, MachineError> {
        self.check_cpu(by)?;
        let mut t = self.now;
        let mut referenced = 0;
        for (vpn, frame) in self.kernel.resident_pages(asid) {
            if self.kernel.clear_referenced(asid, vpn) {
                referenced += 1;
            }
            t = self.flush_own_then_assert(by, frame, t);
            self.cpus[by].monitor.table_mut().set(frame, ActionCode::Ignore);
        }
        self.now = self.now.max(t);
        Ok(referenced)
    }

    /// Page-out daemon, pass 2 (§3.4): reclaims every resident page of
    /// `asid` that has not been referenced since the last sweep — its
    /// contents go to the backing store and its frame is freed. Returns
    /// the reclaimed virtual pages.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoSuchProcessor`] for a bad index.
    pub fn reclaim_unreferenced(
        &mut self,
        by: usize,
        asid: Asid,
    ) -> Result<Vec<VirtPageNum>, MachineError> {
        self.check_cpu(by)?;
        let mut t = self.now;
        let mut reclaimed = Vec::new();
        for (vpn, frame) in self.kernel.resident_pages(asid) {
            let pte = self.kernel.translate(asid, vpn).expect("resident");
            if pte.referenced {
                continue;
            }
            // Flush all cached copies (writing back any dirty owner), so
            // memory holds the authoritative bytes, then save and free.
            t = self.flush_own_then_assert(by, frame, t);
            self.cpus[by].monitor.table_mut().set(frame, ActionCode::Ignore);
            let bytes = self.memory.read_frame(frame);
            if self.kernel.reclaim(asid, vpn).is_some() {
                self.swap.insert((asid, vpn), bytes);
                reclaimed.push(vpn);
            }
        }
        self.now = self.now.max(t);
        Ok(reclaimed)
    }

    /// Acquires the page at `va` (kernel space) privately into `by`'s
    /// cache, for PTE-page ownership. The kernel holds the CPU, so owner
    /// reactions are serviced synchronously.
    fn fetch_private_for_kernel(
        &mut self,
        by: usize,
        va: VirtAddr,
        t: Nanos,
    ) -> Result<Nanos, MachineError> {
        if let Some(slot) = self.cpus[by].cache.lookup(Asid::KERNEL, va) {
            if self.cpus[by].cache.flags(slot).exclusive {
                return Ok(t);
            }
        }
        let mut t = t;
        let mut iterations: u64 = 0;
        loop {
            match self.fetch_page(by, Asid::KERNEL, va, true, MissCause::Kernel, t, 0)? {
                FetchOutcome::Loaded { end, .. } => return Ok(end),
                FetchOutcome::TxAborted { at, .. } | FetchOutcome::Restart(at) => {
                    let t1 = self.service_interrupts(by, at);
                    t = self.service_all_other(by, t1);
                }
            }
            iterations += 1;
            // The loop is unbounded in the benign protocol (it always
            // converges); cap it only under a watchdog so a hostile fault
            // plan cannot livelock the simulator inside one event.
            if let Some(w) = self.watchdog {
                if iterations > w.retry_limit {
                    return Err(MachineError::Watchdog(WatchdogViolation::KernelLoopStuck {
                        cpu: self.cpus[by].id,
                        what: "fetch-private-for-kernel",
                        iterations,
                    }));
                }
            }
        }
    }

    /// Flushes `by`'s own copies of `frame`, then issues assert-ownership
    /// so every other cache flushes too; leaves `by`'s table entry at
    /// `Protect`. Used by DMA setup and the §3.4 sequences.
    ///
    /// These kernel sequences hold the issuing CPU, so when an owner
    /// aborts the assert, the owner's consistency interrupt is serviced
    /// synchronously here (in the running machine the owner's handler
    /// would run at its next instruction boundary).
    fn flush_own_then_assert(&mut self, by: usize, frame: FrameNum, t: Nanos) -> Nanos {
        // Own copies would make our own monitor abort the assert (alias
        // rule), so drop them first.
        let mut t = self.flush_frame(by, frame, false, t);
        // Already protected by this board with nothing cached (e.g. an
        // overlapping DMA on the same frame): the assert would only abort
        // against our own protection.
        if self.cpus[by].monitor.table().get(frame) == ActionCode::Protect
            && self.cpus[by].phys.slots(frame).is_empty()
        {
            return t;
        }
        let mut iterations: u64 = 0;
        loop {
            let tx = BusTransaction::new(BusTxKind::AssertOwnership, frame, self.cpus[by].id);
            let (end, ok) = self.bus_transaction(tx, t);
            if ok {
                self.cpus[by].monitor.table_mut().set(frame, ActionCode::Protect);
                return end;
            }
            // Some owner aborted us: let every other board service its
            // pending words (write back / invalidate), then retry.
            t = self.service_all_other(by, end + self.config.cpu.retry_backoff);
            iterations += 1;
            // This path cannot return an error (DMA setup drives it from
            // the event loop), so a watchdog-capped livelock is parked in
            // `stuck` for the event loop to surface.
            if let Some(w) = self.watchdog {
                if iterations > w.retry_limit {
                    self.stuck = Some(WatchdogViolation::KernelLoopStuck {
                        cpu: self.cpus[by].id,
                        what: "flush-own-then-assert",
                        iterations,
                    });
                    return end;
                }
            }
        }
    }

    /// Services the pending interrupt words of every processor except
    /// `by`; used by kernel sequences that block the issuing CPU.
    fn service_all_other(&mut self, by: usize, t: Nanos) -> Nanos {
        let mut latest = t;
        for j in 0..self.cpus.len() {
            if j != by && self.cpus[j].monitor.pending() > 0 {
                let end = self.service_interrupts(j, t);
                self.cpus[j].stats.stall_time += end - t;
                latest = latest.max(end);
            }
        }
        latest
    }

    // ------------------------------------------------------------------
    // DMA (§3.3)
    // ------------------------------------------------------------------

    fn step_dma(&mut self, handle: usize) {
        let t = self.now;
        // Wait for a serialized predecessor on the same frames.
        if let Some(pred) = self.dmas[handle].blocked_on {
            if self.dmas[pred].phase != DmaPhase::Done {
                let seq = self.dmas[handle].bump_seq();
                self.queue.schedule(t + Nanos::from_us(10), Event::Dma { dma: handle, seq });
                return;
            }
            self.dmas[handle].blocked_on = None;
        }
        let host = self.dmas[handle].host;
        let phase = self.dmas[handle].phase;
        match phase {
            DmaPhase::Setup(idx) => {
                let frame = self.dmas[handle].request.frames[idx];
                let end = self.flush_own_then_assert(host, frame, t);
                self.dma_protected.insert(frame, host);
                let next = if idx + 1 < self.dmas[handle].request.frames.len() {
                    DmaPhase::Setup(idx + 1)
                } else {
                    DmaPhase::Transfer(0)
                };
                self.dmas[handle].phase = next;
                let seq = self.dmas[handle].bump_seq();
                self.queue.schedule(end, Event::Dma { dma: handle, seq });
            }
            DmaPhase::Transfer(idx) => {
                let frame = self.dmas[handle].request.frames[idx];
                let page = self.page_size().bytes() as usize;
                let (kind, write_to_mem) = match self.dmas[handle].request.direction {
                    DmaDirection::ToMemory => (BusTxKind::PlainWrite, true),
                    DmaDirection::FromMemory => (BusTxKind::PlainRead, false),
                };
                let tx = BusTransaction::new(kind, frame, self.dmas[handle].id);
                // Transient copier errors on the DMA stream: bounded
                // retry, each failed attempt costs one transfer time.
                let failures = self.fault_hook.copier_failures(t, &tx);
                let dur = if failures > 0 {
                    let total = self
                        .memory
                        .timings()
                        .page_transfer_with_retries(self.page_size(), failures);
                    let extra = total.saturating_sub(self.memory.page_transfer_time());
                    self.fault_stats.copier_retries += u64::from(failures);
                    self.fault_stats.copier_retry_time += extra;
                    total
                } else {
                    self.memory.page_transfer_time()
                };
                let start = self.bus.reserve(t, dur);
                self.bus.complete(kind, dur);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.arb_wait.record(start.saturating_sub(t));
                    o.bus_event(
                        start,
                        EventKind::Copier {
                            frame,
                            issuer: self.dmas[handle].id,
                            dur,
                            write: write_to_mem,
                        },
                    );
                    if failures > 0 {
                        o.bus_event(start, EventKind::Fault { class: FaultClass::CopierRetry });
                    }
                }
                if write_to_mem {
                    let bytes =
                        self.dmas[handle].request.data[idx * page..(idx + 1) * page].to_vec();
                    self.memory.write_frame(frame, &bytes);
                } else {
                    let bytes = self.memory.read_frame(frame);
                    self.dmas[handle].extend_buffer(&bytes);
                }
                // Monitors ignore plain transfers, but observe them anyway
                // for completeness (no action-table code reacts).
                for c in &mut self.cpus {
                    let _ = c.monitor.observe(&tx);
                }
                let next = if idx + 1 < self.dmas[handle].request.frames.len() {
                    DmaPhase::Transfer(idx + 1)
                } else {
                    DmaPhase::Teardown
                };
                self.dmas[handle].phase = next;
                let seq = self.dmas[handle].bump_seq();
                self.queue.schedule(start + dur, Event::Dma { dma: handle, seq });
            }
            DmaPhase::Teardown => {
                for i in 0..self.dmas[handle].request.frames.len() {
                    let frame = self.dmas[handle].request.frames[i];
                    self.cpus[host].monitor.table_mut().set(frame, ActionCode::Ignore);
                    self.dma_protected.remove(&frame);
                }
                self.dmas[handle].phase = DmaPhase::Done;
            }
            DmaPhase::Done => {}
        }
    }
}

fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

/// Kinds eligible for spurious abort injection: exactly those whose
/// issuers retry on a protocol abort. Write-backs are *never* aborted
/// (the machine `debug_assert`s on it) and plain/table-update cycles
/// ignore the abort line entirely.
const fn can_inject_abort(kind: BusTxKind) -> bool {
    matches!(
        kind,
        BusTxKind::ReadShared
            | BusTxKind::ReadPrivate
            | BusTxKind::AssertOwnership
            | BusTxKind::Notify
    )
}
