//! Protocol invariant validation.
//!
//! Checks the two-state consistency invariants of §3.1 over a whole
//! machine. Because invalidations are delivered asynchronously through
//! the monitor FIFOs, a frame is *in transition* at a given cache while
//! an unserviced interrupt word for it sits in that cache's FIFO; the
//! invariants exempt exactly those windows — anything else is a
//! simulator bug.

use std::collections::BTreeSet;

use vmp_bus::ActionCode;
use vmp_types::FrameNum;

use crate::Machine;

impl Machine {
    /// Validates the consistency invariants; returns a description of
    /// the first violation found.
    ///
    /// Invariants (per physical frame `f`):
    ///
    /// 1. at most one cache holds `f` with `exclusive` set, in exactly
    ///    one slot;
    /// 2. if some cache owns `f`, no other cache holds any copy —
    ///    except caches with a pending interrupt word for `f`;
    /// 3. every non-exclusive copy of `f` is byte-identical to main
    ///    memory — same exemption;
    /// 4. `modified` implies `exclusive`;
    /// 5. action tables agree with cache state: `10` ⇔ ownership (or
    ///    DMA protection, or a pending word), `01` ⇒ a shared copy is
    ///    present (or a pending word), `11` ⇒ no copy cached;
    /// 6. the software phys-index agrees with the cache tag array.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.cpus.len();

        // Frames with unserviced interrupt words, per cpu. A monitor whose
        // FIFO overflowed may have dropped words for *any* frame; until
        // the processor runs its recovery sweep (§3.3), every frame it
        // caches is potentially in transition.
        let overflowed: Vec<bool> = self.cpus.iter().map(|c| c.monitor.overflowed()).collect();
        let pending: Vec<BTreeSet<FrameNum>> = self
            .cpus
            .iter()
            .map(|c| c.monitor.pending_words().map(|w| w.frame).collect())
            .collect();
        let in_transition =
            |cpu: usize, frame: FrameNum| overflowed[cpu] || pending[cpu].contains(&frame);

        // Gather copies per frame: (cpu, slot, flags).
        let mut copies: Vec<(usize, vmp_cache::SlotId, vmp_cache::SlotFlags, FrameNum)> =
            Vec::new();
        for (i, cpu) in self.cpus.iter().enumerate() {
            let mut seen_slots = 0usize;
            for (slot, _tag, flags) in cpu.cache.iter_valid() {
                seen_slots += 1;
                let Some(frame) = cpu.phys.frame_of(slot) else {
                    return Err(format!("cpu{i} {slot} valid but missing from phys index"));
                };
                if flags.modified && !flags.exclusive {
                    return Err(format!("cpu{i} {slot} modified but not exclusive ({frame})"));
                }
                copies.push((i, slot, flags, frame));
            }
            // Index must not contain stale entries either.
            let indexed = cpu.phys.iter().count();
            if indexed != seen_slots {
                return Err(format!(
                    "cpu{i} phys index has {indexed} entries but cache has {seen_slots} valid slots"
                ));
            }
        }

        // Per-frame ownership analysis.
        let frames: BTreeSet<FrameNum> = copies.iter().map(|c| c.3).collect();
        for f in frames {
            let holders: Vec<&(usize, vmp_cache::SlotId, vmp_cache::SlotFlags, FrameNum)> =
                copies.iter().filter(|c| c.3 == f).collect();
            let owners: Vec<usize> =
                holders.iter().filter(|c| c.2.exclusive).map(|c| c.0).collect();
            if owners.len() > 1 {
                return Err(format!("{f} owned exclusively by multiple cpus: {owners:?}"));
            }
            if let Some(&owner) = owners.first() {
                if holders.iter().filter(|c| c.0 == owner).count() > 1 {
                    return Err(format!("{f} held privately by cpu{owner} in multiple slots"));
                }
                for c in &holders {
                    if c.0 != owner && !in_transition(c.0, f) {
                        return Err(format!(
                            "{f} owned by cpu{owner} but cpu{} holds a copy with no pending invalidation",
                            c.0
                        ));
                    }
                }
            }
            // Shared copies must match memory.
            for c in &holders {
                if !c.2.exclusive && !in_transition(c.0, f) {
                    let mem = self.memory.read_frame(f);
                    let cached = self.cpus[c.0].cache.snapshot(c.1);
                    if mem != cached {
                        return Err(format!("{f} shared copy at cpu{} diverges from memory", c.0));
                    }
                }
            }
        }

        // Action-table consistency.
        for i in 0..n {
            for (f, code) in self.cpus[i].monitor.table().iter_active() {
                let my_copies: Vec<_> = copies.iter().filter(|c| c.0 == i && c.3 == f).collect();
                match code {
                    ActionCode::Protect => {
                        let owns = my_copies.iter().any(|c| c.2.exclusive);
                        let dma = self.dma_protected.get(&f) == Some(&i);
                        if !owns && !dma && !in_transition(i, f) {
                            return Err(format!(
                                "cpu{i} protects {f} but neither owns nor DMA-protects it"
                            ));
                        }
                    }
                    ActionCode::InterruptOnOwnership => {
                        if my_copies.is_empty() && !in_transition(i, f) {
                            return Err(format!("cpu{i} marks {f} shared but caches no copy"));
                        }
                    }
                    ActionCode::NotifyWatch => {
                        if !my_copies.is_empty() {
                            return Err(format!("cpu{i} watches {f} while caching it"));
                        }
                    }
                    ActionCode::Ignore => {}
                }
            }
            // Converse: cached frames must have a matching code.
            for c in copies.iter().filter(|c| c.0 == i) {
                let code = self.cpus[i].monitor.table().get(c.3);
                let expected_private = c.2.exclusive;
                match code {
                    ActionCode::Protect if !expected_private && !in_transition(i, c.3) => {
                        return Err(format!("cpu{i} caches {} shared but protects it", c.3));
                    }
                    ActionCode::InterruptOnOwnership
                        if expected_private && !in_transition(i, c.3) =>
                    {
                        return Err(format!("cpu{i} owns {} but marks it shared", c.3));
                    }
                    ActionCode::Ignore if !in_transition(i, c.3) => {
                        return Err(format!(
                            "cpu{i} caches {} but its action table ignores it",
                            c.3
                        ));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}
