//! Versioned machine snapshots: capture the complete simulator state
//! between events and resume it bit-identically.
//!
//! A [`MachineSnapshot`] records everything that influences the
//! continuation of a run — cache slots and LRU clocks, page tables and
//! the frame free list, bus-monitor action tables and interrupt FIFOs,
//! the live bus reservation book, the event queue with its FIFO
//! tie-breakers, per-processor execution state (including mid-operation
//! retry continuations), DMA progress, swap contents, fault-injector RNG
//! streams, and every statistics counter. Observability rings are *not*
//! captured: they are pure outputs that never feed back into execution.
//!
//! The container is a small binary envelope: an 8-byte magic
//! (`VMPSNAP\x01`), a length-prefixed JSON header describing the state
//! tree, and a raw byte blob holding bulk data (memory frames, cache
//! pages, swap pages, DMA buffers). The header references blob ranges
//! with `{"$blob": offset, "len": length}` objects, which also lets
//! [`MachineSnapshot::diff`] compare two snapshots structurally and
//! report the first divergent field or byte.
//!
//! Programs and fault hooks hold trait objects the machine cannot
//! construct on its own, so [`Machine::resume`] takes caller-supplied
//! fresh instances and rewinds them with [`Program::restore_state`] /
//! [`vmp_bus::FaultHook::restore_state`].

use std::collections::BTreeMap;

use vmp_bus::{ActionCode, BusTxKind, FaultHook, InterruptWord};
use vmp_cache::{SlotFlags, SlotId, Tag};
use vmp_obs::json::{parse, Value};
use vmp_obs::MissCause;
use vmp_sim::{AttentionClock, BusyTracker, EventQueue, Histogram};
use vmp_types::{Asid, FrameNum, Nanos, PhysAddr, ProcessorId, VirtAddr, VirtPageNum};
use vmp_vm::Pte;

use crate::dma::{DmaDirection, DmaEngine, DmaPhase, DmaRequest};
use crate::machine::{CpuState, Event, FetchCont, PendingWork, UpgradeCont};
use crate::{Machine, MachineConfig, MachineError, Op, OpResult, Program};

/// Container magic: "VMPSNAP" plus a one-byte format version.
const MAGIC: &[u8; 8] = b"VMPSNAP\x01";

/// Header format version, checked on resume.
const VERSION: u64 = 1;

/// A complete, versioned capture of a [`Machine`]'s state.
///
/// Produced by [`Machine::snapshot`], consumed by [`Machine::resume`].
/// Serializes to a stable byte string with [`MachineSnapshot::to_bytes`]
/// — the same machine state always produces the same bytes, so snapshots
/// can be committed as golden regression artifacts and byte-compared.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSnapshot {
    header: Value,
    blob: Vec<u8>,
}

/// Accumulates bulk byte ranges and hands out `{"$blob", "len"}` refs.
struct BlobWriter {
    buf: Vec<u8>,
}

impl BlobWriter {
    fn new() -> Self {
        BlobWriter { buf: Vec::new() }
    }

    fn push(&mut self, bytes: &[u8]) -> Value {
        let off = self.buf.len() as u64;
        self.buf.extend_from_slice(bytes);
        Value::obj().set("$blob", off).set("len", bytes.len() as u64)
    }
}

/// Resolves a `{"$blob", "len"}` ref against the blob.
fn blob_slice<'a>(blob: &'a [u8], v: &Value) -> Result<&'a [u8], MachineError> {
    let (Some(off), Some(len)) =
        (v.get("$blob").and_then(Value::as_u64), v.get("len").and_then(Value::as_u64))
    else {
        return Err(corrupt("expected a blob reference"));
    };
    let (off, len) = (off as usize, len as usize);
    blob.get(off..off + len).ok_or_else(|| corrupt("blob reference out of range"))
}

fn corrupt(detail: impl Into<String>) -> MachineError {
    MachineError::SnapshotCorrupt { detail: detail.into() }
}

fn mismatch(detail: impl Into<String>) -> MachineError {
    MachineError::SnapshotMismatch { detail: detail.into() }
}

fn h_u64(v: &Value, key: &str) -> Result<u64, MachineError> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| corrupt(format!("bad field `{key}`")))
}

fn h_ns(v: &Value, key: &str) -> Result<Nanos, MachineError> {
    h_u64(v, key).map(Nanos::from_ns)
}

fn h_bool(v: &Value, key: &str) -> Result<bool, MachineError> {
    v.get(key).and_then(Value::as_bool).ok_or_else(|| corrupt(format!("bad field `{key}`")))
}

fn h_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, MachineError> {
    v.get(key).and_then(Value::as_str).ok_or_else(|| corrupt(format!("bad field `{key}`")))
}

fn h_arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], MachineError> {
    v.get(key).and_then(Value::as_arr).ok_or_else(|| corrupt(format!("bad field `{key}`")))
}

// ----------------------------------------------------------------------
// Scalar codecs shared with program/workload state (pub(crate))
// ----------------------------------------------------------------------

pub(crate) fn op_to_value(op: &Op) -> Value {
    match *op {
        Op::Compute(t) => Value::obj().set("k", "compute").set("t", t.as_ns()),
        Op::Read(a) => Value::obj().set("k", "read").set("a", a.raw()),
        Op::Write(a, v) => Value::obj().set("k", "write").set("a", a.raw()).set("v", v),
        Op::Tas(a) => Value::obj().set("k", "tas").set("a", a.raw()),
        Op::Notify(a) => Value::obj().set("k", "notify").set("a", a.raw()),
        Op::WatchNotify(a) => Value::obj().set("k", "watch").set("a", a.raw()),
        Op::WaitNotify => Value::obj().set("k", "wait"),
        Op::UncachedRead(a) => Value::obj().set("k", "uread").set("a", a.raw()),
        Op::UncachedWrite(a, v) => Value::obj().set("k", "uwrite").set("a", a.raw()).set("v", v),
        Op::UncachedTas(a) => Value::obj().set("k", "utas").set("a", a.raw()),
        Op::Halt => Value::obj().set("k", "halt"),
    }
}

pub(crate) fn op_from_value(v: &Value) -> Option<Op> {
    let a = || v.get("a").and_then(Value::as_u64);
    let word = || v.get("v").and_then(Value::as_u64).and_then(|x| u32::try_from(x).ok());
    Some(match v.get("k").and_then(Value::as_str)? {
        "compute" => Op::Compute(Nanos::from_ns(v.get("t").and_then(Value::as_u64)?)),
        "read" => Op::Read(VirtAddr::new(a()?)),
        "write" => Op::Write(VirtAddr::new(a()?), word()?),
        "tas" => Op::Tas(VirtAddr::new(a()?)),
        "notify" => Op::Notify(VirtAddr::new(a()?)),
        "watch" => Op::WatchNotify(VirtAddr::new(a()?)),
        "wait" => Op::WaitNotify,
        "uread" => Op::UncachedRead(PhysAddr::new(a()?)),
        "uwrite" => Op::UncachedWrite(PhysAddr::new(a()?), word()?),
        "utas" => Op::UncachedTas(PhysAddr::new(a()?)),
        "halt" => Op::Halt,
        _ => return None,
    })
}

pub(crate) fn op_result_to_value(r: &OpResult) -> Value {
    match *r {
        OpResult::None => Value::obj().set("k", "none"),
        OpResult::Read(v) => Value::obj().set("k", "read").set("v", v),
        OpResult::Tas(v) => Value::obj().set("k", "tas").set("v", v),
        OpResult::Notified(a) => Value::obj().set("k", "notified").set("a", a.raw()),
    }
}

pub(crate) fn op_result_from_value(v: &Value) -> Option<OpResult> {
    let word = || v.get("v").and_then(Value::as_u64).and_then(|x| u32::try_from(x).ok());
    Some(match v.get("k").and_then(Value::as_str)? {
        "none" => OpResult::None,
        "read" => OpResult::Read(word()?),
        "tas" => OpResult::Tas(word()?),
        "notified" => OpResult::Notified(VirtAddr::new(v.get("a").and_then(Value::as_u64)?)),
        _ => return None,
    })
}

fn flags_to_bits(f: SlotFlags) -> u64 {
    u64::from(f.valid)
        | u64::from(f.modified) << 1
        | u64::from(f.exclusive) << 2
        | u64::from(f.supervisor_write) << 3
        | u64::from(f.user_read) << 4
        | u64::from(f.user_write) << 5
}

fn flags_from_bits(b: u64) -> SlotFlags {
    SlotFlags {
        valid: b & 1 != 0,
        modified: b & 2 != 0,
        exclusive: b & 4 != 0,
        supervisor_write: b & 8 != 0,
        user_read: b & 16 != 0,
        user_write: b & 32 != 0,
    }
}

/// Stable index of a bus-transaction kind (the same order
/// `BusStats::counts_raw` uses).
fn kind_to_idx(k: BusTxKind) -> u64 {
    match k {
        BusTxKind::ReadShared => 0,
        BusTxKind::ReadPrivate => 1,
        BusTxKind::AssertOwnership => 2,
        BusTxKind::WriteBack => 3,
        BusTxKind::Notify => 4,
        BusTxKind::WriteActionTable => 5,
        BusTxKind::PlainRead => 6,
        BusTxKind::PlainWrite => 7,
    }
}

fn kind_from_idx(i: u64) -> Option<BusTxKind> {
    Some(match i {
        0 => BusTxKind::ReadShared,
        1 => BusTxKind::ReadPrivate,
        2 => BusTxKind::AssertOwnership,
        3 => BusTxKind::WriteBack,
        4 => BusTxKind::Notify,
        5 => BusTxKind::WriteActionTable,
        6 => BusTxKind::PlainRead,
        7 => BusTxKind::PlainWrite,
        _ => return None,
    })
}

fn cause_to_str(c: MissCause) -> &'static str {
    match c {
        MissCause::Read => "read",
        MissCause::Write => "write",
        MissCause::Upgrade => "upgrade",
        MissCause::Pte => "pte",
        MissCause::Kernel => "kernel",
    }
}

fn cause_from_str(s: &str) -> Option<MissCause> {
    Some(match s {
        "read" => MissCause::Read,
        "write" => MissCause::Write,
        "upgrade" => MissCause::Upgrade,
        "pte" => MissCause::Pte,
        "kernel" => MissCause::Kernel,
        _ => return None,
    })
}

fn slot_to_value(s: SlotId) -> Value {
    Value::obj().set("set", s.set as u64).set("way", s.way as u64)
}

fn slot_from_value(v: &Value) -> Result<SlotId, MachineError> {
    Ok(SlotId { set: h_u64(v, "set")? as usize, way: h_u64(v, "way")? as usize })
}

fn histogram_to_value(h: &Histogram) -> Value {
    let (width, counts, overflow, total, sum, max) = h.state();
    Value::obj()
        .set("width", width.as_ns())
        .set("counts", Value::Arr(counts.into_iter().map(Value::from).collect()))
        .set("overflow", overflow)
        .set("total", total)
        .set("sum", sum.as_ns())
        .set("max", max.as_ns())
}

fn histogram_from_value(v: &Value) -> Result<Histogram, MachineError> {
    let counts = h_arr(v, "counts")?
        .iter()
        .map(|c| c.as_u64().ok_or_else(|| corrupt("bad histogram count")))
        .collect::<Result<Vec<u64>, _>>()?;
    Ok(Histogram::restore(
        h_ns(v, "width")?,
        counts,
        h_u64(v, "overflow")?,
        h_u64(v, "total")?,
        h_ns(v, "sum")?,
        h_ns(v, "max")?,
    ))
}

fn event_to_value(t: Nanos, qseq: u64, e: &Event) -> Value {
    let (kind, idx, seq) = match *e {
        Event::Wake { cpu, seq } => ("wake", cpu as u64, seq),
        Event::Dma { dma, seq } => ("dma", dma as u64, seq),
    };
    Value::obj()
        .set("t", t.as_ns())
        .set("qseq", qseq)
        .set("kind", kind)
        .set("idx", idx)
        .set("seq", seq)
}

fn event_from_value(v: &Value) -> Result<(Nanos, u64, Event), MachineError> {
    let idx = h_u64(v, "idx")? as usize;
    let seq = h_u64(v, "seq")?;
    let event = match h_str(v, "kind")? {
        "wake" => Event::Wake { cpu: idx, seq },
        "dma" => Event::Dma { dma: idx, seq },
        other => return Err(corrupt(format!("unknown event kind `{other}`"))),
    };
    Ok((h_ns(v, "t")?, h_u64(v, "qseq")?, event))
}

fn cpu_state_to_value(s: CpuState) -> Value {
    match s {
        CpuState::Halted => Value::obj().set("k", "halted"),
        CpuState::Ready => Value::obj().set("k", "ready"),
        CpuState::Parked => Value::obj().set("k", "parked"),
        CpuState::Computing { until } => {
            Value::obj().set("k", "computing").set("until", until.as_ns())
        }
    }
}

fn cpu_state_from_value(v: &Value) -> Result<CpuState, MachineError> {
    Ok(match h_str(v, "k")? {
        "halted" => CpuState::Halted,
        "ready" => CpuState::Ready,
        "parked" => CpuState::Parked,
        "computing" => CpuState::Computing { until: h_ns(v, "until")? },
        other => return Err(corrupt(format!("unknown cpu state `{other}`"))),
    })
}

fn pending_to_value(p: &PendingWork) -> Value {
    match p {
        PendingWork::FullOp(op) => Value::obj().set("k", "full_op").set("op", op_to_value(op)),
        PendingWork::FetchTx(c) => Value::obj()
            .set("k", "fetch")
            .set("op", op_to_value(&c.op))
            .set("asid", u64::from(c.asid.raw()))
            .set("va", c.va.raw())
            .set("want_private", c.want_private)
            .set("cause", cause_to_str(c.cause))
            .set("frame", c.frame.raw())
            .set("slot", slot_to_value(c.slot)),
        PendingWork::UpgradeTx(c) => Value::obj()
            .set("k", "upgrade")
            .set("op", op_to_value(&c.op))
            .set("va", c.va.raw())
            .set("slot", slot_to_value(c.slot))
            .set("frame", c.frame.raw()),
    }
}

fn pending_from_value(v: &Value) -> Result<PendingWork, MachineError> {
    let op = |key: &str| -> Result<Op, MachineError> {
        v.get(key).and_then(op_from_value).ok_or_else(|| corrupt("bad pending-work operation"))
    };
    Ok(match h_str(v, "k")? {
        "full_op" => PendingWork::FullOp(op("op")?),
        "fetch" => PendingWork::FetchTx(FetchCont {
            op: op("op")?,
            asid: Asid::new(h_u64(v, "asid")? as u8),
            va: VirtAddr::new(h_u64(v, "va")?),
            want_private: h_bool(v, "want_private")?,
            cause: cause_from_str(h_str(v, "cause")?)
                .ok_or_else(|| corrupt("unknown miss cause"))?,
            frame: FrameNum::new(h_u64(v, "frame")?),
            slot: slot_from_value(v.get("slot").ok_or_else(|| corrupt("missing slot"))?)?,
        }),
        "upgrade" => PendingWork::UpgradeTx(UpgradeCont {
            op: op("op")?,
            va: VirtAddr::new(h_u64(v, "va")?),
            slot: slot_from_value(v.get("slot").ok_or_else(|| corrupt("missing slot"))?)?,
            frame: FrameNum::new(h_u64(v, "frame")?),
        }),
        other => return Err(corrupt(format!("unknown pending work `{other}`"))),
    })
}

fn u64s(values: impl IntoIterator<Item = u64>) -> Value {
    Value::Arr(values.into_iter().map(Value::from).collect())
}

fn u64_list(v: &Value, key: &str) -> Result<Vec<u64>, MachineError> {
    h_arr(v, key)?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| corrupt(format!("bad entry in `{key}`"))))
        .collect()
}

fn u64_array8(v: &Value, key: &str) -> Result<[u64; 8], MachineError> {
    let list = u64_list(v, key)?;
    <[u64; 8]>::try_from(list).map_err(|_| corrupt(format!("`{key}` must have 8 entries")))
}

// ----------------------------------------------------------------------
// Snapshot container
// ----------------------------------------------------------------------

impl MachineSnapshot {
    /// The snapshot's caller-attached metadata, if any (see
    /// [`MachineSnapshot::set_meta`]).
    pub fn meta(&self) -> Option<&Value> {
        self.header.get("meta")
    }

    /// Attaches (or replaces) caller metadata — workload tags, seeds,
    /// sweep-cell labels — carried inside the snapshot header.
    pub fn set_meta(&mut self, meta: Value) {
        if let Value::Obj(pairs) = &mut self.header {
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == "meta") {
                slot.1 = meta;
            } else {
                pairs.push(("meta".to_string(), meta));
            }
        }
    }

    /// The header tree (for inspection and tooling).
    pub fn header(&self) -> &Value {
        &self.header
    }

    /// Serializes to the stable binary container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let header = self.header.to_string().into_bytes();
        let mut out = Vec::with_capacity(MAGIC.len() + 16 + header.len() + self.blob.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(header.len() as u64).to_le_bytes());
        out.extend_from_slice(&header);
        out.extend_from_slice(&(self.blob.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.blob);
        out
    }

    /// Decodes a container produced by [`MachineSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::SnapshotCorrupt`] on bad magic, truncation
    /// or malformed header JSON.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MachineError> {
        let rest = bytes
            .strip_prefix(MAGIC.as_slice())
            .ok_or_else(|| corrupt("bad magic (not a VMP snapshot, or wrong format version)"))?;
        let take_len = |b: &[u8]| -> Result<(usize, usize), MachineError> {
            let raw: [u8; 8] =
                b.get(..8).and_then(|s| s.try_into().ok()).ok_or_else(|| corrupt("truncated"))?;
            Ok((u64::from_le_bytes(raw) as usize, 8))
        };
        let (header_len, off) = take_len(rest)?;
        let header_bytes =
            rest.get(off..off + header_len).ok_or_else(|| corrupt("truncated header"))?;
        let header_str =
            std::str::from_utf8(header_bytes).map_err(|_| corrupt("header is not UTF-8"))?;
        let header = parse(header_str).map_err(|e| corrupt(format!("header JSON: {e}")))?;
        let rest = &rest[off + header_len..];
        let (blob_len, off) = take_len(rest)?;
        let blob = rest.get(off..off + blob_len).ok_or_else(|| corrupt("truncated blob"))?;
        if rest.len() != off + blob_len {
            return Err(corrupt("trailing bytes after blob"));
        }
        Ok(MachineSnapshot { header, blob: blob.to_vec() })
    }

    /// Writes the container to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a container from a file.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::SnapshotCorrupt`] for unreadable or
    /// malformed files.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, MachineError> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| corrupt(format!("read {}: {e}", path.as_ref().display())))?;
        Self::from_bytes(&bytes)
    }

    /// Structurally compares two snapshots and describes the *first*
    /// divergence — the header path that differs (e.g.
    /// `cpus[1].cache.slots[3].data: byte 17 differs (0x00 vs 0x2a)`) —
    /// or `None` when they are identical.
    pub fn diff(a: &MachineSnapshot, b: &MachineSnapshot) -> Option<String> {
        diff_value("$", &a.header, a, &b.header, b)
    }
}

fn is_blob_ref(v: &Value) -> bool {
    matches!(v, Value::Obj(pairs) if pairs.iter().any(|(k, _)| k == "$blob"))
}

fn diff_value(
    path: &str,
    a: &Value,
    sa: &MachineSnapshot,
    b: &Value,
    sb: &MachineSnapshot,
) -> Option<String> {
    if is_blob_ref(a) && is_blob_ref(b) {
        let da = blob_slice(&sa.blob, a).ok()?;
        let db = blob_slice(&sb.blob, b).ok()?;
        if da.len() != db.len() {
            return Some(format!("{path}: blob length {} vs {}", da.len(), db.len()));
        }
        return da
            .iter()
            .zip(db)
            .position(|(x, y)| x != y)
            .map(|i| format!("{path}: byte {i} differs (0x{:02x} vs 0x{:02x})", da[i], db[i]));
    }
    match (a, b) {
        (Value::Obj(pa), Value::Obj(pb)) => {
            if pa.len() != pb.len() {
                return Some(format!("{path}: {} keys vs {}", pa.len(), pb.len()));
            }
            for ((ka, va), (kb, vb)) in pa.iter().zip(pb) {
                if ka != kb {
                    return Some(format!("{path}: key `{ka}` vs `{kb}`"));
                }
                if let Some(d) = diff_value(&format!("{path}.{ka}"), va, sa, vb, sb) {
                    return Some(d);
                }
            }
            None
        }
        (Value::Arr(xa), Value::Arr(xb)) => {
            if xa.len() != xb.len() {
                return Some(format!("{path}: {} entries vs {}", xa.len(), xb.len()));
            }
            for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                if let Some(d) = diff_value(&format!("{path}[{i}]"), va, sa, vb, sb) {
                    return Some(d);
                }
            }
            None
        }
        _ => (a != b).then(|| format!("{path}: {a} vs {b}")),
    }
}

// ----------------------------------------------------------------------
// Capture
// ----------------------------------------------------------------------

impl Machine {
    /// Captures the complete machine state as a [`MachineSnapshot`].
    ///
    /// Valid between [`Machine::run_until`] calls: every inter-event
    /// dependency lives in the event queue, so a resumed machine
    /// continues bit-identically — same event order, same statistics,
    /// same memory image — as the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::SnapshotUnsupported`] when a watchdog
    /// violation is latched, or when a non-halted processor runs a
    /// program that does not implement [`Program::save_state`].
    pub fn snapshot(&self) -> Result<MachineSnapshot, MachineError> {
        if let Some(v) = &self.stuck {
            return Err(MachineError::SnapshotUnsupported {
                detail: format!("watchdog violation latched: {v}"),
            });
        }
        let mut blob = BlobWriter::new();
        let page = self.config.cache.page_size();

        let config = Value::obj()
            .set("processors", self.config.processors as u64)
            .set("page_size", page.bytes())
            .set("sets", self.config.cache.sets() as u64)
            .set("ways", self.config.cache.associativity() as u64)
            .set("memory_bytes", self.config.memory_bytes)
            .set("obs_enabled", self.config.obs.enabled);

        let queue = Value::obj().set("next_seq", self.queue.next_seq()).set(
            "entries",
            Value::Arr(
                self.queue
                    .entries()
                    .iter()
                    .map(|(t, qseq, e)| event_to_value(*t, *qseq, e))
                    .collect(),
            ),
        );

        let (bookings, watermark) = self.bus.bookings();
        let bs = self.bus.stats();
        let bus = Value::obj()
            .set(
                "bookings",
                Value::Arr(bookings.iter().map(|&(s, e)| u64s([s.as_ns(), e.as_ns()])).collect()),
            )
            .set("watermark", watermark.as_ns())
            .set("counts", u64s(bs.counts_raw()))
            .set("abort_counts", u64s(bs.abort_counts_raw()))
            .set("aborts", bs.aborts)
            .set("injected_aborts", bs.injected_aborts)
            .set("busy", bs.busy.busy().as_ns())
            .set("busy_intervals", bs.busy.intervals())
            .set("arb_wait_total", bs.arb_wait_total.as_ns())
            .set("arb_wait_max", bs.arb_wait_max.as_ns())
            .set("reservations", bs.reservations);

        // Main memory: only frames with non-zero content (fresh frames
        // are all-zero, and resume starts from a zeroed memory).
        let mut frames = Vec::new();
        for f in 0..self.memory.frames() {
            let frame = FrameNum::new(f);
            let data = self.memory.read_frame(frame);
            if data.iter().any(|&b| b != 0) {
                frames.push(Value::obj().set("frame", f).set("data", blob.push(&data)));
            }
        }

        let spaces = Value::Arr(
            self.kernel
                .asids()
                .into_iter()
                .map(|asid| {
                    let pages = self
                        .kernel
                        .space(asid)
                        .map(|space| {
                            space
                                .iter()
                                .map(|(vpn, pte)| {
                                    Value::obj()
                                        .set("vpn", vpn.raw())
                                        .set("frame", pte.frame.raw())
                                        .set("writable", pte.writable)
                                        .set("supervisor_only", pte.supervisor_only)
                                        .set("referenced", pte.referenced)
                                        .set("modified", pte.modified)
                                        .set("hint_private", pte.hint_private)
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    Value::obj().set("asid", u64::from(asid.raw())).set("pages", Value::Arr(pages))
                })
                .collect(),
        );
        let kernel =
            Value::obj().set("free_list", u64s(self.kernel.free_list())).set("spaces", spaces);

        let swap = Value::Arr(
            self.swap
                .iter()
                .map(|(&(asid, vpn), data)| {
                    Value::obj()
                        .set("asid", u64::from(asid.raw()))
                        .set("vpn", vpn.raw())
                        .set("data", blob.push(data))
                })
                .collect(),
        );

        let dma_protected = Value::Arr(
            self.dma_protected
                .iter()
                .map(|(&frame, &host)| {
                    Value::obj().set("frame", frame.raw()).set("host", host as u64)
                })
                .collect(),
        );

        let dmas = Value::Arr(
            self.dmas
                .iter()
                .map(|d| {
                    let phase = match d.phase {
                        DmaPhase::Setup(i) => Value::obj().set("k", "setup").set("i", i as u64),
                        DmaPhase::Transfer(i) => {
                            Value::obj().set("k", "transfer").set("i", i as u64)
                        }
                        DmaPhase::Teardown => Value::obj().set("k", "teardown"),
                        DmaPhase::Done => Value::obj().set("k", "done"),
                    };
                    Value::obj()
                        .set("id", d.id.index() as u64)
                        .set("host", d.host as u64)
                        .set(
                            "direction",
                            match d.request.direction {
                                DmaDirection::ToMemory => "to_mem",
                                DmaDirection::FromMemory => "from_mem",
                            },
                        )
                        .set("frames", u64s(d.request.frames.iter().map(|f| f.raw())))
                        .set("data", blob.push(&d.request.data))
                        .set("phase", phase)
                        .set(
                            "blocked_on",
                            d.blocked_on.map_or(Value::Null, |i| Value::from(i as u64)),
                        )
                        .set("buffer", blob.push(d.buffer()))
                        .set("seq", d.seq())
                })
                .collect(),
        );

        let fs = &self.fault_stats;
        let fault_stats = Value::obj()
            .set("injected_aborts", fs.injected_aborts)
            .set("dropped_words", fs.dropped_words)
            .set("forced_overflows", fs.forced_overflows)
            .set("copier_retries", fs.copier_retries)
            .set("copier_retry_time", fs.copier_retry_time.as_ns())
            .set("stalls", fs.stalls)
            .set("stall_time", fs.stall_time.as_ns());

        let fault_hook = match self.fault_hook.save_state() {
            Some(bytes) => blob.push(&bytes),
            None => Value::Null,
        };

        let mut cpus = Vec::with_capacity(self.cpus.len());
        for cpu in &self.cpus {
            let program = match &cpu.program {
                Some(p) => match p.save_state() {
                    Some(state) => state,
                    None if cpu.state == CpuState::Halted => Value::Null,
                    None => {
                        return Err(MachineError::SnapshotUnsupported {
                            detail: format!("{} runs a program without state capture", cpu.id),
                        })
                    }
                },
                None => Value::Null,
            };
            let slots = Value::Arr(
                cpu.cache
                    .iter_valid()
                    .map(|(id, tag, flags)| {
                        Value::obj()
                            .set("set", id.set as u64)
                            .set("way", id.way as u64)
                            .set("asid", u64::from(tag.asid.raw()))
                            .set("vpn", tag.vpn.raw())
                            .set("flags", flags_to_bits(flags))
                            .set("last_use", cpu.cache.last_use(id))
                            .set("data", blob.push(&cpu.cache.snapshot(id)))
                    })
                    .collect(),
            );
            let table = Value::Arr(
                cpu.monitor
                    .table()
                    .iter_active()
                    .map(|(frame, code)| {
                        Value::obj().set("frame", frame.raw()).set("code", u64::from(code.bits()))
                    })
                    .collect(),
            );
            let fifo = Value::Arr(
                cpu.monitor
                    .pending_words()
                    .map(|w| {
                        Value::obj()
                            .set("kind", kind_to_idx(w.kind))
                            .set("frame", w.frame.raw())
                            .set("issuer", w.issuer.index() as u64)
                    })
                    .collect(),
            );
            let st = &cpu.stats;
            let stats = Value::obj()
                .set("refs", st.refs)
                .set("reads", st.reads)
                .set("writes", st.writes)
                .set("read_misses", st.read_misses)
                .set("write_misses", st.write_misses)
                .set("upgrades", st.upgrades)
                .set("pte_misses", st.pte_misses)
                .set("page_faults", st.page_faults)
                .set("writebacks", st.writebacks)
                .set("retries", st.retries)
                .set("consistency_interrupts", st.consistency_interrupts)
                .set("invalidations", st.invalidations)
                .set("downgrades", st.downgrades)
                .set("notifies", st.notifies)
                .set("fifo_recoveries", st.fifo_recoveries)
                .set("violations", st.violations)
                .set("useful_time", st.useful_time.as_ns())
                .set("stall_time", st.stall_time.as_ns());
            cpus.push(
                Value::obj()
                    .set("asid", u64::from(cpu.asid.raw()))
                    .set("state", cpu_state_to_value(cpu.state))
                    .set("pending", cpu.pending.as_ref().map_or(Value::Null, pending_to_value))
                    .set("last_result", op_result_to_value(&cpu.last_result))
                    .set("wake_seq", cpu.wake_seq)
                    .set("wake_pending", cpu.wake_pending)
                    .set(
                        "watches",
                        Value::Arr(
                            cpu.watches
                                .iter()
                                .map(|(&f, &va)| {
                                    Value::obj().set("frame", f.raw()).set("va", va.raw())
                                })
                                .collect(),
                        ),
                    )
                    .set(
                        "pending_notify",
                        cpu.pending_notify.map_or(Value::Null, |a| Value::from(a.raw())),
                    )
                    .set(
                        "park_deadline",
                        cpu.park_deadline.map_or(Value::Null, |t| Value::from(t.as_ns())),
                    )
                    .set("retry_streak", u64::from(cpu.retry_streak))
                    .set("zero_yield_acquires", cpu.zero_yield_acquires)
                    .set(
                        "attention",
                        cpu.attention.since().map_or(Value::Null, |t| Value::from(t.as_ns())),
                    )
                    .set("op_start", cpu.op_start.as_ns())
                    .set("op_stalled", cpu.op_stalled)
                    .set("miss_latency", histogram_to_value(&cpu.miss_latency))
                    .set("stats", stats)
                    .set("cache", Value::obj().set("clock", cpu.cache.clock()).set("slots", slots))
                    .set(
                        "monitor",
                        Value::obj()
                            .set("table", table)
                            .set("fifo", fifo)
                            .set("overflow", cpu.monitor.overflowed())
                            .set("queued_total", cpu.monitor.queued_total())
                            .set("dropped_total", cpu.monitor.dropped_total()),
                    )
                    .set(
                        "phys",
                        Value::Arr(
                            cpu.phys
                                .iter()
                                .map(|(frame, slot)| {
                                    Value::obj()
                                        .set("frame", frame.raw())
                                        .set("slot", slot_to_value(slot))
                                })
                                .collect(),
                        ),
                    )
                    .set("program", program),
            );
        }

        let header = Value::obj()
            .set("version", VERSION)
            .set("config", config)
            .set("now", self.now.as_ns())
            .set("events_delivered", self.events_delivered)
            .set("queue", queue)
            .set("bus", bus)
            .set("memory", Value::Arr(frames))
            .set("kernel", kernel)
            .set("swap", swap)
            .set("dma_protected", dma_protected)
            .set("dmas", dmas)
            .set("fault_stats", fault_stats)
            .set("fault_hook", fault_hook)
            .set("cpus", Value::Arr(cpus));

        Ok(MachineSnapshot { header, blob: blob.buf })
    }

    /// Rebuilds a machine from a snapshot so that continuing it is
    /// bit-identical to the uninterrupted original run.
    ///
    /// `config` must describe the same machine the snapshot was taken
    /// from (processor count, page size, cache geometry, memory size,
    /// observability flag — and, for bit-identity, the same timings).
    /// `programs` supplies one fresh program instance per processor,
    /// rewound through [`Program::restore_state`]; pass `None` for
    /// processors whose snapshot holds no program state. `hook` supplies
    /// a fresh fault hook when the snapshot captured one.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::SnapshotMismatch`] when the config,
    /// programs or hook do not match the snapshot, and
    /// [`MachineError::SnapshotCorrupt`] for malformed headers.
    pub fn resume(
        config: MachineConfig,
        snap: &MachineSnapshot,
        programs: Vec<Option<Box<dyn Program>>>,
        hook: Option<Box<dyn FaultHook>>,
    ) -> Result<Machine, MachineError> {
        let h = &snap.header;
        if h_u64(h, "version")? != VERSION {
            return Err(mismatch(format!(
                "snapshot version {} (this build reads {VERSION})",
                h_u64(h, "version")?
            )));
        }
        let mut m = Machine::build(config)?;
        let hc = h.get("config").ok_or_else(|| corrupt("missing config digest"))?;
        let digest: [(&str, u64); 5] = [
            ("processors", m.config.processors as u64),
            ("page_size", m.config.cache.page_size().bytes()),
            ("sets", m.config.cache.sets() as u64),
            ("ways", m.config.cache.associativity() as u64),
            ("memory_bytes", m.config.memory_bytes),
        ];
        for (key, ours) in digest {
            let theirs = h_u64(hc, key)?;
            if theirs != ours {
                return Err(mismatch(format!("{key}: snapshot has {theirs}, machine has {ours}")));
            }
        }
        if h_bool(hc, "obs_enabled")? != m.config.obs.enabled {
            return Err(mismatch("obs_enabled differs"));
        }
        if programs.len() != m.cpus.len() {
            return Err(mismatch(format!(
                "{} programs supplied for {} processors",
                programs.len(),
                m.cpus.len()
            )));
        }

        m.now = h_ns(h, "now")?;
        m.events_delivered = h_u64(h, "events_delivered")?;

        let q = h.get("queue").ok_or_else(|| corrupt("missing queue"))?;
        let entries =
            h_arr(q, "entries")?.iter().map(event_from_value).collect::<Result<Vec<_>, _>>()?;
        m.queue = EventQueue::restore(h_u64(q, "next_seq")?, entries);

        let bv = h.get("bus").ok_or_else(|| corrupt("missing bus"))?;
        let bookings = h_arr(bv, "bookings")?
            .iter()
            .map(|pair| {
                let p = pair.as_arr().ok_or_else(|| corrupt("bad booking"))?;
                match p {
                    [s, e] => Ok((
                        Nanos::from_ns(s.as_u64().ok_or_else(|| corrupt("bad booking"))?),
                        Nanos::from_ns(e.as_u64().ok_or_else(|| corrupt("bad booking"))?),
                    )),
                    _ => Err(corrupt("bad booking")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        m.bus.restore_bookings(bookings, h_ns(bv, "watermark")?);
        let counts = u64_array8(bv, "counts")?;
        let abort_counts = u64_array8(bv, "abort_counts")?;
        let bs = m.bus.stats_mut();
        bs.restore_raw_counts(counts, abort_counts);
        bs.aborts = h_u64(bv, "aborts")?;
        bs.injected_aborts = h_u64(bv, "injected_aborts")?;
        bs.busy = BusyTracker::restore(h_ns(bv, "busy")?, h_u64(bv, "busy_intervals")?);
        bs.arb_wait_total = h_ns(bv, "arb_wait_total")?;
        bs.arb_wait_max = h_ns(bv, "arb_wait_max")?;
        bs.reservations = h_u64(bv, "reservations")?;

        for entry in h_arr(h, "memory")? {
            let frame = FrameNum::new(h_u64(entry, "frame")?);
            let data =
                blob_slice(&snap.blob, entry.get("data").ok_or_else(|| corrupt("missing data"))?)?;
            m.memory.write_frame(frame, data);
        }

        let kv = h.get("kernel").ok_or_else(|| corrupt("missing kernel"))?;
        for space in h_arr(kv, "spaces")? {
            let asid = Asid::new(h_u64(space, "asid")? as u8);
            m.kernel.space_mut(asid); // force creation even when empty
            for page in h_arr(space, "pages")? {
                let pte = Pte {
                    frame: FrameNum::new(h_u64(page, "frame")?),
                    writable: h_bool(page, "writable")?,
                    supervisor_only: h_bool(page, "supervisor_only")?,
                    referenced: h_bool(page, "referenced")?,
                    modified: h_bool(page, "modified")?,
                    hint_private: h_bool(page, "hint_private")?,
                };
                m.kernel.map(asid, VirtPageNum::new(h_u64(page, "vpn")?), pte);
            }
        }
        m.kernel.restore_free_list(u64_list(kv, "free_list")?);

        for entry in h_arr(h, "swap")? {
            let key =
                (Asid::new(h_u64(entry, "asid")? as u8), VirtPageNum::new(h_u64(entry, "vpn")?));
            let data =
                blob_slice(&snap.blob, entry.get("data").ok_or_else(|| corrupt("missing data"))?)?;
            m.swap.insert(key, data.to_vec());
        }

        for entry in h_arr(h, "dma_protected")? {
            m.dma_protected
                .insert(FrameNum::new(h_u64(entry, "frame")?), h_u64(entry, "host")? as usize);
        }

        for entry in h_arr(h, "dmas")? {
            let frames = u64_list(entry, "frames")?.into_iter().map(FrameNum::new).collect();
            let data =
                blob_slice(&snap.blob, entry.get("data").ok_or_else(|| corrupt("missing data"))?)?
                    .to_vec();
            let direction = match h_str(entry, "direction")? {
                "to_mem" => DmaDirection::ToMemory,
                "from_mem" => DmaDirection::FromMemory,
                other => return Err(corrupt(format!("unknown DMA direction `{other}`"))),
            };
            let request = DmaRequest { frames, direction, data };
            let host = h_u64(entry, "host")? as usize;
            let mut engine =
                DmaEngine::new(ProcessorId::new(h_u64(entry, "id")? as usize), host, request);
            let pv = entry.get("phase").ok_or_else(|| corrupt("missing phase"))?;
            let phase = match h_str(pv, "k")? {
                "setup" => DmaPhase::Setup(h_u64(pv, "i")? as usize),
                "transfer" => DmaPhase::Transfer(h_u64(pv, "i")? as usize),
                "teardown" => DmaPhase::Teardown,
                "done" => DmaPhase::Done,
                other => return Err(corrupt(format!("unknown DMA phase `{other}`"))),
            };
            let blocked_on = match entry.get("blocked_on") {
                Some(Value::Null) | None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| corrupt("bad blocked_on"))? as usize),
            };
            let buffer = blob_slice(
                &snap.blob,
                entry.get("buffer").ok_or_else(|| corrupt("missing buffer"))?,
            )?
            .to_vec();
            engine.restore_progress(phase, blocked_on, buffer, h_u64(entry, "seq")?);
            m.dmas.push(engine);
        }

        let fsv = h.get("fault_stats").ok_or_else(|| corrupt("missing fault_stats"))?;
        m.fault_stats = crate::FaultStats {
            injected_aborts: h_u64(fsv, "injected_aborts")?,
            dropped_words: h_u64(fsv, "dropped_words")?,
            forced_overflows: h_u64(fsv, "forced_overflows")?,
            copier_retries: h_u64(fsv, "copier_retries")?,
            copier_retry_time: h_ns(fsv, "copier_retry_time")?,
            stalls: h_u64(fsv, "stalls")?,
            stall_time: h_ns(fsv, "stall_time")?,
        };

        match h.get("fault_hook") {
            Some(Value::Null) | None => {
                if hook.is_some() {
                    return Err(mismatch("a fault hook was supplied but the snapshot has none"));
                }
            }
            Some(hook_ref) => {
                let state = blob_slice(&snap.blob, hook_ref)?;
                let mut hook = hook.ok_or_else(|| {
                    mismatch("the snapshot captured a fault hook but none was supplied")
                })?;
                if !hook.restore_state(state) {
                    return Err(mismatch("the supplied fault hook rejected the captured state"));
                }
                m.fault_hook = hook;
            }
        }

        let cpu_values = h_arr(h, "cpus")?;
        if cpu_values.len() != m.cpus.len() {
            return Err(mismatch(format!(
                "snapshot has {} processors, machine has {}",
                cpu_values.len(),
                m.cpus.len()
            )));
        }
        for ((cpu, cv), program) in m.cpus.iter_mut().zip(cpu_values).zip(programs) {
            cpu.asid = Asid::new(h_u64(cv, "asid")? as u8);
            cpu.state =
                cpu_state_from_value(cv.get("state").ok_or_else(|| corrupt("missing state"))?)?;
            cpu.pending = match cv.get("pending") {
                Some(Value::Null) | None => None,
                Some(v) => Some(pending_from_value(v)?),
            };
            cpu.last_result = cv
                .get("last_result")
                .and_then(op_result_from_value)
                .ok_or_else(|| corrupt("bad last_result"))?;
            cpu.wake_seq = h_u64(cv, "wake_seq")?;
            cpu.wake_pending = h_bool(cv, "wake_pending")?;
            cpu.watches = h_arr(cv, "watches")?
                .iter()
                .map(|w| Ok((FrameNum::new(h_u64(w, "frame")?), VirtAddr::new(h_u64(w, "va")?))))
                .collect::<Result<BTreeMap<_, _>, MachineError>>()?;
            cpu.pending_notify = match cv.get("pending_notify") {
                Some(Value::Null) | None => None,
                Some(v) => {
                    Some(VirtAddr::new(v.as_u64().ok_or_else(|| corrupt("bad pending_notify"))?))
                }
            };
            cpu.park_deadline = match cv.get("park_deadline") {
                Some(Value::Null) | None => None,
                Some(v) => {
                    Some(Nanos::from_ns(v.as_u64().ok_or_else(|| corrupt("bad park_deadline"))?))
                }
            };
            cpu.retry_streak = h_u64(cv, "retry_streak")? as u32;
            cpu.zero_yield_acquires = h_u64(cv, "zero_yield_acquires")?;
            cpu.attention = AttentionClock::new();
            if let Some(v) = cv.get("attention") {
                if let Some(ns) = v.as_u64() {
                    cpu.attention.note(Nanos::from_ns(ns));
                }
            }
            cpu.op_start = h_ns(cv, "op_start")?;
            cpu.op_stalled = h_bool(cv, "op_stalled")?;
            cpu.miss_latency = histogram_from_value(
                cv.get("miss_latency").ok_or_else(|| corrupt("missing miss_latency"))?,
            )?;

            let sv = cv.get("stats").ok_or_else(|| corrupt("missing stats"))?;
            let st = &mut cpu.stats;
            st.refs = h_u64(sv, "refs")?;
            st.reads = h_u64(sv, "reads")?;
            st.writes = h_u64(sv, "writes")?;
            st.read_misses = h_u64(sv, "read_misses")?;
            st.write_misses = h_u64(sv, "write_misses")?;
            st.upgrades = h_u64(sv, "upgrades")?;
            st.pte_misses = h_u64(sv, "pte_misses")?;
            st.page_faults = h_u64(sv, "page_faults")?;
            st.writebacks = h_u64(sv, "writebacks")?;
            st.retries = h_u64(sv, "retries")?;
            st.consistency_interrupts = h_u64(sv, "consistency_interrupts")?;
            st.invalidations = h_u64(sv, "invalidations")?;
            st.downgrades = h_u64(sv, "downgrades")?;
            st.notifies = h_u64(sv, "notifies")?;
            st.fifo_recoveries = h_u64(sv, "fifo_recoveries")?;
            st.violations = h_u64(sv, "violations")?;
            st.useful_time = h_ns(sv, "useful_time")?;
            st.stall_time = h_ns(sv, "stall_time")?;

            let cache = cv.get("cache").ok_or_else(|| corrupt("missing cache"))?;
            for slot in h_arr(cache, "slots")? {
                let id =
                    SlotId { set: h_u64(slot, "set")? as usize, way: h_u64(slot, "way")? as usize };
                let tag = Tag::new(
                    Asid::new(h_u64(slot, "asid")? as u8),
                    VirtPageNum::new(h_u64(slot, "vpn")?),
                );
                let data = blob_slice(
                    &snap.blob,
                    slot.get("data").ok_or_else(|| corrupt("missing slot data"))?,
                )?;
                cpu.cache.restore_slot(
                    id,
                    tag,
                    flags_from_bits(h_u64(slot, "flags")?),
                    h_u64(slot, "last_use")?,
                    data.to_vec(),
                );
            }
            cpu.cache.restore_clock(h_u64(cache, "clock")?);

            let mon = cv.get("monitor").ok_or_else(|| corrupt("missing monitor"))?;
            for entry in h_arr(mon, "table")? {
                cpu.monitor.table_mut().set(
                    FrameNum::new(h_u64(entry, "frame")?),
                    ActionCode::from_bits(h_u64(entry, "code")? as u8),
                );
            }
            let words = h_arr(mon, "fifo")?
                .iter()
                .map(|w| {
                    Ok(InterruptWord {
                        kind: kind_from_idx(h_u64(w, "kind")?)
                            .ok_or_else(|| corrupt("bad interrupt kind"))?,
                        frame: FrameNum::new(h_u64(w, "frame")?),
                        issuer: ProcessorId::new(h_u64(w, "issuer")? as usize),
                    })
                })
                .collect::<Result<Vec<_>, MachineError>>()?;
            cpu.monitor.restore_fifo(
                words,
                h_bool(mon, "overflow")?,
                h_u64(mon, "queued_total")?,
                h_u64(mon, "dropped_total")?,
            );

            for entry in h_arr(cv, "phys")? {
                cpu.phys.insert(
                    FrameNum::new(h_u64(entry, "frame")?),
                    slot_from_value(
                        entry.get("slot").ok_or_else(|| corrupt("missing phys slot"))?,
                    )?,
                );
            }

            match cv.get("program") {
                Some(Value::Null) | None => {
                    if program.is_some() {
                        return Err(mismatch(format!(
                            "a program was supplied for {} but its snapshot holds no program state",
                            cpu.id
                        )));
                    }
                    cpu.program = None;
                }
                Some(state) => {
                    let mut program = program.ok_or_else(|| {
                        mismatch(format!(
                            "the snapshot holds program state for {} but no program was supplied",
                            cpu.id
                        ))
                    })?;
                    if !program.restore_state(state) {
                        return Err(mismatch(format!(
                            "the supplied program for {} rejected the captured state",
                            cpu.id
                        )));
                    }
                    cpu.program = Some(program);
                }
            }
        }

        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_codec_roundtrips() {
        let ops = [
            Op::Compute(Nanos::from_us(3)),
            Op::Read(VirtAddr::new(0x1000)),
            Op::Write(VirtAddr::new(0x2000), 42),
            Op::Tas(VirtAddr::new(0x3000)),
            Op::Notify(VirtAddr::new(0x4000)),
            Op::WatchNotify(VirtAddr::new(0x5000)),
            Op::WaitNotify,
            Op::UncachedRead(PhysAddr::new(0x6000)),
            Op::UncachedWrite(PhysAddr::new(0x7000), 7),
            Op::UncachedTas(PhysAddr::new(0x8000)),
            Op::Halt,
        ];
        for op in ops {
            assert_eq!(op_from_value(&op_to_value(&op)), Some(op), "{op}");
        }
        assert_eq!(op_from_value(&Value::obj().set("k", "bogus")), None);
    }

    #[test]
    fn op_result_codec_roundtrips() {
        for r in [
            OpResult::None,
            OpResult::Read(9),
            OpResult::Tas(1),
            OpResult::Notified(VirtAddr::new(0x100)),
        ] {
            assert_eq!(op_result_from_value(&op_result_to_value(&r)), Some(r));
        }
    }

    #[test]
    fn flags_bits_roundtrip() {
        for bits in 0..64u64 {
            assert_eq!(flags_to_bits(flags_from_bits(bits)), bits);
        }
    }

    #[test]
    fn kind_idx_roundtrip() {
        for i in 0..8 {
            assert_eq!(kind_to_idx(kind_from_idx(i).unwrap()), i);
        }
        assert!(kind_from_idx(8).is_none());
    }

    #[test]
    fn container_roundtrip_and_corruption() {
        let snap = MachineSnapshot {
            header: Value::obj().set("version", VERSION).set("x", 7u64),
            blob: vec![1, 2, 3],
        };
        let bytes = snap.to_bytes();
        let back = MachineSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert!(MachineSnapshot::from_bytes(b"NOTASNAP").is_err());
        assert!(MachineSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn diff_pinpoints_blob_byte() {
        let mut blob_a = BlobWriter::new();
        let ra = blob_a.push(&[0, 1, 2, 3]);
        let a = MachineSnapshot { header: Value::obj().set("mem", ra), blob: blob_a.buf };
        let mut blob_b = BlobWriter::new();
        let rb = blob_b.push(&[0, 1, 9, 3]);
        let b = MachineSnapshot { header: Value::obj().set("mem", rb), blob: blob_b.buf };
        let d = MachineSnapshot::diff(&a, &b).unwrap();
        assert!(d.contains("$.mem") && d.contains("byte 2"), "{d}");
        assert_eq!(MachineSnapshot::diff(&a, &a), None);
    }

    #[test]
    fn diff_pinpoints_header_field() {
        let a = MachineSnapshot {
            header: Value::obj().set("cpus", Value::Arr(vec![Value::obj().set("wake_seq", 1u64)])),
            blob: vec![],
        };
        let b = MachineSnapshot {
            header: Value::obj().set("cpus", Value::Arr(vec![Value::obj().set("wake_seq", 2u64)])),
            blob: vec![],
        };
        let d = MachineSnapshot::diff(&a, &b).unwrap();
        assert!(d.contains("$.cpus[0].wake_seq"), "{d}");
    }

    #[test]
    fn meta_set_and_replace() {
        let mut snap =
            MachineSnapshot { header: Value::obj().set("version", VERSION), blob: vec![] };
        assert!(snap.meta().is_none());
        snap.set_meta(Value::obj().set("workload", "lock"));
        assert_eq!(snap.meta().unwrap().get("workload").unwrap().as_str(), Some("lock"));
        snap.set_meta(Value::obj().set("workload", "sweep"));
        assert_eq!(snap.meta().unwrap().get("workload").unwrap().as_str(), Some("sweep"));
    }
}
