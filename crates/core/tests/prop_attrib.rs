//! Property-based tests of the contention attribution table: per-page
//! transaction counts must sum exactly to the bus's own per-kind
//! counters, and attribution-enabled runs must be bit-identical to
//! attribution-disabled ones (memory oracle plus report equality).

use proptest::prelude::*;
use vmp_core::{Machine, MachineConfig, ObsConfig, Op, ScriptProgram};
use vmp_obs::TxClass;
use vmp_types::{Asid, Nanos, VirtAddr};

/// Op generator over a small pool of word addresses shared by both
/// processors — writes and test-and-sets force ownership traffic.
fn arb_op(pages: u64) -> impl Strategy<Value = Op> {
    let addr = (0..pages, 0u64..4).prop_map(|(p, w)| VirtAddr::new(0x1000 + p * 0x1000 + w * 4));
    prop_oneof![
        addr.clone().prop_map(Op::Read),
        (addr.clone(), any::<u32>()).prop_map(|(a, v)| Op::Write(a, v)),
        addr.prop_map(Op::Tas),
        (1u64..2000).prop_map(|ns| Op::Compute(Nanos::from_ns(ns))),
    ]
}

fn config(processors: usize, obs: ObsConfig) -> MachineConfig {
    let mut config = MachineConfig::small();
    config.processors = processors;
    config.validate_each_step = false;
    config.max_time = Nanos::from_ms(60_000);
    config.obs = obs;
    config
}

fn machine(ops: &[Vec<Op>], obs: ObsConfig) -> Machine {
    let mut m = Machine::build(config(ops.len(), obs)).unwrap();
    for (cpu, ops) in ops.iter().enumerate() {
        let mut script = ops.clone();
        script.push(Op::Halt);
        m.set_program(cpu, ScriptProgram::new(script)).unwrap();
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every tracked transaction lands somewhere — a page record or the
    /// unattributed bucket — so the attribution table's per-class
    /// totals equal the bus's own counters exactly, completed and
    /// aborted alike.
    #[test]
    fn per_page_counts_sum_to_bus_totals(
        ops0 in proptest::collection::vec(arb_op(3), 1..50),
        ops1 in proptest::collection::vec(arb_op(3), 1..50),
    ) {
        let mut m = machine(&[ops0, ops1], ObsConfig::with_attrib());
        let report = m.run().unwrap();
        m.validate().unwrap();

        let attrib = m.obs().and_then(|o| o.attrib()).expect("attribution is enabled");
        let mut tracked_aborts = 0u64;
        for class in TxClass::ALL {
            prop_assert_eq!(
                attrib.class_total(class),
                report.bus.count(class.kind()),
                "completed {} transactions must attribute exactly",
                class.label()
            );
            prop_assert_eq!(
                attrib.unattributed(class),
                0,
                "every frame is mapped before its first transaction"
            );
            tracked_aborts += report.bus.abort_count(class.kind());
        }
        prop_assert_eq!(
            attrib.abort_total(),
            tracked_aborts,
            "aborts must attribute exactly"
        );
    }

    /// Attribution only reads simulator state: an attribution-enabled
    /// run must be bit-identical to a recording-only run *and* to a
    /// fully disabled one.
    #[test]
    fn attribution_never_perturbs_the_machine(
        ops0 in proptest::collection::vec(arb_op(3), 1..40),
        ops1 in proptest::collection::vec(arb_op(3), 1..40),
    ) {
        let run = |obs: ObsConfig| {
            let mut m = machine(&[ops0.clone(), ops1.clone()], obs);
            let report = m.run().unwrap();
            m.validate().unwrap();
            let mut snapshot = Vec::new();
            for p in 0..3u64 {
                for w in 0..4u64 {
                    let va = VirtAddr::new(0x1000 + p * 0x1000 + w * 4);
                    snapshot.push(m.peek_word(Asid::new(1), va));
                }
            }
            let bus = (
                report.bus.total(),
                report.bus.aborts,
                report.bus.reservations,
                report.bus.busy.busy(),
                report.bus.arb_wait_total,
            );
            (report.elapsed, snapshot, report.processors, report.faults, bus)
        };
        let off = run(ObsConfig::default());
        let obs_only = run(ObsConfig::on());
        let attrib = run(ObsConfig::with_attrib());
        prop_assert_eq!(&off, &obs_only, "recording alone must not perturb the run");
        prop_assert_eq!(&obs_only, &attrib, "attribution must not perturb the run");
    }
}
