//! Property tests of the snapshot/resume contract: a machine snapshotted
//! at an arbitrary point and resumed must be *bit-identical* — same
//! elapsed time, same statistics, same fault accounting, same final
//! memory — to the uninterrupted run, across workloads × processor
//! counts × fault injection on/off × observability on/off. Snapshot
//! bytes themselves must be deterministic (same state → same bytes), and
//! the binary container must round-trip.

use proptest::prelude::*;
use vmp_core::workloads::{
    BarrierWorker, LockDiscipline, LockWorker, MessageReceiver, MessageSender, SweepWorker,
};
use vmp_core::{
    Machine, MachineConfig, MachineError, MachineSnapshot, ObsConfig, Program, WatchdogConfig,
};
use vmp_faults::{FaultPlan, FaultRates};
use vmp_types::{Asid, Nanos, VirtAddr};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    SpinLock,
    NotifyLock,
    DisjointSweeps,
    FalseSharing,
    Messages,
    Barrier,
}

const WORKLOADS: [Workload; 6] = [
    Workload::SpinLock,
    Workload::NotifyLock,
    Workload::DisjointSweeps,
    Workload::FalseSharing,
    Workload::Messages,
    Workload::Barrier,
];

fn config(processors: usize, obs: bool) -> MachineConfig {
    let mut config = MachineConfig::small();
    config.processors = processors;
    config.validate_each_step = false;
    config.audit_every = Some(64);
    config.watchdog = Some(WatchdogConfig::default());
    config.max_time = Nanos::from_ms(60_000);
    if obs {
        config.obs = ObsConfig::on();
    }
    config
}

/// One fresh program instance per processor. Called once to seed the
/// reference run, once to seed the interrupted run, and once more to
/// supply `Machine::resume` with rewindable instances.
fn programs(workload: Workload, processors: usize, page: u64) -> Vec<Box<dyn Program>> {
    (0..processors)
        .map(|cpu| -> Box<dyn Program> {
            match workload {
                Workload::SpinLock | Workload::NotifyLock => {
                    let d = if workload == Workload::SpinLock {
                        LockDiscipline::Spin
                    } else {
                        LockDiscipline::Notify
                    };
                    Box::new(LockWorker::new(
                        d,
                        VirtAddr::new(0x1000),
                        VirtAddr::new(0x2000),
                        4,
                        Nanos::from_us(2),
                        Nanos::from_us(3),
                    ))
                }
                Workload::DisjointSweeps => Box::new(SweepWorker::new(
                    VirtAddr::new(0x4000 + cpu as u64 * 4 * page),
                    page / 4,
                    4,
                    3,
                    true,
                )),
                Workload::FalseSharing => Box::new(SweepWorker::new(
                    VirtAddr::new(0x4000 + cpu as u64 * 4),
                    page / 16,
                    16,
                    3,
                    true,
                )),
                Workload::Messages => {
                    // CPU 0 sends, CPU 1 receives; extra CPUs sweep
                    // private pages so every processor count works.
                    let mailbox = VirtAddr::new(0x1000);
                    let ack = VirtAddr::new(0x2000);
                    match cpu {
                        // A generous gap: the single-word mailbox must be
                        // consumed before the next message lands.
                        0 => Box::new(MessageSender::new(
                            mailbox,
                            vec![11, 22, 33],
                            Nanos::from_ms(2),
                        )),
                        1 => Box::new(MessageReceiver::new(mailbox, ack, 3)),
                        _ => Box::new(SweepWorker::new(
                            VirtAddr::new(0x10000 + cpu as u64 * 4 * page),
                            page / 4,
                            4,
                            2,
                            true,
                        )),
                    }
                }
                Workload::Barrier => Box::new(BarrierWorker::new(
                    processors as u32,
                    3,
                    VirtAddr::new(0x1000),
                    VirtAddr::new(0x2000),
                    VirtAddr::new(0x3000),
                    Nanos::from_us(2),
                )),
            }
        })
        .collect()
}

fn install(m: &mut Machine, programs: Vec<Box<dyn Program>>) {
    for (cpu, p) in programs.into_iter().enumerate() {
        m.set_program_boxed(cpu, p).unwrap();
    }
}

fn probe_words(m: &Machine) -> Vec<Option<u32>> {
    [0x1000u64, 0x2000, 0x3000, 0x4000, 0x4004, 0x40fc, 0x8000, 0x10000]
        .iter()
        .map(|&a| m.peek_word(Asid::new(1), VirtAddr::new(a)))
        .collect()
}

fn fault_hook(seed: u64) -> FaultPlan {
    FaultPlan::new(seed, FaultRates::light())
}

/// Runs the workload start to finish with no interruption and returns
/// the canonical (report JSON, final probe words) signature.
fn uninterrupted(
    workload: Workload,
    processors: usize,
    faults: Option<u64>,
    obs: bool,
) -> (String, Vec<Option<u32>>) {
    let cfg = config(processors, obs);
    let page = cfg.cache.page_size().bytes();
    let mut m = Machine::build(cfg).unwrap();
    install(&mut m, programs(workload, processors, page));
    if let Some(seed) = faults {
        m.install_fault_hook(fault_hook(seed));
    }
    let report = m.run().unwrap();
    m.validate().unwrap();
    (report.to_json().to_string(), probe_words(&m))
}

/// Runs until `cut`, snapshots, round-trips the container through bytes,
/// resumes into a *fresh* machine, and finishes the run there.
fn interrupted(
    workload: Workload,
    processors: usize,
    faults: Option<u64>,
    obs: bool,
    cut: Nanos,
) -> (String, Vec<Option<u32>>) {
    let cfg = config(processors, obs);
    let page = cfg.cache.page_size().bytes();
    let mut m = Machine::build(cfg.clone()).unwrap();
    install(&mut m, programs(workload, processors, page));
    if let Some(seed) = faults {
        m.install_fault_hook(fault_hook(seed));
    }
    m.run_until(cut).unwrap();
    let snap = m.snapshot().unwrap();
    drop(m);

    // The container must round-trip byte-exactly.
    let snap = MachineSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    let fresh: Vec<Option<Box<dyn Program>>> =
        programs(workload, processors, page).into_iter().map(Some).collect();
    let hook = faults.map(|seed| Box::new(fault_hook(seed)) as _);
    let mut m = Machine::resume(cfg, &snap, fresh, hook).unwrap();
    let report = m.run().unwrap();
    m.validate().unwrap();
    (report.to_json().to_string(), probe_words(&m))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Snapshot-at-T then resume is bit-identical to never stopping, for
    /// every workload × processor count × faults on/off × obs on/off.
    #[test]
    fn snapshot_resume_is_bit_identical(
        widx in 0usize..WORKLOADS.len(),
        processors in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        faults in prop_oneof![Just(None), any::<u64>().prop_map(Some)],
        obs in any::<bool>(),
        cut_us in 1u64..4000,
    ) {
        let workload = WORKLOADS[widx];
        // Messages/Barrier need at least the participating CPUs.
        let processors = if workload == Workload::Messages { processors.max(2) } else { processors };
        let reference = uninterrupted(workload, processors, faults, obs);
        let resumed = interrupted(workload, processors, faults, obs, Nanos::from_us(cut_us));
        prop_assert_eq!(
            &reference.0, &resumed.0,
            "resumed report diverged ({:?}, {} cpus, faults {:?}, obs {})",
            workload, processors, faults, obs
        );
        prop_assert_eq!(
            &reference.1, &resumed.1,
            "resumed memory diverged ({:?}, {} cpus)", workload, processors
        );
    }

    /// The same machine state always serializes to the same bytes — the
    /// property the committed golden corpus rests on.
    #[test]
    fn snapshot_bytes_are_deterministic(
        widx in 0usize..WORKLOADS.len(),
        seed in any::<u64>(),
        cut_us in 1u64..2000,
    ) {
        let workload = WORKLOADS[widx];
        let take = || {
            let cfg = config(2, false);
            let page = cfg.cache.page_size().bytes();
            let mut m = Machine::build(cfg).unwrap();
            install(&mut m, programs(workload, 2, page));
            m.install_fault_hook(fault_hook(seed));
            m.run_until(Nanos::from_us(cut_us)).unwrap();
            m.snapshot().unwrap().to_bytes()
        };
        prop_assert_eq!(take(), take(), "snapshot bytes must be deterministic");
    }
}

/// Double-resume: snapshotting the *resumed* machine again mid-flight and
/// resuming that must still land bit-identical — checkpoints compose.
#[test]
fn chained_snapshots_compose() {
    let workload = Workload::NotifyLock;
    let cfg = config(4, false);
    let page = cfg.cache.page_size().bytes();
    let reference = uninterrupted(workload, 4, Some(5), false);

    let mut m = Machine::build(cfg.clone()).unwrap();
    install(&mut m, programs(workload, 4, page));
    m.install_fault_hook(fault_hook(5));
    m.run_until(Nanos::from_us(40)).unwrap();
    let snap1 = m.snapshot().unwrap();

    let fresh: Vec<Option<Box<dyn Program>>> =
        programs(workload, 4, page).into_iter().map(Some).collect();
    let mut m = Machine::resume(cfg.clone(), &snap1, fresh, Some(Box::new(fault_hook(5)))).unwrap();
    m.run_until(Nanos::from_us(160)).unwrap();
    let snap2 = m.snapshot().unwrap();

    let fresh: Vec<Option<Box<dyn Program>>> =
        programs(workload, 4, page).into_iter().map(Some).collect();
    let mut m = Machine::resume(cfg, &snap2, fresh, Some(Box::new(fault_hook(5)))).unwrap();
    let report = m.run().unwrap();
    m.validate().unwrap();
    assert_eq!(reference.0, report.to_json().to_string());
    assert_eq!(reference.1, probe_words(&m));
}

/// Mismatched geometry, missing programs and missing hooks are rejected
/// loudly, never silently absorbed.
#[test]
fn resume_rejects_mismatches() {
    let cfg = config(2, false);
    let page = cfg.cache.page_size().bytes();
    let mut m = Machine::build(cfg.clone()).unwrap();
    install(&mut m, programs(Workload::SpinLock, 2, page));
    m.install_fault_hook(fault_hook(1));
    m.run_until(Nanos::from_us(50)).unwrap();
    let snap = m.snapshot().unwrap();

    // Wrong processor count.
    let bad = config(4, false);
    let fresh: Vec<Option<Box<dyn Program>>> =
        programs(Workload::SpinLock, 4, page).into_iter().map(Some).collect();
    let err = Machine::resume(bad, &snap, fresh, Some(Box::new(fault_hook(1)))).unwrap_err();
    assert!(matches!(err, MachineError::SnapshotMismatch { .. }), "{err}");

    // Missing fault hook.
    let fresh: Vec<Option<Box<dyn Program>>> =
        programs(Workload::SpinLock, 2, page).into_iter().map(Some).collect();
    let err = Machine::resume(cfg.clone(), &snap, fresh, None).unwrap_err();
    assert!(matches!(err, MachineError::SnapshotMismatch { .. }), "{err}");

    // Missing programs.
    let err =
        Machine::resume(cfg, &snap, vec![None, None], Some(Box::new(fault_hook(1)))).unwrap_err();
    assert!(matches!(err, MachineError::SnapshotMismatch { .. }), "{err}");
}

/// Corrupt containers are detected, and `diff` pinpoints a doctored
/// field rather than just saying "different".
#[test]
fn corruption_is_detected_and_diff_pinpoints() {
    let cfg = config(2, false);
    let page = cfg.cache.page_size().bytes();
    let mut m = Machine::build(cfg).unwrap();
    install(&mut m, programs(Workload::FalseSharing, 2, page));
    m.run_until(Nanos::from_us(80)).unwrap();
    let snap = m.snapshot().unwrap();
    let bytes = snap.to_bytes();

    assert!(MachineSnapshot::from_bytes(&bytes[..10]).is_err());
    let mut doctored = bytes.clone();
    doctored[0] ^= 0xff;
    assert!(MachineSnapshot::from_bytes(&doctored).is_err(), "bad magic must be rejected");

    // Flip one byte deep inside the blob: diff must name the field.
    let mut doctored = bytes.clone();
    let last = doctored.len() - 1;
    doctored[last] ^= 0xff;
    let b = MachineSnapshot::from_bytes(&doctored).unwrap();
    let d = MachineSnapshot::diff(&snap, &b).expect("doctored snapshot must differ");
    assert!(d.contains("$."), "diff must carry a header path: {d}");
    assert_eq!(MachineSnapshot::diff(&snap, &snap), None);
}
