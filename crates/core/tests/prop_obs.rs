//! Property-based tests of the observability layer: recorded miss spans
//! must nest like brackets and account for a processor's stall time
//! exactly, and switching recording on must never perturb the machine.

use proptest::prelude::*;
use vmp_core::{Machine, MachineConfig, ObsConfig, Op, ScriptProgram};
use vmp_obs::{Event, EventKind};
use vmp_types::{Asid, Nanos, VirtAddr};

/// Op generator over a small pool of word addresses — only operations
/// whose stalls are miss-shaped (no watch/notify, whose waits are not
/// bracketed by miss spans).
fn arb_op(pages: u64) -> impl Strategy<Value = Op> {
    let addr = (0..pages, 0u64..4).prop_map(|(p, w)| VirtAddr::new(0x1000 + p * 0x1000 + w * 4));
    prop_oneof![
        addr.clone().prop_map(Op::Read),
        (addr.clone(), any::<u32>()).prop_map(|(a, v)| Op::Write(a, v)),
        addr.prop_map(Op::Tas),
        (1u64..2000).prop_map(|ns| Op::Compute(Nanos::from_ns(ns))),
    ]
}

fn quiet_config(processors: usize, obs: bool) -> MachineConfig {
    let mut config = MachineConfig::small();
    config.processors = processors;
    config.validate_each_step = false;
    config.cpu.page_fault = Nanos::ZERO;
    config.max_time = Nanos::from_ms(60_000);
    if obs {
        config.obs = ObsConfig::on();
    }
    config
}

/// Walks one track's events through a bracket checker. Returns the
/// summed duration of top-level miss/upgrade spans and how many of
/// those completed (the histogram's population).
fn span_sum(events: &[Event]) -> (Nanos, u64) {
    let mut stack = Vec::new();
    let mut sum = Nanos::ZERO;
    let mut completed_top = 0u64;
    let mut last = Nanos::ZERO;
    for e in events {
        assert!(e.at >= last, "events must be time-ordered: {e:?} after {last}");
        last = e.at;
        match e.kind {
            EventKind::MissBegin { cause } => stack.push((e.at, cause)),
            EventKind::MissEnd { cause, completed } => {
                let (begin, began) = stack.pop().expect("MissEnd without matching MissBegin");
                assert_eq!(cause, began, "span delimiters must pair by cause");
                if stack.is_empty() {
                    sum += e.at - begin;
                    if completed {
                        completed_top += 1;
                    }
                }
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "every span must close: {stack:?}");
    (sum, completed_top)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a lone processor nothing but miss handling can stall, so the
    /// recorded top-level spans must nest properly and sum to the
    /// processor's stall time to the nanosecond — and the miss-service
    /// histogram must count exactly the completed ones.
    #[test]
    fn miss_spans_nest_and_sum_to_stall_time(
        ops in proptest::collection::vec(arb_op(4), 1..60),
    ) {
        let mut full_ops = ops;
        full_ops.push(Op::Halt);
        let mut m = Machine::build(quiet_config(1, true)).unwrap();
        m.set_program(0, ScriptProgram::new(full_ops)).unwrap();
        m.run().unwrap();
        m.validate().unwrap();

        let obs = m.obs().expect("recording is enabled");
        let events: Vec<Event> = obs.cpu_events(0).copied().collect();
        let (sum, completed) = span_sum(&events);
        prop_assert_eq!(
            sum,
            m.cpu_stats(0).stall_time,
            "top-level span durations must account for the stall time exactly"
        );
        prop_assert_eq!(obs.miss_service.count(), completed);
        prop_assert_eq!(obs.total_dropped(), 0, "default ring must not wrap here");
    }

    /// Recording only reads simulator state: an enabled run must be
    /// bit-identical to a disabled one in everything but the recording.
    #[test]
    fn recording_never_perturbs_the_machine(
        ops0 in proptest::collection::vec(arb_op(3), 1..40),
        ops1 in proptest::collection::vec(arb_op(3), 1..40),
    ) {
        let run = |obs: bool| {
            let mut m = Machine::build(quiet_config(2, obs)).unwrap();
            let mut a = ops0.clone();
            a.push(Op::Halt);
            let mut b = ops1.clone();
            b.push(Op::Halt);
            m.set_program(0, ScriptProgram::new(a)).unwrap();
            m.set_program(1, ScriptProgram::new(b)).unwrap();
            let report = m.run().unwrap();
            m.validate().unwrap();
            let mut snapshot = Vec::new();
            for p in 0..3u64 {
                for w in 0..4u64 {
                    let va = VirtAddr::new(0x1000 + p * 0x1000 + w * 4);
                    snapshot.push(m.peek_word(Asid::new(1), va));
                }
            }
            let bus = (
                report.bus.total(),
                report.bus.aborts,
                report.bus.reservations,
                report.bus.busy.busy(),
                report.bus.arb_wait_total,
            );
            (report.elapsed, snapshot, report.processors, bus)
        };
        let off = run(false);
        let on = run(true);
        prop_assert_eq!(off.0, on.0, "elapsed time must not change");
        prop_assert_eq!(&off.1, &on.1, "final memory must not change");
        prop_assert_eq!(&off.2, &on.2, "processor statistics must not change");
        prop_assert_eq!(off.3, on.3, "bus statistics must not change");
    }
}
