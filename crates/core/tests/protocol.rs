//! End-to-end protocol tests on the full machine: ownership transfer,
//! mutual exclusion, aliases, DMA, overflow recovery and the §3.4
//! translation-consistency operations. Every run executes with per-step
//! invariant validation enabled (MachineConfig::small does so by
//! default).

use vmp_core::workloads::{LockDiscipline, LockWorker};
use vmp_core::{
    DmaRequest, Machine, MachineConfig, MachineError, Op, OpResult, Program, ScriptProgram,
};
use vmp_types::{Asid, Nanos, VirtAddr};

fn small(processors: usize) -> Machine {
    let mut config = MachineConfig::small();
    config.processors = processors;
    Machine::build(config).expect("valid config")
}

#[test]
fn single_cpu_write_then_read_roundtrip() {
    let mut m = small(1);
    let va = VirtAddr::new(0x2000);
    m.set_program(0, ScriptProgram::new([Op::Write(va, 1234), Op::Read(va), Op::Halt])).unwrap();
    let report = m.run().unwrap();
    assert_eq!(m.peek_word(Asid::new(1), va), Some(1234));
    assert_eq!(report.processors[0].write_misses, 1);
    assert_eq!(report.processors[0].refs, 2);
    m.validate().unwrap();
}

#[test]
fn ownership_transfers_between_processors() {
    let mut m = small(2);
    let va = VirtAddr::new(0x3000);
    // CPU 0 writes (acquires private); CPU 1 later reads the value.
    m.set_program(0, ScriptProgram::new([Op::Write(va, 77), Op::Halt])).unwrap();
    m.set_program(
        1,
        ScriptProgram::new([Op::Compute(Nanos::from_us(200)), Op::Read(va), Op::Halt]),
    )
    .unwrap();
    m.run().unwrap();
    // CPU 1's read-shared was aborted by CPU 0's monitor, CPU 0 wrote
    // back and downgraded, and the retry saw the written value.
    assert_eq!(m.peek_word(Asid::new(1), va), Some(77));
    assert!(m.cpu_stats(1).retries >= 1, "reader should have been aborted at least once");
    assert!(m.cpu_stats(0).writebacks >= 1, "owner must write back");
    assert!(m.cpu_stats(0).downgrades >= 1, "owner downgrades to shared");
    m.validate().unwrap();
}

#[test]
fn write_write_ping_pong_invalidates() {
    let mut m = small(2);
    let va = VirtAddr::new(0x4000);
    let mut ops0 = vec![Op::Write(va, 1)];
    let mut ops1 = vec![Op::Compute(Nanos::from_us(100))];
    for i in 0..10u32 {
        ops0.push(Op::Compute(Nanos::from_us(60)));
        ops0.push(Op::Write(va, 2 * i));
        ops1.push(Op::Compute(Nanos::from_us(60)));
        ops1.push(Op::Write(va, 2 * i + 1));
    }
    ops0.push(Op::Halt);
    ops1.push(Op::Halt);
    m.set_program(0, ScriptProgram::new(ops0)).unwrap();
    m.set_program(1, ScriptProgram::new(ops1)).unwrap();
    m.run().unwrap();
    // The final value is whichever write happened last; both CPUs must
    // have received invalidations as ownership ping-ponged.
    assert!(m.cpu_stats(0).invalidations >= 1);
    assert!(m.cpu_stats(1).invalidations >= 1);
    let v = m.peek_word(Asid::new(1), va).unwrap();
    assert!(v == 18 || v == 19, "final value {v} must be one of the last writes");
    m.validate().unwrap();
}

#[test]
fn spin_locked_counter_is_exact() {
    let mut m = small(3);
    let lock = VirtAddr::new(0x1000);
    let counter = VirtAddr::new(0x2000); // different page
    for cpu in 0..3 {
        m.set_program(
            cpu,
            LockWorker::new(
                LockDiscipline::Spin,
                lock,
                counter,
                20,
                Nanos::from_us(2),
                Nanos::from_us(3),
            ),
        )
        .unwrap();
    }
    m.run().unwrap();
    assert_eq!(m.peek_word(Asid::new(1), counter), Some(60), "no update may be lost");
    m.validate().unwrap();
}

#[test]
fn notify_locked_counter_is_exact() {
    let mut m = small(3);
    let lock = VirtAddr::new(0x1000);
    let counter = VirtAddr::new(0x2000);
    for cpu in 0..3 {
        m.set_program(
            cpu,
            LockWorker::new(
                LockDiscipline::Notify,
                lock,
                counter,
                15,
                Nanos::from_us(2),
                Nanos::from_us(3),
            ),
        )
        .unwrap();
    }
    let report = m.run().unwrap();
    assert_eq!(m.peek_word(Asid::new(1), counter), Some(45));
    // Some waiter should have been woken by a notification.
    let notifies: u64 = report.processors.iter().map(|p| p.notifies).sum();
    assert!(notifies > 0, "notification path never exercised");
    m.validate().unwrap();
}

#[test]
fn notify_lock_generates_less_lock_traffic_than_spin() {
    let run = |discipline| {
        let mut m = small(4);
        let lock = VirtAddr::new(0x1000);
        let counter = VirtAddr::new(0x2000);
        for cpu in 0..4 {
            m.set_program(
                cpu,
                LockWorker::new(
                    discipline,
                    lock,
                    counter,
                    10,
                    Nanos::from_us(20), // long critical section → heavy contention
                    Nanos::ZERO,
                ),
            )
            .unwrap();
        }
        let report = m.run().unwrap();
        assert_eq!(m.peek_word(Asid::new(1), counter), Some(40));
        let upgrades_and_misses: u64 =
            report.processors.iter().map(|p| p.upgrades + p.write_misses + p.invalidations).sum();
        upgrades_and_misses
    };
    let spin_traffic = run(LockDiscipline::Spin);
    let notify_traffic = run(LockDiscipline::Notify);
    assert!(
        notify_traffic < spin_traffic,
        "notification locks should reduce consistency traffic: spin={spin_traffic} notify={notify_traffic}"
    );
}

#[test]
fn alias_same_cpu_self_competition() {
    // One CPU maps the same frame at two virtual addresses, writes
    // through one and reads through the other (§3.3 alias case).
    let mut m = small(1);
    let va1 = VirtAddr::new(0x5000);
    let va2 = VirtAddr::new(0x9000);
    let asid = Asid::new(1);
    m.map_shared(&[(asid, va1), (asid, va2)]).unwrap();
    m.set_program(0, ScriptProgram::new([Op::Write(va1, 4242), Op::Read(va2), Op::Halt])).unwrap();
    m.run().unwrap();
    // The read through va2 missed, issued read-shared, was aborted by
    // the CPU's own monitor (it owned the frame via va1), flushed, and
    // retried — ending with the correct value.
    let observed = m.peek_word(asid, va2);
    assert_eq!(observed, Some(4242));
    assert!(m.cpu_stats(0).retries >= 1, "self-competition must abort once");
    m.validate().unwrap();
}

#[test]
fn alias_read_value_flows_through_memory() {
    // The program must actually *see* 4242 through the alias.
    let mut m = small(1);
    let va1 = VirtAddr::new(0x5000);
    let va2 = VirtAddr::new(0x9000);
    let asid = Asid::new(1);
    m.map_shared(&[(asid, va1), (asid, va2)]).unwrap();
    let script = ScriptProgram::new([Op::Write(va1, 4242), Op::Read(va2), Op::Halt]);
    m.set_program(0, script).unwrap();
    m.run().unwrap();
    // Retrieve the observed read from the program: peek_word confirms the
    // coherent value; the observed list is checked via a fresh script in
    // `script_observes_reads` below. Here assert the cache ends sane:
    m.validate().unwrap();
}

#[test]
fn cross_asid_shared_frame() {
    // Two CPUs in different address spaces share one frame at different
    // virtual addresses.
    let mut m = small(2);
    let a1 = Asid::new(1);
    let a2 = Asid::new(2);
    let va1 = VirtAddr::new(0x5000);
    let va2 = VirtAddr::new(0xa000);
    m.map_shared(&[(a1, va1), (a2, va2)]).unwrap();
    m.set_asid(0, a1).unwrap();
    m.set_asid(1, a2).unwrap();
    m.set_program(0, ScriptProgram::new([Op::Write(va1, 31337), Op::Halt])).unwrap();
    m.set_program(
        1,
        ScriptProgram::new([Op::Compute(Nanos::from_us(150)), Op::Read(va2), Op::Halt]),
    )
    .unwrap();
    m.run().unwrap();
    assert_eq!(m.peek_word(a2, va2), Some(31337));
    m.validate().unwrap();
}

#[test]
fn script_observes_reads() {
    // OpResult plumbing: a reader program actually receives the value.
    let mut m = small(2);
    let va = VirtAddr::new(0x7000);
    m.set_program(0, ScriptProgram::new([Op::Write(va, 555), Op::Halt])).unwrap();
    // Run writer to completion first.
    m.run().unwrap();
    m.set_program(1, ScriptProgram::new([Op::Read(va), Op::Halt])).unwrap();
    m.run().unwrap();
    // The reader's observation is visible through peek (the read is
    // coherent) — and no invariant broke while ownership moved.
    assert_eq!(m.peek_word(Asid::new(1), va), Some(555));
    m.validate().unwrap();
}

#[test]
fn dma_from_memory_captures_cpu_writes() {
    let mut m = small(2);
    let va = VirtAddr::new(0x6000);
    // CPU 0 dirties a page privately.
    m.set_program(0, ScriptProgram::new([Op::Write(va, 0xfeed_beef), Op::Halt])).unwrap();
    m.run().unwrap();
    let frame = m.frame_of(Asid::new(1), va).unwrap();
    // Device reads the frame, managed by CPU 1: setup must flush CPU 0.
    let handle = m.queue_dma(1, DmaRequest::from_memory(vec![frame])).unwrap();
    m.run().unwrap();
    let data = m.dma_result(handle).expect("dma complete");
    assert_eq!(&data[..4], &0xfeed_beefu32.to_le_bytes());
    m.validate().unwrap();
}

#[test]
fn dma_to_memory_then_cpu_reads_device_data() {
    let mut m = small(2);
    let va = VirtAddr::new(0x6000);
    // Fault the page in so it has a frame.
    m.set_program(0, ScriptProgram::new([Op::Read(va), Op::Halt])).unwrap();
    m.run().unwrap();
    let frame = m.frame_of(Asid::new(1), va).unwrap();
    let page = m.page_size().bytes() as usize;
    let mut data = vec![0u8; page];
    data[..4].copy_from_slice(&0x0bad_cafeu32.to_le_bytes());
    let _ = m.queue_dma(1, DmaRequest::to_memory(vec![frame], data)).unwrap();
    m.run().unwrap();
    // CPU 0's stale cached copy was flushed during DMA setup; its next
    // read refetches the device data.
    m.set_program(0, ScriptProgram::new([Op::Read(va), Op::Halt])).unwrap();
    m.run().unwrap();
    assert_eq!(m.peek_word(Asid::new(1), va), Some(0x0bad_cafe));
    m.validate().unwrap();
}

#[test]
fn fifo_overflow_triggers_recovery() {
    // CPU 0 caches 140 pages shared, then blocks in one *uninterruptible*
    // operation — a miss whose demand-zero fault is configured to take
    // 5 ms (two nested faults: the data page and its PTE page ≈ 10 ms).
    // Interrupts are serviced only between instructions, so while CPU 0
    // is blocked, CPU 1 takes private ownership of all 140 pages: 140
    // distinct interrupt words flood CPU 0's 128-entry FIFO and force
    // the §3.3 recovery sweep at the next boundary.
    let mut config = MachineConfig::small();
    config.processors = 2;
    config.memory_bytes = 256 * 1024;
    config.cache = vmp_cache::CacheConfig::new(vmp_types::PageSize::S128, 4, 128 * 1024).unwrap();
    config.cpu.page_fault = Nanos::from_ms(5);
    config.max_time = Nanos::from_ms(60_000);
    let pages = 140u64;
    let mut m = Machine::build(config).unwrap();
    // Pre-map the shared pages; their PTE pages still fault during CPU 0's
    // priming phase (≈5 faults × 5 ms ≈ 25 ms).
    let asid = Asid::new(1);
    for i in 0..pages {
        m.map_shared(&[(asid, VirtAddr::new(i * 128))]).unwrap();
    }
    let mut ops0: Vec<Op> = (0..pages).map(|i| Op::Read(VirtAddr::new(i * 128))).collect();
    // The blocking read: fresh data page + fresh PTE page ≈ 10 ms stall.
    ops0.push(Op::Read(VirtAddr::new(0x10_0000)));
    ops0.push(Op::Halt);
    // CPU 1 starts after CPU 0's priming finishes (priming ≈ 28 ms) and
    // writes all 140 pages well inside CPU 0's ≈10 ms blocked window.
    let mut ops1 = vec![Op::Compute(Nanos::from_ms(30))];
    ops1.extend((0..pages).map(|i| Op::Write(VirtAddr::new(i * 128), i as u32)));
    ops1.push(Op::Halt);
    m.set_program(0, ScriptProgram::new(ops0)).unwrap();
    m.set_program(1, ScriptProgram::new(ops1)).unwrap();
    let report = m.run().unwrap();
    assert!(
        report.processors[0].fifo_recoveries >= 1,
        "expected an overflow recovery, got {:?}",
        report.processors[0]
    );
    m.validate().unwrap();
}

#[test]
fn change_mapping_flushes_all_caches() {
    let mut m = small(2);
    let va = VirtAddr::new(0x8000);
    let asid = Asid::new(1);
    // Both CPUs cache the page (CPU 0 writes, CPU 1 reads → shared).
    m.set_program(0, ScriptProgram::new([Op::Write(va, 11), Op::Halt])).unwrap();
    m.set_program(
        1,
        ScriptProgram::new([Op::Compute(Nanos::from_us(200)), Op::Read(va), Op::Halt]),
    )
    .unwrap();
    m.run().unwrap();
    let old_frame = m.frame_of(asid, va).unwrap();
    // Remap the page to a fresh frame (§3.4).
    let vpn = m.page_size().vpn_of(VirtAddr::new(0xff00));
    let new_frame = {
        // Grab a frame by faulting an unrelated page, then reuse it.
        let k_frame = (m.kernel().free_frames() > 0).then_some(());
        let _ = (vpn, k_frame);
        // Simply map to a frame we conjure via a scratch fault:
        m.map_shared(&[(Asid::new(7), VirtAddr::new(0x100))]).unwrap()
    };
    let prev = m.change_mapping(0, asid, va, new_frame).unwrap();
    assert_eq!(prev, old_frame);
    // No cache may still hold the old frame.
    m.validate().unwrap();
    assert_eq!(m.frame_of(asid, va), Some(new_frame));
    // A subsequent read sees the new frame's (zero) contents.
    m.set_program(0, ScriptProgram::new([Op::Read(va), Op::Halt])).unwrap();
    m.run().unwrap();
    m.validate().unwrap();
}

#[test]
fn delete_address_space_flushes_and_frees() {
    let mut m = small(2);
    let asid = Asid::new(1);
    let vas: Vec<VirtAddr> = (0..4).map(|i| VirtAddr::new(0x1000 + i * 0x1000)).collect();
    let ops: Vec<Op> = vas.iter().map(|&va| Op::Write(va, 9)).chain([Op::Halt]).collect();
    m.set_program(0, ScriptProgram::new(ops)).unwrap();
    m.run().unwrap();
    let free_before = m.kernel().free_frames();
    m.delete_address_space(1, asid).unwrap();
    assert!(m.kernel().space(asid).is_none());
    assert!(m.kernel().free_frames() > free_before, "frames must be reclaimed");
    m.validate().unwrap();
}

#[test]
fn pte_traffic_appears_on_first_touch() {
    let mut m = small(1);
    m.set_program(0, ScriptProgram::new([Op::Read(VirtAddr::new(0x1000)), Op::Halt])).unwrap();
    let report = m.run().unwrap();
    assert!(report.processors[0].pte_misses >= 1, "PTE page must be fetched through the cache");
    // Two demand-zero faults: the data page itself and the kernel page
    // backing its PTE array.
    assert_eq!(report.processors[0].page_faults, 2);
}

#[test]
fn determinism_identical_runs() {
    let build = || {
        let mut m = small(2);
        let lock = VirtAddr::new(0x1000);
        let counter = VirtAddr::new(0x2000);
        for cpu in 0..2 {
            m.set_program(
                cpu,
                LockWorker::new(
                    LockDiscipline::Spin,
                    lock,
                    counter,
                    10,
                    Nanos::from_us(1),
                    Nanos::from_us(2),
                ),
            )
            .unwrap();
        }
        m
    };
    let r1 = build().run().unwrap();
    let r2 = build().run().unwrap();
    assert_eq!(r1.elapsed, r2.elapsed);
    assert_eq!(r1.processors, r2.processors);
}

#[test]
fn time_limit_reported() {
    struct Spinner;
    impl Program for Spinner {
        fn next_op(&mut self, _last: OpResult) -> Op {
            Op::Compute(Nanos::from_us(10))
        }
    }
    let mut config = MachineConfig::small();
    config.processors = 1;
    config.max_time = Nanos::from_us(100);
    let mut m = Machine::build(config).unwrap();
    m.set_program(0, Spinner).unwrap();
    match m.run() {
        Err(MachineError::TimeLimit { still_running }) => {
            assert_eq!(still_running.len(), 1);
        }
        other => panic!("expected time limit, got {other:?}"),
    }
}

#[test]
fn halted_cpu_still_services_interrupts() {
    // CPU 0 writes a page and halts holding it privately; CPU 1 then
    // reads it. CPU 0 must wake from halt to write back and downgrade.
    let mut m = small(2);
    let va = VirtAddr::new(0x3000);
    m.set_program(0, ScriptProgram::new([Op::Write(va, 99), Op::Halt])).unwrap();
    m.set_program(
        1,
        ScriptProgram::new([Op::Compute(Nanos::from_us(500)), Op::Read(va), Op::Halt]),
    )
    .unwrap();
    m.run().unwrap();
    assert_eq!(m.peek_word(Asid::new(1), va), Some(99));
    assert!(m.cpu_stats(0).writebacks >= 1);
    m.validate().unwrap();
}

#[test]
fn bus_stats_accumulate() {
    let mut m = small(2);
    m.set_program(
        0,
        ScriptProgram::new([
            Op::Write(VirtAddr::new(0x100), 1),
            Op::Read(VirtAddr::new(0x200)),
            Op::Halt,
        ]),
    )
    .unwrap();
    let report = m.run().unwrap();
    assert!(report.bus.total() > 0);
    assert!(report.bus_utilization() > 0.0);
    assert!(report.total_refs() >= 2);
}

#[test]
fn miss_latency_histogram_records_misses() {
    let mut m = small(1);
    let va = VirtAddr::new(0x2000);
    m.set_program(0, ScriptProgram::new([Op::Write(va, 1), Op::Read(va), Op::Read(va), Op::Halt]))
        .unwrap();
    m.run().unwrap();
    let h = m.miss_latency(0);
    // Exactly one stalled operation: the first write (the two reads hit).
    assert_eq!(h.count(), 1);
    // Its latency includes two demand-zero faults (2 × 100 µs default)
    // plus the handler; everything lands beyond the last 2 µs bucket.
    assert!(h.mean() > Nanos::from_us(100));
}

#[test]
fn contention_lengthens_miss_latency_tail() {
    use vmp_core::workloads::{LockDiscipline, LockWorker};
    let run = |cpus: usize| {
        let mut config = MachineConfig::small();
        config.processors = cpus;
        // Exclude demand-zero service so the tail reflects contention,
        // not who happened to fault the pages in first.
        config.cpu.page_fault = Nanos::ZERO;
        let mut m = Machine::build(config).unwrap();
        let lock = VirtAddr::new(0x1000);
        let counter = VirtAddr::new(0x2000);
        for cpu in 0..cpus {
            m.set_program(
                cpu,
                LockWorker::new(
                    LockDiscipline::Spin,
                    lock,
                    counter,
                    10,
                    Nanos::from_us(5),
                    Nanos::from_us(2),
                ),
            )
            .unwrap();
        }
        m.run().unwrap();
        m.miss_latency(0).max()
    };
    let solo = run(1);
    let contended = run(3);
    assert!(
        contended > solo,
        "contention must lengthen the worst-case miss latency: {solo} vs {contended}"
    );
}

#[test]
fn three_way_alias_stays_coherent() {
    // One frame mapped at three virtual addresses on one CPU: writes
    // through each alias in turn must always be visible through the
    // others, with the monitor arbitrating the self-competition.
    let mut m = small(1);
    let asid = Asid::new(1);
    let vas = [VirtAddr::new(0x5000), VirtAddr::new(0x9000), VirtAddr::new(0xd000)];
    m.map_shared(&[(asid, vas[0]), (asid, vas[1]), (asid, vas[2])]).unwrap();
    let mut ops = Vec::new();
    for (i, &va) in vas.iter().enumerate() {
        ops.push(Op::Write(va, 100 + i as u32));
        ops.push(Op::Read(vas[(i + 1) % 3]));
    }
    ops.push(Op::Halt);
    m.set_program(0, ScriptProgram::new(ops)).unwrap();
    m.run().unwrap();
    // Last write was via vas[2]; all three names must read it.
    for &va in &vas {
        assert_eq!(m.peek_word(asid, va), Some(102), "alias {va} diverged");
    }
    assert!(m.cpu_stats(0).retries >= 2, "self-competition on each alias switch");
    m.validate().unwrap();
}

#[test]
fn independent_watches_on_distinct_frames() {
    // A processor watches two frames; notifies on one must not wake the
    // other's wait. CPU 1 watches A; CPU 0 notifies B (watched by
    // nobody), then A.
    let mut m = small(2);
    let a = VirtAddr::new(0x3000);
    let b = VirtAddr::new(0x7000);
    m.map_shared(&[(Asid::new(1), a)]).unwrap();
    m.map_shared(&[(Asid::new(1), b)]).unwrap();
    m.set_program(
        1,
        ScriptProgram::new([Op::WatchNotify(a), Op::WaitNotify, Op::Read(a), Op::Halt]),
    )
    .unwrap();
    m.set_program(
        0,
        ScriptProgram::new([
            Op::Compute(Nanos::from_us(50)),
            Op::Write(a, 77),
            Op::Notify(b), // wrong frame: must not wake CPU 1
            Op::Compute(Nanos::from_us(30)),
            Op::Notify(a), // right frame
            Op::Halt,
        ]),
    )
    .unwrap();
    let report = m.run().unwrap();
    assert_eq!(m.peek_word(Asid::new(1), a), Some(77));
    // Exactly one notification delivered to CPU 1 (frame A's).
    assert_eq!(report.processors[1].notifies, 1);
    m.validate().unwrap();
}

#[test]
fn uncached_word_ops_reach_memory_directly() {
    let mut m = small(1);
    let pa = m.alloc_uncached_frame().unwrap();
    m.set_program(
        0,
        ScriptProgram::new([
            Op::UncachedWrite(pa, 0xabcd),
            Op::UncachedRead(pa),
            Op::UncachedTas(pa.add(4)),
            Op::UncachedTas(pa.add(4)),
            Op::Halt,
        ]),
    )
    .unwrap();
    let report = m.run().unwrap();
    // No cache interaction at all: no misses, no bus block transfers.
    assert_eq!(report.processors[0].misses(), 0);
    assert_eq!(report.processors[0].refs, 4);
    assert!(report.bus.count(vmp_bus::BusTxKind::ReadShared) == 0);
    assert!(report.bus.count(vmp_bus::BusTxKind::PlainWrite) >= 3);
    m.validate().unwrap();
}

#[test]
fn uncached_tas_is_atomic_under_contention() {
    // Two CPUs hammer an uncached TAS word; mutual exclusion must hold
    // for the cached counter it guards.
    use vmp_core::workloads::UncachedLockWorker;
    let mut m = small(2);
    let pa = m.alloc_uncached_frame().unwrap();
    let counter = VirtAddr::new(0x2000);
    for cpu in 0..2 {
        m.set_program(
            cpu,
            UncachedLockWorker::new(
                pa,
                counter,
                25,
                Nanos::from_us(3),
                Nanos::from_us(1),
                Nanos::from_us(2),
            ),
        )
        .unwrap();
    }
    m.run().unwrap();
    assert_eq!(m.peek_word(Asid::new(1), counter), Some(50));
    m.validate().unwrap();
}
