//! Property-based tests of the full machine: against a flat-memory
//! oracle for single-processor runs, and for invariant preservation and
//! determinism under random multiprocessor workloads.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use proptest::prelude::*;
use vmp_core::{Machine, MachineConfig, Op, OpResult, Program};
use vmp_types::{Asid, Nanos, VirtAddr};

/// A program that replays a fixed op list and records every result.
struct Recording {
    ops: Vec<Op>,
    next: usize,
    log: Rc<RefCell<Vec<OpResult>>>,
}

impl Program for Recording {
    fn next_op(&mut self, last: OpResult) -> Op {
        if self.next > 0 {
            self.log.borrow_mut().push(last);
        }
        let op = self.ops.get(self.next).copied().unwrap_or(Op::Halt);
        self.next += 1;
        op
    }
}

/// Simple op generator over a small pool of word addresses.
fn arb_op(pages: u64) -> impl Strategy<Value = Op> {
    let addr = (0..pages, 0u64..4).prop_map(|(p, w)| VirtAddr::new(0x1000 + p * 0x1000 + w * 4));
    prop_oneof![
        addr.clone().prop_map(Op::Read),
        (addr.clone(), any::<u32>()).prop_map(|(a, v)| Op::Write(a, v)),
        addr.prop_map(Op::Tas),
        (1u64..2000).prop_map(|ns| Op::Compute(Nanos::from_ns(ns))),
    ]
}

fn quiet_config(processors: usize) -> MachineConfig {
    let mut config = MachineConfig::small();
    config.processors = processors;
    config.validate_each_step = false; // validated at the end (speed)
    config.cpu.page_fault = Nanos::ZERO;
    config.max_time = Nanos::from_ms(60_000);
    config
}

/// The sequential oracle: flat word-addressed memory.
fn oracle(ops: &[Op]) -> Vec<OpResult> {
    let mut memory: HashMap<u64, u32> = HashMap::new();
    let mut results = Vec::new();
    for op in ops {
        results.push(match *op {
            Op::Read(a) => OpResult::Read(*memory.get(&a.raw()).unwrap_or(&0)),
            Op::Write(a, v) => {
                memory.insert(a.raw(), v);
                OpResult::None
            }
            Op::Tas(a) => {
                let old = *memory.get(&a.raw()).unwrap_or(&0);
                memory.insert(a.raw(), 1);
                OpResult::Tas(old)
            }
            _ => OpResult::None,
        });
    }
    results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A single processor through the full cache/miss/protocol machinery
    /// must be observationally identical to flat memory.
    #[test]
    fn single_cpu_matches_flat_memory(ops in proptest::collection::vec(arb_op(4), 1..60)) {
        let mut full_ops = ops.clone();
        full_ops.push(Op::Halt);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut m = Machine::build(quiet_config(1)).unwrap();
        m.set_program(0, Recording { ops: full_ops, next: 0, log: Rc::clone(&log) }).unwrap();
        m.run().unwrap();
        m.validate().unwrap();
        let got = log.borrow();
        let want = oracle(&ops);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert_eq!(g, w, "machine diverged from flat-memory oracle");
        }
    }

    /// Random two-processor interleavings preserve the protocol
    /// invariants and the final memory state is deterministic.
    #[test]
    fn two_cpus_invariants_and_determinism(
        ops0 in proptest::collection::vec(arb_op(3), 1..40),
        ops1 in proptest::collection::vec(arb_op(3), 1..40),
    ) {
        let run = || {
            let mut m = Machine::build(quiet_config(2)).unwrap();
            let mut a = ops0.clone();
            a.push(Op::Halt);
            let mut b = ops1.clone();
            b.push(Op::Halt);
            let log = Rc::new(RefCell::new(Vec::new()));
            m.set_program(0, Recording { ops: a, next: 0, log: Rc::clone(&log) }).unwrap();
            let log1 = Rc::new(RefCell::new(Vec::new()));
            m.set_program(1, Recording { ops: b, next: 0, log: log1 }).unwrap();
            let report = m.run().unwrap();
            m.validate().unwrap();
            // Snapshot the coherent value of every touched word.
            let mut snapshot = Vec::new();
            for p in 0..3u64 {
                for w in 0..4u64 {
                    let va = VirtAddr::new(0x1000 + p * 0x1000 + w * 4);
                    snapshot.push(m.peek_word(Asid::new(1), va));
                }
            }
            let observed = log.borrow().clone();
            (report.elapsed, snapshot, observed)
        };
        let (t1, s1, l1) = run();
        let (t2, s2, l2) = run();
        prop_assert_eq!(t1, t2, "elapsed time must be deterministic");
        prop_assert_eq!(s1, s2, "final memory must be deterministic");
        prop_assert_eq!(l1, l2, "observed values must be deterministic");
    }

    /// Statistics bookkeeping balances for arbitrary workloads.
    #[test]
    fn stats_balance(ops in proptest::collection::vec(arb_op(4), 1..50)) {
        let refs_expected = ops
            .iter()
            .filter(|o| matches!(o, Op::Read(_) | Op::Write(..) | Op::Tas(_)))
            .count() as u64;
        let mut full_ops = ops;
        full_ops.push(Op::Halt);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut m = Machine::build(quiet_config(1)).unwrap();
        m.set_program(0, Recording { ops: full_ops, next: 0, log }).unwrap();
        let report = m.run().unwrap();
        let s = &report.processors[0];
        prop_assert_eq!(s.refs, refs_expected);
        prop_assert!(s.misses() <= s.refs);
        prop_assert_eq!(s.violations, 0);
        prop_assert_eq!(s.retries, 0, "a lone CPU is never aborted");
    }
}
