//! Property-based tests of the full machine: against a flat-memory
//! oracle for single-processor runs, and for invariant preservation and
//! determinism under random multiprocessor workloads.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use proptest::prelude::*;
use vmp_core::{Machine, MachineConfig, Op, OpResult, Program, WatchdogConfig};
use vmp_faults::{FaultPlan, FaultRates};
use vmp_types::{Asid, Nanos, VirtAddr};

/// A program that replays a fixed op list and records every result.
struct Recording {
    ops: Vec<Op>,
    next: usize,
    log: Rc<RefCell<Vec<OpResult>>>,
}

impl Program for Recording {
    fn next_op(&mut self, last: OpResult) -> Op {
        if self.next > 0 {
            self.log.borrow_mut().push(last);
        }
        let op = self.ops.get(self.next).copied().unwrap_or(Op::Halt);
        self.next += 1;
        op
    }
}

/// Simple op generator over a small pool of word addresses.
fn arb_op(pages: u64) -> impl Strategy<Value = Op> {
    let addr = (0..pages, 0u64..4).prop_map(|(p, w)| VirtAddr::new(0x1000 + p * 0x1000 + w * 4));
    prop_oneof![
        addr.clone().prop_map(Op::Read),
        (addr.clone(), any::<u32>()).prop_map(|(a, v)| Op::Write(a, v)),
        addr.prop_map(Op::Tas),
        (1u64..2000).prop_map(|ns| Op::Compute(Nanos::from_ns(ns))),
    ]
}

fn quiet_config(processors: usize) -> MachineConfig {
    let mut config = MachineConfig::small();
    config.processors = processors;
    config.validate_each_step = false; // validated at the end (speed)
    config.cpu.page_fault = Nanos::ZERO;
    config.max_time = Nanos::from_ms(60_000);
    config
}

/// The sequential oracle: flat word-addressed memory.
fn oracle(ops: &[Op]) -> Vec<OpResult> {
    let mut memory: HashMap<u64, u32> = HashMap::new();
    let mut results = Vec::new();
    for op in ops {
        results.push(match *op {
            Op::Read(a) => OpResult::Read(*memory.get(&a.raw()).unwrap_or(&0)),
            Op::Write(a, v) => {
                memory.insert(a.raw(), v);
                OpResult::None
            }
            Op::Tas(a) => {
                let old = *memory.get(&a.raw()).unwrap_or(&0);
                memory.insert(a.raw(), 1);
                OpResult::Tas(old)
            }
            _ => OpResult::None,
        });
    }
    results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A single processor through the full cache/miss/protocol machinery
    /// must be observationally identical to flat memory.
    #[test]
    fn single_cpu_matches_flat_memory(ops in proptest::collection::vec(arb_op(4), 1..60)) {
        let mut full_ops = ops.clone();
        full_ops.push(Op::Halt);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut m = Machine::build(quiet_config(1)).unwrap();
        m.set_program(0, Recording { ops: full_ops, next: 0, log: Rc::clone(&log) }).unwrap();
        m.run().unwrap();
        m.validate().unwrap();
        let got = log.borrow();
        let want = oracle(&ops);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert_eq!(g, w, "machine diverged from flat-memory oracle");
        }
    }

    /// Random two-processor interleavings preserve the protocol
    /// invariants and the final memory state is deterministic.
    #[test]
    fn two_cpus_invariants_and_determinism(
        ops0 in proptest::collection::vec(arb_op(3), 1..40),
        ops1 in proptest::collection::vec(arb_op(3), 1..40),
    ) {
        let run = || {
            let mut m = Machine::build(quiet_config(2)).unwrap();
            let mut a = ops0.clone();
            a.push(Op::Halt);
            let mut b = ops1.clone();
            b.push(Op::Halt);
            let log = Rc::new(RefCell::new(Vec::new()));
            m.set_program(0, Recording { ops: a, next: 0, log: Rc::clone(&log) }).unwrap();
            let log1 = Rc::new(RefCell::new(Vec::new()));
            m.set_program(1, Recording { ops: b, next: 0, log: log1 }).unwrap();
            let report = m.run().unwrap();
            m.validate().unwrap();
            // Snapshot the coherent value of every touched word.
            let mut snapshot = Vec::new();
            for p in 0..3u64 {
                for w in 0..4u64 {
                    let va = VirtAddr::new(0x1000 + p * 0x1000 + w * 4);
                    snapshot.push(m.peek_word(Asid::new(1), va));
                }
            }
            let observed = log.borrow().clone();
            (report.elapsed, snapshot, observed)
        };
        let (t1, s1, l1) = run();
        let (t2, s2, l2) = run();
        prop_assert_eq!(t1, t2, "elapsed time must be deterministic");
        prop_assert_eq!(s1, s2, "final memory must be deterministic");
        prop_assert_eq!(l1, l2, "observed values must be deterministic");
    }

    /// FIFO-overflow recovery repairs injected interrupt-word drops.
    ///
    /// CPU 0 is the only writer of the shared pool, CPU 1 reads it while
    /// writing a private pool, and the fault plan aggressively drops the
    /// consistency-interrupt words carrying CPU 0's ownership assertions
    /// (every drop leaves the monitor's sticky overflow flag set, so the
    /// §3.3 conservative recovery must repair the loss). One writer per
    /// word means the final memory is fault-independent: it must equal
    /// the last program-order write regardless of how many words were
    /// lost along the way — and the run must stay deterministic, pass
    /// validation and never trip the watchdog.
    #[test]
    fn overflow_recovery_survives_injected_word_drops(
        writes in proptest::collection::vec((0u64..3, 0u64..4, any::<u32>()), 1..30),
        reader in proptest::collection::vec((0u64..3, 0u64..4, any::<bool>()), 1..30),
        seed in any::<u64>(),
    ) {
        let shared = |p: u64, w: u64| VirtAddr::new(0x1000 + p * 0x1000 + w * 4);
        let private = |p: u64, w: u64| VirtAddr::new(0x20000 + p * 0x1000 + w * 4);
        let ops0: Vec<Op> = writes.iter().map(|&(p, w, v)| Op::Write(shared(p, w), v)).collect();
        let ops1: Vec<Op> = reader
            .iter()
            .map(|&(p, w, wr)| {
                if wr { Op::Write(private(p, w), p as u32 ^ w as u32) } else { Op::Read(shared(p, w)) }
            })
            .collect();
        let rates = FaultRates {
            drop_word: 0.8,
            force_overflow: 0.05,
            abort: 0.05,
            ..FaultRates::none()
        };
        let run = || {
            let mut config = quiet_config(2);
            config.watchdog = Some(WatchdogConfig::default());
            config.audit_every = Some(32);
            let mut m = Machine::build(config).unwrap();
            let mut a = ops0.clone();
            a.push(Op::Halt);
            let mut b = ops1.clone();
            b.push(Op::Halt);
            let log = Rc::new(RefCell::new(Vec::new()));
            m.set_program(0, Recording { ops: a, next: 0, log }).unwrap();
            let log1 = Rc::new(RefCell::new(Vec::new()));
            m.set_program(1, Recording { ops: b, next: 0, log: log1 }).unwrap();
            m.install_fault_hook(FaultPlan::new(seed, rates));
            let report = m.run().expect("faulted run must still converge");
            m.validate().expect("invariants must hold after recovery");
            let mut snapshot = Vec::new();
            for p in 0..3u64 {
                for w in 0..4u64 {
                    snapshot.push(m.peek_word(Asid::new(1), shared(p, w)));
                    snapshot.push(m.peek_word(Asid::new(1), private(p, w)));
                }
            }
            (report.elapsed, snapshot, m.fault_stats().dropped_words)
        };
        let (t1, s1, d1) = run();
        let (t2, s2, d2) = run();
        prop_assert_eq!(t1, t2, "faulted runs must be deterministic");
        prop_assert_eq!(&s1, &s2, "faulted final memory must be deterministic");
        prop_assert_eq!(d1, d2, "fault accounting must be deterministic");

        // Single-writer oracle: last program-order write per word wins.
        let mut want: HashMap<u64, u32> = HashMap::new();
        for &(p, w, v) in &writes {
            want.insert(shared(p, w).raw(), v);
        }
        for &(p, w, wr) in &reader {
            if wr {
                want.insert(private(p, w).raw(), p as u32 ^ w as u32);
            }
        }
        let mut i = 0;
        for p in 0..3u64 {
            for w in 0..4u64 {
                for va in [shared(p, w), private(p, w)] {
                    let expect = want.get(&va.raw()).copied().unwrap_or(0);
                    prop_assert_eq!(
                        s1[i].unwrap_or(0),
                        expect,
                        "word {:?} diverged despite overflow recovery",
                        va
                    );
                    i += 1;
                }
            }
        }
    }

    /// Statistics bookkeeping balances for arbitrary workloads.
    #[test]
    fn stats_balance(ops in proptest::collection::vec(arb_op(4), 1..50)) {
        let refs_expected = ops
            .iter()
            .filter(|o| matches!(o, Op::Read(_) | Op::Write(..) | Op::Tas(_)))
            .count() as u64;
        let mut full_ops = ops;
        full_ops.push(Op::Halt);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut m = Machine::build(quiet_config(1)).unwrap();
        m.set_program(0, Recording { ops: full_ops, next: 0, log }).unwrap();
        let report = m.run().unwrap();
        let s = &report.processors[0];
        prop_assert_eq!(s.refs, refs_expected);
        prop_assert!(s.misses() <= s.refs);
        prop_assert_eq!(s.violations, 0);
        prop_assert_eq!(s.retries, 0, "a lone CPU is never aborted");
    }
}

/// Companion to `overflow_recovery_survives_injected_word_drops`: pin one
/// seed known to exercise the path, so the property cannot silently decay
/// into never dropping a word at all.
#[test]
fn word_drop_fault_path_is_actually_exercised() {
    let mut config = quiet_config(2);
    config.watchdog = Some(WatchdogConfig::default());
    let mut m = Machine::build(config).unwrap();
    let shared = VirtAddr::new(0x1000);
    let ops0: Vec<Op> = (0..40).map(|i| Op::Write(shared, i)).collect();
    let ops1: Vec<Op> = (0..40).map(|_| Op::Read(shared)).collect();
    let mut a = ops0;
    a.push(Op::Halt);
    let mut b = ops1;
    b.push(Op::Halt);
    let log = Rc::new(RefCell::new(Vec::new()));
    m.set_program(0, Recording { ops: a, next: 0, log }).unwrap();
    let log1 = Rc::new(RefCell::new(Vec::new()));
    m.set_program(1, Recording { ops: b, next: 0, log: log1 }).unwrap();
    // 0.9, not 1.0: a lost word is regenerated by the aborted requester's
    // retry, so transparency requires drops to be transient. Certain loss
    // (1.0) is out-of-contract the same way `FaultPlan::broken` is — and
    // the watchdog duly calls it as a retry-streak livelock.
    m.install_fault_hook(FaultPlan::new(7, FaultRates { drop_word: 0.9, ..FaultRates::none() }));
    m.run().unwrap();
    m.validate().unwrap();
    assert!(m.fault_stats().dropped_words > 0, "plan never dropped a word");
    let recoveries: u64 = (0..m.processors()).map(|c| m.cpu_stats(c).fifo_recoveries).sum();
    assert!(recoveries > 0, "dropped words must force overflow recovery");
}
