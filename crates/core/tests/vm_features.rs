//! Virtual-memory and §5.4 software features on the full machine:
//! page-out daemon with swap-backed reclaim, the non-shared (private)
//! hint, and bus-monitor mailboxes.

use vmp_core::workloads::{MessageReceiver, MessageSender};
use vmp_core::{Machine, MachineConfig, Op, ScriptProgram};
use vmp_types::{Asid, Nanos, VirtAddr};

fn machine(processors: usize) -> Machine {
    let mut config = MachineConfig::small();
    config.processors = processors;
    Machine::build(config).unwrap()
}

#[test]
fn pageout_daemon_reclaims_and_restores() {
    let mut m = machine(1);
    let asid = Asid::new(1);
    let pages: Vec<VirtAddr> = (0..3).map(|i| VirtAddr::new(0x2000 + i * 0x1000)).collect();
    // Write distinct values to three pages.
    let ops: Vec<Op> = pages
        .iter()
        .enumerate()
        .map(|(i, &va)| Op::Write(va, 100 + i as u32))
        .chain([Op::Halt])
        .collect();
    m.set_program(0, ScriptProgram::new(ops)).unwrap();
    m.run().unwrap();

    // Pass 1: every page was referenced; bits cleared, caches flushed.
    let referenced = m.sweep_reference_bits(0, asid).unwrap();
    assert_eq!(referenced, 3);
    m.validate().unwrap();

    // Touch only page 0 again: it misses (flushed) and re-sets its bit.
    m.set_program(0, ScriptProgram::new([Op::Read(pages[0]), Op::Halt])).unwrap();
    m.run().unwrap();

    // Pass 2: pages 1 and 2 are unreferenced → reclaimed to swap.
    let free_before = m.kernel().free_frames();
    let reclaimed = m.reclaim_unreferenced(0, asid).unwrap();
    assert_eq!(reclaimed.len(), 2, "exactly the untouched pages");
    assert!(m.kernel().free_frames() > free_before);
    assert!(m.frame_of(asid, pages[1]).is_none(), "mapping gone");
    m.validate().unwrap();

    // Re-touching a reclaimed page takes a real page fault and restores
    // the saved contents from the backing store.
    m.set_program(0, ScriptProgram::new([Op::Read(pages[1]), Op::Halt])).unwrap();
    let faults_before = m.cpu_stats(0).page_faults;
    m.run().unwrap();
    assert!(m.cpu_stats(0).page_faults > faults_before);
    assert_eq!(m.peek_word(asid, pages[1]), Some(101), "contents restored from swap");
    m.validate().unwrap();
}

#[test]
fn sweep_then_retouch_resets_reference_bit() {
    let mut m = machine(1);
    let asid = Asid::new(1);
    let va = VirtAddr::new(0x3000);
    m.set_program(0, ScriptProgram::new([Op::Write(va, 1), Op::Halt])).unwrap();
    m.run().unwrap();
    assert_eq!(m.sweep_reference_bits(0, asid).unwrap(), 1);
    // Second sweep without touching: nothing referenced.
    assert_eq!(m.sweep_reference_bits(0, asid).unwrap(), 0);
    // Touch, then sweep again: referenced.
    m.set_program(0, ScriptProgram::new([Op::Read(va), Op::Halt])).unwrap();
    m.run().unwrap();
    assert_eq!(m.sweep_reference_bits(0, asid).unwrap(), 1);
}

#[test]
fn private_hint_skips_upgrade() {
    // Without the hint: read miss (shared) then write → assert-ownership
    // upgrade. With it: read miss fetches private, write is free.
    let run = |hint: bool| {
        let mut m = machine(1);
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x4000);
        m.map_shared(&[(asid, va)]).unwrap();
        if hint {
            m.set_private_hint(asid, va, true).unwrap();
        }
        m.set_program(0, ScriptProgram::new([Op::Read(va), Op::Write(va, 5), Op::Halt])).unwrap();
        m.run().unwrap();
        m.validate().unwrap();
        m.cpu_stats(0).upgrades
    };
    assert_eq!(run(false), 1, "unhinted write pays an upgrade");
    assert_eq!(run(true), 0, "hinted read already fetched private");
}

#[test]
fn private_hint_requires_mapping() {
    let mut m = machine(1);
    assert!(m.set_private_hint(Asid::new(1), VirtAddr::new(0x9000), true).is_err());
}

#[test]
fn mailbox_messages_flow_via_notification() {
    let mut m = machine(2);
    let mailbox = VirtAddr::new(0x5000);
    let ack = VirtAddr::new(0x6000);
    let messages = vec![11, 22, 33];
    // Generous gaps so each message is consumed before the next lands
    // (the mailbox is a single word, as in the paper's sketch).
    m.set_program(0, MessageSender::new(mailbox, messages.clone(), Nanos::from_ms(2))).unwrap();
    m.set_program(1, MessageReceiver::new(mailbox, ack, messages.len())).unwrap();
    let report = m.run().unwrap();
    assert_eq!(m.peek_word(Asid::new(1), ack), Some(33), "last message acknowledged");
    assert!(report.processors[1].notifies >= 1, "receiver must be woken by notify at least once");
    m.validate().unwrap();
}

#[test]
fn reclaimed_swap_dropped_with_address_space() {
    let mut m = machine(1);
    let asid = Asid::new(1);
    let va = VirtAddr::new(0x2000);
    m.set_program(0, ScriptProgram::new([Op::Write(va, 9), Op::Halt])).unwrap();
    m.run().unwrap();
    m.sweep_reference_bits(0, asid).unwrap();
    m.reclaim_unreferenced(0, asid).unwrap();
    m.delete_address_space(0, asid).unwrap();
    // Recreating the space and touching the page demand-zeroes: the old
    // swap contents must not leak into the new space.
    m.set_program(0, ScriptProgram::new([Op::Read(va), Op::Halt])).unwrap();
    m.run().unwrap();
    assert_eq!(m.peek_word(asid, va), Some(0));
    m.validate().unwrap();
}

#[test]
fn barrier_synchronizes_three_workers() {
    use vmp_core::workloads::BarrierWorker;
    let mut m = machine(3);
    let lock = VirtAddr::new(0x1000);
    let counter = VirtAddr::new(0x2000);
    let barrier = VirtAddr::new(0x3000);
    let rounds = 5;
    for cpu in 0..3 {
        m.set_program(
            cpu,
            BarrierWorker::new(3, rounds, lock, counter, barrier, Nanos::from_us(cpu as u64 * 7)),
        )
        .unwrap();
    }
    let report = m.run().unwrap();
    // Every round completed exactly once: the generation word counts them.
    assert_eq!(m.peek_word(Asid::new(1), barrier), Some(rounds as u32));
    // The arrival counter is back at zero.
    assert_eq!(m.peek_word(Asid::new(1), counter), Some(0));
    // One notify broadcast per round woke the (up to two) watchers.
    let notifies: u64 = report.processors.iter().map(|p| p.notifies).sum();
    assert!(notifies >= 1, "barrier releases must use notification");
    m.validate().unwrap();
}
