//! Property-based round-trip tests for both trace serializations, and
//! cross-format agreement.

use proptest::prelude::*;
use vmp_trace::{read_binary, read_text, write_binary, write_text, MemRef, Trace};
use vmp_types::{AccessKind, Asid, Privilege, VirtAddr};

fn arb_ref() -> impl Strategy<Value = MemRef> {
    (
        any::<u8>(),
        any::<u64>(),
        prop_oneof![Just(AccessKind::Read), Just(AccessKind::Write), Just(AccessKind::IFetch)],
        any::<bool>(),
    )
        .prop_map(|(asid, addr, kind, sup)| MemRef {
            asid: Asid::new(asid),
            addr: VirtAddr::new(addr),
            kind,
            privilege: if sup { Privilege::Supervisor } else { Privilege::User },
        })
}

proptest! {
    #[test]
    fn text_round_trips(refs in proptest::collection::vec(arb_ref(), 0..200)) {
        let t: Trace = refs.into_iter().collect();
        let mut buf = Vec::new();
        write_text(&mut buf, &t).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn binary_round_trips(refs in proptest::collection::vec(arb_ref(), 0..200)) {
        let t: Trace = refs.into_iter().collect();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn formats_agree(refs in proptest::collection::vec(arb_ref(), 0..100)) {
        let t: Trace = refs.into_iter().collect();
        let mut text = Vec::new();
        write_text(&mut text, &t).unwrap();
        let mut binary = Vec::new();
        write_binary(&mut binary, &t).unwrap();
        prop_assert_eq!(
            read_text(text.as_slice()).unwrap(),
            read_binary(binary.as_slice()).unwrap()
        );
        // Binary is the compact one.
        if t.len() > 10 {
            prop_assert!(binary.len() < text.len());
        }
    }
}
