//! Trace serialization: a human-readable text format and a compact
//! binary format.
//!
//! Text: one reference per line as `<asid> <kind> <privilege>
//! <hex-address>`, e.g. `3 w u 0x1f00` — trivial to produce or consume
//! with awk/Python. Binary: a 10-byte fixed record (asid, flags,
//! little-endian 64-bit address) behind a magic header, ≈6× smaller and
//! much faster for half-million-reference traces.

use std::fmt;
use std::io::{BufRead, Write};

use vmp_types::{AccessKind, Asid, Privilege, VirtAddr};

use crate::{MemRef, Trace};

/// Errors from reading a text trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not parse; carries the 1-based line number and content.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// The malformed line's content.
        content: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::Parse { line, content } => {
                write!(f, "malformed trace record at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace in the one-record-per-line text format.
///
/// A `&mut` writer may be passed since `Write` is implemented for mutable
/// references.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_text<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    for r in trace.iter() {
        let kind = match r.kind {
            AccessKind::Read => 'r',
            AccessKind::Write => 'w',
            AccessKind::IFetch => 'i',
        };
        let priv_ = match r.privilege {
            Privilege::User => 'u',
            Privilege::Supervisor => 's',
        };
        writeln!(w, "{} {} {} {:#x}", r.asid.raw(), kind, priv_, r.addr.raw())?;
    }
    Ok(())
}

/// Reads a trace from the one-record-per-line text format.
///
/// Blank lines and lines starting with `#` are skipped. A `&mut` reader may
/// be passed since `BufRead` is implemented for mutable references.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] for any malformed record, or
/// [`TraceIoError::Io`] on reader failure.
pub fn read_text<R: BufRead>(r: R) -> Result<Trace, TraceIoError> {
    let mut trace = Trace::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let rec = parse_line(trimmed)
            .ok_or_else(|| TraceIoError::Parse { line: idx + 1, content: trimmed.to_owned() })?;
        trace.push(rec);
    }
    Ok(trace)
}

fn parse_line(line: &str) -> Option<MemRef> {
    let mut parts = line.split_whitespace();
    let asid: u8 = parts.next()?.parse().ok()?;
    let kind = match parts.next()? {
        "r" => AccessKind::Read,
        "w" => AccessKind::Write,
        "i" => AccessKind::IFetch,
        _ => return None,
    };
    let privilege = match parts.next()? {
        "u" => Privilege::User,
        "s" => Privilege::Supervisor,
        _ => return None,
    };
    let addr_str = parts.next()?;
    let addr = if let Some(hex) = addr_str.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()?
    } else {
        addr_str.parse().ok()?
    };
    if parts.next().is_some() {
        return None;
    }
    Some(MemRef { asid: Asid::new(asid), addr: VirtAddr::new(addr), kind, privilege })
}

/// Magic header of the binary trace format (`VMPT` + version 1).
const BINARY_MAGIC: &[u8; 5] = b"VMPT\x01";

/// Writes a trace in the compact binary format.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_binary<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for r in trace.iter() {
        let kind = match r.kind {
            AccessKind::Read => 0u8,
            AccessKind::Write => 1,
            AccessKind::IFetch => 2,
        };
        let flags = kind | if r.privilege == Privilege::Supervisor { 0x80 } else { 0 };
        w.write_all(&[r.asid.raw(), flags])?;
        w.write_all(&r.addr.raw().to_le_bytes())?;
    }
    Ok(())
}

/// Reads a trace written by [`write_binary`].
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] on a bad header or malformed record,
/// or [`TraceIoError::Io`] on reader failure.
pub fn read_binary<R: std::io::Read>(mut r: R) -> Result<Trace, TraceIoError> {
    let bad = |what: &str| TraceIoError::Parse { line: 0, content: what.to_owned() };
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(bad("bad magic: not a VMP binary trace"));
    }
    let mut len = [0u8; 8];
    r.read_exact(&mut len)?;
    let len = u64::from_le_bytes(len) as usize;
    let mut trace = Trace::new();
    let mut rec = [0u8; 10];
    for i in 0..len {
        r.read_exact(&mut rec).map_err(|_| bad(&format!("truncated at record {i}")))?;
        let kind = match rec[1] & 0x7f {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            2 => AccessKind::IFetch,
            k => return Err(bad(&format!("unknown access kind {k} at record {i}"))),
        };
        let privilege = if rec[1] & 0x80 != 0 { Privilege::Supervisor } else { Privilege::User };
        let addr = u64::from_le_bytes(rec[2..10].try_into().expect("fixed slice"));
        trace.push(MemRef { asid: Asid::new(rec[0]), addr: VirtAddr::new(addr), kind, privilege });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        vec![
            MemRef::read(Asid::new(1), VirtAddr::new(0x100)),
            MemRef::write(Asid::new(2), VirtAddr::new(0x2004)).supervisor(),
            MemRef::ifetch(Asid::new(0), VirtAddr::new(0)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &t).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        assert_eq!(buf.len(), 5 + 8 + 10 * t.len());
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_rejects_bad_magic_and_truncation() {
        assert!(read_binary(&b"NOPE\x01"[..]).is_err());
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated") || err.to_string().contains("i/o"));
    }

    #[test]
    fn binary_rejects_unknown_kind() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[5 + 8 + 1] = 0x7f; // corrupt first record's kind bits
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n1 r u 0x10\n  \n2 w s 32\n";
        let t = read_text(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.as_slice()[1].addr.raw(), 32);
    }

    #[test]
    fn reports_malformed_line_number() {
        let text = "1 r u 0x10\nbogus line\n";
        let err = read_text(text.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "bogus line");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_bad_kind_priv_and_extra_fields() {
        assert!(read_text("1 x u 0x10\n".as_bytes()).is_err());
        assert!(read_text("1 r k 0x10\n".as_bytes()).is_err());
        assert!(read_text("1 r u 0x10 extra\n".as_bytes()).is_err());
        assert!(read_text("300 r u 0x10\n".as_bytes()).is_err()); // asid > u8
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_text("zzz\n".as_bytes()).unwrap_err();
        let s = err.to_string();
        assert!(s.contains("line 1"));
        assert!(s.contains("zzz"));
    }
}
