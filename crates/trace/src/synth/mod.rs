//! Seeded synthetic reference-stream generators.
//!
//! The VAX 8200 ATUM traces the paper uses for Figure 4 are unavailable,
//! so this module reconstructs a reference stream with the same *locality
//! structure*, which is all Figure 4's shape depends on:
//!
//! * instruction fetches follow sequential runs broken by mostly-backward
//!   branches ([`SequentialWalker`]), concentrated on hot functions by a
//!   Zipf distribution ([`Zipf`]);
//! * data references follow an LRU-stack/working-set model over heap
//!   objects ([`WorkingSet`]), hot global pages and a small stack window;
//! * operating-system activity arrives in bursts with a larger, flatter
//!   footprint — calibrated so OS references are ≈25 % of references but
//!   ≈50 % of misses, as the paper reports (§5.2);
//! * several processes are multiprogrammed across distinct ASIDs with
//!   periodic context switches ([`AtumWorkload`]).
//!
//! All generators take an explicit seed and are fully deterministic.

mod atum;
mod process;
mod records;
mod walker;
mod working_set;
mod zipf;

pub use atum::{AtumParams, AtumWorkload};
pub use process::{ProcessGen, ProcessParams};
pub use records::{Layout, RecordTraversal};
pub use walker::{SequentialWalker, WalkerParams};
pub use working_set::{WorkingSet, WorkingSetParams};
pub use zipf::{DriftingZipf, Zipf};
