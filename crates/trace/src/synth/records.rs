//! Record-traversal generator for the data-clustering study (§5.4, §7).
//!
//! The paper closes by demanding that "programming systems … recognize
//! the importance of clustering related data on cache pages". This
//! generator walks a collection of records touching only their *hot*
//! fields, in two layouts:
//!
//! * **scattered** — each record is a `record_bytes` struct; its hot
//!   field sits inside it, so one cache page holds only
//!   `page/record_bytes` hot fields;
//! * **packed** — the hot fields are split out into a contiguous array
//!   (structure-of-arrays), so one cache page holds `page/4` of them.
//!
//! Same work, same record count — the miss-ratio difference is purely
//! the layout, which is the claim to quantify.

use rand::Rng;

use vmp_types::{AccessKind, Asid, VirtAddr};

use super::Zipf;
use crate::MemRef;

/// Data layout of a [`RecordTraversal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Hot fields embedded in full records (array-of-structs).
    Scattered,
    /// Hot fields extracted into a dense array (struct-of-arrays).
    Packed,
}

/// Generates references of a workload that repeatedly visits the hot
/// field of random records.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use vmp_trace::synth::{Layout, RecordTraversal};
/// use vmp_types::Asid;
///
/// let mut gen = RecordTraversal::new(Asid::new(1), 0x10000, 1024, 64, Layout::Packed);
/// let mut rng = StdRng::seed_from_u64(0);
/// let r = gen.next_ref(&mut rng);
/// assert!(r.addr.raw() >= 0x10000);
/// ```
#[derive(Debug, Clone)]
pub struct RecordTraversal {
    asid: Asid,
    base: u64,
    records: u64,
    record_bytes: u64,
    layout: Layout,
    popularity: Zipf,
}

impl RecordTraversal {
    /// Creates a traversal over `records` records of `record_bytes` each,
    /// visited uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `records` is zero or `record_bytes < 4`.
    pub fn new(asid: Asid, base: u64, records: u64, record_bytes: u64, layout: Layout) -> Self {
        Self::with_skew(asid, base, records, record_bytes, layout, 0.0)
    }

    /// Creates a traversal with Zipf-skewed record popularity (`s = 0`
    /// is uniform), the realistic case for key lookups and symbol
    /// tables.
    ///
    /// # Panics
    ///
    /// As [`RecordTraversal::new`]; additionally `s` must be finite and
    /// non-negative.
    pub fn with_skew(
        asid: Asid,
        base: u64,
        records: u64,
        record_bytes: u64,
        layout: Layout,
        s: f64,
    ) -> Self {
        assert!(records > 0, "need at least one record");
        assert!(record_bytes >= 4, "records hold at least the hot field");
        let popularity = Zipf::new(records as usize, s);
        RecordTraversal { asid, base, records, record_bytes, layout, popularity }
    }

    /// Address of record `i`'s hot field under the configured layout.
    pub fn hot_field_addr(&self, i: u64) -> VirtAddr {
        let offset = match self.layout {
            Layout::Scattered => i * self.record_bytes,
            Layout::Packed => i * 4,
        };
        VirtAddr::new(self.base + offset)
    }

    /// Total bytes the hot fields span under this layout.
    pub fn hot_span_bytes(&self) -> u64 {
        match self.layout {
            Layout::Scattered => self.records * self.record_bytes,
            Layout::Packed => self.records * 4,
        }
    }

    /// Emits one hot-field read of a randomly chosen record.
    pub fn next_ref<R: Rng + ?Sized>(&mut self, rng: &mut R) -> MemRef {
        let i = self.popularity.sample(rng) as u64;
        MemRef {
            asid: self.asid,
            addr: self.hot_field_addr(i),
            kind: AccessKind::Read,
            privilege: vmp_types::Privilege::User,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layouts_span_differently() {
        let scattered = RecordTraversal::new(Asid::new(1), 0, 256, 64, Layout::Scattered);
        let packed = RecordTraversal::new(Asid::new(1), 0, 256, 64, Layout::Packed);
        assert_eq!(scattered.hot_span_bytes(), 256 * 64);
        assert_eq!(packed.hot_span_bytes(), 256 * 4);
        assert_eq!(scattered.hot_field_addr(3).raw(), 192);
        assert_eq!(packed.hot_field_addr(3).raw(), 12);
    }

    #[test]
    fn refs_stay_in_span() {
        let mut g = RecordTraversal::new(Asid::new(2), 0x1000, 128, 32, Layout::Scattered);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let r = g.next_ref(&mut rng);
            assert!(r.addr.raw() >= 0x1000);
            assert!(r.addr.raw() < 0x1000 + g.hot_span_bytes());
            assert!(r.kind.is_read());
        }
    }

    #[test]
    fn skew_prefers_low_records() {
        let mut g = RecordTraversal::with_skew(Asid::new(1), 0, 256, 64, Layout::Packed, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let hot = (0..5000).filter(|_| g.next_ref(&mut rng).addr.raw() < 32 * 4).count();
        assert!(hot as f64 / 5000.0 > 0.4, "hot share {}", hot as f64 / 5000.0);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn rejects_empty() {
        let _ = RecordTraversal::new(Asid::new(1), 0, 0, 64, Layout::Packed);
    }
}
