//! LRU-stack / working-set data-reference model with phase drift.

use rand::{Rng, RngExt};

use super::DriftingZipf;

/// Parameters for a [`WorkingSet`] generator.
#[derive(Debug, Clone)]
pub struct WorkingSetParams {
    /// Base virtual address of the data region.
    pub region_base: u64,
    /// Object granularity in bytes (a struct/array element run).
    pub object_bytes: u64,
    /// Number of objects (footprint = `objects * object_bytes`).
    pub objects: usize,
    /// Zipf skew over objects inside the hot window.
    pub zipf_s: f64,
    /// Hot-window size in objects (the phase working set).
    pub hot_window: usize,
    /// Object visits per one-object drift of the hot window.
    pub advance_every: u32,
    /// Mean sequential references per object visit (geometric burst).
    pub mean_burst: f64,
    /// Probability a reference to a *writable* object is a write.
    pub write_prob: f64,
    /// Objects per writable cluster (writes concentrate on clustered
    /// objects, leaving most data pages clean, as real programs do).
    pub writable_cluster: usize,
    /// Every `writable_cluster_period`-th cluster is writable;
    /// `1` makes every object writable.
    pub writable_cluster_period: usize,
}

impl Default for WorkingSetParams {
    fn default() -> Self {
        WorkingSetParams {
            region_base: 0x1000_0000,
            object_bytes: 64,
            objects: 512, // 32 KB
            zipf_s: 0.8,
            hot_window: 128, // 8 KB hot
            advance_every: 15,
            mean_burst: 10.0,
            write_prob: 0.3,
            writable_cluster: 16,
            writable_cluster_period: 4,
        }
    }
}

/// Generates data references with temporal locality (a drifting hot
/// window of Zipf-popular objects — program phases) and spatial locality
/// (short sequential bursts within an object).
///
/// Sequential bursts and the contiguous hot window mean that larger cache
/// pages convert several object visits into a single miss — the property
/// VMP's unusually large pages exploit.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use vmp_trace::synth::{WorkingSet, WorkingSetParams};
///
/// let mut ws = WorkingSet::new(WorkingSetParams::default());
/// let mut rng = StdRng::seed_from_u64(0);
/// let (addr, _is_write) = ws.next_ref(&mut rng);
/// assert!(addr >= 0x1000_0000);
/// ```
#[derive(Debug, Clone)]
pub struct WorkingSet {
    params: WorkingSetParams,
    popularity: DriftingZipf,
    current_object: u64,
    offset: u64,
    burst_left: u32,
}

impl WorkingSet {
    /// Creates a generator with no active burst.
    ///
    /// # Panics
    ///
    /// Panics if `objects`, `object_bytes`, `hot_window` or
    /// `advance_every` is zero, or `mean_burst < 1`.
    pub fn new(params: WorkingSetParams) -> Self {
        assert!(params.objects > 0, "objects must be non-zero");
        assert!(params.object_bytes > 0, "object size must be non-zero");
        assert!(params.mean_burst >= 1.0, "mean burst must be at least 1");
        assert!(
            params.writable_cluster > 0 && params.writable_cluster_period > 0,
            "writable cluster geometry must be non-zero"
        );
        let popularity = DriftingZipf::new(
            params.objects,
            params.hot_window,
            params.zipf_s,
            params.advance_every,
        );
        WorkingSet { params, popularity, current_object: 0, offset: 0, burst_left: 0 }
    }

    /// Returns the next `(address, is_write)` data reference.
    pub fn next_ref<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (u64, bool) {
        let p = &self.params;
        if self.burst_left == 0 {
            self.current_object = self.popularity.sample(rng) as u64;
            self.offset = 0;
            // Geometric burst with the requested mean: continue w.p. 1-1/mean.
            let cont = 1.0 - 1.0 / p.mean_burst;
            let mut len = 1u32;
            while rng.random_bool(cont) && u64::from(len) * 4 < p.object_bytes {
                len += 1;
            }
            self.burst_left = len;
        }
        let addr = p.region_base + self.current_object * p.object_bytes + self.offset;
        self.offset = (self.offset + 4) % p.object_bytes;
        self.burst_left -= 1;
        let writable = (self.current_object as usize / p.writable_cluster)
            .is_multiple_of(p.writable_cluster_period);
        let is_write = writable && rng.random_bool(p.write_prob);
        (addr, is_write)
    }

    /// Total footprint of the region in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.params.objects as u64 * self.params.object_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn addresses_stay_in_region() {
        let p = WorkingSetParams::default();
        let base = p.region_base;
        let end = base + p.objects as u64 * p.object_bytes;
        let mut ws = WorkingSet::new(p);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50_000 {
            let (a, _) = ws.next_ref(&mut rng);
            assert!(a >= base && a < end);
        }
    }

    #[test]
    fn write_fraction_near_parameter() {
        let mut ws = WorkingSet::new(WorkingSetParams {
            write_prob: 0.25,
            writable_cluster_period: 1, // every object writable
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        let n = 40_000;
        let writes = (0..n).filter(|_| ws.next_ref(&mut rng).1).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn writes_confined_to_writable_clusters() {
        let p = WorkingSetParams {
            write_prob: 1.0,
            writable_cluster: 4,
            writable_cluster_period: 2,
            ..Default::default()
        };
        let ob = p.object_bytes;
        let base = p.region_base;
        let cluster = p.writable_cluster;
        let period = p.writable_cluster_period;
        let mut ws = WorkingSet::new(p);
        let mut rng = StdRng::seed_from_u64(12);
        let mut saw_write = false;
        for _ in 0..10_000 {
            let (a, w) = ws.next_ref(&mut rng);
            let obj = ((a - base) / ob) as usize;
            if w {
                saw_write = true;
                assert_eq!((obj / cluster) % period, 0, "write outside writable cluster");
            }
        }
        assert!(saw_write);
    }

    #[test]
    fn bursts_are_sequential() {
        let mut ws = WorkingSet::new(WorkingSetParams { mean_burst: 8.0, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(5);
        let addrs: Vec<u64> = (0..20_000).map(|_| ws.next_ref(&mut rng).0).collect();
        let seq = addrs.windows(2).filter(|w| w[1] == w[0] + 4).count();
        let frac = seq as f64 / addrs.len() as f64;
        assert!(frac > 0.5, "sequential fraction {frac}");
    }

    #[test]
    fn early_refs_confined_to_window_region() {
        let p = WorkingSetParams::default();
        let ob = p.object_bytes;
        let base = p.region_base;
        let bound = p.hot_window as u64 + 50;
        let mut ws = WorkingSet::new(p);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..200 {
            let (a, _) = ws.next_ref(&mut rng);
            assert!((a - base) / ob < bound, "early ref escaped hot window");
        }
    }

    #[test]
    fn drift_covers_region_eventually() {
        let p =
            WorkingSetParams { objects: 64, hot_window: 8, advance_every: 2, ..Default::default() };
        let ob = p.object_bytes;
        let base = p.region_base;
        let mut ws = WorkingSet::new(p);
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            let (a, _) = ws.next_ref(&mut rng);
            seen.insert((a - base) / ob);
        }
        assert_eq!(seen.len(), 64, "drift should reach every object");
    }

    #[test]
    fn footprint_reported() {
        let ws = WorkingSet::new(WorkingSetParams {
            objects: 100,
            object_bytes: 64,
            ..Default::default()
        });
        assert_eq!(ws.footprint_bytes(), 6400);
    }

    #[test]
    #[should_panic(expected = "objects")]
    fn rejects_zero_objects() {
        let _ = WorkingSet::new(WorkingSetParams { objects: 0, ..Default::default() });
    }
}
