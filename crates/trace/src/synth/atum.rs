//! The composite multiprogrammed workload standing in for the paper's
//! ATUM VAX 8200 traces.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use vmp_types::Asid;

use super::{ProcessGen, ProcessParams};
use crate::MemRef;

/// Parameters for an [`AtumWorkload`].
#[derive(Debug, Clone)]
pub struct AtumParams {
    /// Number of multiprogrammed user processes (distinct ASIDs).
    pub processes: usize,
    /// References between round-robin context switches.
    pub switch_interval: u64,
    /// Probability per user reference of entering an OS burst.
    pub os_entry_prob: f64,
    /// Mean references per OS burst (geometric).
    pub os_burst_mean: f64,
    /// Per-user-process stream parameters.
    pub user: ProcessParams,
    /// Kernel stream parameters.
    pub os: ProcessParams,
}

impl Default for AtumParams {
    /// Calibrated so the generated stream matches the paper's reported
    /// trace characteristics: OS references ≈25 % of references (§5.2) and
    /// cold-start miss ratios on a 4-way 64–256 KB cache in the sub-percent
    /// band of Figure 4.
    fn default() -> Self {
        let os_burst_mean = 300.0;
        // OS fraction f satisfies f = q·L / (1 + q·L) with entry prob q and
        // burst length L, so q = f / (L · (1 - f)); f = 0.25 → q·L = 1/3.
        let os_entry_prob = 1.0 / (3.0 * os_burst_mean);
        AtumParams {
            processes: 3,
            switch_interval: 30_000,
            os_entry_prob,
            os_burst_mean,
            user: ProcessParams::user(),
            os: ProcessParams::os(),
        }
    }
}

/// A multiprogrammed user+OS reference stream with ATUM-like structure.
///
/// Implements `Iterator<Item = MemRef>`: take as many references as the
/// experiment needs (the paper's traces run 358k–540k references).
///
/// Structure per reference:
/// * the active user process emits code/data references
///   ([`ProcessGen`]);
/// * with probability [`AtumParams::os_entry_prob`] the stream enters an
///   OS burst — a geometric run of supervisor-mode kernel references with
///   a larger, flatter footprint;
/// * every [`AtumParams::switch_interval`] references the active process
///   round-robins (multiprogramming).
///
/// # Examples
///
/// ```
/// use vmp_trace::synth::{AtumParams, AtumWorkload};
/// use vmp_trace::TraceStats;
///
/// let stats = TraceStats::from_refs(
///     AtumWorkload::new(AtumParams::default(), 7).take(50_000),
/// );
/// // OS share is calibrated near the paper's 25 %.
/// assert!(stats.supervisor_fraction() > 0.1 && stats.supervisor_fraction() < 0.4);
/// ```
#[derive(Debug)]
pub struct AtumWorkload {
    params: AtumParams,
    rng: StdRng,
    users: Vec<ProcessGen>,
    os: ProcessGen,
    active: usize,
    until_switch: u64,
    os_burst_left: u64,
}

impl AtumWorkload {
    /// Creates the workload from parameters and a seed.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is zero or exceeds 255 (the ASID space),
    /// or if `switch_interval` is zero.
    pub fn new(params: AtumParams, seed: u64) -> Self {
        assert!(params.processes > 0, "need at least one process");
        assert!(params.processes <= 255, "at most 255 processes (8-bit ASID, 0 is kernel)");
        assert!(params.switch_interval > 0, "switch interval must be non-zero");
        let users: Vec<ProcessGen> = (0..params.processes)
            .map(|i| {
                // Stagger each process's layout, as distinct binaries and
                // stacks would be: identical layouts would pile every
                // process's hot pages onto the same cache sets.
                let mut p = params.user.clone();
                let shift = i as u64 * 37 * 256; // odd page count → set-decorrelating
                p.code.region_base += shift;
                p.globals_base += shift;
                p.heap.region_base += shift;
                p.stack_base -= shift;
                ProcessGen::new(p, Asid::new(i as u8 + 1), false)
            })
            .collect();
        let os = ProcessGen::new(params.os.clone(), Asid::KERNEL, true);
        let until_switch = params.switch_interval;
        AtumWorkload {
            params,
            rng: StdRng::seed_from_u64(seed),
            users,
            os,
            active: 0,
            until_switch,
            os_burst_left: 0,
        }
    }

    /// The ASID of the currently scheduled user process.
    pub fn active_asid(&self) -> Asid {
        self.users[self.active].asid()
    }
}

impl Iterator for AtumWorkload {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        // Context switch accounting applies to user time only, mimicking a
        // timeslice scheduler.
        if self.os_burst_left > 0 {
            self.os_burst_left -= 1;
            return Some(self.os.next_ref(&mut self.rng));
        }
        if self.rng.random::<f64>() < self.params.os_entry_prob {
            // Geometric burst with the configured mean.
            let cont = 1.0 - 1.0 / self.params.os_burst_mean;
            let mut len = 1u64;
            while self.rng.random_bool(cont) {
                len += 1;
            }
            self.os_burst_left = len - 1;
            return Some(self.os.next_ref(&mut self.rng));
        }
        if self.until_switch == 0 {
            self.active = (self.active + 1) % self.users.len();
            self.until_switch = self.params.switch_interval;
        }
        self.until_switch -= 1;
        let r = self.users[self.active].next_ref(&mut self.rng);
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    fn stats(n: usize, seed: u64) -> TraceStats {
        TraceStats::from_refs(AtumWorkload::new(AtumParams::default(), seed).take(n))
    }

    #[test]
    fn os_share_calibrated_near_25_percent() {
        let s = stats(400_000, 1);
        let f = s.supervisor_fraction();
        assert!((0.17..=0.33).contains(&f), "OS fraction {f}");
    }

    #[test]
    fn uses_all_asids_including_kernel() {
        let s = stats(200_000, 2);
        assert_eq!(s.address_spaces, 4); // 3 users + kernel
    }

    #[test]
    fn footprint_in_paper_band() {
        // The four ATUM traces have footprints in the low hundreds of KB;
        // miss ratios in Figure 4 imply a touched footprint of roughly
        // 150–500 KB over a full-length trace.
        let s = stats(500_000, 3);
        let kb = s.footprint_bytes() / 1024;
        assert!((100..=700).contains(&kb), "footprint {kb} KB");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<MemRef> = AtumWorkload::new(AtumParams::default(), 9).take(5000).collect();
        let b: Vec<MemRef> = AtumWorkload::new(AtumParams::default(), 9).take(5000).collect();
        let c: Vec<MemRef> = AtumWorkload::new(AtumParams::default(), 10).take(5000).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn context_switching_rotates_processes() {
        let params = AtumParams { switch_interval: 100, os_entry_prob: 0.0, ..Default::default() };
        let mut w = AtumWorkload::new(params, 4);
        let first = w.active_asid();
        for _ in 0..150 {
            let _ = w.next();
        }
        assert_ne!(w.active_asid(), first);
    }

    #[test]
    fn supervisor_refs_only_from_kernel_asid() {
        for r in AtumWorkload::new(AtumParams::default(), 5).take(100_000) {
            if r.privilege.is_supervisor() {
                assert_eq!(r.asid, Asid::KERNEL);
            } else {
                assert_ne!(r.asid, Asid::KERNEL);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn rejects_zero_processes() {
        let _ = AtumWorkload::new(AtumParams { processes: 0, ..Default::default() }, 0);
    }
}
