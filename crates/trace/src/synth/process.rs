//! Single-process reference generator: interleaved code and data streams.

use rand::{Rng, RngExt};

use vmp_types::{AccessKind, Asid, Privilege, VirtAddr};

use super::{DriftingZipf, SequentialWalker, WalkerParams, WorkingSet, WorkingSetParams};
use crate::MemRef;

/// Parameters for a [`ProcessGen`].
#[derive(Debug, Clone)]
pub struct ProcessParams {
    /// Instruction-fetch stream parameters.
    pub code: WalkerParams,
    /// Heap data-stream parameters.
    pub heap: WorkingSetParams,
    /// Base address of the hot-globals region.
    pub globals_base: u64,
    /// Size of the hot-globals region in bytes (256-byte pages).
    pub globals_bytes: u64,
    /// Zipf skew over global pages inside the hot window.
    pub globals_zipf_s: f64,
    /// Hot-window size in global pages.
    pub globals_window: usize,
    /// Global-page picks per one-page drift of the hot window.
    pub globals_advance_every: u32,
    /// Base address of the stack window.
    pub stack_base: u64,
    /// Size of the stack window in bytes.
    pub stack_bytes: u64,
    /// Mean data references per instruction fetch.
    pub data_per_ifetch: f64,
    /// Probability a global/stack data reference is a write.
    pub data_write_prob: f64,
    /// Mixture weights for (stack, globals, heap) data sources.
    pub data_mix: [f64; 3],
}

impl ProcessParams {
    /// The default user-process parameter set used by the ATUM-like
    /// workload: ≈76 KB of per-process footprint entered through slowly
    /// drifting phase windows.
    pub fn user() -> Self {
        ProcessParams {
            code: WalkerParams::default(),
            heap: WorkingSetParams::default(),
            globals_base: 0x0800_0000,
            globals_bytes: 8 * 1024,
            globals_zipf_s: 0.8,
            globals_window: 16,
            globals_advance_every: 1500,
            stack_base: 0x7fff_0000,
            stack_bytes: 4 * 1024,
            data_per_ifetch: 0.8,
            data_write_prob: 0.25,
            data_mix: [0.35, 0.25, 0.40],
        }
    }

    /// The default operating-system parameter set: a larger, flatter
    /// footprint in the kernel region, tuned so OS activity produces a
    /// disproportionate share of misses (paper §5.2: 25 % of references,
    /// 50 % of misses).
    pub fn os() -> Self {
        ProcessParams {
            code: WalkerParams {
                region_base: 0xf000_0000,
                region_bytes: 64 * 1024,
                branch_prob: 0.2,
                loop_prob: 0.75,
                function_zipf_s: 0.6,
                hot_functions: 32,
                function_advance_every: 7,
                ..WalkerParams::default()
            },
            heap: WorkingSetParams {
                region_base: 0xf800_0000,
                object_bytes: 128,
                objects: 384, // 48 KB of kernel tables/buffers
                zipf_s: 0.6,
                hot_window: 64, // 8 KB hot
                advance_every: 8,
                mean_burst: 6.0,
                write_prob: 0.35,
                writable_cluster: 16,
                writable_cluster_period: 3,
            },
            globals_base: 0xfc00_0000,
            globals_bytes: 16 * 1024,
            globals_zipf_s: 0.6,
            globals_window: 16,
            globals_advance_every: 200,
            stack_base: 0xfe00_0000,
            stack_bytes: 4 * 1024,
            data_per_ifetch: 1.0,
            data_write_prob: 0.2,
            data_mix: [0.2, 0.3, 0.5],
        }
    }
}

/// Generates the reference stream of one process (or of the kernel).
///
/// Each "instruction" emits one instruction fetch and, with probability
/// `data_per_ifetch`, one data reference drawn from a stack/globals/heap
/// mixture.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use vmp_trace::synth::{ProcessGen, ProcessParams};
/// use vmp_types::Asid;
///
/// let mut p = ProcessGen::new(ProcessParams::user(), Asid::new(1), false);
/// let mut rng = StdRng::seed_from_u64(0);
/// let r = p.next_ref(&mut rng);
/// assert_eq!(r.asid, Asid::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct ProcessGen {
    params: ProcessParams,
    asid: Asid,
    supervisor: bool,
    code: SequentialWalker,
    heap: WorkingSet,
    globals: DriftingZipf,
    stack_ptr: u64,
    pending_data: Option<MemRef>,
}

impl ProcessGen {
    /// Creates a process generator.
    ///
    /// `supervisor` marks every emitted reference supervisor-mode (used
    /// for the kernel generator).
    pub fn new(params: ProcessParams, asid: Asid, supervisor: bool) -> Self {
        let code = SequentialWalker::new(params.code.clone());
        let heap = WorkingSet::new(params.heap.clone());
        let globals = DriftingZipf::new(
            (params.globals_bytes / 256).max(1) as usize,
            params.globals_window,
            params.globals_zipf_s,
            params.globals_advance_every,
        );
        let stack_ptr = params.stack_base + params.stack_bytes / 2;
        ProcessGen { params, asid, supervisor, code, heap, globals, stack_ptr, pending_data: None }
    }

    /// The address space this generator emits into.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Returns the next reference.
    pub fn next_ref<R: Rng + ?Sized>(&mut self, rng: &mut R) -> MemRef {
        if let Some(r) = self.pending_data.take() {
            return r;
        }
        let code_addr = self.code.next_addr(rng);
        let ifetch = self.make(AccessKind::IFetch, code_addr);
        if rng.random::<f64>() < self.params.data_per_ifetch {
            let data = self.data_ref(rng);
            self.pending_data = Some(data);
        }
        ifetch
    }

    fn data_ref<R: Rng + ?Sized>(&mut self, rng: &mut R) -> MemRef {
        let p = &self.params;
        let total: f64 = p.data_mix.iter().sum();
        let mut pick = rng.random::<f64>() * total;
        // Stack source: a small random walk around the stack pointer.
        if pick < p.data_mix[0] {
            let delta: i64 = rng.random_range(-8..=8) * 4;
            let lo = p.stack_base as i64;
            let hi = (p.stack_base + p.stack_bytes - 4) as i64;
            self.stack_ptr = (self.stack_ptr as i64 + delta).clamp(lo, hi) as u64;
            let kind = if rng.random_bool(p.data_write_prob) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            return self.make(kind, self.stack_ptr);
        }
        pick -= p.data_mix[0];
        // Globals source: drifting window of hot 256-byte pages. Writes
        // concentrate on every fourth page; most globals are read-only
        // tables, which keeps the replaced-page mix mostly clean (the
        // paper's Table 2 assumes 75 % of replaced pages are unmodified).
        if pick < p.data_mix[1] {
            let page = self.globals.sample(rng) as u64;
            let offset = rng.random_range(0..256u64 / 4) * 4;
            let addr = p.globals_base + page * 256 + offset;
            let writable = page.is_multiple_of(4);
            let kind = if writable && rng.random_bool(p.data_write_prob) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            return self.make(kind, addr);
        }
        // Heap source: working-set object bursts.
        let (addr, is_write) = self.heap.next_ref(rng);
        let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
        self.make(kind, addr)
    }

    fn make(&self, kind: AccessKind, addr: u64) -> MemRef {
        MemRef {
            asid: self.asid,
            addr: VirtAddr::new(addr),
            kind,
            privilege: if self.supervisor { Privilege::Supervisor } else { Privilege::User },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(n: usize, seed: u64) -> Vec<MemRef> {
        let mut p = ProcessGen::new(ProcessParams::user(), Asid::new(1), false);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| p.next_ref(&mut rng)).collect()
    }

    #[test]
    fn emits_expected_mix() {
        let refs = run(100_000, 1);
        let s = TraceStats::from_refs(refs);
        // data_per_ifetch = 0.8 → ifetch fraction = 1/1.8 ≈ 0.556.
        assert!((s.ifetch_fraction() - 1.0 / 1.8).abs() < 0.02, "ifetch {}", s.ifetch_fraction());
        assert!(
            s.write_fraction() > 0.05 && s.write_fraction() < 0.3,
            "write {}",
            s.write_fraction()
        );
        assert_eq!(s.supervisor, 0);
    }

    #[test]
    fn supervisor_flag_propagates() {
        let mut p = ProcessGen::new(ProcessParams::os(), Asid::KERNEL, true);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(p.next_ref(&mut rng).privilege, Privilege::Supervisor);
        }
        assert_eq!(p.asid(), Asid::KERNEL);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run(2000, 42), run(2000, 42));
        assert_ne!(run(2000, 42), run(2000, 43));
    }

    #[test]
    fn footprint_is_bounded() {
        let refs = run(200_000, 3);
        let s = TraceStats::from_refs(refs);
        // The user() parameter set should stay under ≈100 KB of footprint.
        assert!(s.footprint_bytes() < 120 * 1024, "footprint {} KB", s.footprint_bytes() / 1024);
        assert!(s.footprint_bytes() > 16 * 1024);
    }

    #[test]
    fn stack_addresses_confined() {
        let p = ProcessParams::user();
        let lo = p.stack_base;
        let hi = p.stack_base + p.stack_bytes;
        for r in run(50_000, 4) {
            let a = r.addr.raw();
            if (lo..hi).contains(&a) {
                assert!(a % 4 == 0, "stack refs are word aligned");
            }
        }
    }
}
