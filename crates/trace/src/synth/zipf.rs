//! Zipf-distributed rank sampler.

use rand::{Rng, RngExt};

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
///
/// Used to concentrate references on hot functions, hot global pages and
/// hot heap objects. `s = 0` degenerates to uniform; larger `s` skews
/// harder toward rank 0. Sampling is O(log n) via binary search over a
/// precomputed CDF.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use vmp_trace::synth::Zipf;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with skew exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if there is exactly one rank (always sampled).
    pub fn is_empty(&self) -> bool {
        false // construction guarantees n > 0
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_prefers_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1.2 over 100 ranks the top-10 mass is ≈ 66 %.
        assert!(head as f64 / n as f64 > 0.55, "head fraction {}", head as f64 / n as f64);
    }

    #[test]
    fn all_ranks_reachable() {
        let z = Zipf::new(5, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(z.len(), 5);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_negative_exponent() {
        let _ = Zipf::new(4, -1.0);
    }
}

/// A Zipf sampler over a *drifting window* of ranks — the phase behaviour
/// of real programs.
///
/// Programs do not sprinkle references uniformly over their whole
/// footprint forever: they work intensely on a small hot set that slowly
/// migrates (program phases). `DriftingZipf` samples Zipf-skewed indices
/// from a window of `window` items that advances by one item every
/// `advance_every` samples, wrapping over `n_total` items. Cold items
/// therefore enter the hot set at a *controlled rate*, which is what
/// produces the sub-percent cold-start miss ratios of the paper's
/// Figure 4 while still touching a realistic total footprint.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use vmp_trace::synth::DriftingZipf;
///
/// let mut dz = DriftingZipf::new(1000, 50, 0.8, 20);
/// let mut rng = StdRng::seed_from_u64(1);
/// let i = dz.sample(&mut rng);
/// assert!(i < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct DriftingZipf {
    zipf: Zipf,
    n_total: usize,
    window_start: usize,
    advance_every: u32,
    counter: u32,
}

impl DriftingZipf {
    /// Creates a sampler over `n_total` items with a hot window of
    /// `window` items (clamped to `n_total`), Zipf skew `s` inside the
    /// window, advancing one item every `advance_every` samples.
    ///
    /// # Panics
    ///
    /// Panics if `n_total`, `window` or `advance_every` is zero, or `s`
    /// is negative/non-finite (see [`Zipf::new`]).
    pub fn new(n_total: usize, window: usize, s: f64, advance_every: u32) -> Self {
        assert!(n_total > 0, "need at least one item");
        assert!(window > 0, "window must be non-zero");
        assert!(advance_every > 0, "advance interval must be non-zero");
        let window = window.min(n_total);
        DriftingZipf {
            zipf: Zipf::new(window, s),
            n_total,
            window_start: 0,
            advance_every,
            counter: 0,
        }
    }

    /// Total number of items.
    pub fn n_total(&self) -> usize {
        self.n_total
    }

    /// Current hot-window start index.
    pub fn window_start(&self) -> usize {
        self.window_start
    }

    /// Draws one item index, advancing the window as configured.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        self.counter += 1;
        if self.counter >= self.advance_every {
            self.counter = 0;
            self.window_start = (self.window_start + 1) % self.n_total;
        }
        let within = self.zipf.sample(rng);
        (self.window_start + within) % self.n_total
    }
}

#[cfg(test)]
mod drifting_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stays_in_bounds_and_wraps() {
        let mut dz = DriftingZipf::new(10, 4, 0.8, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let i = dz.sample(&mut rng);
            assert!(i < 10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b), "window should wrap and cover all items");
    }

    #[test]
    fn window_advances_at_configured_rate() {
        let mut dz = DriftingZipf::new(1000, 10, 0.8, 5);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            dz.sample(&mut rng);
        }
        assert_eq!(dz.window_start(), 10); // 50 samples / 5 per advance
        assert_eq!(dz.n_total(), 1000);
    }

    #[test]
    fn early_samples_confined_to_initial_window() {
        let mut dz = DriftingZipf::new(1000, 8, 0.8, 100);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..99 {
            let i = dz.sample(&mut rng);
            assert!(i < 8, "sample {i} escaped initial window");
        }
    }

    #[test]
    fn window_clamped_to_total() {
        let mut dz = DriftingZipf::new(3, 10, 1.0, 4);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            assert!(dz.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_zero_window() {
        let _ = DriftingZipf::new(10, 0, 1.0, 5);
    }
}
