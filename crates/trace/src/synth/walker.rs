//! Instruction-fetch address walker.

use rand::{Rng, RngExt};

use super::DriftingZipf;

/// Parameters for a [`SequentialWalker`].
#[derive(Debug, Clone)]
pub struct WalkerParams {
    /// Base virtual address of the code region.
    pub region_base: u64,
    /// Size of the code region in bytes.
    pub region_bytes: u64,
    /// Bytes advanced per sequential fetch (68020 averages ≈ 3–4).
    pub step: u64,
    /// Probability per fetch of a control transfer.
    pub branch_prob: f64,
    /// Given a transfer, probability it is a short backward loop branch.
    pub loop_prob: f64,
    /// Maximum backward distance of a loop branch, in bytes.
    pub max_loop_bytes: u64,
    /// Granularity of far-jump targets ("function" size in bytes).
    pub function_bytes: u64,
    /// Zipf skew over functions inside the hot window.
    pub function_zipf_s: f64,
    /// Hot-window size in functions (the phase working set of code).
    pub hot_functions: usize,
    /// Far jumps per one-function drift of the hot window.
    pub function_advance_every: u32,
}

impl Default for WalkerParams {
    fn default() -> Self {
        WalkerParams {
            region_base: 0x0001_0000,
            region_bytes: 32 * 1024,
            step: 4,
            branch_prob: 0.15,
            loop_prob: 0.88,
            max_loop_bytes: 512,
            function_bytes: 256,
            function_zipf_s: 0.8,
            hot_functions: 32,
            function_advance_every: 26,
        }
    }
}

/// Generates an instruction-fetch address stream: sequential runs broken
/// by mostly-backward short branches (loops) and occasional far jumps to
/// "function" entries drawn from a slowly drifting hot window (program
/// phases).
///
/// This run/loop structure is what rewards VMP's unusually large cache
/// pages: a 256-byte page captures an entire inner loop, so the stream's
/// miss ratio drops sharply with page size, as in the paper's Figure 4.
/// The drifting window bounds the rate at which cold code is entered, so
/// cold-start miss ratios stay in the paper's sub-percent band.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use vmp_trace::synth::{SequentialWalker, WalkerParams};
///
/// let mut w = SequentialWalker::new(WalkerParams::default());
/// let mut rng = StdRng::seed_from_u64(0);
/// let a = w.next_addr(&mut rng);
/// let b = w.next_addr(&mut rng);
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct SequentialWalker {
    params: WalkerParams,
    functions: DriftingZipf,
    pc: u64,
}

impl SequentialWalker {
    /// Creates a walker positioned at the region base.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one function, `step` is zero,
    /// or the window parameters are zero.
    pub fn new(params: WalkerParams) -> Self {
        assert!(params.step > 0, "step must be non-zero");
        assert!(
            params.function_bytes > 0 && params.region_bytes >= params.function_bytes,
            "region must hold at least one function"
        );
        let n_functions = (params.region_bytes / params.function_bytes) as usize;
        let functions = DriftingZipf::new(
            n_functions,
            params.hot_functions,
            params.function_zipf_s,
            params.function_advance_every,
        );
        let pc = params.region_base;
        SequentialWalker { params, functions, pc }
    }

    /// Returns the next instruction-fetch address.
    pub fn next_addr<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let addr = self.pc;
        let p = &self.params;
        if rng.random_bool(p.branch_prob) {
            if rng.random_bool(p.loop_prob) {
                // Short backward branch: loop over recent code.
                let dist = rng.random_range(p.step..=p.max_loop_bytes);
                let floor = p.region_base;
                self.pc = self.pc.saturating_sub(dist).max(floor);
            } else {
                // Far jump into the drifting hot-function window.
                let f = self.functions.sample(rng) as u64;
                self.pc = p.region_base + f * p.function_bytes;
            }
        } else {
            self.pc += p.step;
            if self.pc >= p.region_base + p.region_bytes {
                self.pc = p.region_base;
            }
        }
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn collect(n: usize, seed: u64, params: WalkerParams) -> Vec<u64> {
        let mut w = SequentialWalker::new(params);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| w.next_addr(&mut rng)).collect()
    }

    #[test]
    fn stays_inside_region() {
        let p = WalkerParams::default();
        let lo = p.region_base;
        let hi = p.region_base + p.region_bytes;
        for a in collect(50_000, 3, p) {
            assert!(a >= lo && a < hi, "address {a:#x} escaped region");
        }
    }

    #[test]
    fn mostly_sequential() {
        let addrs = collect(20_000, 5, WalkerParams::default());
        let seq = addrs.windows(2).filter(|w| w[1] == w[0] + 4).count();
        let frac = seq as f64 / (addrs.len() - 1) as f64;
        assert!(frac > 0.6, "sequential fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = collect(1000, 9, WalkerParams::default());
        let b = collect(1000, 9, WalkerParams::default());
        let c = collect(1000, 10, WalkerParams::default());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hot_window_concentrates_code_footprint_early() {
        // Before the window drifts much, the touched code should be close
        // to the initial hot window plus loop spill.
        let p = WalkerParams::default();
        let fb = p.function_bytes;
        let base = p.region_base;
        let addrs = collect(3_000, 1, p);
        use std::collections::HashSet;
        let functions: HashSet<u64> = addrs.iter().map(|a| (a - base) / fb).collect();
        assert!(functions.len() < 64, "touched {} functions early", functions.len());
    }

    #[test]
    fn footprint_grows_with_drift() {
        let p = WalkerParams::default();
        let fb = p.function_bytes;
        let base = p.region_base;
        let addrs = collect(200_000, 1, p);
        use std::collections::HashSet;
        let early: HashSet<u64> = addrs[..5_000].iter().map(|a| (a - base) / fb).collect();
        let all: HashSet<u64> = addrs.iter().map(|a| (a - base) / fb).collect();
        assert!(
            all.len() > early.len() * 2,
            "drift should grow footprint: {} vs {}",
            early.len(),
            all.len()
        );
    }

    #[test]
    #[should_panic(expected = "step")]
    fn rejects_zero_step() {
        let _ = SequentialWalker::new(WalkerParams { step: 0, ..WalkerParams::default() });
    }
}
