//! Memory-reference traces for driving the VMP cache and machine simulators.
//!
//! The paper establishes its cache parameters (Figure 4) with four VAX 8200
//! address traces captured by the ATUM microcode technique: 358k–540k
//! four-byte references each, including VMS operating-system activity
//! (≈25 % of references, ≈50 % of misses) and a small degree of
//! multiprogramming (§5.2). Those traces are DEC-proprietary and
//! unavailable, so this crate provides:
//!
//! * [`MemRef`] / [`Trace`] — the reference record and an owned trace with
//!   iteration, statistics and (de)serialization;
//! * [`synth`] — seeded synthetic workload generators, culminating in
//!   [`synth::AtumWorkload`], a multiprogrammed user+OS reference stream
//!   calibrated to the locality properties the paper reports.
//!
//! # Examples
//!
//! ```
//! use vmp_trace::synth::{AtumParams, AtumWorkload};
//!
//! let trace: Vec<_> = AtumWorkload::new(AtumParams::default(), 42)
//!     .take(10_000)
//!     .collect();
//! assert_eq!(trace.len(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod io;
mod record;
mod stats;
pub mod synth;

pub use analysis::{reuse_distances, working_set_sizes, ReuseHistogram};
pub use io::{read_binary, read_text, write_binary, write_text, TraceIoError};
pub use record::{MemRef, Trace};
pub use stats::TraceStats;
