//! Workload-characterization analyses: LRU reuse distance and
//! working-set curves.
//!
//! The miss ratio of a fully-associative LRU cache of capacity `C` pages
//! is exactly the fraction of references with reuse distance ≥ `C`
//! (Mattson's stack algorithm), so the reuse-distance histogram *is*
//! Figure 4 in workload form: it explains where the knees of the
//! miss-ratio-vs-cache-size curves fall.

use std::collections::HashMap;

use vmp_types::{Asid, PageSize, VirtPageNum};

use crate::MemRef;

/// Histogram of LRU reuse distances at cache-page granularity.
///
/// Bucket `i` counts references whose reuse distance `d` (number of
/// *distinct* pages touched since the previous access to the same page)
/// satisfies `2^i ≤ d+1 < 2^(i+1)`; first touches (infinite distance)
/// are counted separately.
///
/// # Examples
///
/// ```
/// use vmp_trace::{reuse_distances, MemRef};
/// use vmp_types::{Asid, PageSize, VirtAddr};
///
/// // Touch A, B, A: the second A has one distinct page in between.
/// let refs = [0u64, 256, 0].map(|a| MemRef::read(Asid::new(1), VirtAddr::new(a)));
/// let h = reuse_distances(refs, PageSize::S256);
/// assert_eq!(h.cold, 2);
/// assert_eq!(h.total, 3);
/// // A 4-page LRU cache misses only the two first touches.
/// assert!((h.fraction_at_least(4) - 2.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReuseHistogram {
    /// Power-of-two buckets of finite reuse distances.
    pub buckets: Vec<u64>,
    /// First touches (infinite distance — the cold misses).
    pub cold: u64,
    /// Total references analysed.
    pub total: u64,
}

impl ReuseHistogram {
    /// Fraction of references whose reuse distance is at least
    /// `capacity_pages` — the miss ratio of a fully-associative LRU cache
    /// of that many pages (cold misses included). Distances inside the
    /// power-of-two bucket that straddles the capacity are apportioned
    /// linearly, so the result is approximate within one bucket.
    pub fn fraction_at_least(&self, capacity_pages: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut count = self.cold as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            // Bucket i spans distances [2^i - 1, 2^(i+1) - 1).
            let low = (1u64 << i) - 1;
            let high = (1u64 << (i + 1)) - 1;
            if low >= capacity_pages {
                count += c as f64;
            } else if high > capacity_pages {
                let span = (high - low) as f64;
                count += c as f64 * (high - capacity_pages) as f64 / span;
            }
        }
        count / self.total as f64
    }

    /// Cold-miss fraction.
    pub fn cold_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cold as f64 / self.total as f64
        }
    }
}

/// Computes the reuse-distance histogram of a reference stream at
/// `page` granularity, distinguishing address spaces.
///
/// Uses Mattson's stack via a Fenwick tree over access timestamps:
/// O(N log N) time.
pub fn reuse_distances<I: IntoIterator<Item = MemRef>>(refs: I, page: PageSize) -> ReuseHistogram {
    let refs: Vec<MemRef> = refs.into_iter().collect();
    let n = refs.len();
    let mut hist = ReuseHistogram { buckets: Vec::new(), cold: 0, total: n as u64 };
    // Fenwick tree over time indices: 1 marks "most recent access of some
    // page at this time"; the prefix sum between two accesses counts the
    // distinct pages touched in between.
    let mut fenwick = vec![0i64; n + 1];
    let add = |f: &mut Vec<i64>, mut i: usize, v: i64| {
        i += 1;
        while i < f.len() {
            f[i] += v;
            i += i & i.wrapping_neg();
        }
    };
    let sum = |f: &Vec<i64>, mut i: usize| -> i64 {
        let mut s = 0;
        i += 1;
        let mut j = i;
        while j > 0 {
            s += f[j];
            j -= j & j.wrapping_neg();
        }
        s
    };
    let mut last: HashMap<(Asid, VirtPageNum), usize> = HashMap::new();
    for (t, r) in refs.iter().enumerate() {
        let key = (r.asid, page.vpn_of(r.addr));
        match last.get(&key) {
            None => hist.cold += 1,
            Some(&prev) => {
                // Distinct pages with a most-recent access strictly after
                // `prev` and before `t`.
                let d = (sum(&fenwick, t.saturating_sub(1)) - sum(&fenwick, prev)) as u64;
                let bucket = (64 - (d + 1).leading_zeros()) as usize - 1;
                if hist.buckets.len() <= bucket {
                    hist.buckets.resize(bucket + 1, 0);
                }
                hist.buckets[bucket] += 1;
                add(&mut fenwick, prev, -1);
            }
        }
        last.insert(key, t);
        add(&mut fenwick, t, 1);
    }
    hist
}

/// Denning working-set sizes: the number of distinct pages touched in
/// each window of `window` references (non-overlapping), at `page`
/// granularity.
pub fn working_set_sizes<I: IntoIterator<Item = MemRef>>(
    refs: I,
    page: PageSize,
    window: usize,
) -> Vec<u64> {
    assert!(window > 0, "window must be non-zero");
    let mut out = Vec::new();
    let mut current: HashMap<(Asid, VirtPageNum), ()> = HashMap::new();
    let mut n = 0;
    for r in refs {
        current.insert((r.asid, page.vpn_of(r.addr)), ());
        n += 1;
        if n == window {
            out.push(current.len() as u64);
            current.clear();
            n = 0;
        }
    }
    if n > 0 {
        out.push(current.len() as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_types::VirtAddr;

    fn read(addr: u64) -> MemRef {
        MemRef::read(Asid::new(1), VirtAddr::new(addr))
    }

    #[test]
    fn sequential_stream_is_all_cold() {
        let refs: Vec<MemRef> = (0..100).map(|i| read(i * 256)).collect();
        let h = reuse_distances(refs, PageSize::S256);
        assert_eq!(h.cold, 100);
        assert_eq!(h.buckets.iter().sum::<u64>(), 0);
        assert!((h.cold_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tight_loop_has_zero_distance() {
        let refs: Vec<MemRef> = (0..50).map(|_| read(0)).collect();
        let h = reuse_distances(refs, PageSize::S256);
        assert_eq!(h.cold, 1);
        // Distance 0 → bucket 0 (d+1 = 1 → 2^0).
        assert_eq!(h.buckets[0], 49);
        assert_eq!(h.fraction_at_least(1), 1.0 / 50.0); // only the cold miss
    }

    #[test]
    fn cycle_distance_equals_cycle_length_minus_one() {
        // Cycling A B C A B C …: each reuse has 2 distinct pages between.
        let mut refs = Vec::new();
        for _ in 0..20 {
            for p in 0..3u64 {
                refs.push(read(p * 256));
            }
        }
        let h = reuse_distances(refs, PageSize::S256);
        assert_eq!(h.cold, 3);
        // d = 2 → d+1 = 3 → bucket 1 ([2,4)).
        assert_eq!(h.buckets.get(1).copied().unwrap_or(0), 57);
        // An LRU cache of 3 pages captures everything but cold misses...
        assert!((h.fraction_at_least(3) - 3.0 / 60.0).abs() < 1e-9);
        // ...and one of 1 page misses every reuse.
        assert!((h.fraction_at_least(1) - 1.0).abs() < 1e-9);
        // At capacity 2 the straddling bucket is apportioned: the true
        // value is 1.0, the estimate lands in between.
        let approx = h.fraction_at_least(2);
        assert!(approx > 0.4 && approx <= 1.0, "approx {approx}");
    }

    #[test]
    fn lru_equivalence_with_fraction_at_least() {
        // Cross-check on a pseudo-random stream against a brute-force
        // LRU stack simulation at one capacity.
        let refs: Vec<MemRef> = (0..800u64).map(|i| read((i * 2654435761) % (32 * 256))).collect();
        let page = PageSize::S256;
        let capacity = 8u64;
        // Brute-force LRU stack.
        let mut stack: Vec<u64> = Vec::new();
        let mut misses = 0u64;
        for r in &refs {
            let p = page.page_of(r.addr.raw());
            match stack.iter().position(|&x| x == p) {
                Some(pos) if (pos as u64) < capacity => {
                    stack.remove(pos);
                }
                Some(pos) => {
                    misses += 1;
                    stack.remove(pos);
                }
                None => misses += 1,
            }
            stack.insert(0, p);
        }
        let h = reuse_distances(refs.clone(), page);
        let predicted = h.fraction_at_least(capacity);
        let actual = misses as f64 / refs.len() as f64;
        // Power-of-two buckets are apportioned linearly, so allow a
        // bucket's worth of slack.
        assert!((predicted - actual).abs() < 0.15, "predicted {predicted} vs actual {actual}");
    }

    #[test]
    fn asids_are_distinct_pages() {
        let refs = vec![
            MemRef::read(Asid::new(1), VirtAddr::new(0)),
            MemRef::read(Asid::new(2), VirtAddr::new(0)),
            MemRef::read(Asid::new(1), VirtAddr::new(0)),
        ];
        let h = reuse_distances(refs, PageSize::S256);
        assert_eq!(h.cold, 2);
        // The re-access of (1, page 0) has 1 distinct page in between.
        assert_eq!(h.buckets.get(1).copied().unwrap_or(0), 1);
    }

    #[test]
    fn working_set_windows() {
        let refs: Vec<MemRef> = (0..10).map(|i| read((i % 3) * 256)).collect();
        let ws = working_set_sizes(refs, PageSize::S256, 5);
        assert_eq!(ws, vec![3, 3]);
        let refs: Vec<MemRef> = (0..7).map(|i| read(i * 256)).collect();
        let ws = working_set_sizes(refs, PageSize::S256, 5);
        assert_eq!(ws, vec![5, 2]);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn working_set_rejects_zero_window() {
        let _ = working_set_sizes(Vec::new(), PageSize::S256, 0);
    }
}
