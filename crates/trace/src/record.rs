//! The reference record and owned trace container.

use core::fmt;

use vmp_types::{AccessKind, Asid, Privilege, VirtAddr};

use crate::TraceStats;

/// One memory reference: the unit of work a processor presents to its cache.
///
/// Matches the information content of an ATUM trace record: a virtual
/// address qualified by address space, access kind and privilege level.
///
/// # Examples
///
/// ```
/// use vmp_trace::MemRef;
/// use vmp_types::{AccessKind, Asid, Privilege, VirtAddr};
///
/// let r = MemRef::read(Asid::new(1), VirtAddr::new(0x1000));
/// assert!(r.kind.is_read());
/// let w = MemRef::write(Asid::new(1), VirtAddr::new(0x1000));
/// assert!(w.kind.is_write());
/// assert_eq!(r.addr, w.addr);
/// let k = MemRef::ifetch(Asid::KERNEL, VirtAddr::new(0x8000)).supervisor();
/// assert_eq!(k.privilege, Privilege::Supervisor);
/// assert_eq!(k.kind, AccessKind::IFetch);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Address space of the reference.
    pub asid: Asid,
    /// Virtual address referenced.
    pub addr: VirtAddr,
    /// Read, write, or instruction fetch.
    pub kind: AccessKind,
    /// User or supervisor mode.
    pub privilege: Privilege,
}

impl MemRef {
    /// Creates a user-mode data read.
    pub const fn read(asid: Asid, addr: VirtAddr) -> Self {
        MemRef { asid, addr, kind: AccessKind::Read, privilege: Privilege::User }
    }

    /// Creates a user-mode data write.
    pub const fn write(asid: Asid, addr: VirtAddr) -> Self {
        MemRef { asid, addr, kind: AccessKind::Write, privilege: Privilege::User }
    }

    /// Creates a user-mode instruction fetch.
    pub const fn ifetch(asid: Asid, addr: VirtAddr) -> Self {
        MemRef { asid, addr, kind: AccessKind::IFetch, privilege: Privilege::User }
    }

    /// Returns the same reference marked supervisor-mode.
    #[must_use]
    pub const fn supervisor(mut self) -> Self {
        self.privilege = Privilege::Supervisor;
        self
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.asid, self.kind, self.privilege, self.addr)
    }
}

/// An owned, in-memory reference trace.
///
/// A thin wrapper over `Vec<MemRef>` adding statistics and collection
/// conveniences; build one from any reference iterator with `collect()`.
///
/// # Examples
///
/// ```
/// use vmp_trace::{MemRef, Trace};
/// use vmp_types::{Asid, VirtAddr};
///
/// let t: Trace = (0..100u64)
///     .map(|i| MemRef::read(Asid::new(0), VirtAddr::new(i * 4)))
///     .collect();
/// assert_eq!(t.len(), 100);
/// assert_eq!(t.iter().count(), 100);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    refs: Vec<MemRef>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { refs: Vec::new() }
    }

    /// Creates a trace from an existing vector of references.
    pub fn from_vec(refs: Vec<MemRef>) -> Self {
        Trace { refs }
    }

    /// Number of references in the trace.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Returns `true` if the trace holds no references.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Iterates over the references.
    pub fn iter(&self) -> std::slice::Iter<'_, MemRef> {
        self.refs.iter()
    }

    /// Returns the references as a slice.
    pub fn as_slice(&self) -> &[MemRef] {
        &self.refs
    }

    /// Appends one reference.
    pub fn push(&mut self, r: MemRef) {
        self.refs.push(r);
    }

    /// Computes summary statistics over the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_refs(self.refs.iter().copied())
    }
}

impl FromIterator<MemRef> for Trace {
    fn from_iter<I: IntoIterator<Item = MemRef>>(iter: I) -> Self {
        Trace { refs: iter.into_iter().collect() }
    }
}

impl Extend<MemRef> for Trace {
    fn extend<I: IntoIterator<Item = MemRef>>(&mut self, iter: I) {
        self.refs.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = MemRef;
    type IntoIter = std::vec::IntoIter<MemRef>;
    fn into_iter(self) -> Self::IntoIter {
        self.refs.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemRef;
    type IntoIter = std::slice::Iter<'a, MemRef>;
    fn into_iter(self) -> Self::IntoIter {
        self.refs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        vec![
            MemRef::read(Asid::new(1), VirtAddr::new(0)),
            MemRef::write(Asid::new(1), VirtAddr::new(4)),
            MemRef::ifetch(Asid::new(2), VirtAddr::new(8)).supervisor(),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn constructors_set_fields() {
        let r = MemRef::write(Asid::new(3), VirtAddr::new(0x10));
        assert_eq!(r.asid, Asid::new(3));
        assert_eq!(r.addr.raw(), 0x10);
        assert!(r.kind.is_write());
        assert_eq!(r.privilege, Privilege::User);
        assert_eq!(r.supervisor().privilege, Privilege::Supervisor);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = MemRef::read(Asid::new(1), VirtAddr::new(0x20)).to_string();
        assert!(s.contains("asid:1"));
        assert!(s.contains("read"));
        assert!(s.contains("0x20"));
    }

    #[test]
    fn trace_collect_and_iterate() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.iter().filter(|r| r.kind.is_write()).count(), 1);
        let back: Vec<MemRef> = t.clone().into_iter().collect();
        assert_eq!(back.len(), 3);
        assert_eq!((&t).into_iter().count(), 3);
    }

    #[test]
    fn trace_push_and_extend() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(MemRef::read(Asid::new(0), VirtAddr::new(0)));
        t.extend(sample());
        assert_eq!(t.len(), 4);
        assert_eq!(t.as_slice().len(), 4);
    }

    #[test]
    fn from_vec_preserves_order() {
        let v = vec![
            MemRef::read(Asid::new(0), VirtAddr::new(8)),
            MemRef::read(Asid::new(0), VirtAddr::new(4)),
        ];
        let t = Trace::from_vec(v.clone());
        assert_eq!(t.as_slice(), v.as_slice());
    }
}
