//! Trace summary statistics.

use std::collections::HashSet;
use std::fmt;

use vmp_types::{AccessKind, PageSize, Privilege};

use crate::MemRef;

/// Summary statistics over a reference trace.
///
/// Used to check that a synthetic workload matches the paper's reported
/// trace characteristics: operating-system references ≈25 % of all
/// references (§5.2), a write fraction consistent with 75 % of replaced
/// pages being clean (Table 2), and a footprint in the low hundreds of
/// kilobytes (trace lengths of 358k–540k four-byte references).
///
/// # Examples
///
/// ```
/// use vmp_trace::{MemRef, TraceStats};
/// use vmp_types::{Asid, VirtAddr};
///
/// let refs = (0..1000u64).map(|i| MemRef::read(Asid::new(0), VirtAddr::new(i * 4)));
/// let stats = TraceStats::from_refs(refs);
/// assert_eq!(stats.total, 1000);
/// assert_eq!(stats.writes, 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total references.
    pub total: u64,
    /// Data reads.
    pub reads: u64,
    /// Data writes.
    pub writes: u64,
    /// Instruction fetches.
    pub ifetches: u64,
    /// Supervisor-mode references.
    pub supervisor: u64,
    /// Distinct address spaces seen.
    pub address_spaces: u64,
    /// Distinct 256-byte cache pages touched (footprint proxy).
    pub pages_256: u64,
}

impl TraceStats {
    /// Computes statistics from a reference stream.
    pub fn from_refs<I: IntoIterator<Item = MemRef>>(refs: I) -> Self {
        let mut s = TraceStats::default();
        let mut asids = HashSet::new();
        let mut pages = HashSet::new();
        let p256 = PageSize::S256;
        for r in refs {
            s.total += 1;
            match r.kind {
                AccessKind::Read => s.reads += 1,
                AccessKind::Write => s.writes += 1,
                AccessKind::IFetch => s.ifetches += 1,
            }
            if r.privilege == Privilege::Supervisor {
                s.supervisor += 1;
            }
            asids.insert(r.asid);
            pages.insert((r.asid, p256.vpn_of(r.addr)));
        }
        s.address_spaces = asids.len() as u64;
        s.pages_256 = pages.len() as u64;
        s
    }

    /// Fraction of references made in supervisor mode.
    pub fn supervisor_fraction(&self) -> f64 {
        self.fraction(self.supervisor)
    }

    /// Fraction of references that are writes.
    pub fn write_fraction(&self) -> f64 {
        self.fraction(self.writes)
    }

    /// Fraction of references that are instruction fetches.
    pub fn ifetch_fraction(&self) -> f64 {
        self.fraction(self.ifetches)
    }

    /// Approximate footprint in bytes (distinct 256-byte pages × 256).
    pub fn footprint_bytes(&self) -> u64 {
        self.pages_256 * 256
    }

    fn fraction(&self, part: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            part as f64 / self.total as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refs={} (r={} w={} i={}) sup={:.1}% asids={} footprint={}KB",
            self.total,
            self.reads,
            self.writes,
            self.ifetches,
            100.0 * self.supervisor_fraction(),
            self.address_spaces,
            self.footprint_bytes() / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_types::{Asid, VirtAddr};

    #[test]
    fn counts_by_kind_and_privilege() {
        let refs = vec![
            MemRef::read(Asid::new(1), VirtAddr::new(0)),
            MemRef::write(Asid::new(1), VirtAddr::new(256)),
            MemRef::ifetch(Asid::new(2), VirtAddr::new(512)).supervisor(),
            MemRef::ifetch(Asid::new(2), VirtAddr::new(516)).supervisor(),
        ];
        let s = TraceStats::from_refs(refs);
        assert_eq!(s.total, 4);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.ifetches, 2);
        assert_eq!(s.supervisor, 2);
        assert_eq!(s.address_spaces, 2);
        assert_eq!(s.pages_256, 3); // 0 and 256 differ, 512/516 share a page
        assert!((s.supervisor_fraction() - 0.5).abs() < 1e-12);
        assert!((s.write_fraction() - 0.25).abs() < 1e-12);
        assert!((s.ifetch_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn footprint_counts_asid_separately() {
        // The cache is virtually addressed with ASID tags, so the same VA in
        // two spaces is two pages of footprint.
        let refs = vec![
            MemRef::read(Asid::new(1), VirtAddr::new(0)),
            MemRef::read(Asid::new(2), VirtAddr::new(0)),
        ];
        let s = TraceStats::from_refs(refs);
        assert_eq!(s.pages_256, 2);
        assert_eq!(s.footprint_bytes(), 512);
    }

    #[test]
    fn empty_trace_fractions_are_zero() {
        let s = TraceStats::from_refs(Vec::new());
        assert_eq!(s.total, 0);
        assert_eq!(s.supervisor_fraction(), 0.0);
        assert_eq!(s.write_fraction(), 0.0);
        assert!(!s.to_string().is_empty());
    }
}
