//! Plain-text table rendering for the benchmark harnesses.

/// Renders an aligned plain-text table, used by the `vmp-bench` harnesses
/// to print each paper table/figure in a reviewable form.
///
/// # Examples
///
/// ```
/// use vmp_analytic::render_table;
///
/// let out = render_table(
///     &["page", "elapsed"],
///     &[vec!["128".into(), "17.0".into()], vec!["256".into(), "20.2".into()]],
/// );
/// assert!(out.contains("page"));
/// assert!(out.lines().count() >= 4);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match headers");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str("| ");
            out.push_str(cell);
            out.push_str(&" ".repeat(widths[i] - cell.chars().count() + 1));
        }
        out.push_str("|\n");
    };
    sep(&mut out);
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    sep(&mut out);
    for row in rows {
        line(&mut out, row);
    }
    sep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["x".into(), "1".into()], vec!["yyyy".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        // All lines same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{t}");
        assert!(t.contains("| yyyy"));
    }

    #[test]
    fn empty_rows_ok() {
        let t = render_table(&["only", "headers"], &[]);
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_jagged_rows() {
        let _ = render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
