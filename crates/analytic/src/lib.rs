//! Closed-form performance models from §5 of the VMP paper.
//!
//! Every constant is taken from the paper: a 16 MHz 68020 at 2.4 MIPS
//! (per MacGregor), ≈1.2 memory references per instruction, 300 ns +
//! 100 ns/longword block transfers, and a software miss handler of
//! ≈13.6 µs split into phases that partially overlap the block copier.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 1 — per-miss elapsed/bus time | [`MissCostModel::elapsed`], [`MissCostModel::bus_time`] |
//! | Table 2 — average miss cost (75 % clean) | [`MissCostModel::average`] |
//! | Figure 3 — performance vs. miss ratio | [`processor_performance`] |
//! | Figure 5 — bus utilization vs. miss ratio | [`bus_utilization`] |
//! | §5.3 — how many processors fit on one bus | [`mva`] |
//!
//! # Examples
//!
//! ```
//! use vmp_analytic::{MissCostModel, ProcessorModel, processor_performance};
//! use vmp_types::PageSize;
//!
//! let model = MissCostModel::paper(PageSize::S256);
//! let avg = model.average(0.75);
//! // Paper's running example: 0.24 % miss ratio → ≈87 % performance.
//! let perf = processor_performance(0.0024, avg.elapsed, &ProcessorModel::default());
//! assert!((perf - 0.87).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus_util;
mod miss_cost;
mod performance;
mod queueing;
mod sharing;
mod table;

pub use bus_util::{bus_utilization, miss_ratio_for_utilization, ZERO_UTILIZATION};
pub use miss_cost::{AverageMissCost, MissCostModel};
pub use performance::{processor_performance, ProcessorModel};
pub use queueing::{max_processors, mva, MvaResult};
pub use sharing::{MigrationCost, MigratorySharing};
pub use table::render_table;
