//! Processor performance versus miss ratio (Figure 3).

use vmp_types::Nanos;

/// The paper's processor parameters (§5.1 footnote 9, citing MacGregor):
/// a 16 MHz 68020 at ≈7 clocks/instruction → 2.4 MIPS, with ≈1.2 memory
/// references per instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorModel {
    /// Instruction execution rate in MIPS (instructions per µs).
    pub mips: f64,
    /// Memory references per instruction.
    pub refs_per_instr: f64,
}

impl Default for ProcessorModel {
    fn default() -> Self {
        ProcessorModel { mips: 2.4, refs_per_instr: 1.2 }
    }
}

impl ProcessorModel {
    /// Mean time between memory references, in nanoseconds.
    pub fn ref_interval(&self) -> Nanos {
        Nanos::from_ns((1000.0 / (self.mips * self.refs_per_instr)).round() as u64)
    }
}

/// Normalized processor performance at a given miss ratio (Figure 3).
///
/// Performance is the fraction of time the processor spends executing
/// rather than waiting on miss handling:
///
/// ```text
/// perf = 1 / (1 + miss_ratio · refs_per_instr · mips · elapsed_per_miss)
/// ```
///
/// which is the paper's formula with `elapsed_per_miss` the average miss
/// cost of Table 2. At the paper's example point — 256-byte pages,
/// 128 KB cache, 0.24 % miss ratio — this yields ≈87 %.
///
/// # Examples
///
/// ```
/// use vmp_analytic::{processor_performance, ProcessorModel};
/// use vmp_types::Nanos;
///
/// let perf = processor_performance(0.0, Nanos::from_us(21), &ProcessorModel::default());
/// assert_eq!(perf, 1.0); // no misses → full speed
/// ```
pub fn processor_performance(
    miss_ratio: f64,
    elapsed_per_miss: Nanos,
    proc: &ProcessorModel,
) -> f64 {
    assert!((0.0..=1.0).contains(&miss_ratio), "miss ratio must be a probability");
    let elapsed_us = elapsed_per_miss.as_ns() as f64 / 1000.0;
    1.0 / (1.0 + miss_ratio * proc.refs_per_instr * proc.mips * elapsed_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MissCostModel;
    use vmp_types::PageSize;

    #[test]
    fn paper_example_point() {
        // §5.2: 256-byte pages, 128 KB cache → 0.24 % miss ratio → 87 %.
        let avg = MissCostModel::paper(PageSize::S256).average(0.75);
        let perf = processor_performance(0.0024, avg.elapsed, &ProcessorModel::default());
        assert!((perf - 0.87).abs() < 0.01, "perf {perf}");
    }

    #[test]
    fn monotone_decreasing_in_miss_ratio() {
        let avg = MissCostModel::paper(PageSize::S256).average(0.75);
        let p = ProcessorModel::default();
        let mut last = 1.1;
        for i in 0..40 {
            let m = i as f64 * 0.001;
            let perf = processor_performance(m, avg.elapsed, &p);
            assert!(perf < last, "not decreasing at {m}");
            last = perf;
        }
    }

    #[test]
    fn larger_pages_cost_more_per_miss() {
        // At a fixed miss ratio the 512-byte page is slower per miss —
        // which is why Figure 3 must not be used to compare page sizes
        // directly (the miss ratio itself depends on page size).
        let p = ProcessorModel::default();
        let m = 0.005;
        let perf128 = processor_performance(
            m,
            MissCostModel::paper(PageSize::S128).average(0.75).elapsed,
            &p,
        );
        let perf512 = processor_performance(
            m,
            MissCostModel::paper(PageSize::S512).average(0.75).elapsed,
            &p,
        );
        assert!(perf128 > perf512);
    }

    #[test]
    fn ref_interval() {
        // 2.4 MIPS × 1.2 refs/instr = 2.88 refs/µs → ≈347 ns between refs.
        assert_eq!(ProcessorModel::default().ref_interval(), Nanos::from_ns(347));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_miss_ratio() {
        let _ = processor_performance(1.5, Nanos::from_us(20), &ProcessorModel::default());
    }
}
