//! The per-miss cost model behind Tables 1 and 2.

use core::fmt;

use vmp_mem::MemTimings;
use vmp_types::{Nanos, PageSize};

/// The cost of one software-handled cache miss (paper §5.1, Table 1).
///
/// The handler's ≈13.6 µs of software time is split into three phases
/// whose overlap with the block copier reproduces Table 1:
///
/// * `pre` — exception entry, state save on the supervisor stack in
///   local memory, decode of the faulting reference;
/// * `mid` — virtual-to-physical mapping lookup and victim bookkeeping;
///   when the victim is modified this phase runs *concurrently with the
///   write-back transfer* (the CPU executes out of local memory while
///   the copier owns the bus);
/// * `post` — cache-flag setup, data-structure update, return from
///   exception — then the read transfer completes before the retried
///   reference can proceed.
///
/// Elapsed time is therefore:
///
/// * clean victim: `pre + mid + post + T` (one transfer `T`);
/// * modified victim: `pre + max(mid, T) + post + T` (write-back
///   overlapped with `mid`, then the read).
///
/// With the paper's transfer times this gives 17.0/20.2/26.6 µs (clean)
/// and 17.0/23.4/36.2 µs (modified) for 128/256/512-byte pages — Table 1
/// within its rounding (17/20/26 and 17/23/36).
///
/// # Examples
///
/// ```
/// use vmp_analytic::MissCostModel;
/// use vmp_types::PageSize;
///
/// let m = MissCostModel::paper(PageSize::S128);
/// assert_eq!(m.elapsed(false).as_micros_f64(), 17.0);
/// assert_eq!(m.elapsed(true).as_micros_f64(), 17.0);
/// assert_eq!(m.bus_time(true).as_micros_f64(), 6.8); // paper rounds to 7.0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissCostModel {
    /// Cache page size (block-transfer length).
    pub page_size: PageSize,
    /// Memory/bus block-transfer timing.
    pub mem: MemTimings,
    /// Software phase before any transfer can start.
    pub pre: Nanos,
    /// Software phase overlappable with a write-back transfer.
    pub mid: Nanos,
    /// Software phase after which the read transfer must still finish.
    pub post: Nanos,
}

impl MissCostModel {
    /// The paper's calibration: 6.0 + 3.4 + 4.2 µs of handler software
    /// (≈33 instructions at 2.4 MIPS) and prototype transfer timing.
    pub fn paper(page_size: PageSize) -> Self {
        MissCostModel {
            page_size,
            mem: MemTimings::default(),
            pre: Nanos::from_ns(6_000),
            mid: Nanos::from_ns(3_400),
            post: Nanos::from_ns(4_200),
        }
    }

    /// Total software time of the handler (no transfers).
    pub fn software(&self) -> Nanos {
        self.pre + self.mid + self.post
    }

    /// One page block-transfer time.
    pub fn transfer(&self) -> Nanos {
        self.mem.page_transfer(self.page_size)
    }

    /// Elapsed time of one miss (Table 1, "Elapsed Time").
    pub fn elapsed(&self, victim_modified: bool) -> Nanos {
        let t = self.transfer();
        if victim_modified {
            self.pre + self.mid.max(t) + self.post + t
        } else {
            self.software() + t
        }
    }

    /// Bus occupancy of one miss (Table 1, "Bus Time"): one transfer for
    /// a clean victim, two when the victim must be written back.
    pub fn bus_time(&self, victim_modified: bool) -> Nanos {
        if victim_modified {
            self.transfer() * 2
        } else {
            self.transfer()
        }
    }

    /// The average miss cost for a given clean-victim fraction
    /// (Table 2 uses 0.75).
    ///
    /// # Panics
    ///
    /// Panics unless `clean_fraction` is within `[0, 1]`.
    pub fn average(&self, clean_fraction: f64) -> AverageMissCost {
        assert!((0.0..=1.0).contains(&clean_fraction), "clean fraction must be a probability");
        let mix = |clean: Nanos, dirty: Nanos| {
            let ns = clean.as_ns() as f64 * clean_fraction
                + dirty.as_ns() as f64 * (1.0 - clean_fraction);
            Nanos::from_ns(ns.round() as u64)
        };
        AverageMissCost {
            elapsed: mix(self.elapsed(false), self.elapsed(true)),
            bus: mix(self.bus_time(false), self.bus_time(true)),
        }
    }
}

/// Average per-miss elapsed and bus time (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AverageMissCost {
    /// Mean elapsed time per miss.
    pub elapsed: Nanos,
    /// Mean bus occupancy per miss.
    pub bus: Nanos,
}

impl fmt::Display for AverageMissCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "elapsed {:.2}us, bus {:.2}us",
            self.elapsed.as_micros_f64(),
            self.bus.as_micros_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(model_ns: Nanos) -> f64 {
        model_ns.as_micros_f64()
    }

    #[test]
    fn table1_elapsed_within_rounding() {
        // Paper Table 1: (page, modified) → elapsed µs.
        let cases = [
            (PageSize::S128, false, 17.0),
            (PageSize::S256, false, 20.0),
            (PageSize::S512, false, 26.0),
            (PageSize::S128, true, 17.0),
            (PageSize::S256, true, 23.0),
            (PageSize::S512, true, 36.0),
        ];
        for (page, modified, paper) in cases {
            let got = us(MissCostModel::paper(page).elapsed(modified));
            assert!(
                (got - paper).abs() <= 0.7,
                "{page} modified={modified}: model {got} vs paper {paper}"
            );
        }
    }

    #[test]
    fn table1_bus_within_rounding() {
        let cases = [
            (PageSize::S128, false, 3.5),
            (PageSize::S256, false, 6.6),
            (PageSize::S512, false, 13.0),
            (PageSize::S128, true, 7.0),
            (PageSize::S256, true, 13.2),
            (PageSize::S512, true, 26.0),
        ];
        for (page, modified, paper) in cases {
            let got = us(MissCostModel::paper(page).bus_time(modified));
            assert!(
                (got - paper).abs() <= 0.25,
                "{page} modified={modified}: model {got} vs paper {paper}"
            );
        }
    }

    #[test]
    fn table2_averages() {
        // Paper Table 2 (75 % clean): 128 B → 17 / 4.4 µs,
        // 256 B → 21.29 / 8.316 µs (we get 21.0 / 8.25 before their
        // rounding conventions).
        let a128 = MissCostModel::paper(PageSize::S128).average(0.75);
        assert!((us(a128.elapsed) - 17.0).abs() < 0.1, "{a128}");
        assert!((us(a128.bus) - 4.4).abs() < 0.2, "{a128}");
        let a256 = MissCostModel::paper(PageSize::S256).average(0.75);
        assert!((us(a256.elapsed) - 21.29).abs() < 0.5, "{a256}");
        assert!((us(a256.bus) - 8.316).abs() < 0.2, "{a256}");
    }

    #[test]
    fn software_time_near_paper_15us() {
        // "the software time associated with miss handling (about 15 µsecs)"
        let sw = us(MissCostModel::paper(PageSize::S256).software());
        assert!((12.0..=16.0).contains(&sw), "software time {sw}");
    }

    #[test]
    fn writeback_overlap_saves_time() {
        // For pages where the transfer exceeds `mid`, the modified case
        // costs less than software + two serial transfers.
        let m = MissCostModel::paper(PageSize::S512);
        let naive = m.software() + m.transfer() * 2;
        assert!(m.elapsed(true) < naive);
        // And is never faster than the clean case.
        assert!(m.elapsed(true) >= m.elapsed(false));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn average_rejects_bad_fraction() {
        let _ = MissCostModel::paper(PageSize::S128).average(1.5);
    }
}
