//! Migratory-sharing cost model (§3.3's worst case, §5.4's warning).
//!
//! When several processors take turns writing one cache page — a lock
//! word, a shared counter — every turn migrates ownership: the previous
//! owner's write-back plus the new owner's read-private, ≈2 block
//! transfers of bus time and one abort/retry of latency. This model
//! quantifies when that is acceptable (many accesses per turn amortize
//! the migration) and when it is the "enormous consistency overhead" of
//! test-and-set spinning (one access per turn).

use vmp_mem::MemTimings;
use vmp_types::{Nanos, PageSize};

use crate::{MissCostModel, ProcessorModel};

/// Per-turn costs of migratory sharing of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationCost {
    /// Bus occupancy per ownership migration (write-back + read-private).
    pub bus: Nanos,
    /// Latency the new owner pays before its first access completes
    /// (one aborted attempt, the owner's flush, the successful fetch).
    pub latency: Nanos,
}

/// Cost model for a page whose ownership migrates between processors.
#[derive(Debug, Clone, Copy)]
pub struct MigratorySharing {
    page: PageSize,
    mem: MemTimings,
    miss: MissCostModel,
    proc: ProcessorModel,
}

impl MigratorySharing {
    /// Builds the model from the paper's constants for `page`.
    pub fn paper(page: PageSize) -> Self {
        MigratorySharing {
            page,
            mem: MemTimings::default(),
            miss: MissCostModel::paper(page),
            proc: ProcessorModel::default(),
        }
    }

    /// Cost of one ownership migration.
    pub fn migration(&self) -> MigrationCost {
        let transfer = self.mem.page_transfer(self.page);
        MigrationCost {
            bus: transfer * 2,
            // One full (dirty-victim-free) miss plus the abort round trip
            // while the old owner flushes.
            latency: self.miss.elapsed(false) + self.miss.elapsed(true) / 4,
        }
    }

    /// Fraction of a turn's time spent on the migration itself, when the
    /// owner performs `accesses` cached accesses per turn.
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is zero.
    pub fn migration_overhead(&self, accesses: u64) -> f64 {
        assert!(accesses > 0, "a turn has at least one access");
        let m = self.migration().latency.as_ns() as f64;
        let useful = (accesses - 1) as f64 * self.proc.ref_interval().as_ns() as f64;
        m / (m + useful)
    }

    /// The smallest accesses-per-turn for which migration overhead drops
    /// below `target` (e.g. 0.1 for "under 10 %").
    ///
    /// # Panics
    ///
    /// Panics unless `target` is in `(0, 1)`.
    pub fn accesses_for_overhead(&self, target: f64) -> u64 {
        assert!(target > 0.0 && target < 1.0, "target is a fraction");
        let m = self.migration().latency.as_ns() as f64;
        let r = self.proc.ref_interval().as_ns() as f64;
        // m / (m + (a-1)·r) ≤ t  →  a ≥ 1 + m(1-t)/(t·r)
        (1.0 + m * (1.0 - target) / (target * r)).ceil() as u64
    }

    /// Bus bandwidth consumed by migrations at `turns_per_second`
    /// ownership transfers, as a fraction of total bus capacity.
    pub fn bus_share(&self, turns_per_second: f64) -> f64 {
        (self.migration().bus.as_ns() as f64 * turns_per_second / 1e9).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_costs_two_transfers_on_bus() {
        let m = MigratorySharing::paper(PageSize::S256).migration();
        assert_eq!(m.bus, Nanos::from_ns(2 * 6_600));
        assert!(m.latency > Nanos::from_us(20));
    }

    #[test]
    fn single_access_turns_are_nearly_all_overhead() {
        // The test-and-set spin case: one access per ownership transfer.
        let s = MigratorySharing::paper(PageSize::S256);
        assert!(s.migration_overhead(1) > 0.99);
    }

    #[test]
    fn overhead_amortizes_with_turn_length() {
        let s = MigratorySharing::paper(PageSize::S256);
        let mut last = 1.1;
        for a in [1, 10, 100, 1000, 10_000] {
            let o = s.migration_overhead(a);
            assert!(o < last, "not decreasing at {a}");
            last = o;
        }
        assert!(s.migration_overhead(10_000) < 0.1);
    }

    #[test]
    fn accesses_for_overhead_inverts() {
        let s = MigratorySharing::paper(PageSize::S256);
        for target in [0.5, 0.1, 0.01] {
            let a = s.accesses_for_overhead(target);
            assert!(s.migration_overhead(a) <= target + 1e-9);
            if a > 1 {
                assert!(s.migration_overhead(a - 1) > target);
            }
        }
    }

    #[test]
    fn larger_pages_migrate_dearer() {
        let small = MigratorySharing::paper(PageSize::S128).migration();
        let large = MigratorySharing::paper(PageSize::S512).migration();
        assert!(large.bus > small.bus);
        assert!(large.latency > small.latency);
    }

    #[test]
    fn bus_share_saturates() {
        let s = MigratorySharing::paper(PageSize::S512);
        assert!(s.bus_share(10.0) < 0.001);
        assert_eq!(s.bus_share(1e9), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn rejects_zero_accesses() {
        let _ = MigratorySharing::paper(PageSize::S128).migration_overhead(0);
    }
}
