//! Bus utilization versus miss ratio (Figure 5).

use crate::{AverageMissCost, ProcessorModel};

/// Bus utilization of a single processor at a given miss ratio
/// (Figure 5, footnote 10):
///
/// ```text
/// util = (miss_ratio · bus_time_per_miss)
///      / (ref_interval + miss_ratio · elapsed_per_miss)
/// ```
///
/// i.e. the bus time consumed per reference divided by the total time per
/// reference including miss handling. With 256-byte pages and a miss
/// ratio of 0.6 %, a single processor stays near 10 % bus utilization —
/// the basis of the paper's "up to 5 processors per bus" estimate (§5.3).
///
/// # Examples
///
/// ```
/// use vmp_analytic::{bus_utilization, MissCostModel, ProcessorModel};
/// use vmp_types::PageSize;
///
/// let avg = MissCostModel::paper(PageSize::S256).average(0.75);
/// let util = bus_utilization(0.006, &avg, &ProcessorModel::default());
/// assert!(util > 0.08 && util < 0.12);
/// ```
pub fn bus_utilization(miss_ratio: f64, cost: &AverageMissCost, proc: &ProcessorModel) -> f64 {
    assert!((0.0..=1.0).contains(&miss_ratio), "miss ratio must be a probability");
    if miss_ratio == 0.0 {
        return 0.0;
    }
    let ref_interval = proc.ref_interval();
    let bus_per_ref = miss_ratio * cost.bus.as_ns() as f64;
    let time_per_ref = ref_interval.as_ns() as f64 + miss_ratio * cost.elapsed.as_ns() as f64;
    bus_per_ref / time_per_ref
}

/// The miss ratio at which a single processor would reach a target bus
/// utilization (the inverse of [`bus_utilization`]), useful for placing
/// the "feasible region" markers on Figure 5.
pub fn miss_ratio_for_utilization(
    target_util: f64,
    cost: &AverageMissCost,
    proc: &ProcessorModel,
) -> f64 {
    assert!((0.0..1.0).contains(&target_util), "utilization must be in [0,1)");
    let r = proc.ref_interval().as_ns() as f64;
    let b = cost.bus.as_ns() as f64;
    let e = cost.elapsed.as_ns() as f64;
    // util = m·b / (r + m·e)  →  m = util·r / (b − util·e)
    let denom = b - target_util * e;
    assert!(denom > 0.0, "target utilization unreachable: bus time saturates");
    target_util * r / denom
}

/// Convenience: utilization is zero with no misses.
pub const ZERO_UTILIZATION: f64 = 0.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MissCostModel;
    use vmp_types::PageSize;

    fn avg(page: PageSize) -> AverageMissCost {
        MissCostModel::paper(page).average(0.75)
    }

    #[test]
    fn paper_example_band() {
        // "for a 256 byte cache page size, with a miss ratio under 0.6%,
        // the bus utilization by a single processor is under 10%"
        // (footnote adds miss-handling elapsed time to the denominator;
        // with that accounting we land at ≈10 %).
        let u = bus_utilization(0.006, &avg(PageSize::S256), &ProcessorModel::default());
        assert!(u < 0.115, "utilization {u}");
        let u_half = bus_utilization(0.003, &avg(PageSize::S256), &ProcessorModel::default());
        assert!(u_half < 0.065, "utilization {u_half}");
    }

    #[test]
    fn monotone_in_miss_ratio() {
        let a = avg(PageSize::S128);
        let p = ProcessorModel::default();
        let mut last = -1.0;
        for i in 0..=30 {
            let u = bus_utilization(i as f64 * 0.001, &a, &p);
            assert!(u > last);
            last = u;
        }
    }

    #[test]
    fn larger_pages_use_more_bus_at_equal_miss_ratio() {
        let p = ProcessorModel::default();
        let m = 0.004;
        let u128 = bus_utilization(m, &avg(PageSize::S128), &p);
        let u256 = bus_utilization(m, &avg(PageSize::S256), &p);
        let u512 = bus_utilization(m, &avg(PageSize::S512), &p);
        assert!(u128 < u256 && u256 < u512, "{u128} {u256} {u512}");
    }

    #[test]
    fn zero_misses_zero_utilization() {
        assert_eq!(
            bus_utilization(0.0, &avg(PageSize::S256), &ProcessorModel::default()),
            ZERO_UTILIZATION
        );
    }

    #[test]
    fn inverse_roundtrips() {
        let a = avg(PageSize::S256);
        let p = ProcessorModel::default();
        for target in [0.05, 0.1, 0.2] {
            let m = miss_ratio_for_utilization(target, &a, &p);
            let u = bus_utilization(m, &a, &p);
            assert!((u - target).abs() < 1e-9, "target {target} got {u}");
        }
    }
}
