//! The §5.3 queueing analysis: how many processors fit on one bus.
//!
//! The paper uses "a simple single-server (the bus) multiple-client
//! (several processors) queueing model" and concludes that about five
//! processors can share the VMEbus before contention dominates. The
//! classical closed-form for that model is the *machine repairman* /
//! closed single-station network, solved exactly by Mean Value Analysis.

use core::fmt;

use vmp_types::Nanos;

/// Result of the closed queueing model for `n` processors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MvaResult {
    /// Number of client processors.
    pub n: usize,
    /// System throughput in bus requests per nanosecond.
    pub throughput: f64,
    /// Mean response time (queueing + service) of one bus request.
    pub response: Nanos,
    /// Bus (server) utilization, 0–1.
    pub bus_utilization: f64,
    /// Per-processor efficiency: achieved request rate relative to a
    /// contention-free processor (1.0 = no slowdown from bus contention).
    pub efficiency: f64,
}

impl fmt::Display for MvaResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={}: bus {:.1}%, response {}, efficiency {:.1}%",
            self.n,
            100.0 * self.bus_utilization,
            self.response,
            100.0 * self.efficiency
        )
    }
}

/// Exact Mean Value Analysis of `n` processors sharing one bus.
///
/// Each processor cycles between `think` time off the bus (computing,
/// hitting in its cache, and the non-bus part of miss handling) and one
/// bus request of `service` time (the block transfers of a miss). The
/// recursion is the standard MVA for a closed network with one queueing
/// station and one delay station:
///
/// ```text
/// R(n) = S · (1 + Q(n-1))
/// X(n) = n / (Z + R(n))
/// Q(n) = X(n) · R(n)
/// ```
///
/// # Examples
///
/// ```
/// use vmp_analytic::mva;
/// use vmp_types::Nanos;
///
/// // Service 8.25 µs per miss, 70 µs of think time between misses:
/// let r = mva(5, Nanos::from_ns(8250), Nanos::from_ns(70_000));
/// assert!(r.bus_utilization < 0.55);
/// assert!(r.efficiency > 0.9);
/// ```
///
/// # Panics
///
/// Panics if `n` is zero or `service` is zero.
pub fn mva(n: usize, service: Nanos, think: Nanos) -> MvaResult {
    assert!(n > 0, "need at least one processor");
    assert!(service > Nanos::ZERO, "service time must be non-zero");
    let s = service.as_ns() as f64;
    let z = think.as_ns() as f64;
    let mut queue = 0.0; // Q(0)
    let mut response = s;
    let mut throughput = 0.0;
    for k in 1..=n {
        response = s * (1.0 + queue);
        throughput = k as f64 / (z + response);
        queue = throughput * response;
    }
    let solo_rate = 1.0 / (z + s);
    MvaResult {
        n,
        throughput,
        response: Nanos::from_ns(response.round() as u64),
        bus_utilization: throughput * s,
        efficiency: throughput / (n as f64 * solo_rate),
    }
}

/// The largest processor count whose per-processor efficiency stays at or
/// above `threshold` (e.g. 0.9 for "no more than 10 % degradation").
///
/// # Panics
///
/// Panics on invalid `service` or a `threshold` outside `(0, 1]`.
pub fn max_processors(service: Nanos, think: Nanos, threshold: f64) -> usize {
    assert!((0.0..=1.0).contains(&threshold) && threshold > 0.0, "threshold must be in (0,1]");
    let mut n = 1;
    loop {
        let next = mva(n + 1, service, think);
        if next.efficiency < threshold {
            return n;
        }
        n += 1;
        if n > 1024 {
            return n; // bus is effectively uncontended at this load
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> Nanos {
        Nanos::from_us(x)
    }

    #[test]
    fn single_processor_baseline() {
        let r = mva(1, us(8), us(72));
        assert!((r.bus_utilization - 0.1).abs() < 1e-9);
        assert_eq!(r.response, us(8));
        assert!((r.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_grows_and_saturates() {
        let mut last = 0.0;
        for n in 1..=30 {
            let r = mva(n, us(8), us(72));
            assert!(r.bus_utilization > last);
            assert!(r.bus_utilization <= 1.0 + 1e-9);
            last = r.bus_utilization;
        }
        // Heavily loaded: the bus saturates near 100 %.
        assert!(mva(50, us(8), us(72)).bus_utilization > 0.97);
    }

    #[test]
    fn efficiency_decreases_with_n() {
        let mut last = 2.0;
        for n in 1..=20 {
            let r = mva(n, us(8), us(72));
            assert!(r.efficiency <= last + 1e-12);
            last = r.efficiency;
        }
    }

    #[test]
    fn paper_scale_five_processors() {
        // With the Table 2 miss costs at ≈0.5 % miss ratio, a processor
        // spends ≈8.25 µs of bus time per ≈78 µs cycle (≈10 % each). The
        // paper estimates up to 5 processors are feasible: at N=5 each
        // processor should retain well over 90 % efficiency, and beyond
        // ~10-15 processors the bus becomes the bottleneck.
        let service = Nanos::from_ns(8_250);
        let think = Nanos::from_ns(70_500);
        let five = mva(5, service, think);
        assert!(five.efficiency > 0.9, "{five}");
        let many = mva(20, service, think);
        assert!(many.efficiency < 0.5, "{many}");
        let feasible = max_processors(service, think, 0.95);
        assert!(
            (4..=9).contains(&feasible),
            "feasible processor count {feasible} out of the paper's band"
        );
    }

    #[test]
    fn response_has_queueing_delay() {
        let solo = mva(1, us(10), us(10));
        let crowd = mva(8, us(10), us(10));
        assert!(crowd.response > solo.response);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_processors() {
        let _ = mva(0, us(1), us(1));
    }

    #[test]
    fn display_mentions_bus() {
        assert!(mva(2, us(5), us(50)).to_string().contains("bus"));
    }
}
