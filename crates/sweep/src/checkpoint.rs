//! Per-cell sweep checkpoints: crash-safe resumption of long sweeps.
//!
//! A [`SweepCheckpoint`] is an append-only text file with one line per
//! completed sweep cell: `label<TAB>payload`, both fields escaped so a
//! line is always a complete record. Re-opening the file after a crash
//! (or a deliberate interruption) yields the set of finished cells;
//! [`SweepPool::run_resumable`](crate::SweepPool::run_resumable) then
//! decodes those results directly and runs only the remaining jobs —
//! producing the exact result vector the uninterrupted sweep would have,
//! in submission order.
//!
//! The format is deliberately dumb: append-only (a torn final line from
//! a crash is simply ignored and the cell re-run), text (inspectable
//! with any pager), and keyed by the job label (which sweeps already
//! keep unique and human-readable).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// An append-only record of completed sweep cells, keyed by job label.
#[derive(Debug)]
pub struct SweepCheckpoint {
    path: PathBuf,
    done: BTreeMap<String, String>,
    file: Mutex<File>,
}

/// Escapes tabs, newlines and backslashes so any string fits one field.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` for a dangling or unknown escape (a
/// torn record).
fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

impl SweepCheckpoint {
    /// Opens (creating if absent) the checkpoint at `path` and loads
    /// every complete record. Malformed or torn lines are skipped — the
    /// cells they would have named simply re-run.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors opening or reading the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut done = BTreeMap::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines() {
                let Some((label, payload)) = line.split_once('\t') else { continue };
                let (Some(label), Some(payload)) = (unescape(label), unescape(payload)) else {
                    continue;
                };
                // Later records win: a cell recorded twice (e.g. re-run
                // after a decode failure) keeps its freshest payload.
                done.insert(label, payload);
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(SweepCheckpoint { path, done, file: Mutex::new(file) })
    }

    /// The file this checkpoint appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The payload recorded for `label`, if that cell already finished.
    pub fn payload(&self, label: &str) -> Option<&str> {
        self.done.get(label).map(String::as_str)
    }

    /// How many completed cells were loaded at open time.
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    /// Appends one completed cell. Safe to call from sweep worker
    /// threads; each record is written and flushed as a single line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (the sweep itself should continue — a
    /// checkpoint is an optimization, not a correctness requirement).
    pub fn record(&self, label: &str, payload: &str) -> std::io::Result<()> {
        let line = format!("{}\t{}\n", escape(label), escape(payload));
        let mut file = self.file.lock().expect("checkpoint lock poisoned");
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

impl crate::SweepPool {
    /// Like [`run`](crate::SweepPool::run), but resumable: jobs whose
    /// label already has a decodable record in `checkpoint` are *not*
    /// re-run — their results are decoded straight from the file — and
    /// every freshly-computed result is recorded as it completes. The
    /// returned vector is in submission order either way, and (given a
    /// pure `runner` and faithful `encode`/`decode`) identical to the
    /// uninterrupted sweep's.
    ///
    /// Job labels must be unique; `encode` must produce a string
    /// `decode` maps back to an equal result. A record `decode` rejects
    /// is treated as absent and the cell re-runs.
    pub fn run_resumable<T, R, F, Enc, Dec>(
        &self,
        jobs: Vec<SweepJob<T>>,
        checkpoint: &SweepCheckpoint,
        runner: F,
        encode: Enc,
        decode: Dec,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&SweepJob<T>) -> R + Sync,
        Enc: Fn(&R) -> String + Sync,
        Dec: Fn(&str) -> Option<R>,
    {
        let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
        let mut pending: Vec<SweepJob<T>> = Vec::new();
        let mut pending_slots: Vec<usize> = Vec::new();
        for (i, job) in jobs.into_iter().enumerate() {
            match checkpoint.payload(&job.label).and_then(&decode) {
                Some(result) => slots[i] = Some(result),
                None => {
                    pending_slots.push(i);
                    pending.push(job);
                }
            }
        }
        let fresh = self.run(pending, |job| {
            let result = runner(job);
            if let Err(e) = checkpoint.record(&job.label, &encode(&result)) {
                eprintln!(
                    "warning: checkpoint write failed for {:?} ({}): {e}",
                    job.label,
                    checkpoint.path().display()
                );
            }
            result
        });
        for (i, result) in pending_slots.into_iter().zip(fresh) {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("cell {i} has no result")))
            .collect()
    }
}

use crate::SweepJob;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SweepPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vmp-ckpt-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn escape_roundtrips() {
        for s in ["plain", "tab\there", "nl\nthere", "back\\slash", "\r\n\t\\", ""] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s), "{s:?}");
        }
        assert_eq!(unescape("dangling\\"), None);
        assert_eq!(unescape("bad\\x"), None);
    }

    #[test]
    fn resume_skips_completed_cells() {
        let path = temp_path("skip");
        let _ = std::fs::remove_file(&path);
        let jobs = || (0..10).map(|i| SweepJob::new(format!("cell{i}"), i as u64)).collect();
        let ran = AtomicUsize::new(0);
        let runner = |j: &SweepJob<u64>| {
            ran.fetch_add(1, Ordering::Relaxed);
            j.input * 3
        };
        let enc = |r: &u64| r.to_string();
        let dec = |s: &str| s.parse::<u64>().ok();

        // First pass: half the sweep "completes" (we only submit 5 cells).
        let ckpt = SweepCheckpoint::open(&path).unwrap();
        let first: Vec<SweepJob<u64>> =
            (0..5).map(|i| SweepJob::new(format!("cell{i}"), i)).collect();
        let out = SweepPool::new().threads(2).run_resumable(first, &ckpt, runner, enc, dec);
        assert_eq!(out, vec![0, 3, 6, 9, 12]);
        assert_eq!(ran.swap(0, Ordering::Relaxed), 5);

        // Second pass resumes: the 5 recorded cells decode, 5 new run.
        let ckpt = SweepCheckpoint::open(&path).unwrap();
        assert_eq!(ckpt.completed(), 5);
        let out = SweepPool::new().threads(2).run_resumable(jobs(), &ckpt, runner, enc, dec);
        assert_eq!(out, (0..10).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(ran.load(Ordering::Relaxed), 5, "completed cells must not re-run");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_reruns_that_cell() {
        let path = temp_path("torn");
        std::fs::write(&path, "a\t1\nb\t2\nc\t3").unwrap(); // no trailing \n on c…
                                                            // …but c's record is still structurally complete; tear it harder:
        std::fs::write(&path, "a\t1\nb\t2\nc\\").unwrap();
        let ckpt = SweepCheckpoint::open(&path).unwrap();
        assert_eq!(ckpt.completed(), 2);
        assert_eq!(ckpt.payload("a"), Some("1"));
        assert_eq!(ckpt.payload("c"), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn undecodable_payload_reruns() {
        let path = temp_path("undecodable");
        std::fs::write(&path, "x\tnot-a-number\n").unwrap();
        let ckpt = SweepCheckpoint::open(&path).unwrap();
        let jobs = vec![SweepJob::new("x", 7u64)];
        let out = SweepPool::new().threads(1).run_resumable(
            jobs,
            &ckpt,
            |j| j.input + 1,
            |r| r.to_string(),
            |s| s.parse::<u64>().ok(),
        );
        assert_eq!(out, vec![8]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resumable_matches_plain_run_bit_for_bit() {
        let path = temp_path("match");
        let _ = std::fs::remove_file(&path);
        let jobs = || -> Vec<SweepJob<u64>> {
            (0..25).map(|i| SweepJob::new(format!("j{i}"), i)).collect()
        };
        let runner = |j: &SweepJob<u64>| j.input * j.input;
        let plain = SweepPool::new().threads(4).run(jobs(), runner);
        let ckpt = SweepCheckpoint::open(&path).unwrap();
        let resumable = SweepPool::new().threads(4).run_resumable(
            jobs(),
            &ckpt,
            runner,
            |r| r.to_string(),
            |s| s.parse().ok(),
        );
        assert_eq!(plain, resumable);
        // And again, now fully from the checkpoint.
        let ckpt = SweepCheckpoint::open(&path).unwrap();
        let resumed = SweepPool::new().threads(4).run_resumable(
            jobs(),
            &ckpt,
            |_| unreachable!("all cells are checkpointed"),
            |r: &u64| r.to_string(),
            |s| s.parse().ok(),
        );
        assert_eq!(plain, resumed);
        let _ = std::fs::remove_file(&path);
    }
}
