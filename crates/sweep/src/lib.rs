//! Deterministic parallel sweep engine for the VMP simulator.
//!
//! The experiment harnesses in this workspace (fig. 4 miss-ratio grids,
//! ablations, contention/processor/sharing/clustering sweeps) all share
//! one shape: a list of independent simulation *jobs*, each fully
//! described by its configuration and seed, whose results are reported
//! in a fixed order. This crate runs such a list across OS threads
//! while keeping the output **bit-identical to the sequential run**:
//!
//! * Jobs are pulled from a shared atomic cursor (work-stealing by
//!   index), so threads never idle while work remains.
//! * Each result is returned to its submission slot, so the caller sees
//!   the same `Vec<R>` regardless of thread count or scheduling.
//! * Jobs must therefore be independent and deterministic given their
//!   inputs — which every VMP experiment is, by design: the simulator
//!   is a deterministic discrete-event machine and all randomness flows
//!   from explicit seeds.
//!
//! Thread count resolution order: [`SweepPool::threads`] override, the
//! `VMP_THREADS` environment variable, then available parallelism.
//! With one thread the pool runs jobs inline on the caller's thread —
//! no spawning — which doubles as the reference ordering for the
//! determinism tests.
//!
//! # Examples
//!
//! ```
//! use vmp_sweep::{SweepJob, SweepPool};
//!
//! let jobs: Vec<SweepJob<u64>> = (0..8)
//!     .map(|i| SweepJob::new(format!("job{i}"), i))
//!     .collect();
//! let results = SweepPool::new().threads(4).run(jobs, |job| job.input * 2);
//! assert_eq!(results, (0..8).map(|i| i * 2).collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod csv;

pub use checkpoint::SweepCheckpoint;
pub use csv::CsvTable;

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "VMP_THREADS";

/// One unit of sweep work: an input payload plus a human-readable label
/// (used by harnesses for progress lines and result tables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepJob<T> {
    /// Display label, e.g. `"64KB/512B"` for a fig. 4 grid cell.
    pub label: String,
    /// The job's full input: config, seed, whatever the runner needs.
    pub input: T,
}

impl<T> SweepJob<T> {
    /// Builds a job from a label and its input payload.
    pub fn new(label: impl Into<String>, input: T) -> Self {
        SweepJob { label: label.into(), input }
    }
}

/// A deterministic scoped-thread worker pool.
///
/// `Clone`/`Copy`-free builder: construct with [`SweepPool::new`], set
/// an explicit thread count with [`SweepPool::threads`], then call
/// [`SweepPool::run`] any number of times.
#[derive(Debug, Default)]
pub struct SweepPool {
    threads: Option<NonZeroUsize>,
}

impl SweepPool {
    /// A pool using the environment/default thread count.
    pub fn new() -> Self {
        SweepPool { threads: None }
    }

    /// Forces the worker count to `n` (clamped up to 1). Overrides
    /// `VMP_THREADS`.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = NonZeroUsize::new(n.max(1));
        self
    }

    /// The worker count [`run`](Self::run) will use: the explicit
    /// [`threads`](Self::threads) override, else `VMP_THREADS`, else
    /// available parallelism.
    pub fn effective_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.get();
        }
        if let Some(n) = threads_from_env() {
            return n;
        }
        thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    }

    /// Runs every job and returns the results **in submission order**.
    ///
    /// `runner` must be a pure function of the job (plus shared
    /// immutable captures such as an `Arc<Trace>`): the pool guarantees
    /// output ordering, and purity then guarantees the full result
    /// vector is identical for any thread count.
    pub fn run<T, R, F>(&self, jobs: Vec<SweepJob<T>>, runner: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&SweepJob<T>) -> R + Sync,
    {
        let workers = self.effective_threads().min(jobs.len().max(1));
        if workers <= 1 {
            return jobs.iter().map(&runner).collect();
        }

        let cursor = AtomicUsize::new(0);
        let jobs = &jobs;
        let runner = &runner;
        let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();

        let mut harvested = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, R)> = Vec::new();
                        loop {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(idx) else { break };
                            done.push((idx, runner(job)));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep worker panicked"))
                .collect::<Vec<_>>()
        });

        // Scatter each result back to its submission slot.
        for (idx, result) in harvested.drain(..) {
            debug_assert!(slots[idx].is_none(), "job {idx} ran twice");
            slots[idx] = Some(result);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| slot.unwrap_or_else(|| panic!("job {idx} never ran")))
            .collect()
    }
}

/// Parses `VMP_THREADS`; `None` when unset, empty, or not a positive
/// integer (a bad value falls back rather than aborting a long sweep).
fn threads_from_env() -> Option<usize> {
    let raw = std::env::var(THREADS_ENV).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            // Callers resolve the count more than once (announce line,
            // then run); warn only the first time.
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: ignoring invalid {THREADS_ENV}={raw:?} (want a positive integer)"
                );
            });
            None
        }
    }
}

/// Convenience: run `jobs` on a default pool (environment-controlled
/// thread count).
pub fn run_sweep<T, R, F>(jobs: Vec<SweepJob<T>>, runner: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&SweepJob<T>) -> R + Sync,
{
    SweepPool::new().run(jobs, runner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn jobs(n: usize) -> Vec<SweepJob<usize>> {
        (0..n).map(|i| SweepJob::new(format!("j{i}"), i)).collect()
    }

    #[test]
    fn results_in_submission_order() {
        for threads in [1, 2, 3, 8] {
            let out = SweepPool::new().threads(threads).run(jobs(23), |j| j.input * 10);
            assert_eq!(out, (0..23).map(|i| i * 10).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let seen = Mutex::new(Vec::new());
        let out = SweepPool::new().threads(4).run(jobs(100), |j| {
            seen.lock().unwrap().push(j.input);
            j.input
        });
        assert_eq!(out.len(), 100);
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 100);
        assert_eq!(seen.iter().copied().collect::<HashSet<_>>().len(), 100);
    }

    #[test]
    fn single_thread_runs_inline() {
        let caller = thread::current().id();
        let out = SweepPool::new().threads(1).run(jobs(5), |j| {
            assert_eq!(thread::current().id(), caller);
            j.input + 1
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_job_list() {
        let out: Vec<usize> =
            SweepPool::new().threads(4).run(Vec::<SweepJob<usize>>::new(), |j| j.input);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_jobs() {
        let out = SweepPool::new().threads(64).run(jobs(3), |j| j.input);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn labels_survive() {
        let js = jobs(4);
        assert_eq!(js[2].label, "j2");
        let out = SweepPool::new().threads(2).run(js, |j| j.label.clone());
        assert_eq!(out, vec!["j0", "j1", "j2", "j3"]);
    }

    #[test]
    fn effective_threads_override_beats_env() {
        let pool = SweepPool::new().threads(3);
        assert_eq!(pool.effective_threads(), 3);
    }
}
