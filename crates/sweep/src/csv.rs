//! Minimal CSV writer for sweep result tables.
//!
//! Sweep harnesses print human-readable grids; plotting pipelines want
//! one machine-readable row per grid cell. This module renders exactly
//! that: a header row plus data rows, RFC 4180-style quoting (fields
//! containing commas, quotes, CR or LF are wrapped in double quotes
//! with embedded quotes doubled), `\n` line endings, no trailing
//! newline surprises — the output ends with a single `\n` iff the
//! table has any rows.

/// A CSV table with a fixed column set.
///
/// Rows must match the header's width; [`CsvTable::row`] panics on
/// mismatch (a harness bug, not a data condition).
#[derive(Debug, Clone)]
pub struct CsvTable {
    columns: usize,
    lines: Vec<String>,
}

impl CsvTable {
    /// Starts a table with the given header columns.
    pub fn new<S: AsRef<str>>(header: &[S]) -> Self {
        assert!(!header.is_empty(), "a CSV table needs at least one column");
        let mut t = CsvTable { columns: header.len(), lines: Vec::new() };
        t.push_line(header);
        t
    }

    /// Appends one data row.
    pub fn row<S: AsRef<str>>(&mut self, fields: &[S]) -> &mut Self {
        assert_eq!(
            fields.len(),
            self.columns,
            "CSV row width {} != header width {}",
            fields.len(),
            self.columns
        );
        self.push_line(fields);
        self
    }

    fn push_line<S: AsRef<str>>(&mut self, fields: &[S]) {
        let line = fields.iter().map(|f| escape(f.as_ref())).collect::<Vec<_>>().join(",");
        self.lines.push(line);
    }

    /// Data rows appended so far (excluding the header).
    pub fn rows(&self) -> usize {
        self.lines.len() - 1
    }

    /// Renders the table: header plus rows, one `\n` after each line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Quotes a field iff it needs quoting.
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = CsvTable::new(&["label", "page_bytes", "miss_pct"]);
        t.row(&["64KB/128B", "128", "1.25"]);
        t.row(&["64KB/512B", "512", "0.40"]);
        assert_eq!(t.rows(), 2);
        assert_eq!(
            t.render(),
            "label,page_bytes,miss_pct\n64KB/128B,128,1.25\n64KB/512B,512,0.40\n"
        );
    }

    #[test]
    fn quotes_fields_that_need_it() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.row(&["has,comma", "has \"quote\""]);
        t.row(&["has\nnewline", "plain"]);
        assert_eq!(
            t.render(),
            "a,b\n\"has,comma\",\"has \"\"quote\"\"\"\n\"has\nnewline\",plain\n"
        );
    }

    #[test]
    fn header_only_table_renders_one_line() {
        let t = CsvTable::new(&["x"]);
        assert_eq!(t.rows(), 0);
        assert_eq!(t.render(), "x\n");
    }

    #[test]
    #[should_panic(expected = "CSV row width")]
    fn row_width_mismatch_panics() {
        CsvTable::new(&["a", "b"]).row(&["only-one"]);
    }
}
