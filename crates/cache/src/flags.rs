//! Per-slot cache flags.

use core::fmt;

/// The flag word the VMP cache controller keeps per slot (paper §4):
/// valid, modified, exclusive-ownership, supervisor-writable,
/// user-readable and user-writable.
///
/// `exclusive` corresponds to the consistency protocol's *private* state:
/// this cache owns the page and no other copy exists anywhere.
///
/// # Examples
///
/// ```
/// use vmp_cache::SlotFlags;
///
/// let f = SlotFlags::shared_clean();
/// assert!(f.valid && !f.exclusive && !f.modified);
/// let p = SlotFlags::private_page();
/// assert!(p.exclusive && p.user_write);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SlotFlags {
    /// Slot holds a live cache page.
    pub valid: bool,
    /// Page has been written since it was loaded (needs write-back).
    pub modified: bool,
    /// This cache holds the only copy (protocol state *private*).
    pub exclusive: bool,
    /// Supervisor-mode writes permitted.
    pub supervisor_write: bool,
    /// User-mode reads permitted.
    pub user_read: bool,
    /// User-mode writes permitted.
    pub user_write: bool,
}

impl SlotFlags {
    /// Flags for a freshly loaded shared (read-only-ownership) page.
    pub const fn shared_clean() -> Self {
        SlotFlags {
            valid: true,
            modified: false,
            exclusive: false,
            supervisor_write: false,
            user_read: true,
            user_write: false,
        }
    }

    /// Flags for a privately owned, writable page.
    pub const fn private_page() -> Self {
        SlotFlags {
            valid: true,
            modified: false,
            exclusive: true,
            supervisor_write: true,
            user_read: true,
            user_write: true,
        }
    }

    /// An invalid (empty) slot.
    pub const fn invalid() -> Self {
        SlotFlags {
            valid: false,
            modified: false,
            exclusive: false,
            supervisor_write: false,
            user_read: false,
            user_write: false,
        }
    }

    /// Returns `true` if a write is permitted at the given privilege.
    ///
    /// In VMP a write additionally requires `exclusive` ownership; a write
    /// to a shared page traps so the miss handler can negotiate ownership
    /// (paper §2). That protocol-level check lives in the machine model;
    /// this predicate only covers the protection bits.
    pub const fn write_permitted(&self, supervisor: bool) -> bool {
        self.valid && if supervisor { self.supervisor_write } else { self.user_write }
    }

    /// Returns `true` if a read is permitted at the given privilege.
    pub const fn read_permitted(&self, supervisor: bool) -> bool {
        self.valid && (supervisor || self.user_read)
    }

    /// Downgrades the slot to shared/read-only ownership, preserving
    /// validity. Clears `modified` — callers must write back first.
    #[must_use]
    pub const fn downgraded(self) -> Self {
        SlotFlags {
            valid: self.valid,
            modified: false,
            exclusive: false,
            supervisor_write: false,
            user_read: self.user_read,
            user_write: false,
        }
    }
}

impl fmt::Display for SlotFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = |x: bool, c: char| if x { c } else { '-' };
        write!(
            f,
            "{}{}{}{}{}{}",
            b(self.valid, 'V'),
            b(self.modified, 'M'),
            b(self.exclusive, 'X'),
            b(self.supervisor_write, 'S'),
            b(self.user_read, 'r'),
            b(self.user_write, 'w'),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        assert!(!SlotFlags::invalid().valid);
        assert!(SlotFlags::shared_clean().valid);
        assert!(!SlotFlags::shared_clean().exclusive);
        assert!(SlotFlags::private_page().exclusive);
        assert_eq!(SlotFlags::default(), SlotFlags::invalid());
    }

    #[test]
    fn permissions() {
        let shared = SlotFlags::shared_clean();
        assert!(shared.read_permitted(false));
        assert!(!shared.write_permitted(false));
        assert!(!shared.write_permitted(true));
        let private = SlotFlags::private_page();
        assert!(private.write_permitted(false));
        assert!(private.write_permitted(true));
        assert!(!SlotFlags::invalid().read_permitted(true));
    }

    #[test]
    fn downgrade_clears_write_and_modified() {
        let mut p = SlotFlags::private_page();
        p.modified = true;
        let d = p.downgraded();
        assert!(d.valid);
        assert!(!d.exclusive);
        assert!(!d.modified);
        assert!(!d.user_write);
        assert!(d.user_read);
    }

    #[test]
    fn display_encodes_all_bits() {
        assert_eq!(SlotFlags::invalid().to_string(), "------");
        assert_eq!(SlotFlags::private_page().to_string(), "V-XSrw");
        let mut f = SlotFlags::shared_clean();
        f.modified = true;
        assert_eq!(f.to_string(), "VM--r-");
    }
}
