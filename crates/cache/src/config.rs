//! Cache geometry configuration.

use core::fmt;

use vmp_types::{ConfigError, PageSize, VirtAddr, VirtPageNum};

/// Geometry of a VMP cache: page size × associativity × total capacity.
///
/// The number of sets is derived as
/// `total_bytes / (page_size × associativity)` and must be a power of two
/// (the hardware indexes sets with address bits).
///
/// The VMP prototype is a 4-way set-associative 256 KB cache with
/// configurable 128/256/512-byte pages (paper §4); the simulation studies
/// in §5.2 sweep total size from 64 KB to 256 KB.
///
/// # Examples
///
/// ```
/// use vmp_cache::CacheConfig;
/// use vmp_types::PageSize;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = CacheConfig::new(PageSize::S256, 4, 128 * 1024)?;
/// assert_eq!(c.sets(), 128);
/// assert_eq!(c.total_slots(), 512);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    page_size: PageSize,
    associativity: usize,
    sets: usize,
}

impl CacheConfig {
    /// Creates a configuration from page size, associativity and total
    /// capacity in bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `associativity` is zero, the capacity
    /// is not an exact multiple of `page_size × associativity`, or the
    /// derived set count is not a power of two ≥ 1.
    pub fn new(
        page_size: PageSize,
        associativity: usize,
        total_bytes: u64,
    ) -> Result<Self, ConfigError> {
        if associativity == 0 {
            return Err(ConfigError::ZeroCount { what: "associativity" });
        }
        let way_bytes = page_size.bytes() * associativity as u64;
        if total_bytes == 0 || !total_bytes.is_multiple_of(way_bytes) {
            return Err(ConfigError::Inconsistent {
                what: "total cache size must be a non-zero multiple of page_size * associativity",
            });
        }
        let sets = total_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo { what: "derived set count", value: sets });
        }
        Ok(CacheConfig { page_size, associativity, sets: sets as usize })
    }

    /// The VMP prototype configuration: 256 KB, 4-way, 256-byte pages.
    pub fn prototype() -> Self {
        CacheConfig::new(PageSize::S256, 4, 256 * 1024)
            .expect("prototype geometry is statically valid")
    }

    /// Cache page size.
    #[inline]
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Ways per set.
    #[inline]
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Total number of cache slots (sets × ways).
    #[inline]
    pub fn total_slots(&self) -> usize {
        self.sets * self.associativity
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.total_slots() as u64 * self.page_size.bytes()
    }

    /// The set a virtual address maps to.
    #[inline]
    pub fn set_of(&self, va: VirtAddr) -> usize {
        self.set_of_vpn(self.page_size.vpn_of(va))
    }

    /// The set a virtual page number maps to.
    #[inline]
    pub fn set_of_vpn(&self, vpn: VirtPageNum) -> usize {
        (vpn.raw() as usize) & (self.sets - 1)
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB {}-way, {} pages, {} sets",
            self.total_bytes() / 1024,
            self.associativity,
            self.page_size,
            self.sets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper() {
        let c = CacheConfig::prototype();
        assert_eq!(c.total_bytes(), 256 * 1024);
        assert_eq!(c.associativity(), 4);
        assert_eq!(c.page_size(), PageSize::S256);
        assert_eq!(c.sets(), 256);
    }

    #[test]
    fn paper_sweep_geometries_valid() {
        // §5.2 sweeps 64K–256K caches with 128/256/512-byte pages, 4-way.
        for &size in &[64u64, 128, 192, 256] {
            for page in PageSize::PROTOTYPE_SIZES {
                let c = CacheConfig::new(page, 4, size * 1024);
                if (size * 1024 / (page.bytes() * 4)).is_power_of_two() {
                    assert!(c.is_ok(), "{size}K {page} should be valid");
                }
            }
        }
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(CacheConfig::new(PageSize::S256, 0, 128 * 1024).is_err());
        assert!(CacheConfig::new(PageSize::S256, 4, 0).is_err());
        assert!(CacheConfig::new(PageSize::S256, 4, 1000).is_err());
        // 192 KB / (256·4) = 192 sets: not a power of two.
        assert!(CacheConfig::new(PageSize::S256, 4, 192 * 1024).is_err());
        // 3-way makes 128 KB / 768 non-integral.
        assert!(CacheConfig::new(PageSize::S256, 3, 128 * 1024).is_err());
    }

    #[test]
    fn set_mapping_uses_low_vpn_bits() {
        let c = CacheConfig::new(PageSize::S256, 4, 8 * 1024).unwrap(); // 8 sets
        assert_eq!(c.sets(), 8);
        assert_eq!(c.set_of(VirtAddr::new(0)), 0);
        assert_eq!(c.set_of(VirtAddr::new(256)), 1);
        assert_eq!(c.set_of(VirtAddr::new(256 * 8)), 0);
        assert_eq!(c.set_of(VirtAddr::new(256 * 9 + 17)), 1);
    }

    #[test]
    fn display_is_informative() {
        let s = CacheConfig::prototype().to_string();
        assert!(s.contains("256KB"));
        assert!(s.contains("4-way"));
    }
}
