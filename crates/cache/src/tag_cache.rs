//! Fast tag-only cache simulator for trace-driven miss-ratio studies.

use vmp_trace::MemRef;

use crate::{CacheConfig, CacheSimStats, SlotFlags, Tag, TagArray};

/// Result of presenting one reference to a [`TagCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The reference hit in the cache.
    Hit,
    /// The reference missed; a page was loaded, possibly evicting another.
    Miss {
        /// The victim slot held a valid page that had been written.
        evicted_modified: bool,
        /// The victim slot held a valid (clean or dirty) page.
        evicted_valid: bool,
    },
}

impl AccessOutcome {
    /// Returns `true` on a hit.
    pub const fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Tags-only cache simulator: replays a reference trace against the VMP
/// cache geometry and accumulates [`CacheSimStats`].
///
/// This is the uniprocessor, cold-start simulation the paper uses for
/// Figure 4 ("cold-start simulation results of a 4-way set associative
/// cache", §5.2). Writes use a write-back policy: they dirty the resident
/// page, and a replacement of a dirty page is recorded as requiring
/// write-back — feeding the Table 1/2 miss-cost mix.
///
/// # Examples
///
/// ```
/// use vmp_cache::{CacheConfig, TagCache};
/// use vmp_trace::MemRef;
/// use vmp_types::{Asid, PageSize, VirtAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = TagCache::new(CacheConfig::new(PageSize::S256, 4, 64 * 1024)?);
/// for i in 0..1000u64 {
///     c.access(MemRef::read(Asid::new(1), VirtAddr::new(i * 4)));
/// }
/// // 1000 sequential word reads touch ~16 pages of 256 B.
/// assert!(c.stats().miss_ratio() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TagCache {
    tags: TagArray,
    stats: CacheSimStats,
}

impl TagCache {
    /// Creates an empty (cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        TagCache { tags: TagArray::new(config), stats: CacheSimStats::default() }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        self.tags.config()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheSimStats {
        &self.stats
    }

    /// Presents one reference; updates tags, LRU and statistics.
    pub fn access(&mut self, r: MemRef) -> AccessOutcome {
        self.stats.refs += 1;
        let supervisor = r.privilege.is_supervisor();
        if supervisor {
            self.stats.supervisor_refs += 1;
        }
        if let Some(id) = self.tags.lookup(r.asid, r.addr) {
            if r.kind.is_write() {
                let mut f = self.tags.flags(id);
                if !f.modified {
                    self.stats.write_hits_clean += 1;
                    f.modified = true;
                    self.tags.set_flags(id, f);
                }
            }
            return AccessOutcome::Hit;
        }
        // Miss: load the page into the hardware-suggested victim slot.
        self.stats.misses += 1;
        if supervisor {
            self.stats.supervisor_misses += 1;
        }
        let victim = self.tags.victim_for(r.asid, r.addr);
        let (evicted_valid, evicted_modified) = match victim.evicted {
            Some(_) => {
                if victim.modified {
                    self.stats.dirty_evictions += 1;
                } else {
                    self.stats.clean_evictions += 1;
                }
                (true, victim.modified)
            }
            None => {
                self.stats.cold_fills += 1;
                (false, false)
            }
        };
        let mut flags = SlotFlags::shared_clean();
        if r.kind.is_write() {
            flags.modified = true;
            flags.user_write = true;
        }
        let vpn = self.config().page_size().vpn_of(r.addr);
        self.tags.install(victim.slot, Tag::new(r.asid, vpn), flags);
        AccessOutcome::Miss { evicted_modified, evicted_valid }
    }

    /// Invalidates every slot while keeping the accumulated statistics —
    /// what a cache without ASID tags must do on context switch (§2
    /// footnote 1), and the primitive behind the flush-on-switch
    /// ablation.
    pub fn flush(&mut self) {
        self.tags.invalidate_all();
    }

    /// Replays an entire reference stream, returning the final statistics.
    pub fn run<I: IntoIterator<Item = MemRef>>(&mut self, refs: I) -> CacheSimStats {
        for r in refs {
            self.access(r);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, VecDeque};
    use vmp_types::{Asid, PageSize, VirtAddr};

    fn cache(page: PageSize, assoc: usize, kb: u64) -> TagCache {
        TagCache::new(CacheConfig::new(page, assoc, kb * 1024).unwrap())
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = cache(PageSize::S128, 4, 64);
        let r = MemRef::read(Asid::new(1), VirtAddr::new(0x42));
        assert!(!c.access(r).is_hit());
        for _ in 0..100 {
            assert!(c.access(r).is_hit());
        }
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().refs, 101);
        assert_eq!(c.stats().cold_fills, 1);
    }

    #[test]
    fn same_page_different_word_hits() {
        let mut c = cache(PageSize::S256, 4, 64);
        c.access(MemRef::read(Asid::new(1), VirtAddr::new(0x100)));
        assert!(c.access(MemRef::read(Asid::new(1), VirtAddr::new(0x1fc))).is_hit());
        assert!(!c.access(MemRef::read(Asid::new(1), VirtAddr::new(0x200))).is_hit());
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_it() {
        // Direct-mapped single-set cache of one page for forced eviction.
        let mut c = TagCache::new(CacheConfig::new(PageSize::S128, 1, 128).unwrap());
        c.access(MemRef::write(Asid::new(1), VirtAddr::new(0)));
        let out = c.access(MemRef::read(Asid::new(1), VirtAddr::new(0x80)));
        assert_eq!(out, AccessOutcome::Miss { evicted_modified: true, evicted_valid: true });
        assert_eq!(c.stats().dirty_evictions, 1);
        // Evicting the now-clean page reports clean.
        let out = c.access(MemRef::read(Asid::new(1), VirtAddr::new(0x100)));
        assert_eq!(out, AccessOutcome::Miss { evicted_modified: false, evicted_valid: true });
        assert_eq!(c.stats().clean_evictions, 1);
    }

    #[test]
    fn write_hit_on_clean_counted_once() {
        let mut c = cache(PageSize::S128, 4, 64);
        c.access(MemRef::read(Asid::new(1), VirtAddr::new(0)));
        c.access(MemRef::write(Asid::new(1), VirtAddr::new(4)));
        c.access(MemRef::write(Asid::new(1), VirtAddr::new(8)));
        assert_eq!(c.stats().write_hits_clean, 1);
    }

    #[test]
    fn asid_keeps_spaces_separate() {
        let mut c = cache(PageSize::S256, 4, 64);
        c.access(MemRef::read(Asid::new(1), VirtAddr::new(0)));
        assert!(!c.access(MemRef::read(Asid::new(2), VirtAddr::new(0))).is_hit());
        assert!(c.access(MemRef::read(Asid::new(1), VirtAddr::new(0))).is_hit());
    }

    #[test]
    fn capacity_working_set_fits_no_misses_after_warmup() {
        let mut c = cache(PageSize::S256, 4, 64);
        let pages = 64 * 1024 / 256; // exactly capacity
        for round in 0..3 {
            for p in 0..pages {
                c.access(MemRef::read(Asid::new(1), VirtAddr::new(p * 256)));
            }
            if round == 0 {
                assert_eq!(c.stats().misses, pages);
            }
        }
        // LRU + sequential sweep at exact capacity: all rounds hit after warmup.
        assert_eq!(c.stats().misses, pages);
    }

    #[test]
    fn thrashing_beyond_capacity_misses() {
        let mut c = TagCache::new(CacheConfig::new(PageSize::S128, 1, 128).unwrap());
        // Two pages mapping to the same single slot: always miss.
        for _ in 0..10 {
            assert!(!c.access(MemRef::read(Asid::new(1), VirtAddr::new(0))).is_hit());
            assert!(!c.access(MemRef::read(Asid::new(1), VirtAddr::new(0x80))).is_hit());
        }
    }

    #[test]
    fn flush_invalidates_but_keeps_stats() {
        let mut c = cache(PageSize::S128, 4, 64);
        let r = MemRef::read(Asid::new(1), VirtAddr::new(0));
        c.access(r);
        assert!(c.access(r).is_hit());
        c.flush();
        assert!(!c.access(r).is_hit(), "flushed entry must miss");
        assert_eq!(c.stats().refs, 3);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn run_consumes_iterator() {
        let mut c = cache(PageSize::S256, 4, 64);
        let refs: Vec<MemRef> =
            (0..100).map(|i| MemRef::read(Asid::new(1), VirtAddr::new(i * 8))).collect();
        let stats = c.run(refs);
        assert_eq!(stats.refs, 100);
        assert!(stats.misses >= 1);
    }

    /// Reference model: per-set LRU list of ⟨asid, vpn⟩ keys.
    struct LruModel {
        page: PageSize,
        sets: usize,
        assoc: usize,
        lists: HashMap<usize, VecDeque<(u8, u64)>>,
    }

    impl LruModel {
        fn new(page: PageSize, assoc: usize, total: u64) -> Self {
            let sets = (total / (page.bytes() * assoc as u64)) as usize;
            LruModel { page, sets, assoc, lists: HashMap::new() }
        }

        /// Returns true on hit.
        fn access(&mut self, asid: u8, addr: u64) -> bool {
            let vpn = self.page.page_of(addr);
            let set = (vpn as usize) & (self.sets - 1);
            let key = (asid, vpn);
            let list = self.lists.entry(set).or_default();
            if let Some(pos) = list.iter().position(|&k| k == key) {
                list.remove(pos);
                list.push_front(key);
                true
            } else {
                list.push_front(key);
                if list.len() > self.assoc {
                    list.pop_back();
                }
                false
            }
        }
    }

    proptest::proptest! {
        /// The tag cache must agree hit-for-hit with a straightforward
        /// per-set LRU model on arbitrary reference strings.
        #[test]
        fn matches_lru_reference_model(
            refs in proptest::collection::vec((0u8..3, 0u64..8192), 1..600),
            assoc in 1usize..=4,
        ) {
            let page = PageSize::S128;
            let total = (page.bytes() * assoc as u64) * 4; // 4 sets
            let mut sim = TagCache::new(CacheConfig::new(page, assoc, total).unwrap());
            let mut model = LruModel::new(page, assoc, total);
            for &(asid, addr) in &refs {
                let got = sim
                    .access(MemRef::read(Asid::new(asid), VirtAddr::new(addr)))
                    .is_hit();
                let want = model.access(asid, addr);
                proptest::prop_assert_eq!(got, want, "divergence at {:?}", (asid, addr));
            }
        }

        /// Miss count is monotonically non-increasing in associativity for
        /// a fixed number of sets... not true in general (Belady), but
        /// refs+misses bookkeeping must always balance.
        #[test]
        fn stats_balance(
            refs in proptest::collection::vec((0u8..2, 0u64..4096), 1..400),
        ) {
            let mut sim = cache(PageSize::S128, 2, 64);
            for &(asid, addr) in &refs {
                sim.access(MemRef::read(Asid::new(asid), VirtAddr::new(addr)));
            }
            let s = *sim.stats();
            proptest::prop_assert_eq!(s.refs, refs.len() as u64);
            proptest::prop_assert_eq!(
                s.misses,
                s.cold_fills + s.clean_evictions + s.dirty_evictions
            );
            proptest::prop_assert!(s.misses <= s.refs);
        }
    }
}
