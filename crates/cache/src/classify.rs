//! Three-C miss classification: cold / capacity / conflict.
//!
//! The classic decomposition (Hill): cold misses are first touches;
//! capacity misses are what a fully-associative LRU cache of the same
//! size would still miss; the remainder are conflicts from limited
//! associativity. Useful for explaining *why* Figure 4's curves fall
//! with cache size (capacity) and stay low at 4 ways (few conflicts).

use std::collections::{BTreeMap, HashMap, HashSet};

use vmp_trace::MemRef;
use vmp_types::{Asid, VirtPageNum};

use crate::{CacheConfig, TagCache};

/// Result of a three-C classification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreeC {
    /// Total references.
    pub refs: u64,
    /// First-touch (compulsory) misses.
    pub cold: u64,
    /// Additional misses a fully-associative LRU cache of equal capacity
    /// takes.
    pub capacity: u64,
    /// Additional misses the real set-associative cache takes.
    pub conflict: u64,
}

impl ThreeC {
    /// Total misses of the real cache.
    pub fn total_misses(&self) -> u64 {
        self.cold + self.capacity + self.conflict
    }

    /// Miss ratio of the real cache.
    pub fn miss_ratio(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.total_misses() as f64 / self.refs as f64
        }
    }
}

/// A fully-associative LRU cache over ⟨ASID, page⟩ tags.
struct FullyAssociative {
    capacity: usize,
    clock: u64,
    last_use: HashMap<(Asid, VirtPageNum), u64>,
    by_age: BTreeMap<u64, (Asid, VirtPageNum)>,
}

impl FullyAssociative {
    fn new(capacity: usize) -> Self {
        FullyAssociative { capacity, clock: 0, last_use: HashMap::new(), by_age: BTreeMap::new() }
    }

    /// Returns `true` on hit.
    fn access(&mut self, key: (Asid, VirtPageNum)) -> bool {
        self.clock += 1;
        let hit = if let Some(&prev) = self.last_use.get(&key) {
            self.by_age.remove(&prev);
            true
        } else {
            false
        };
        self.last_use.insert(key, self.clock);
        self.by_age.insert(self.clock, key);
        if self.last_use.len() > self.capacity {
            let (&age, &victim) = self.by_age.first_key_value().expect("non-empty");
            self.by_age.remove(&age);
            self.last_use.remove(&victim);
        }
        hit
    }
}

/// Classifies every miss of `config` on the reference stream.
///
/// # Examples
///
/// ```
/// use vmp_cache::{classify_misses, CacheConfig};
/// use vmp_trace::MemRef;
/// use vmp_types::{Asid, PageSize, VirtAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = CacheConfig::new(PageSize::S128, 1, 256)?; // 2 pages, direct-mapped
/// // Two pages mapping to the same set thrash: conflicts, not capacity.
/// let refs: Vec<MemRef> = (0..10)
///     .flat_map(|_| {
///         [MemRef::read(Asid::new(1), VirtAddr::new(0)),
///          MemRef::read(Asid::new(1), VirtAddr::new(0x100))]
///     })
///     .collect();
/// let c = classify_misses(config, refs);
/// assert_eq!(c.cold, 2);
/// assert!(c.conflict > 0);
/// assert_eq!(c.capacity, 0);
/// # Ok(())
/// # }
/// ```
pub fn classify_misses<I: IntoIterator<Item = MemRef>>(config: CacheConfig, refs: I) -> ThreeC {
    let mut real = TagCache::new(config);
    let mut full = FullyAssociative::new(config.total_slots());
    let mut seen: HashSet<(Asid, VirtPageNum)> = HashSet::new();
    let page = config.page_size();
    let mut out = ThreeC::default();
    for r in refs {
        out.refs += 1;
        let key = (r.asid, page.vpn_of(r.addr));
        let real_hit = real.access(r).is_hit();
        let full_hit = full.access(key);
        let first = seen.insert(key);
        if !real_hit {
            if first {
                out.cold += 1;
            } else if !full_hit {
                out.capacity += 1;
            } else {
                out.conflict += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_types::{PageSize, VirtAddr};

    fn read(asid: u8, addr: u64) -> MemRef {
        MemRef::read(Asid::new(asid), VirtAddr::new(addr))
    }

    #[test]
    fn sequential_first_pass_is_all_cold() {
        let config = CacheConfig::new(PageSize::S128, 4, 8 * 1024).unwrap();
        let refs: Vec<MemRef> = (0..32).map(|i| read(1, i * 128)).collect();
        let c = classify_misses(config, refs);
        assert_eq!(c.cold, 32);
        assert_eq!(c.capacity, 0);
        assert_eq!(c.conflict, 0);
        assert_eq!(c.total_misses(), 32);
        assert!((c.miss_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cyclic_overflow_is_capacity() {
        // Fully-associative 4-page cache cycling over 5 pages: pure
        // capacity misses after the cold pass.
        let config = CacheConfig::new(PageSize::S128, 4, 512).unwrap(); // 4 slots, 1 set
        assert_eq!(config.sets(), 1);
        let mut refs = Vec::new();
        for _ in 0..10 {
            for p in 0..5u64 {
                refs.push(read(1, p * 128));
            }
        }
        let c = classify_misses(config, refs);
        assert_eq!(c.cold, 5);
        assert!(c.capacity > 0, "{c:?}");
        assert_eq!(c.conflict, 0, "single set cannot have conflicts: {c:?}");
    }

    #[test]
    fn same_set_thrash_is_conflict() {
        // 8 slots in 8 sets, direct-mapped; two pages in one set thrash
        // while the cache is mostly empty: conflicts.
        let config = CacheConfig::new(PageSize::S128, 1, 1024).unwrap();
        let mut refs = Vec::new();
        for _ in 0..10 {
            refs.push(read(1, 0));
            refs.push(read(1, 8 * 128)); // same set (vpn ≡ 0 mod 8)
        }
        let c = classify_misses(config, refs);
        assert_eq!(c.cold, 2);
        assert_eq!(c.capacity, 0);
        assert!(c.conflict >= 16, "{c:?}");
    }

    #[test]
    fn classification_sums_match_real_cache() {
        // Cross-check against TagCache's own miss count on a pseudo-random
        // but deterministic stream.
        let config = CacheConfig::new(PageSize::S256, 2, 4 * 1024).unwrap();
        let refs: Vec<MemRef> = (0..2000u64).map(|i| read(1, (i * 2654435761) % 16384)).collect();
        let c = classify_misses(config, refs.clone());
        let mut cache = TagCache::new(config);
        let stats = cache.run(refs);
        assert_eq!(c.total_misses(), stats.misses);
        assert_eq!(c.refs, stats.refs);
    }

    #[test]
    fn empty_stream() {
        let config = CacheConfig::new(PageSize::S128, 1, 128).unwrap();
        let c = classify_misses(config, Vec::new());
        assert_eq!(c, ThreeC::default());
        assert_eq!(c.miss_ratio(), 0.0);
    }
}
