//! The VMP per-processor cache: virtually addressed, N-way set
//! associative, with unusually large cache pages.
//!
//! The cache matches on ⟨ASID, virtual address⟩ so it never needs flushing
//! on context switch, uses LRU replacement with a hardware-*suggested*
//! victim slot, and keeps per-slot flags — valid, modified,
//! exclusive-ownership, supervisor-writable, user-readable, user-writable
//! (paper §4). The prototype's configuration space is 128/256/512-byte
//! pages, 1–4 ways, 16–256 pages per set; the simulator accepts any
//! power-of-two geometry.
//!
//! Two cache front-ends share the tag machinery:
//!
//! * [`TagCache`] — tags only, for fast trace-driven miss-ratio studies
//!   (Figure 4 of the paper);
//! * [`DataCache`] — byte-accurate contents, for the full machine model in
//!   `vmp-core`, where cached data must flow through block transfers and
//!   the consistency protocol.
//!
//! # Examples
//!
//! ```
//! use vmp_cache::{CacheConfig, TagCache};
//! use vmp_trace::MemRef;
//! use vmp_types::{Asid, PageSize, VirtAddr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = CacheConfig::new(PageSize::S256, 4, 128 * 1024)?;
//! let mut cache = TagCache::new(config);
//! let r = MemRef::read(Asid::new(1), VirtAddr::new(0x1000));
//! assert!(!cache.access(r).is_hit()); // cold miss
//! assert!(cache.access(r).is_hit()); // now resident
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod config;
mod data_cache;
mod flags;
mod sim_stats;
mod tag_array;
mod tag_cache;
mod windowed;

pub use classify::{classify_misses, ThreeC};
pub use config::CacheConfig;
pub use data_cache::DataCache;
pub use flags::SlotFlags;
pub use sim_stats::CacheSimStats;
pub use tag_array::{SlotId, Tag, TagArray, Victim};
pub use tag_cache::{AccessOutcome, TagCache};
pub use windowed::WindowedMissRatio;
