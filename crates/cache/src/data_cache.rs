//! Byte-accurate cache for the full machine model.

use vmp_types::{Asid, VirtAddr};

use crate::{CacheConfig, SlotFlags, SlotId, Tag, TagArray, Victim};

/// A cache that holds real page contents alongside its tags.
///
/// The full VMP machine model moves actual bytes through block transfers
/// so that the consistency protocol's correctness is *observable*: an
/// integration test can assert that every read returns the value written
/// by the most recent protocol-ordered write. The tag/flag/LRU behaviour
/// is identical to [`crate::TagCache`].
///
/// Writes through [`DataCache::write`] set the slot's `modified` flag, as
/// the cache controller hardware does; all other flag transitions are the
/// software cache manager's job, as in the real machine.
///
/// # Examples
///
/// ```
/// use vmp_cache::{CacheConfig, DataCache, SlotFlags, Tag};
/// use vmp_types::{Asid, PageSize, VirtAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = CacheConfig::new(PageSize::S128, 2, 4096)?;
/// let mut cache = DataCache::new(config);
/// let asid = Asid::new(1);
/// let va = VirtAddr::new(0x100);
/// let victim = cache.victim_for(asid, va);
/// let tag = Tag::new(asid, PageSize::S128.vpn_of(va));
/// cache.install(victim.slot, tag, SlotFlags::private_page(), vec![0; 128]);
/// let slot = cache.lookup(asid, va).expect("resident");
/// cache.write(slot, 4, &[1, 2, 3, 4]);
/// assert_eq!(cache.read(slot, 4, 4), &[1, 2, 3, 4]);
/// assert!(cache.flags(slot).modified);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DataCache {
    tags: TagArray,
    data: Vec<Vec<u8>>,
}

impl DataCache {
    /// Creates an empty cache with zeroed slot buffers.
    pub fn new(config: CacheConfig) -> Self {
        let page = config.page_size().bytes() as usize;
        let data = vec![vec![0u8; page]; config.total_slots()];
        DataCache { tags: TagArray::new(config), data }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        self.tags.config()
    }

    fn idx(&self, id: SlotId) -> usize {
        id.set * self.config().associativity() + id.way
    }

    /// Looks up ⟨`asid`, `va`⟩, updating LRU on a hit.
    pub fn lookup(&mut self, asid: Asid, va: VirtAddr) -> Option<SlotId> {
        self.tags.lookup(asid, va)
    }

    /// Looks up without disturbing LRU state.
    pub fn probe(&self, asid: Asid, va: VirtAddr) -> Option<SlotId> {
        self.tags.probe(asid, va)
    }

    /// The hardware-suggested victim slot for a missing page.
    pub fn victim_for(&self, asid: Asid, va: VirtAddr) -> Victim {
        self.tags.victim_for(asid, va)
    }

    /// Installs a page: tag, flags and exactly one page of bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly one cache page long.
    pub fn install(&mut self, id: SlotId, tag: Tag, flags: SlotFlags, bytes: Vec<u8>) {
        assert_eq!(
            bytes.len() as u64,
            self.config().page_size().bytes(),
            "install requires exactly one cache page of data"
        );
        self.tags.install(id, tag, flags);
        let i = self.idx(id);
        self.data[i] = bytes;
    }

    /// Invalidates a slot, returning its tag, flags and content if it was
    /// valid (so the caller can write back a modified page).
    pub fn invalidate(&mut self, id: SlotId) -> Option<(Tag, SlotFlags, Vec<u8>)> {
        let flags = self.tags.flags(id);
        let tag = self.tags.invalidate(id)?;
        let i = self.idx(id);
        let page = self.config().page_size().bytes() as usize;
        let bytes = std::mem::replace(&mut self.data[i], vec![0u8; page]);
        Some((tag, flags, bytes))
    }

    /// Reads `len` bytes at `offset` within a slot's page.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page.
    pub fn read(&self, id: SlotId, offset: usize, len: usize) -> &[u8] {
        let i = self.idx(id);
        &self.data[i][offset..offset + len]
    }

    /// Writes bytes at `offset` within a slot's page and sets `modified`,
    /// as the cache hardware does on a write hit.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page.
    pub fn write(&mut self, id: SlotId, offset: usize, bytes: &[u8]) {
        let i = self.idx(id);
        self.data[i][offset..offset + bytes.len()].copy_from_slice(bytes);
        let mut f = self.tags.flags(id);
        f.modified = true;
        self.tags.set_flags(id, f);
    }

    /// Returns a copy of a slot's page contents (e.g. for write-back).
    pub fn snapshot(&self, id: SlotId) -> Vec<u8> {
        self.data[self.idx(id)].clone()
    }

    /// Returns the flags of a slot.
    pub fn flags(&self, id: SlotId) -> SlotFlags {
        self.tags.flags(id)
    }

    /// Replaces the flags of a slot.
    pub fn set_flags(&mut self, id: SlotId, flags: SlotFlags) {
        self.tags.set_flags(id, flags);
    }

    /// Returns the tag of a valid slot.
    pub fn tag(&self, id: SlotId) -> Option<Tag> {
        self.tags.tag(id)
    }

    /// Iterates over all valid slots.
    pub fn iter_valid(&self) -> impl Iterator<Item = (SlotId, Tag, SlotFlags)> + '_ {
        self.tags.iter_valid()
    }

    /// Number of valid slots.
    pub fn valid_count(&self) -> usize {
        self.tags.valid_count()
    }

    /// The LRU clock, for checkpointing (see [`TagArray::clock`]).
    pub fn clock(&self) -> u64 {
        self.tags.clock()
    }

    /// The LRU timestamp of a slot (see [`TagArray::last_use`]).
    pub fn last_use(&self, id: SlotId) -> u64 {
        self.tags.last_use(id)
    }

    /// Restores one slot verbatim — tag, flags, LRU timestamp and page
    /// bytes — without bumping the LRU clock (see
    /// [`TagArray::restore_slot`]).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly one cache page long.
    pub fn restore_slot(
        &mut self,
        id: SlotId,
        tag: Tag,
        flags: SlotFlags,
        last_use: u64,
        bytes: Vec<u8>,
    ) {
        assert_eq!(
            bytes.len() as u64,
            self.config().page_size().bytes(),
            "restore requires exactly one cache page of data"
        );
        self.tags.restore_slot(id, tag, flags, last_use);
        let i = self.idx(id);
        self.data[i] = bytes;
    }

    /// Restores the LRU clock (see [`TagArray::restore_clock`]).
    pub fn restore_clock(&mut self, clock: u64) {
        self.tags.restore_clock(clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_types::PageSize;

    fn setup() -> (DataCache, Asid, VirtAddr, SlotId) {
        let config = CacheConfig::new(PageSize::S128, 2, 1024).unwrap();
        let mut c = DataCache::new(config);
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x200);
        let v = c.victim_for(asid, va);
        let tag = Tag::new(asid, PageSize::S128.vpn_of(va));
        c.install(v.slot, tag, SlotFlags::shared_clean(), (0..128).map(|i| i as u8).collect());
        (c, asid, va, v.slot)
    }

    #[test]
    fn install_then_read() {
        let (mut c, asid, va, slot) = setup();
        assert_eq!(c.lookup(asid, va), Some(slot));
        assert_eq!(c.read(slot, 0, 4), &[0, 1, 2, 3]);
        assert_eq!(c.read(slot, 124, 4), &[124, 125, 126, 127]);
    }

    #[test]
    fn write_sets_modified() {
        let (mut c, _, _, slot) = setup();
        assert!(!c.flags(slot).modified);
        c.write(slot, 8, &[0xaa, 0xbb]);
        assert!(c.flags(slot).modified);
        assert_eq!(c.read(slot, 8, 2), &[0xaa, 0xbb]);
        assert_eq!(c.read(slot, 10, 1), &[10]); // neighbours untouched
    }

    #[test]
    fn invalidate_returns_contents() {
        let (mut c, asid, va, slot) = setup();
        c.write(slot, 0, &[9]);
        let (tag, flags, bytes) = c.invalidate(slot).unwrap();
        assert_eq!(tag.asid, asid);
        assert!(flags.modified);
        assert_eq!(bytes[0], 9);
        assert_eq!(bytes.len(), 128);
        assert!(c.lookup(asid, va).is_none());
        assert!(c.invalidate(slot).is_none());
        // Buffer is zeroed for the next occupant.
        assert_eq!(c.read(slot, 0, 4), &[0, 0, 0, 0]);
    }

    #[test]
    fn snapshot_copies_without_invalidation() {
        let (mut c, asid, va, slot) = setup();
        let snap = c.snapshot(slot);
        assert_eq!(snap[5], 5);
        assert!(c.lookup(asid, va).is_some());
    }

    #[test]
    #[should_panic(expected = "exactly one cache page")]
    fn install_rejects_wrong_size() {
        let (mut c, asid, _, _) = setup();
        let va = VirtAddr::new(0x400);
        let v = c.victim_for(asid, va);
        let tag = Tag::new(asid, PageSize::S128.vpn_of(va));
        c.install(v.slot, tag, SlotFlags::shared_clean(), vec![0; 64]);
    }

    #[test]
    fn valid_count_and_iter() {
        let (c, _, _, _) = setup();
        assert_eq!(c.valid_count(), 1);
        assert_eq!(c.iter_valid().count(), 1);
    }
}
