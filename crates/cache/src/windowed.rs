//! Windowed miss-ratio time series.
//!
//! Cold-start simulations (Figure 4) mix a compulsory-miss transient
//! with the steady state; a windowed series makes the transient visible
//! and lets experiments report both (the §5.3 machine sweep's note about
//! cold-start inflation is quantified with this tool).

use vmp_trace::MemRef;

use crate::{CacheConfig, TagCache};

/// Miss ratio per fixed-size window of references.
///
/// # Examples
///
/// ```
/// use vmp_cache::{CacheConfig, WindowedMissRatio};
/// use vmp_trace::MemRef;
/// use vmp_types::{Asid, PageSize, VirtAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = CacheConfig::new(PageSize::S256, 4, 64 * 1024)?;
/// let mut w = WindowedMissRatio::new(config, 100);
/// // A tight loop: after the cold window, later windows are all hits.
/// for i in 0..500u64 {
///     w.access(MemRef::read(Asid::new(1), VirtAddr::new((i % 8) * 4)));
/// }
/// let series = w.finish();
/// assert!(series[0] > 0.0);
/// assert_eq!(series[4], 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WindowedMissRatio {
    cache: TagCache,
    window: usize,
    in_window: usize,
    misses_in_window: u64,
    series: Vec<f64>,
}

impl WindowedMissRatio {
    /// Creates a recorder over a cold cache with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(config: CacheConfig, window: usize) -> Self {
        assert!(window > 0, "window must be non-zero");
        WindowedMissRatio {
            cache: TagCache::new(config),
            window,
            in_window: 0,
            misses_in_window: 0,
            series: Vec::new(),
        }
    }

    /// Presents one reference.
    pub fn access(&mut self, r: MemRef) {
        if !self.cache.access(r).is_hit() {
            self.misses_in_window += 1;
        }
        self.in_window += 1;
        if self.in_window == self.window {
            self.series.push(self.misses_in_window as f64 / self.window as f64);
            self.in_window = 0;
            self.misses_in_window = 0;
        }
    }

    /// The completed windows so far.
    pub fn series(&self) -> &[f64] {
        &self.series
    }

    /// Consumes the recorder, flushing any partial final window.
    pub fn finish(mut self) -> Vec<f64> {
        if self.in_window > 0 {
            self.series.push(self.misses_in_window as f64 / self.in_window as f64);
        }
        self.series
    }

    /// Steady-state estimate: the mean of the second half of the series
    /// (crude but robust against the cold transient). Zero when fewer
    /// than two windows completed.
    pub fn steady_state(&self) -> f64 {
        let n = self.series.len();
        if n < 2 {
            return 0.0;
        }
        let tail = &self.series[n / 2..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// The overall miss ratio (all windows, including the transient).
    pub fn overall(&self) -> f64 {
        self.cache.stats().miss_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_types::{Asid, PageSize, VirtAddr};

    fn config() -> CacheConfig {
        CacheConfig::new(PageSize::S128, 4, 8 * 1024).unwrap()
    }

    fn read(addr: u64) -> MemRef {
        MemRef::read(Asid::new(1), VirtAddr::new(addr))
    }

    #[test]
    fn cold_transient_then_steady_zero() {
        let mut w = WindowedMissRatio::new(config(), 64);
        // 16 pages fit easily: all misses land in the first windows.
        for round in 0..8 {
            for p in 0..16u64 {
                let _ = round;
                for word in 0..4u64 {
                    w.access(read(p * 128 + word * 4));
                }
            }
        }
        let steady = w.steady_state();
        assert_eq!(steady, 0.0, "series: {:?}", w.series());
        assert!(w.overall() > 0.0, "cold misses exist overall");
    }

    #[test]
    fn partial_window_flushed_on_finish() {
        let mut w = WindowedMissRatio::new(config(), 100);
        for i in 0..150u64 {
            w.access(read(i * 128)); // every ref a fresh page: all miss
        }
        let series = w.finish();
        assert_eq!(series.len(), 2);
        assert!((series[0] - 1.0).abs() < 1e-12);
        assert!((series[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_access_before_finish() {
        let mut w = WindowedMissRatio::new(config(), 10);
        for i in 0..25u64 {
            w.access(read(i % 3 * 128));
        }
        assert_eq!(w.series().len(), 2);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_zero_window() {
        let _ = WindowedMissRatio::new(config(), 0);
    }
}
