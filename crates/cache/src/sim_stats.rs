//! Statistics gathered by trace-driven cache simulation.

use core::fmt;

/// Counters for a trace-driven cache-simulation run (Figure 4 of the
/// paper, and the §5.2 observation that OS references are ≈25 % of
/// references but ≈50 % of misses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSimStats {
    /// Total references simulated.
    pub refs: u64,
    /// Total misses.
    pub misses: u64,
    /// References made in supervisor mode.
    pub supervisor_refs: u64,
    /// Misses on supervisor-mode references.
    pub supervisor_misses: u64,
    /// Misses whose replacement victim was modified (needed write-back).
    pub dirty_evictions: u64,
    /// Misses that replaced a valid (but clean) page.
    pub clean_evictions: u64,
    /// Misses that filled a previously invalid slot (cold fills).
    pub cold_fills: u64,
    /// Writes that hit a clean page (transition clean → modified).
    pub write_hits_clean: u64,
}

impl CacheSimStats {
    /// Overall miss ratio (0 when no references were simulated).
    pub fn miss_ratio(&self) -> f64 {
        ratio(self.misses, self.refs)
    }

    /// Miss ratio of supervisor-mode references alone.
    pub fn supervisor_miss_ratio(&self) -> f64 {
        ratio(self.supervisor_misses, self.supervisor_refs)
    }

    /// Fraction of all misses attributable to supervisor references.
    pub fn supervisor_miss_share(&self) -> f64 {
        ratio(self.supervisor_misses, self.misses)
    }

    /// Fraction of replacement victims that were *not* modified.
    ///
    /// The paper's Table 2 assumes 75 % of replaced pages are unmodified;
    /// this counter lets simulation check that mix. Cold fills (no victim)
    /// are excluded.
    pub fn clean_replacement_fraction(&self) -> f64 {
        ratio(self.clean_evictions, self.clean_evictions + self.dirty_evictions)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for CacheSimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refs={} misses={} ({:.3}%) sup-share={:.1}% clean-repl={:.1}%",
            self.refs,
            self.misses,
            100.0 * self.miss_ratio(),
            100.0 * self.supervisor_miss_share(),
            100.0 * self.clean_replacement_fraction(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = CacheSimStats {
            refs: 1000,
            misses: 10,
            supervisor_refs: 250,
            supervisor_misses: 5,
            dirty_evictions: 2,
            clean_evictions: 6,
            cold_fills: 2,
            write_hits_clean: 7,
        };
        assert!((s.miss_ratio() - 0.01).abs() < 1e-12);
        assert!((s.supervisor_miss_ratio() - 0.02).abs() < 1e-12);
        assert!((s.supervisor_miss_share() - 0.5).abs() < 1e-12);
        assert!((s.clean_replacement_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_is_all_zero() {
        let s = CacheSimStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.supervisor_miss_share(), 0.0);
        assert_eq!(s.clean_replacement_fraction(), 0.0);
        assert!(!s.to_string().is_empty());
    }
}
