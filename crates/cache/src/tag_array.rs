//! The tag/flag array shared by both cache front-ends.

use core::fmt;

use vmp_types::{Asid, VirtAddr, VirtPageNum};

use crate::{CacheConfig, SlotFlags};

/// A cache tag: the ⟨ASID, virtual page⟩ pair a slot matches on.
///
/// Because the tag includes the full virtual page number, the same
/// physical frame mapped at two virtual addresses occupies two distinct
/// slots — the *alias* situation whose consistency the bus monitor
/// resolves (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag {
    /// Address space of the cached page.
    pub asid: Asid,
    /// Virtual page number of the cached page.
    pub vpn: VirtPageNum,
}

impl Tag {
    /// Creates a tag.
    pub const fn new(asid: Asid, vpn: VirtPageNum) -> Self {
        Tag { asid, vpn }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.asid, self.vpn)
    }
}

/// Identifies one cache slot by set and way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId {
    /// Set index.
    pub set: usize,
    /// Way within the set.
    pub way: usize,
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot[{},{}]", self.set, self.way)
    }
}

/// The hardware's suggested replacement victim for a missing page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The slot to replace.
    pub slot: SlotId,
    /// Tag currently in the slot, if the slot is valid.
    pub evicted: Option<Tag>,
    /// Whether the current occupant is modified (needs write-back).
    pub modified: bool,
}

#[derive(Debug, Clone)]
struct Slot {
    tag: Option<Tag>,
    flags: SlotFlags,
    last_use: u64,
}

/// The tag, flag and LRU state of every cache slot.
///
/// Mirrors what the VMP cache controller implements in hardware: tag
/// match on ⟨ASID, VA⟩, per-slot flag word, and an LRU-based *suggested*
/// victim on miss (paper §4). All mutation of flags and tags is performed
/// by the (software) caller, as in the real machine.
///
/// # Examples
///
/// ```
/// use vmp_cache::{CacheConfig, SlotFlags, Tag, TagArray};
/// use vmp_types::{Asid, PageSize, VirtAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut tags = TagArray::new(CacheConfig::new(PageSize::S128, 2, 4096)?);
/// let va = VirtAddr::new(0x80);
/// assert!(tags.lookup(Asid::new(1), va).is_none());
/// let victim = tags.victim_for(Asid::new(1), va);
/// tags.install(victim.slot, Tag::new(Asid::new(1), PageSize::S128.vpn_of(va)),
///              SlotFlags::shared_clean());
/// assert!(tags.lookup(Asid::new(1), va).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TagArray {
    config: CacheConfig,
    slots: Vec<Slot>,
    clock: u64,
}

impl TagArray {
    /// Creates an empty (all-invalid) tag array.
    pub fn new(config: CacheConfig) -> Self {
        let slots = (0..config.total_slots())
            .map(|_| Slot { tag: None, flags: SlotFlags::invalid(), last_use: 0 })
            .collect();
        TagArray { config, slots, clock: 0 }
    }

    /// The geometry this array was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn idx(&self, id: SlotId) -> usize {
        debug_assert!(id.set < self.config.sets() && id.way < self.config.associativity());
        id.set * self.config.associativity() + id.way
    }

    /// Looks up the slot holding `va` in address space `asid`, updating
    /// LRU state on a hit.
    pub fn lookup(&mut self, asid: Asid, va: VirtAddr) -> Option<SlotId> {
        let id = self.probe(asid, va)?;
        self.touch(id);
        Some(id)
    }

    /// Looks up without disturbing LRU state (for inspection/validation).
    pub fn probe(&self, asid: Asid, va: VirtAddr) -> Option<SlotId> {
        let vpn = self.config.page_size().vpn_of(va);
        let tag = Tag::new(asid, vpn);
        let set = self.config.set_of_vpn(vpn);
        for way in 0..self.config.associativity() {
            let id = SlotId { set, way };
            let slot = &self.slots[self.idx(id)];
            if slot.flags.valid && slot.tag == Some(tag) {
                return Some(id);
            }
        }
        None
    }

    /// Records a use of `id` for LRU purposes.
    pub fn touch(&mut self, id: SlotId) {
        self.clock += 1;
        let clock = self.clock;
        let i = self.idx(id);
        self.slots[i].last_use = clock;
    }

    /// The hardware-suggested victim for a miss on ⟨`asid`, `va`⟩:
    /// an invalid way if one exists, otherwise the LRU way of the set.
    pub fn victim_for(&self, asid: Asid, va: VirtAddr) -> Victim {
        let _ = asid;
        let set = self.config.set_of(va);
        let mut best: Option<(SlotId, u64)> = None;
        for way in 0..self.config.associativity() {
            let id = SlotId { set, way };
            let slot = &self.slots[self.idx(id)];
            if !slot.flags.valid {
                return Victim { slot: id, evicted: None, modified: false };
            }
            match best {
                Some((_, t)) if slot.last_use >= t => {}
                _ => best = Some((id, slot.last_use)),
            }
        }
        let (id, _) = best.expect("associativity is non-zero");
        let slot = &self.slots[self.idx(id)];
        Victim { slot: id, evicted: slot.tag, modified: slot.flags.modified }
    }

    /// Installs `tag` with `flags` into `id`, returning the previous tag.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the tag would not map to `id.set` or the
    /// same tag is already valid in another way of the set (a duplicate
    /// would make lookups ambiguous).
    pub fn install(&mut self, id: SlotId, tag: Tag, flags: SlotFlags) -> Option<Tag> {
        debug_assert_eq!(self.config.set_of_vpn(tag.vpn), id.set, "tag must map to its set");
        #[cfg(debug_assertions)]
        for way in 0..self.config.associativity() {
            if way != id.way {
                let other = &self.slots[self.idx(SlotId { set: id.set, way })];
                debug_assert!(
                    !(other.flags.valid && other.tag == Some(tag)),
                    "duplicate tag {tag} in set {}",
                    id.set
                );
            }
        }
        self.clock += 1;
        let clock = self.clock;
        let i = self.idx(id);
        let prev = self.slots[i].tag;
        self.slots[i] = Slot { tag: Some(tag), flags, last_use: clock };
        prev
    }

    /// Invalidates a slot, returning its previous tag if it was valid.
    pub fn invalidate(&mut self, id: SlotId) -> Option<Tag> {
        let i = self.idx(id);
        let was = if self.slots[i].flags.valid { self.slots[i].tag } else { None };
        self.slots[i].tag = None;
        self.slots[i].flags = SlotFlags::invalid();
        was
    }

    /// Returns the flags of a slot.
    pub fn flags(&self, id: SlotId) -> SlotFlags {
        self.slots[self.idx(id)].flags
    }

    /// Replaces the flags of a slot.
    pub fn set_flags(&mut self, id: SlotId, flags: SlotFlags) {
        let i = self.idx(id);
        self.slots[i].flags = flags;
    }

    /// Returns the tag of a slot if valid.
    pub fn tag(&self, id: SlotId) -> Option<Tag> {
        let i = self.idx(id);
        if self.slots[i].flags.valid {
            self.slots[i].tag
        } else {
            None
        }
    }

    /// Iterates over all valid slots as `(SlotId, Tag, SlotFlags)`.
    pub fn iter_valid(&self) -> impl Iterator<Item = (SlotId, Tag, SlotFlags)> + '_ {
        let assoc = self.config.associativity();
        self.slots.iter().enumerate().filter_map(move |(i, s)| {
            if s.flags.valid {
                s.tag.map(|t| (SlotId { set: i / assoc, way: i % assoc }, t, s.flags))
            } else {
                None
            }
        })
    }

    /// Number of valid slots.
    pub fn valid_count(&self) -> usize {
        self.slots.iter().filter(|s| s.flags.valid).count()
    }

    /// Invalidates every slot (not needed on context switch thanks to
    /// ASID tags; used for address-space teardown tests and resets).
    pub fn invalidate_all(&mut self) {
        for s in &mut self.slots {
            s.tag = None;
            s.flags = SlotFlags::invalid();
        }
    }

    /// The LRU clock value, for checkpointing. Together with per-slot
    /// [`TagArray::last_use`] values this pins down future victim
    /// selection exactly.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The LRU timestamp of a slot (meaningful only while the slot is
    /// valid; victim selection never consults invalid slots).
    pub fn last_use(&self, id: SlotId) -> u64 {
        self.slots[self.idx(id)].last_use
    }

    /// Writes a slot's tag, flags and LRU timestamp verbatim, without
    /// bumping the clock the way [`TagArray::install`] does — checkpoint
    /// restore must reproduce the saved LRU ordering, not invent a new
    /// one.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the tag would not map to `id.set`.
    pub fn restore_slot(&mut self, id: SlotId, tag: Tag, flags: SlotFlags, last_use: u64) {
        debug_assert_eq!(self.config.set_of_vpn(tag.vpn), id.set, "tag must map to its set");
        let i = self.idx(id);
        self.slots[i] = Slot { tag: Some(tag), flags, last_use };
    }

    /// Restores the LRU clock captured by [`TagArray::clock`].
    pub fn restore_clock(&mut self, clock: u64) {
        self.clock = clock;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_types::PageSize;

    fn small() -> TagArray {
        // 2 sets × 2 ways × 128 B pages.
        TagArray::new(CacheConfig::new(PageSize::S128, 2, 512).unwrap())
    }

    fn tag_for(arr: &TagArray, asid: u8, va: u64) -> Tag {
        Tag::new(Asid::new(asid), arr.config().page_size().vpn_of(VirtAddr::new(va)))
    }

    #[test]
    fn miss_then_install_then_hit() {
        let mut a = small();
        let va = VirtAddr::new(0x100);
        assert!(a.lookup(Asid::new(1), va).is_none());
        let v = a.victim_for(Asid::new(1), va);
        assert!(v.evicted.is_none());
        let t = tag_for(&a, 1, 0x100);
        a.install(v.slot, t, SlotFlags::shared_clean());
        let hit = a.lookup(Asid::new(1), va).unwrap();
        assert_eq!(hit, v.slot);
        assert_eq!(a.tag(hit), Some(t));
        assert_eq!(a.valid_count(), 1);
    }

    #[test]
    fn asid_disambiguates_identical_addresses() {
        let mut a = small();
        let va = VirtAddr::new(0x80);
        let v = a.victim_for(Asid::new(1), va);
        a.install(v.slot, tag_for(&a, 1, 0x80), SlotFlags::shared_clean());
        assert!(a.lookup(Asid::new(1), va).is_some());
        assert!(a.lookup(Asid::new(2), va).is_none());
    }

    #[test]
    fn victim_prefers_invalid_way() {
        let mut a = small();
        let v0 = a.victim_for(Asid::new(1), VirtAddr::new(0));
        a.install(v0.slot, tag_for(&a, 1, 0), SlotFlags::shared_clean());
        let v1 = a.victim_for(Asid::new(1), VirtAddr::new(0x100)); // same set (2 sets of 128B)
        assert_ne!(v0.slot, v1.slot);
        assert!(v1.evicted.is_none());
    }

    #[test]
    fn victim_is_lru_when_set_full() {
        let mut a = small();
        // Set 0 holds pages 0 and 2 (vpn % 2 == 0).
        let t0 = tag_for(&a, 1, 0);
        let t2 = tag_for(&a, 1, 0x100);
        let v = a.victim_for(Asid::new(1), VirtAddr::new(0));
        a.install(v.slot, t0, SlotFlags::shared_clean());
        let v = a.victim_for(Asid::new(1), VirtAddr::new(0x100));
        a.install(v.slot, t2, SlotFlags::shared_clean());
        // Touch t0 so t2 becomes LRU.
        a.lookup(Asid::new(1), VirtAddr::new(0)).unwrap();
        let v = a.victim_for(Asid::new(1), VirtAddr::new(0x200));
        assert_eq!(v.evicted, Some(t2));
        // Touch order flipped: now t0 is LRU.
        a.lookup(Asid::new(1), VirtAddr::new(0x100)).unwrap();
        a.lookup(Asid::new(1), VirtAddr::new(0x100)).unwrap();
        let v = a.victim_for(Asid::new(1), VirtAddr::new(0x200));
        assert_eq!(v.evicted, Some(t0));
    }

    #[test]
    fn victim_reports_modified() {
        let mut a = TagArray::new(CacheConfig::new(PageSize::S128, 1, 128).unwrap());
        let t = tag_for(&a, 1, 0);
        let v = a.victim_for(Asid::new(1), VirtAddr::new(0));
        let mut flags = SlotFlags::private_page();
        flags.modified = true;
        a.install(v.slot, t, flags);
        let v = a.victim_for(Asid::new(1), VirtAddr::new(0x80));
        assert_eq!(v.evicted, Some(t));
        assert!(v.modified);
    }

    #[test]
    fn invalidate_frees_slot() {
        let mut a = small();
        let va = VirtAddr::new(0);
        let v = a.victim_for(Asid::new(1), va);
        a.install(v.slot, tag_for(&a, 1, 0), SlotFlags::private_page());
        let t = a.invalidate(v.slot);
        assert_eq!(t, Some(tag_for(&a, 1, 0)));
        assert!(a.lookup(Asid::new(1), va).is_none());
        assert_eq!(a.invalidate(v.slot), None);
        assert_eq!(a.valid_count(), 0);
    }

    #[test]
    fn flags_roundtrip_and_iter() {
        let mut a = small();
        let v = a.victim_for(Asid::new(3), VirtAddr::new(0x80));
        a.install(v.slot, tag_for(&a, 3, 0x80), SlotFlags::shared_clean());
        let mut f = a.flags(v.slot);
        f.modified = true;
        a.set_flags(v.slot, f);
        assert!(a.flags(v.slot).modified);
        let all: Vec<_> = a.iter_valid().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, v.slot);
        a.invalidate_all();
        assert_eq!(a.iter_valid().count(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate tag")]
    fn install_rejects_duplicate_tag_in_set() {
        let mut a = small();
        let t = tag_for(&a, 1, 0);
        a.install(SlotId { set: 0, way: 0 }, t, SlotFlags::shared_clean());
        a.install(SlotId { set: 0, way: 1 }, t, SlotFlags::shared_clean());
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut a = small();
        let t0 = tag_for(&a, 1, 0);
        let t2 = tag_for(&a, 1, 0x100);
        a.install(SlotId { set: 0, way: 0 }, t0, SlotFlags::shared_clean());
        a.install(SlotId { set: 0, way: 1 }, t2, SlotFlags::shared_clean());
        // t0 is older. Probing it must not promote it.
        assert!(a.probe(Asid::new(1), VirtAddr::new(0)).is_some());
        let v = a.victim_for(Asid::new(1), VirtAddr::new(0x200));
        assert_eq!(v.evicted, Some(t0));
    }
}
