//! Calibration check for the Figure 4 reproduction: the synthetic
//! ATUM-like workload must produce cold-start miss ratios with the shape
//! the paper reports (§5.2):
//!
//! * sub-percent miss ratios for 64–256 KB 4-way caches with 128–512 B
//!   pages (≈0.24 % at 256 B / 128 KB in the paper);
//! * miss ratio decreases with cache size and with page size;
//! * OS references are ≈25 % of references but a disproportionate
//!   (≈50 %) share of misses.

use vmp_cache::{CacheConfig, CacheSimStats, TagCache};
use vmp_trace::synth::{AtumParams, AtumWorkload};
use vmp_trace::Trace;
use vmp_types::PageSize;

const TRACE_LEN: usize = 400_000; // paper traces: 358k–540k refs
const SEED: u64 = 1986;

fn run(page: PageSize, kb: u64, trace: &Trace) -> CacheSimStats {
    let mut cache = TagCache::new(CacheConfig::new(page, 4, kb * 1024).unwrap());
    cache.run(trace.iter().copied())
}

fn trace() -> Trace {
    AtumWorkload::new(AtumParams::default(), SEED).take(TRACE_LEN).collect()
}

#[test]
fn miss_ratio_in_paper_band_at_reference_point() {
    let t = trace();
    let s = run(PageSize::S256, 128, &t);
    let m = s.miss_ratio();
    // Paper: 0.24 % at 256 B pages / 128 KB. Accept a generous band around
    // it — the workload is synthetic — but demand sub-percent.
    assert!(m > 0.0005 && m < 0.01, "miss ratio {m} out of band");
}

#[test]
fn miss_ratio_decreases_with_cache_size() {
    let t = trace();
    let m64 = run(PageSize::S256, 64, &t).miss_ratio();
    let m128 = run(PageSize::S256, 128, &t).miss_ratio();
    let m256 = run(PageSize::S256, 256, &t).miss_ratio();
    assert!(m64 >= m128 && m128 >= m256, "sizes: {m64} {m128} {m256}");
    assert!(m64 > m256, "64K should miss strictly more than 256K: {m64} vs {m256}");
}

#[test]
fn miss_ratio_decreases_with_page_size() {
    let t = trace();
    let m128 = run(PageSize::S128, 128, &t).miss_ratio();
    let m256 = run(PageSize::S256, 128, &t).miss_ratio();
    let m512 = run(PageSize::S512, 128, &t).miss_ratio();
    assert!(m128 > m256 && m256 > m512, "pages: 128B={m128} 256B={m256} 512B={m512}");
}

#[test]
fn os_miss_share_exceeds_its_reference_share() {
    let t = trace();
    let stats = t.stats();
    let sup_refs = stats.supervisor_fraction();
    let s = run(PageSize::S256, 128, &t);
    let sup_misses = s.supervisor_miss_share();
    assert!(
        (0.15..=0.35).contains(&sup_refs),
        "supervisor ref share {sup_refs} not near the paper's 25%"
    );
    assert!(
        sup_misses > sup_refs,
        "OS should be over-represented in misses: refs {sup_refs}, misses {sup_misses}"
    );
}

#[test]
fn majority_of_replacements_are_clean() {
    // Table 2 assumes 75 % of replaced pages are unmodified.
    let t = trace();
    let s = run(PageSize::S256, 128, &t);
    let clean = s.clean_replacement_fraction();
    // Only meaningful if any non-cold replacement happened.
    if s.clean_evictions + s.dirty_evictions > 50 {
        assert!(clean > 0.5, "clean replacement fraction {clean}");
    }
}
