//! Property-based checks of the three-C classifier and of
//! [`vmp_cache::DataCache`]/[`vmp_cache::TagCache`] hit-miss equivalence.

use proptest::prelude::*;
use vmp_cache::{classify_misses, CacheConfig, DataCache, SlotFlags, Tag, TagCache};
use vmp_trace::MemRef;
use vmp_types::{Asid, PageSize, VirtAddr};

fn arb_refs() -> impl Strategy<Value = Vec<MemRef>> {
    proptest::collection::vec(
        (0u8..3, 0u64..8192, any::<bool>()).prop_map(|(asid, addr, write)| {
            if write {
                MemRef::write(Asid::new(asid), VirtAddr::new(addr))
            } else {
                MemRef::read(Asid::new(asid), VirtAddr::new(addr))
            }
        }),
        0..500,
    )
}

proptest! {
    /// The three-C decomposition always sums to the real cache's misses,
    /// and the components are individually sane.
    #[test]
    fn three_c_sums_to_real_misses(refs in arb_refs(), assoc in 1usize..=4) {
        let page = PageSize::S128;
        let total = page.bytes() * assoc as u64 * 4; // 4 sets
        let config = CacheConfig::new(page, assoc, total).unwrap();
        let c = classify_misses(config, refs.clone());
        let mut cache = TagCache::new(config);
        let stats = cache.run(refs.clone());
        prop_assert_eq!(c.total_misses(), stats.misses);
        // Cold misses equal the number of distinct pages touched.
        let distinct: std::collections::HashSet<_> =
            refs.iter().map(|r| (r.asid, page.vpn_of(r.addr))).collect();
        prop_assert_eq!(c.cold, distinct.len() as u64);
        // A fully-associative cache has no conflicts: with one set the
        // conflict count must be zero.
        if config.sets() == 1 {
            prop_assert_eq!(c.conflict, 0);
        }
    }

    /// The data-bearing cache and the tag-only cache make identical
    /// hit/miss decisions (they share the tag machinery, but the data
    /// cache goes through install/invalidate rather than `access`).
    #[test]
    fn data_cache_matches_tag_cache(refs in arb_refs()) {
        let config = CacheConfig::new(PageSize::S128, 2, 1024).unwrap();
        let mut tags = TagCache::new(config);
        let mut data = DataCache::new(config);
        let page = config.page_size();
        for r in refs {
            let tag_hit = tags.access(r).is_hit();
            let data_hit = data.lookup(r.asid, r.addr).is_some();
            prop_assert_eq!(tag_hit, data_hit, "divergence at {:?}", r);
            if !data_hit {
                let victim = data.victim_for(r.asid, r.addr);
                if victim.evicted.is_some() {
                    data.invalidate(victim.slot);
                }
                let mut flags = SlotFlags::shared_clean();
                if r.kind.is_write() {
                    flags.modified = true;
                    flags.user_write = true;
                }
                data.install(
                    victim.slot,
                    Tag::new(r.asid, page.vpn_of(r.addr)),
                    flags,
                    vec![0u8; page.bytes() as usize],
                );
            } else if r.kind.is_write() {
                let slot = data.lookup(r.asid, r.addr).unwrap();
                data.write(slot, 0, &[1]);
            }
        }
    }
}
