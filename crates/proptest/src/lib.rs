//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! subset of proptest's API the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range/tuple/[`Just`]/[`any`]
//! strategies, [`collection::vec`], the [`prop_oneof!`] union, the
//! [`proptest!`] test macro with optional `#![proptest_config(..)]`,
//! and the `prop_assert*` assertion macros.
//!
//! Differences from upstream: cases are drawn from a fixed per-test
//! seed (derived from the test name, so failures reproduce exactly) and
//! there is **no shrinking** — a failing case is reported as-is. The
//! default case count is 64.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runner configuration (the subset the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (returned early by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking: a
/// strategy is simply a cloneable sampler.
pub trait Strategy: Clone {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.sample(rng)))
    }
}

/// A [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut StdRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut StdRng) -> V {
        (self.0)(rng)
    }
}

/// A uniform choice between type-erased alternatives.
pub struct Union<V> {
    alternatives: Vec<BoxedStrategy<V>>,
}

// Manual impl: `derive` would demand `V: Clone`, but the alternatives
// are `Rc`-backed and clone regardless of `V`.
impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union { alternatives: self.alternatives.clone() }
    }
}

impl<V> Union<V> {
    /// Builds a union; used by [`prop_oneof!`].
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        Union { alternatives }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut StdRng) -> V {
        let i = rng.random_range(0..self.alternatives.len());
        self.alternatives[i].sample(rng)
    }
}

/// The constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" (via the [`Arbitrary`] trait).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary {
    /// Draws one uniformly random value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;
    use std::ops::Range;

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derives a per-test deterministic seed from the test's name, so every
/// run draws the identical case sequence (failures reproduce exactly).
pub fn seed_for(name: &str) -> StdRng {
    // FNV-1a, stable across platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares property tests.
///
/// Supports the upstream form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<bool>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property '{}' failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// A union strategy choosing uniformly among the listed alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}`: {}",
                        l,
                        r,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in 0usize..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for e in v {
                prop_assert!(e < 4);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u64..10).prop_map(|x| x * 2),
                Just(1u64),
            ]
        ) {
            prop_assert!(v == 1 || (v % 2 == 0 && v < 20));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_respected(_x in 0u8..=255) {
            // Body runs exactly `cases` times; nothing to assert beyond
            // not panicking.
        }
    }

    #[test]
    fn seeding_is_stable() {
        let mut a = crate::seed_for("some::test");
        let mut b = crate::seed_for("some::test");
        assert_eq!(
            crate::Strategy::sample(&(0u64..1_000_000), &mut a),
            crate::Strategy::sample(&(0u64..1_000_000), &mut b)
        );
    }
}
