//! Virtual memory for the VMP machine: address spaces, two-level page
//! tables and physical frame allocation.
//!
//! VMP has no MMU or TLB — the virtually addressed cache *is* the
//! translation cache, and translation happens in software on cache miss
//! (paper §2). A two-level page table is the proposed scheme; page tables
//! may themselves live in virtual memory, so a miss can recurse a bounded
//! number of levels.
//!
//! This crate supplies the functional layer: [`AddressSpace`] (mapping
//! state + referenced/modified bits), [`FrameAllocator`], and the layout
//! of the page tables in kernel virtual space ([`AddressSpace::pte_va`])
//! so the machine model in `vmp-core` can charge the *cache traffic* of
//! page-table walks exactly where the real machine would incur it.
//!
//! # Examples
//!
//! ```
//! use vmp_types::{Asid, FrameNum, PageSize, VirtAddr};
//! use vmp_vm::{AddressSpace, Pte};
//!
//! let mut space = AddressSpace::new(Asid::new(1), PageSize::S256);
//! let vpn = PageSize::S256.vpn_of(VirtAddr::new(0x4000));
//! space.map(vpn, Pte::user_rw(FrameNum::new(9)));
//! assert_eq!(space.translate(vpn).unwrap().frame, FrameNum::new(9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod space;

pub use alloc::{FrameAllocator, FreeError};
pub use space::{AddressSpace, Pte, PT_BASE};
