//! Address spaces and their two-level page tables.

use std::collections::BTreeMap;
use std::fmt;

use vmp_types::{Asid, FrameNum, PageSize, VirtAddr, VirtPageNum};

/// Base kernel virtual address of the page-table arrays.
///
/// Each address space's PTEs occupy a linear array in kernel virtual
/// space — four bytes per virtual page — so the miss handler's
/// page-table *references* themselves go through the cache, exactly the
/// recursive-miss structure §2 of the paper describes.
pub const PT_BASE: u64 = 0xf400_0000;

/// One page-table entry.
///
/// Carries the physical frame plus the protection and usage bits the
/// paper's cache flags mirror (§4): writability, supervisor-only, and
/// the referenced/modified bits the page-out daemon maintains through
/// assert-ownership flushes (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The physical cache-page frame this virtual page maps to.
    pub frame: FrameNum,
    /// Writes permitted (at the mapping's privilege level).
    pub writable: bool,
    /// Accessible only in supervisor mode.
    pub supervisor_only: bool,
    /// Set when the page has been referenced since last cleared.
    pub referenced: bool,
    /// Set when the page has been written since last cleared.
    pub modified: bool,
    /// §5.4 software hint: this page is not shared between processors,
    /// so a read miss may fetch it private (read-private) immediately,
    /// avoiding a later assert-ownership upgrade on first write.
    pub hint_private: bool,
}

impl Pte {
    /// A user-mode read-write mapping.
    pub const fn user_rw(frame: FrameNum) -> Self {
        Pte {
            frame,
            writable: true,
            supervisor_only: false,
            referenced: false,
            modified: false,
            hint_private: false,
        }
    }

    /// A user-mode read-only mapping.
    pub const fn user_ro(frame: FrameNum) -> Self {
        Pte {
            frame,
            writable: false,
            supervisor_only: false,
            referenced: false,
            modified: false,
            hint_private: false,
        }
    }

    /// A supervisor-only read-write mapping.
    pub const fn kernel_rw(frame: FrameNum) -> Self {
        Pte {
            frame,
            writable: true,
            supervisor_only: true,
            referenced: false,
            modified: false,
            hint_private: false,
        }
    }

    /// Returns the same mapping with the §5.4 non-shared hint set.
    #[must_use]
    pub const fn with_private_hint(mut self) -> Self {
        self.hint_private = true;
        self
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}{}",
            self.frame,
            if self.writable { " w" } else { " r" },
            if self.supervisor_only { " sup" } else { "" },
            if self.referenced { " R" } else { "" },
            if self.modified { " M" } else { "" },
        )
    }
}

/// An address space: ASID plus a two-level page table.
///
/// The first level (the "directory") indexes fixed-size leaf tables;
/// leaves are allocated on first mapping, mirroring a real sparse
/// two-level table. The leaf size is chosen so one leaf's PTEs fill
/// exactly one cache page (`page_size / 4` entries of 4 bytes), making
/// [`AddressSpace::pte_va`] land PTE lookups on cache-page boundaries
/// the way the real layout would.
///
/// # Examples
///
/// ```
/// use vmp_types::{Asid, FrameNum, PageSize, VirtPageNum};
/// use vmp_vm::{AddressSpace, Pte};
///
/// let mut s = AddressSpace::new(Asid::new(2), PageSize::S128);
/// let vpn = VirtPageNum::new(100);
/// assert!(s.translate(vpn).is_none());
/// s.map(vpn, Pte::user_rw(FrameNum::new(3)));
/// assert_eq!(s.mapped_pages(), 1);
/// let old = s.unmap(vpn).unwrap();
/// assert_eq!(old.frame, FrameNum::new(3));
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    asid: Asid,
    page_size: PageSize,
    /// Entries per leaf table (= PTEs per cache page).
    leaf_entries: u64,
    leaves: BTreeMap<u64, Vec<Option<Pte>>>,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new(asid: Asid, page_size: PageSize) -> Self {
        let leaf_entries = page_size.bytes() / 4;
        AddressSpace { asid, page_size, leaf_entries, leaves: BTreeMap::new() }
    }

    /// The space's ASID.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The cache-page size translations are done at.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    fn split(&self, vpn: VirtPageNum) -> (u64, usize) {
        (vpn.raw() / self.leaf_entries, (vpn.raw() % self.leaf_entries) as usize)
    }

    /// Looks up the PTE for a virtual page.
    pub fn translate(&self, vpn: VirtPageNum) -> Option<&Pte> {
        let (leaf, idx) = self.split(vpn);
        self.leaves.get(&leaf)?.get(idx)?.as_ref()
    }

    /// Mutable lookup (for referenced/modified bit maintenance).
    pub fn translate_mut(&mut self, vpn: VirtPageNum) -> Option<&mut Pte> {
        let (leaf, idx) = self.split(vpn);
        self.leaves.get_mut(&leaf)?.get_mut(idx)?.as_mut()
    }

    /// Installs a mapping, returning any previous PTE.
    pub fn map(&mut self, vpn: VirtPageNum, pte: Pte) -> Option<Pte> {
        let (leaf, idx) = self.split(vpn);
        let entries = self.leaf_entries as usize;
        let table = self.leaves.entry(leaf).or_insert_with(|| vec![None; entries]);
        table[idx].replace(pte)
    }

    /// Removes a mapping, returning the PTE if one existed.
    pub fn unmap(&mut self, vpn: VirtPageNum) -> Option<Pte> {
        let (leaf, idx) = self.split(vpn);
        let table = self.leaves.get_mut(&leaf)?;
        let old = table[idx].take();
        if table.iter().all(Option::is_none) {
            self.leaves.remove(&leaf);
        }
        old
    }

    /// The kernel virtual address holding this virtual page's PTE.
    ///
    /// The machine's miss handler *references this address through the
    /// cache* during translation, so a cold PTE page produces the nested
    /// cache miss of §2.
    pub fn pte_va(&self, vpn: VirtPageNum) -> VirtAddr {
        // Per-space linear PTE array: 4 bytes per page, spaces separated
        // by the maximum array span (2^26 bytes covers a 2^24-page space).
        VirtAddr::new(PT_BASE + ((self.asid.raw() as u64) << 26) + vpn.raw() * 4)
    }

    /// Number of live mappings.
    pub fn mapped_pages(&self) -> usize {
        self.leaves.values().flat_map(|l| l.iter()).filter(|e| e.is_some()).count()
    }

    /// Number of allocated leaf tables (second-level pages).
    pub fn leaf_tables(&self) -> usize {
        self.leaves.len()
    }

    /// Iterates over all live mappings.
    pub fn iter(&self) -> impl Iterator<Item = (VirtPageNum, &Pte)> + '_ {
        self.leaves.iter().flat_map(move |(leaf, table)| {
            table.iter().enumerate().filter_map(move |(i, e)| {
                e.as_ref().map(|pte| (VirtPageNum::new(leaf * self.leaf_entries + i as u64), pte))
            })
        })
    }

    /// Finds every virtual page mapped to `frame` (reverse lookup — the
    /// aliases of a physical page within this space).
    pub fn reverse_lookup(&self, frame: FrameNum) -> Vec<VirtPageNum> {
        self.iter().filter(|(_, pte)| pte.frame == frame).map(|(vpn, _)| vpn).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(Asid::new(1), PageSize::S256)
    }

    #[test]
    fn map_translate_unmap() {
        let mut s = space();
        let vpn = VirtPageNum::new(0x1234);
        assert!(s.translate(vpn).is_none());
        assert_eq!(s.map(vpn, Pte::user_rw(FrameNum::new(7))), None);
        assert_eq!(s.translate(vpn).unwrap().frame, FrameNum::new(7));
        let prev = s.map(vpn, Pte::user_ro(FrameNum::new(8)));
        assert_eq!(prev.unwrap().frame, FrameNum::new(7));
        assert_eq!(s.unmap(vpn).unwrap().frame, FrameNum::new(8));
        assert!(s.unmap(vpn).is_none());
        assert_eq!(s.mapped_pages(), 0);
        assert_eq!(s.leaf_tables(), 0);
    }

    #[test]
    fn leaves_sized_to_cache_pages() {
        // 256-byte pages → 64 PTEs per leaf.
        let mut s = space();
        s.map(VirtPageNum::new(0), Pte::user_rw(FrameNum::new(1)));
        s.map(VirtPageNum::new(63), Pte::user_rw(FrameNum::new(2)));
        assert_eq!(s.leaf_tables(), 1);
        s.map(VirtPageNum::new(64), Pte::user_rw(FrameNum::new(3)));
        assert_eq!(s.leaf_tables(), 2);
    }

    #[test]
    fn pte_va_layout() {
        let s = space();
        let a = s.pte_va(VirtPageNum::new(0));
        let b = s.pte_va(VirtPageNum::new(1));
        assert_eq!(b.raw() - a.raw(), 4);
        assert!(a.raw() >= PT_BASE);
        // Different spaces get disjoint PTE arrays.
        let other = AddressSpace::new(Asid::new(2), PageSize::S256);
        assert_ne!(other.pte_va(VirtPageNum::new(0)), a);
        // PTEs for one leaf share one cache page.
        let first = s.pte_va(VirtPageNum::new(0));
        let last = s.pte_va(VirtPageNum::new(63));
        let p = PageSize::S256;
        assert_eq!(p.vpn_of(first), p.vpn_of(last));
        assert_ne!(p.vpn_of(first), p.vpn_of(s.pte_va(VirtPageNum::new(64))));
    }

    #[test]
    fn referenced_modified_bits() {
        let mut s = space();
        let vpn = VirtPageNum::new(5);
        s.map(vpn, Pte::user_rw(FrameNum::new(1)));
        let pte = s.translate_mut(vpn).unwrap();
        pte.referenced = true;
        pte.modified = true;
        assert!(s.translate(vpn).unwrap().referenced);
        assert!(s.translate(vpn).unwrap().modified);
    }

    #[test]
    fn reverse_lookup_finds_aliases() {
        let mut s = space();
        s.map(VirtPageNum::new(10), Pte::user_rw(FrameNum::new(3)));
        s.map(VirtPageNum::new(900), Pte::user_ro(FrameNum::new(3)));
        s.map(VirtPageNum::new(20), Pte::user_rw(FrameNum::new(4)));
        let mut aliases = s.reverse_lookup(FrameNum::new(3));
        aliases.sort();
        assert_eq!(aliases, vec![VirtPageNum::new(10), VirtPageNum::new(900)]);
    }

    #[test]
    fn iter_enumerates_all() {
        let mut s = space();
        for i in 0..100 {
            s.map(VirtPageNum::new(i * 3), Pte::user_rw(FrameNum::new(i)));
        }
        assert_eq!(s.iter().count(), 100);
        assert_eq!(s.mapped_pages(), 100);
        let collected: Vec<_> = s.iter().map(|(v, _)| v.raw()).collect();
        let mut sorted = collected.clone();
        sorted.sort_unstable();
        assert_eq!(collected, sorted, "iteration is ordered");
    }

    #[test]
    fn pte_constructors_and_display() {
        let rw = Pte::user_rw(FrameNum::new(1));
        assert!(rw.writable && !rw.supervisor_only && !rw.hint_private);
        let ro = Pte::user_ro(FrameNum::new(1));
        assert!(!ro.writable);
        let k = Pte::kernel_rw(FrameNum::new(1));
        assert!(k.supervisor_only && k.writable);
        assert!(k.to_string().contains("sup"));
        assert!(Pte::user_rw(FrameNum::new(1)).with_private_hint().hint_private);
    }
}
