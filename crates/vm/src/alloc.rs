//! Physical frame allocation.

use std::collections::BTreeSet;

use vmp_types::FrameNum;

/// A free-list allocator over the physical cache-page frames of main
/// memory.
///
/// Frames are handed out lowest-first for determinism. The kernel uses
/// this for demand-zero page faults and for page-table backing frames.
///
/// # Examples
///
/// ```
/// use vmp_vm::FrameAllocator;
/// use vmp_types::FrameNum;
///
/// let mut a = FrameAllocator::new(4);
/// let f0 = a.alloc().unwrap();
/// assert_eq!(f0, FrameNum::new(0));
/// a.free(f0).unwrap();
/// assert_eq!(a.free_frames(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    free: BTreeSet<u64>,
    total: u64,
}

/// Errors from [`FrameAllocator::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeError {
    /// The frame was not allocated (double free or never handed out).
    NotAllocated(FrameNum),
    /// The frame is outside the allocator's range.
    OutOfRange(FrameNum),
}

impl std::fmt::Display for FreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreeError::NotAllocated(fr) => write!(f, "double free of {fr}"),
            FreeError::OutOfRange(fr) => write!(f, "{fr} outside allocator range"),
        }
    }
}

impl std::error::Error for FreeError {}

impl FrameAllocator {
    /// Creates an allocator over frames `0..total`.
    pub fn new(total: u64) -> Self {
        FrameAllocator { free: (0..total).collect(), total }
    }

    /// Creates an allocator over frames `first..total`, reserving the
    /// low frames (boot code, device buffers).
    pub fn with_reserved(total: u64, reserved: u64) -> Self {
        FrameAllocator { free: (reserved..total).collect(), total }
    }

    /// Allocates the lowest free frame, or `None` when memory is full.
    pub fn alloc(&mut self) -> Option<FrameNum> {
        let f = *self.free.iter().next()?;
        self.free.remove(&f);
        Some(FrameNum::new(f))
    }

    /// Returns a frame to the free list.
    ///
    /// # Errors
    ///
    /// Returns [`FreeError`] on double free or out-of-range frames.
    pub fn free(&mut self, frame: FrameNum) -> Result<(), FreeError> {
        if frame.raw() >= self.total {
            return Err(FreeError::OutOfRange(frame));
        }
        if !self.free.insert(frame.raw()) {
            return Err(FreeError::NotAllocated(frame));
        }
        Ok(())
    }

    /// Number of frames currently free.
    pub fn free_frames(&self) -> u64 {
        self.free.len() as u64
    }

    /// Total frames managed (including reserved ones never handed out).
    pub fn total_frames(&self) -> u64 {
        self.total
    }

    /// The free list in ascending order, for checkpointing.
    pub fn free_list(&self) -> Vec<u64> {
        self.free.iter().copied().collect()
    }

    /// Replaces the free list with a captured [`FrameAllocator::free_list`]
    /// so the lowest-first allocation sequence continues identically.
    /// `total` is unchanged.
    pub fn restore_free_list(&mut self, free: Vec<u64>) {
        self.free = free.into_iter().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lowest_first() {
        let mut a = FrameAllocator::new(3);
        assert_eq!(a.alloc(), Some(FrameNum::new(0)));
        assert_eq!(a.alloc(), Some(FrameNum::new(1)));
        assert_eq!(a.alloc(), Some(FrameNum::new(2)));
        assert_eq!(a.alloc(), None);
    }

    #[test]
    fn free_and_realloc() {
        let mut a = FrameAllocator::new(2);
        let f0 = a.alloc().unwrap();
        let _f1 = a.alloc().unwrap();
        a.free(f0).unwrap();
        assert_eq!(a.alloc(), Some(f0));
    }

    #[test]
    fn double_free_rejected() {
        let mut a = FrameAllocator::new(2);
        let f = a.alloc().unwrap();
        a.free(f).unwrap();
        assert_eq!(a.free(f), Err(FreeError::NotAllocated(f)));
        assert_eq!(a.free(FrameNum::new(99)), Err(FreeError::OutOfRange(FrameNum::new(99))));
    }

    #[test]
    fn reserved_frames_not_allocated() {
        let mut a = FrameAllocator::with_reserved(8, 4);
        assert_eq!(a.alloc(), Some(FrameNum::new(4)));
        assert_eq!(a.free_frames(), 3);
        assert_eq!(a.total_frames(), 8);
        // Reserved frames can still be explicitly freed into the pool.
        a.free(FrameNum::new(0)).unwrap();
        assert_eq!(a.alloc(), Some(FrameNum::new(0)));
    }

    #[test]
    fn error_display() {
        assert!(FreeError::NotAllocated(FrameNum::new(1)).to_string().contains("double free"));
        assert!(FreeError::OutOfRange(FrameNum::new(1)).to_string().contains("range"));
    }
}
