//! Property-based tests of the two-level page table against a flat
//! HashMap model.

use std::collections::HashMap;

use proptest::prelude::*;
use vmp_types::{Asid, FrameNum, PageSize, VirtPageNum};
use vmp_vm::{AddressSpace, FrameAllocator, Pte};

#[derive(Debug, Clone)]
enum SpaceOp {
    Map(u64, u64),
    Unmap(u64),
    Touch(u64, bool),
}

fn arb_op() -> impl Strategy<Value = SpaceOp> {
    prop_oneof![
        (0u64..500, 0u64..64).prop_map(|(v, f)| SpaceOp::Map(v, f)),
        (0u64..500).prop_map(SpaceOp::Unmap),
        (0u64..500, any::<bool>()).prop_map(|(v, w)| SpaceOp::Touch(v, w)),
    ]
}

proptest! {
    /// The sparse two-level table behaves exactly like a flat map.
    #[test]
    fn space_matches_hashmap_model(ops in proptest::collection::vec(arb_op(), 0..300)) {
        let mut space = AddressSpace::new(Asid::new(1), PageSize::S256);
        let mut model: HashMap<u64, Pte> = HashMap::new();
        for op in ops {
            match op {
                SpaceOp::Map(v, f) => {
                    let pte = Pte::user_rw(FrameNum::new(f));
                    let got = space.map(VirtPageNum::new(v), pte);
                    let want = model.insert(v, pte);
                    prop_assert_eq!(got, want);
                }
                SpaceOp::Unmap(v) => {
                    let got = space.unmap(VirtPageNum::new(v));
                    let want = model.remove(&v);
                    prop_assert_eq!(got, want);
                }
                SpaceOp::Touch(v, w) => {
                    if let Some(pte) = space.translate_mut(VirtPageNum::new(v)) {
                        pte.referenced = true;
                        pte.modified |= w;
                    }
                    if let Some(pte) = model.get_mut(&v) {
                        pte.referenced = true;
                        pte.modified |= w;
                    }
                }
            }
            prop_assert_eq!(space.mapped_pages(), model.len());
        }
        // Full sweep comparison at the end.
        for v in 0..500u64 {
            prop_assert_eq!(
                space.translate(VirtPageNum::new(v)).copied(),
                model.get(&v).copied()
            );
        }
        // Reverse lookup agrees with a scan of the model.
        for f in 0..64u64 {
            let mut want: Vec<u64> = model
                .iter()
                .filter(|(_, pte)| pte.frame == FrameNum::new(f))
                .map(|(&v, _)| v)
                .collect();
            want.sort_unstable();
            let got: Vec<u64> =
                space.reverse_lookup(FrameNum::new(f)).into_iter().map(|v| v.raw()).collect();
            prop_assert_eq!(got, want);
        }
    }

    /// The frame allocator never double-allocates and exactly conserves
    /// its frame count.
    #[test]
    fn allocator_conserves_frames(script in proptest::collection::vec(any::<bool>(), 0..200)) {
        let total = 32u64;
        let mut alloc = FrameAllocator::new(total);
        let mut held: Vec<FrameNum> = Vec::new();
        for take in script {
            if take {
                if let Some(f) = alloc.alloc() {
                    prop_assert!(!held.contains(&f), "double allocation of {f}");
                    held.push(f);
                }
            } else if let Some(f) = held.pop() {
                alloc.free(f).unwrap();
            }
            prop_assert_eq!(alloc.free_frames() + held.len() as u64, total);
        }
    }
}
