//! Deterministic, seeded fault plans for the VMP machine.
//!
//! The paper's robustness claims (§3.2–§3.3) — aborted transactions are
//! retried, dropped interrupt words are repaired by the FIFO-overflow
//! recovery scan, and progress is guaranteed — are only worth anything
//! if the recovery machinery is actually exercised. A [`FaultPlan`]
//! implements [`vmp_bus::FaultHook`] from a single 64-bit seed and a set
//! of per-class [`FaultRates`], perturbing the machine at the
//! bus/monitor/memory boundaries:
//!
//! * **spurious aborts** of retryable acquisitions and notifies (the
//!   issuer's normal retry-with-backoff path must absorb them);
//! * **dropped interrupt words** and **forced FIFO overflows** (the §3.3
//!   recovery scan must rebuild monitor/cache agreement);
//! * **transient block-copier errors** (bounded retry in the copier
//!   path: each failed attempt costs one extra transfer time);
//! * **arbitration stalls** (starvation windows where the arbiter keeps
//!   granting other masters).
//!
//! Same seed + same rates + same workload → bit-identical fault
//! schedule, so any chaos-soak failure replays exactly.
//!
//! The *fault-transparency* contract: a plan built from
//! [`FaultRates::light`]/[`FaultRates::heavy`] may change **when**
//! things happen, never **what** the machine computes. The deliberately
//! out-of-contract [`FaultPlan::broken`] plan (aborts everything,
//! forever) exists to prove the machine's liveness watchdog detects
//! genuine starvation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vmp_bus::{BusTransaction, BusTxKind, FaultHook, InterruptWord};
use vmp_types::{Nanos, ProcessorId};

/// Per-class injection probabilities and magnitudes.
///
/// All probabilities are per *opportunity* (one candidate transaction,
/// one freshly queued word, ...), in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability of spuriously aborting a retryable transaction the
    /// monitors allowed.
    pub abort: f64,
    /// Probability of dropping a newly queued interrupt word (modelled
    /// as a FIFO overflow, so recovery repairs it).
    pub drop_word: f64,
    /// Probability of forcing a monitor's sticky overflow flag without
    /// losing a word (spurious recovery scan).
    pub force_overflow: f64,
    /// Probability that each block-copier attempt fails (attempts are
    /// drawn until one succeeds, so the expected extra transfers are
    /// `copier / (1 - copier)`).
    pub copier: f64,
    /// Probability of an arbitration stall before a transaction.
    pub stall: f64,
    /// Longest injected stall; actual stalls are uniform in
    /// `[1, stall_max]` nanoseconds.
    pub stall_max: Nanos,
}

impl FaultRates {
    /// No injection at all (placebo plan).
    pub const fn none() -> Self {
        FaultRates {
            abort: 0.0,
            drop_word: 0.0,
            force_overflow: 0.0,
            copier: 0.0,
            stall: 0.0,
            stall_max: Nanos::ZERO,
        }
    }

    /// Background radiation: rare faults of every class, the regime a
    /// production machine would actually see.
    pub const fn light() -> Self {
        FaultRates {
            abort: 0.02,
            drop_word: 0.05,
            force_overflow: 0.002,
            copier: 0.02,
            stall: 0.02,
            stall_max: Nanos::from_us(20),
        }
    }

    /// Hostile environment: every class fires often enough that most
    /// transactions see at least one perturbation nearby. Still within
    /// the recovery envelope (abort < 1 keeps retries converging).
    pub const fn heavy() -> Self {
        FaultRates {
            abort: 0.25,
            drop_word: 0.4,
            force_overflow: 0.02,
            copier: 0.2,
            stall: 0.15,
            stall_max: Nanos::from_us(100),
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("abort", self.abort),
            ("drop_word", self.drop_word),
            ("force_overflow", self.force_overflow),
            ("copier", self.copier),
            ("stall", self.stall),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} rate {p} outside [0,1]");
        }
    }
}

/// Counts of faults a plan has injected so far, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionCounts {
    /// Spurious transaction aborts.
    pub aborts: u64,
    /// Interrupt words dropped from monitor FIFOs.
    pub dropped_words: u64,
    /// Sticky overflow flags forced without a drop.
    pub forced_overflows: u64,
    /// Failed block-copier attempts.
    pub copier_failures: u64,
    /// Arbitration stalls.
    pub stalls: u64,
    /// Total injected stall time.
    pub stall_time: Nanos,
}

impl InjectionCounts {
    /// Total faults of all classes.
    pub fn total(&self) -> u64 {
        self.aborts
            + self.dropped_words
            + self.forced_overflows
            + self.copier_failures
            + self.stalls
    }
}

impl fmt::Display for InjectionCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} aborts, {} drops, {} overflows, {} copier, {} stalls ({})",
            self.aborts,
            self.dropped_words,
            self.forced_overflows,
            self.copier_failures,
            self.stalls,
            self.stall_time
        )
    }
}

/// A deterministic fault schedule: seeded RNG + per-class rates.
///
/// # Examples
///
/// ```
/// use vmp_bus::{BusTransaction, BusTxKind, FaultHook};
/// use vmp_faults::{FaultPlan, FaultRates};
/// use vmp_types::{FrameNum, Nanos, ProcessorId};
///
/// let mut plan = FaultPlan::new(42, FaultRates::heavy());
/// let tx = BusTransaction::new(BusTxKind::ReadShared, FrameNum::new(1), ProcessorId::new(0));
/// let mut hits = 0;
/// for _ in 0..1000 {
///     if plan.inject_abort(Nanos::ZERO, &tx) {
///         hits += 1;
///     }
/// }
/// // heavy() aborts ~25% of candidates.
/// assert!((150..350).contains(&hits), "{hits}");
/// assert_eq!(plan.injected().aborts, hits);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    rng: StdRng,
    counts: InjectionCounts,
    /// Copier failures are clamped so one transfer never retries forever
    /// even at rates approaching 1.
    max_copier_failures: u32,
}

/// Hard cap on failed copier attempts per transfer: the "bounded retry"
/// of the copier path.
pub const MAX_COPIER_FAILURES: u32 = 8;

impl FaultPlan {
    /// Builds a plan from a seed and rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]`.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        rates.validate();
        FaultPlan {
            seed,
            rates,
            // Domain-separate the fault stream from workload generators
            // that may share the same user-facing seed.
            rng: StdRng::seed_from_u64(seed ^ 0xfa17_ab0a_7d00_0001),
            counts: InjectionCounts::default(),
            max_copier_failures: MAX_COPIER_FAILURES,
        }
    }

    /// A deliberately *out-of-contract* plan: aborts every retryable
    /// transaction, forever. No machine can make progress under it — its
    /// only purpose is to prove the liveness watchdog actually fires.
    pub fn broken(seed: u64) -> Self {
        FaultPlan::new(seed, FaultRates { abort: 1.0, ..FaultRates::none() })
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Faults injected so far, by class.
    pub fn injected(&self) -> InjectionCounts {
        self.counts
    }
}

/// Byte tag leading a serialized [`FaultPlan`] state, so a plan never
/// accepts another hook type's bytes.
const STATE_TAG: &[u8; 8] = b"VMPFLT\x01\x00";

impl FaultPlan {
    /// Serializes the plan's mutable state — RNG position and injection
    /// counters — as little-endian words behind a type tag. The seed and
    /// rates are *not* included: they are construction parameters, and
    /// restore verifies the receiving plan was built with the same seed.
    fn encode_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 + 4 * 8 + 6 * 8);
        out.extend_from_slice(STATE_TAG);
        out.extend_from_slice(&self.seed.to_le_bytes());
        for word in self.rng.state() {
            out.extend_from_slice(&word.to_le_bytes());
        }
        for v in [
            self.counts.aborts,
            self.counts.dropped_words,
            self.counts.forced_overflows,
            self.counts.copier_failures,
            self.counts.stalls,
            self.counts.stall_time.as_ns(),
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn decode_state(&mut self, state: &[u8]) -> bool {
        let expected_len = 8 + 8 + 4 * 8 + 6 * 8;
        if state.len() != expected_len || &state[..8] != STATE_TAG {
            return false;
        }
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&state[8 + i * 8..16 + i * 8]);
            u64::from_le_bytes(b)
        };
        if word(0) != self.seed {
            return false;
        }
        self.rng = StdRng::from_state([word(1), word(2), word(3), word(4)]);
        self.counts = InjectionCounts {
            aborts: word(5),
            dropped_words: word(6),
            forced_overflows: word(7),
            copier_failures: word(8),
            stalls: word(9),
            stall_time: Nanos::from_ns(word(10)),
        };
        true
    }
}

impl FaultHook for FaultPlan {
    fn arbitration_stall(&mut self, _now: Nanos, _tx: &BusTransaction) -> Nanos {
        if self.rates.stall > 0.0 && self.rng.random_bool(self.rates.stall) {
            let max = self.rates.stall_max.as_ns().max(1);
            let stall = Nanos::from_ns(self.rng.random_range(1..=max));
            self.counts.stalls += 1;
            self.counts.stall_time += stall;
            stall
        } else {
            Nanos::ZERO
        }
    }

    fn inject_abort(&mut self, _now: Nanos, _tx: &BusTransaction) -> bool {
        if self.rates.abort > 0.0 && self.rng.random_bool(self.rates.abort) {
            self.counts.aborts += 1;
            true
        } else {
            false
        }
    }

    fn drop_interrupt_word(
        &mut self,
        _now: Nanos,
        _observer: ProcessorId,
        _word: &InterruptWord,
    ) -> bool {
        if self.rates.drop_word > 0.0 && self.rng.random_bool(self.rates.drop_word) {
            self.counts.dropped_words += 1;
            true
        } else {
            false
        }
    }

    fn force_overflow(&mut self, _now: Nanos, _observer: ProcessorId) -> bool {
        if self.rates.force_overflow > 0.0 && self.rng.random_bool(self.rates.force_overflow) {
            self.counts.forced_overflows += 1;
            true
        } else {
            false
        }
    }

    fn copier_failures(&mut self, _now: Nanos, tx: &BusTransaction) -> u32 {
        // Block transfers (page moves) and plain DMA streams occupy the
        // copier; control cycles (assert-ownership, notify, ...) do not.
        let moves_data = tx.kind.is_block_transfer()
            || matches!(tx.kind, BusTxKind::PlainRead | BusTxKind::PlainWrite);
        if self.rates.copier <= 0.0 || !moves_data {
            return 0;
        }
        let mut failures = 0;
        while failures < self.max_copier_failures && self.rng.random_bool(self.rates.copier) {
            failures += 1;
        }
        self.counts.copier_failures += u64::from(failures);
        failures
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.encode_state())
    }

    fn restore_state(&mut self, state: &[u8]) -> bool {
        self.decode_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_bus::BusTxKind;
    use vmp_types::FrameNum;

    fn tx(kind: BusTxKind) -> BusTransaction {
        BusTransaction::new(kind, FrameNum::new(3), ProcessorId::new(1))
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::new(7, FaultRates::heavy());
        let mut b = FaultPlan::new(7, FaultRates::heavy());
        for i in 0..500 {
            let t = tx(BusTxKind::ReadPrivate);
            let now = Nanos::from_ns(i);
            assert_eq!(a.inject_abort(now, &t), b.inject_abort(now, &t));
            assert_eq!(a.arbitration_stall(now, &t), b.arbitration_stall(now, &t));
            assert_eq!(a.copier_failures(now, &t), b.copier_failures(now, &t));
        }
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::new(1, FaultRates::heavy());
        let mut b = FaultPlan::new(2, FaultRates::heavy());
        let t = tx(BusTxKind::ReadShared);
        let draws_a: Vec<bool> = (0..64).map(|_| a.inject_abort(Nanos::ZERO, &t)).collect();
        let draws_b: Vec<bool> = (0..64).map(|_| b.inject_abort(Nanos::ZERO, &t)).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn none_rates_inject_nothing() {
        let mut p = FaultPlan::new(99, FaultRates::none());
        let t = tx(BusTxKind::ReadPrivate);
        let w = InterruptWord { kind: t.kind, frame: t.frame, issuer: t.issuer };
        for _ in 0..200 {
            assert!(!p.inject_abort(Nanos::ZERO, &t));
            assert_eq!(p.arbitration_stall(Nanos::ZERO, &t), Nanos::ZERO);
            assert!(!p.drop_interrupt_word(Nanos::ZERO, ProcessorId::new(0), &w));
            assert!(!p.force_overflow(Nanos::ZERO, ProcessorId::new(0)));
            assert_eq!(p.copier_failures(Nanos::ZERO, &t), 0);
        }
        assert_eq!(p.injected().total(), 0);
    }

    #[test]
    fn broken_plan_aborts_everything() {
        let mut p = FaultPlan::broken(0);
        let t = tx(BusTxKind::AssertOwnership);
        for _ in 0..100 {
            assert!(p.inject_abort(Nanos::ZERO, &t));
        }
        assert_eq!(p.injected().aborts, 100);
        assert_eq!(p.injected().dropped_words, 0);
    }

    #[test]
    fn copier_failures_bounded_and_block_only() {
        let mut p = FaultPlan::new(5, FaultRates { copier: 1.0, ..FaultRates::none() });
        assert_eq!(
            p.copier_failures(Nanos::ZERO, &tx(BusTxKind::ReadShared)),
            MAX_COPIER_FAILURES,
            "copier rate 1.0 saturates at the bound"
        );
        assert_eq!(
            p.copier_failures(Nanos::ZERO, &tx(BusTxKind::Notify)),
            0,
            "control cycles have no copier"
        );
        assert_eq!(
            p.copier_failures(Nanos::ZERO, &tx(BusTxKind::PlainWrite)),
            MAX_COPIER_FAILURES,
            "DMA streams go through the copier too"
        );
    }

    #[test]
    fn stalls_respect_ceiling() {
        let rates = FaultRates { stall: 1.0, stall_max: Nanos::from_ns(500), ..FaultRates::none() };
        let mut p = FaultPlan::new(11, rates);
        for _ in 0..200 {
            let s = p.arbitration_stall(Nanos::ZERO, &tx(BusTxKind::ReadShared));
            assert!(s > Nanos::ZERO && s <= Nanos::from_ns(500), "{s}");
        }
        assert_eq!(p.injected().stalls, 200);
    }

    #[test]
    fn rates_validated() {
        let r = FaultRates { abort: 1.5, ..FaultRates::none() };
        assert!(std::panic::catch_unwind(|| FaultPlan::new(0, r)).is_err());
    }

    #[test]
    fn counts_display() {
        let c = InjectionCounts { aborts: 2, stalls: 1, ..InjectionCounts::default() };
        let s = c.to_string();
        assert!(s.contains("2 aborts") && s.contains("1 stalls"));
        assert_eq!(c.total(), 3);
    }
}
