//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the `rand` 0.10 API its code actually uses:
//! [`Rng`], [`RngExt`] (`random`, `random_range`, `random_bool`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The generator
//! is xoshiro256** seeded through SplitMix64 — fast, well-distributed,
//! and fully deterministic across platforms, which is all the seeded
//! synthetic workloads require. The exact stream differs from upstream
//! `rand`'s ChaCha-based `StdRng`, so absolute trace statistics shift
//! slightly from values produced with the real crate; every consumer in
//! this repository treats those statistics as calibration targets, not
//! golden values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a uniformly random value of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool needs p in [0,1], got {p}");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Random {
    /// Draws one uniformly random value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`RngExt::random_range`] can sample `T` from.
pub trait SampleRange<T> {
    /// Draws one uniformly random element of the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer primitives usable as [`SampleRange`] elements.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to `i128` (lossless for every primitive int).
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (the value is known to be in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end.to_i128() - self.start.to_i128()) as u128;
        let offset = uniform_u128(rng, span);
        T::from_i128(self.start.to_i128() + offset as i128)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = (end.to_i128() - start.to_i128()) as u128 + 1;
        let offset = uniform_u128(rng, span);
        T::from_i128(start.to_i128() + offset as i128)
    }
}

/// Uniform value in `[0, span)` by widening multiplication (Lemire's
/// method without the rejection step: the bias is < 2⁻⁶⁴, far below
/// anything the synthetic workloads can resolve).
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        (rng.next_u64() as u128 * span) >> 64
    } else {
        rng.next_u64() as u128 % span
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{RngExt, SeedableRng};
    ///
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The generator's full internal state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a captured [`StdRng::state`]; the
        /// restored stream continues exactly where the original left
        /// off. The all-zero state (a xoshiro fixed point, never
        /// produced by seeding) is nudged the same way `from_seed` does.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; nudge it.
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(1986);
        let mut b = StdRng::seed_from_u64(1986);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-8i64..=8);
            assert!((-8..=8).contains(&w));
            let z = rng.random_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits} hits at p=0.25");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
