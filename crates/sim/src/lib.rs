//! Deterministic discrete-event simulation engine for the VMP machine model.
//!
//! The engine is deliberately minimal: a time-ordered, insertion-stable
//! [`EventQueue`] plus statistics utilities ([`BusyTracker`], [`Histogram`],
//! [`RateEstimator`]). The machine model in `vmp-core` defines its own event
//! enum and owns all component state, which keeps the borrow structure
//! simple and the simulation perfectly reproducible: identical inputs and
//! seeds produce identical event orders.
//!
//! # Examples
//!
//! ```
//! use vmp_sim::EventQueue;
//! use vmp_types::Nanos;
//!
//! let mut q = EventQueue::new();
//! q.schedule(Nanos::from_ns(30), "late");
//! q.schedule(Nanos::from_ns(10), "early");
//! q.schedule(Nanos::from_ns(10), "early-second"); // FIFO among equal times
//!
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t.as_ns(), e), (10, "early"));
//! let (_, e) = q.pop().unwrap();
//! assert_eq!(e, "early-second");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attention;
mod queue;
mod stats;

pub use attention::AttentionClock;
pub use queue::EventQueue;
pub use stats::{BusyTracker, Histogram, Log2Histogram, RateEstimator, Summary};
