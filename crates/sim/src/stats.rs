//! Statistics utilities for simulation runs.

use std::fmt;

use vmp_types::Nanos;

/// Tracks the total time a single-server resource (the VMEbus, a block
/// copier) spends busy, for utilization reports.
///
/// # Examples
///
/// ```
/// use vmp_sim::BusyTracker;
/// use vmp_types::Nanos;
///
/// let mut bus = BusyTracker::new();
/// bus.add_busy(Nanos::from_ns(300));
/// bus.add_busy(Nanos::from_ns(700));
/// assert_eq!(bus.busy(), Nanos::from_us(1));
/// assert!((bus.utilization(Nanos::from_us(10)) - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusyTracker {
    busy: Nanos,
    intervals: u64,
}

impl BusyTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one busy interval of the given length.
    pub fn add_busy(&mut self, duration: Nanos) {
        self.busy += duration;
        self.intervals += 1;
    }

    /// Total accumulated busy time.
    pub fn busy(&self) -> Nanos {
        self.busy
    }

    /// Number of busy intervals recorded.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Fraction of `elapsed` the resource was busy (0 when `elapsed` is 0).
    pub fn utilization(&self, elapsed: Nanos) -> f64 {
        if elapsed == Nanos::ZERO {
            0.0
        } else {
            self.busy.as_ns() as f64 / elapsed.as_ns() as f64
        }
    }

    /// Rebuilds a tracker from captured [`BusyTracker::busy`] and
    /// [`BusyTracker::intervals`] values, for checkpoint restore.
    pub fn restore(busy: Nanos, intervals: u64) -> Self {
        BusyTracker { busy, intervals }
    }
}

/// A fixed-bucket histogram of nanosecond durations (e.g. miss latencies,
/// bus-acquisition waits).
///
/// Buckets are linear with a configurable width; values beyond the last
/// bucket land in an overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: Nanos,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: Nanos,
    max: Nanos,
}

impl Histogram {
    /// Creates a histogram with `buckets` linear buckets of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: Nanos, buckets: usize) -> Self {
        assert!(bucket_width > Nanos::ZERO, "bucket width must be non-zero");
        assert!(buckets > 0, "bucket count must be non-zero");
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum: Nanos::ZERO,
            max: Nanos::ZERO,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: Nanos) {
        let idx = (value.as_ns() / self.bucket_width.as_ns()) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all samples (zero when empty).
    pub fn mean(&self) -> Nanos {
        if self.total == 0 {
            Nanos::ZERO
        } else {
            self.sum / self.total
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Samples that exceeded the bucketed range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate p-th percentile (0.0–1.0) from bucket boundaries.
    ///
    /// Returns the upper edge of the bucket containing the percentile, or
    /// the maximum for samples in the overflow bucket. Returns zero when
    /// empty.
    pub fn percentile(&self, p: f64) -> Nanos {
        if self.total == 0 {
            return Nanos::ZERO;
        }
        let target = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_width * (i as u64 + 1);
            }
        }
        self.max
    }

    /// Complete internal state for checkpointing, as
    /// `(bucket_width, counts, overflow, total, sum, max)`.
    pub fn state(&self) -> (Nanos, Vec<u64>, u64, u64, Nanos, Nanos) {
        (self.bucket_width, self.counts.clone(), self.overflow, self.total, self.sum, self.max)
    }

    /// Rebuilds a histogram from a captured [`Histogram::state`] tuple.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `counts` is empty (the same
    /// invariants [`Histogram::new`] enforces).
    pub fn restore(
        bucket_width: Nanos,
        counts: Vec<u64>,
        overflow: u64,
        total: u64,
        sum: Nanos,
        max: Nanos,
    ) -> Self {
        assert!(bucket_width > Nanos::ZERO, "bucket width must be non-zero");
        assert!(!counts.is_empty(), "bucket count must be non-zero");
        Histogram { bucket_width, counts, overflow, total, sum, max }
    }
}

/// A log2-bucketed histogram of nanosecond durations, for latency
/// distributions that span several orders of magnitude (miss service
/// times, interrupt latencies, bus arbitration waits).
///
/// Bucket 0 holds the exact value 0; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`. Values at or beyond `2^(buckets-1)` land in an
/// overflow bucket that is still included in `count`, `mean`, `max`
/// and `percentile`, so no sample is silently lost.
///
/// # Examples
///
/// ```
/// use vmp_sim::Log2Histogram;
/// use vmp_types::Nanos;
///
/// let mut h = Log2Histogram::new(16);
/// h.record(Nanos::ZERO);
/// h.record(Nanos::from_ns(5));
/// h.record(Nanos::from_ns(1_000_000)); // past 2^15 ns: overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.bucket_bounds(3), (Nanos::from_ns(4), Nanos::from_ns(8)));
/// ```
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u128,
    max: Nanos,
}

impl Log2Histogram {
    /// Creates a histogram with `buckets` log2 buckets (plus the
    /// overflow bucket). Bucket `buckets - 1` tops out at
    /// `2^(buckets-1)` ns, so 40 buckets cover up to ~9 minutes.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or exceeds 65 (bucket 64 would top
    /// out beyond the range of `u64` nanoseconds).
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "bucket count must be non-zero");
        assert!(buckets <= 65, "at most 65 log2 buckets are meaningful for u64 ns");
        Log2Histogram { counts: vec![0; buckets], overflow: 0, total: 0, sum: 0, max: Nanos::ZERO }
    }

    /// Index of the bucket a value falls into: 0 for the value 0,
    /// otherwise `floor(log2(ns)) + 1`.
    fn bucket_index(value: Nanos) -> usize {
        let ns = value.as_ns();
        if ns == 0 {
            0
        } else {
            64 - ns.leading_zeros() as usize
        }
    }

    /// Half-open range `[lo, hi)` covered by bucket `index` (bucket 0
    /// covers exactly `[0, 1)`). `hi` saturates at `u64::MAX` ns for
    /// bucket 64.
    pub fn bucket_bounds(&self, index: usize) -> (Nanos, Nanos) {
        if index == 0 {
            (Nanos::ZERO, Nanos::from_ns(1))
        } else {
            let lo = 1u64 << (index - 1);
            let hi = if index >= 64 { u64::MAX } else { 1u64 << index };
            (Nanos::from_ns(lo), Nanos::from_ns(hi))
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: Nanos) {
        let idx = Self::bucket_index(value);
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += value.as_ns() as u128;
        self.max = self.max.max(value);
    }

    /// Number of configured buckets (not counting the overflow bucket).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Samples in bucket `index`.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all samples (zero when empty, saturating on overflow).
    pub fn mean(&self) -> Nanos {
        if self.total == 0 {
            Nanos::ZERO
        } else {
            Nanos::from_ns(u64::try_from(self.sum / self.total as u128).unwrap_or(u64::MAX))
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Samples that landed past the last configured bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate p-th percentile (0.0–1.0): the upper edge of the
    /// bucket containing the percentile, clamped to the maximum sample;
    /// overflow samples report the maximum. Returns zero when empty.
    pub fn percentile(&self, p: f64) -> Nanos {
        if self.total == 0 {
            return Nanos::ZERO;
        }
        let target = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target && c > 0 {
                return self.bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }
}

/// Online mean/variance estimator for dimensionless rates and ratios
/// (miss ratios, speedups), using Welford's algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct RateEstimator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RateEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        RateEstimator { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Returns a snapshot of the accumulated statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: if self.n == 0 { 0.0 } else { self.mean },
            stddev: if self.n < 2 { 0.0 } else { (self.m2 / (self.n - 1) as f64).sqrt() },
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }
}

/// Snapshot of a [`RateEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub stddev: f64,
    /// Minimum observation (0 when empty).
    pub min: f64,
    /// Maximum observation (0 when empty).
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n, self.mean, self.stddev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_tracker_accumulates() {
        let mut t = BusyTracker::new();
        assert_eq!(t.utilization(Nanos::from_us(1)), 0.0);
        t.add_busy(Nanos::from_ns(250));
        t.add_busy(Nanos::from_ns(250));
        assert_eq!(t.busy(), Nanos::from_ns(500));
        assert_eq!(t.intervals(), 2);
        assert!((t.utilization(Nanos::from_us(1)) - 0.5).abs() < 1e-12);
        assert_eq!(t.utilization(Nanos::ZERO), 0.0);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new(Nanos::from_ns(10), 10);
        for ns in [5, 15, 15, 95, 250] {
            h.record(Nanos::from_ns(ns));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.overflow(), 1); // 250 is past 10 buckets of 10 ns
        assert_eq!(h.max(), Nanos::from_ns(250));
        assert_eq!(h.mean(), Nanos::from_ns((5 + 15 + 15 + 95 + 250) / 5));
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(Nanos::from_ns(10), 100);
        for i in 1..=100 {
            h.record(Nanos::from_ns(i * 10 - 5)); // buckets 0..100
        }
        assert_eq!(h.percentile(0.5), Nanos::from_ns(500));
        assert_eq!(h.percentile(1.0), Nanos::from_ns(1000));
        assert_eq!(Histogram::new(Nanos::from_ns(1), 1).percentile(0.5), Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::new(Nanos::ZERO, 4);
    }

    #[test]
    fn log2_histogram_bucketing_edges() {
        let mut h = Log2Histogram::new(65);
        h.record(Nanos::ZERO);
        h.record(Nanos::from_ns(1));
        h.record(Nanos::from_ns(2));
        h.record(Nanos::from_ns(3));
        h.record(Nanos::from_ns(u64::MAX));
        assert_eq!(h.bucket_count(0), 1); // exactly 0
        assert_eq!(h.bucket_count(1), 1); // [1, 2)
        assert_eq!(h.bucket_count(2), 2); // [2, 4)
        assert_eq!(h.bucket_count(64), 1); // u64::MAX in the top bucket
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), Nanos::from_ns(u64::MAX));
        // The u128 sum keeps the mean exact even with a u64::MAX sample.
        assert_eq!(h.mean(), Nanos::from_ns(((u64::MAX as u128 + 6) / 5) as u64));
        assert_eq!(h.bucket_bounds(0), (Nanos::ZERO, Nanos::from_ns(1)));
        assert_eq!(h.bucket_bounds(64).1, Nanos::from_ns(u64::MAX));
    }

    #[test]
    fn log2_histogram_overflow_and_percentiles() {
        let mut h = Log2Histogram::new(4); // buckets cover [0, 8)
        for ns in [0, 1, 2, 4, 7, 8, 1_000] {
            h.record(Nanos::from_ns(ns));
        }
        assert_eq!(h.overflow(), 2); // 8 and 1000 are past 2^3
        assert_eq!(h.count(), 7);
        assert_eq!(h.percentile(1.0), Nanos::from_ns(1_000));
        // p50 lands in bucket 3 ([4, 8)): upper edge 8, clamped to max.
        assert_eq!(h.percentile(0.5), Nanos::from_ns(8));
        assert_eq!(Log2Histogram::new(4).percentile(0.5), Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "bucket count")]
    fn log2_histogram_rejects_zero_buckets() {
        let _ = Log2Histogram::new(0);
    }

    #[test]
    fn rate_estimator_welford() {
        let mut r = RateEstimator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.record(x);
        }
        let s = r.summary();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = RateEstimator::new().summary();
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.stddev, 0.0);
        assert!(!s.to_string().is_empty());
    }
}
