//! Statistics utilities for simulation runs.

use std::fmt;

use vmp_types::Nanos;

/// Tracks the total time a single-server resource (the VMEbus, a block
/// copier) spends busy, for utilization reports.
///
/// # Examples
///
/// ```
/// use vmp_sim::BusyTracker;
/// use vmp_types::Nanos;
///
/// let mut bus = BusyTracker::new();
/// bus.add_busy(Nanos::from_ns(300));
/// bus.add_busy(Nanos::from_ns(700));
/// assert_eq!(bus.busy(), Nanos::from_us(1));
/// assert!((bus.utilization(Nanos::from_us(10)) - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusyTracker {
    busy: Nanos,
    intervals: u64,
}

impl BusyTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one busy interval of the given length.
    pub fn add_busy(&mut self, duration: Nanos) {
        self.busy += duration;
        self.intervals += 1;
    }

    /// Total accumulated busy time.
    pub fn busy(&self) -> Nanos {
        self.busy
    }

    /// Number of busy intervals recorded.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Fraction of `elapsed` the resource was busy (0 when `elapsed` is 0).
    pub fn utilization(&self, elapsed: Nanos) -> f64 {
        if elapsed == Nanos::ZERO {
            0.0
        } else {
            self.busy.as_ns() as f64 / elapsed.as_ns() as f64
        }
    }
}

/// A fixed-bucket histogram of nanosecond durations (e.g. miss latencies,
/// bus-acquisition waits).
///
/// Buckets are linear with a configurable width; values beyond the last
/// bucket land in an overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: Nanos,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: Nanos,
    max: Nanos,
}

impl Histogram {
    /// Creates a histogram with `buckets` linear buckets of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: Nanos, buckets: usize) -> Self {
        assert!(bucket_width > Nanos::ZERO, "bucket width must be non-zero");
        assert!(buckets > 0, "bucket count must be non-zero");
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum: Nanos::ZERO,
            max: Nanos::ZERO,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: Nanos) {
        let idx = (value.as_ns() / self.bucket_width.as_ns()) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all samples (zero when empty).
    pub fn mean(&self) -> Nanos {
        if self.total == 0 {
            Nanos::ZERO
        } else {
            self.sum / self.total
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Samples that exceeded the bucketed range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate p-th percentile (0.0–1.0) from bucket boundaries.
    ///
    /// Returns the upper edge of the bucket containing the percentile, or
    /// the maximum for samples in the overflow bucket. Returns zero when
    /// empty.
    pub fn percentile(&self, p: f64) -> Nanos {
        if self.total == 0 {
            return Nanos::ZERO;
        }
        let target = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_width * (i as u64 + 1);
            }
        }
        self.max
    }
}

/// Online mean/variance estimator for dimensionless rates and ratios
/// (miss ratios, speedups), using Welford's algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct RateEstimator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RateEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        RateEstimator { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Returns a snapshot of the accumulated statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: if self.n == 0 { 0.0 } else { self.mean },
            stddev: if self.n < 2 { 0.0 } else { (self.m2 / (self.n - 1) as f64).sqrt() },
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }
}

/// Snapshot of a [`RateEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub stddev: f64,
    /// Minimum observation (0 when empty).
    pub min: f64,
    /// Maximum observation (0 when empty).
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n, self.mean, self.stddev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_tracker_accumulates() {
        let mut t = BusyTracker::new();
        assert_eq!(t.utilization(Nanos::from_us(1)), 0.0);
        t.add_busy(Nanos::from_ns(250));
        t.add_busy(Nanos::from_ns(250));
        assert_eq!(t.busy(), Nanos::from_ns(500));
        assert_eq!(t.intervals(), 2);
        assert!((t.utilization(Nanos::from_us(1)) - 0.5).abs() < 1e-12);
        assert_eq!(t.utilization(Nanos::ZERO), 0.0);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new(Nanos::from_ns(10), 10);
        for ns in [5, 15, 15, 95, 250] {
            h.record(Nanos::from_ns(ns));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.overflow(), 1); // 250 is past 10 buckets of 10 ns
        assert_eq!(h.max(), Nanos::from_ns(250));
        assert_eq!(h.mean(), Nanos::from_ns((5 + 15 + 15 + 95 + 250) / 5));
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(Nanos::from_ns(10), 100);
        for i in 1..=100 {
            h.record(Nanos::from_ns(i * 10 - 5)); // buckets 0..100
        }
        assert_eq!(h.percentile(0.5), Nanos::from_ns(500));
        assert_eq!(h.percentile(1.0), Nanos::from_ns(1000));
        assert_eq!(Histogram::new(Nanos::from_ns(1), 1).percentile(0.5), Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::new(Nanos::ZERO, 4);
    }

    #[test]
    fn rate_estimator_welford() {
        let mut r = RateEstimator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.record(x);
        }
        let s = r.summary();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = RateEstimator::new().summary();
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.stddev, 0.0);
        assert!(!s.to_string().is_empty());
    }
}
