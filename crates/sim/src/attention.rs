//! Starvation instrumentation: how long has a condition been waiting?

use vmp_types::Nanos;

/// Tracks the onset of a condition that needs service (pending interrupt
/// words, an unserviced overflow flag, a starving requester) and answers
/// "how long has it been waiting?" — the primitive under a liveness
/// watchdog.
///
/// The clock is level-triggered: [`AttentionClock::note`] arms it only
/// if it is not already armed (the *oldest* unserviced onset matters),
/// and [`AttentionClock::clear`] disarms it once the condition is fully
/// serviced.
///
/// # Examples
///
/// ```
/// use vmp_sim::AttentionClock;
/// use vmp_types::Nanos;
///
/// let mut clock = AttentionClock::new();
/// clock.note(Nanos::from_us(10));
/// clock.note(Nanos::from_us(25)); // already armed: onset unchanged
/// assert_eq!(clock.waiting(Nanos::from_us(30)), Some(Nanos::from_us(20)));
/// assert!(clock.exceeded(Nanos::from_us(31), Nanos::from_us(20)));
/// clock.clear();
/// assert_eq!(clock.waiting(Nanos::from_us(40)), None);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttentionClock {
    since: Option<Nanos>,
}

impl AttentionClock {
    /// Creates a disarmed clock.
    pub fn new() -> Self {
        AttentionClock::default()
    }

    /// Arms the clock at `now` unless it is already armed.
    pub fn note(&mut self, now: Nanos) {
        if self.since.is_none() {
            self.since = Some(now);
        }
    }

    /// Disarms the clock (the condition was serviced).
    pub fn clear(&mut self) {
        self.since = None;
    }

    /// When the condition first needed attention, if it still does.
    pub fn since(&self) -> Option<Nanos> {
        self.since
    }

    /// How long the condition has been waiting at `now`; `None` when
    /// disarmed.
    pub fn waiting(&self, now: Nanos) -> Option<Nanos> {
        self.since.map(|s| now.saturating_sub(s))
    }

    /// Whether the condition has waited *strictly longer* than `limit`.
    pub fn exceeded(&self, now: Nanos, limit: Nanos) -> bool {
        self.waiting(now).is_some_and(|w| w > limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_once_and_measures() {
        let mut c = AttentionClock::new();
        assert_eq!(c.waiting(Nanos::from_us(5)), None);
        assert!(!c.exceeded(Nanos::from_us(5), Nanos::ZERO));
        c.note(Nanos::from_us(1));
        c.note(Nanos::from_us(3));
        assert_eq!(c.since(), Some(Nanos::from_us(1)));
        assert_eq!(c.waiting(Nanos::from_us(4)), Some(Nanos::from_us(3)));
    }

    #[test]
    fn boundary_is_strict() {
        let mut c = AttentionClock::new();
        c.note(Nanos::ZERO);
        assert!(!c.exceeded(Nanos::from_us(10), Nanos::from_us(10)));
        assert!(c.exceeded(Nanos::from_us(10) + Nanos::from_ns(1), Nanos::from_us(10)));
    }

    #[test]
    fn clear_disarms_and_rearms_fresh() {
        let mut c = AttentionClock::new();
        c.note(Nanos::from_us(1));
        c.clear();
        assert_eq!(c.since(), None);
        c.note(Nanos::from_us(9));
        assert_eq!(c.since(), Some(Nanos::from_us(9)));
    }

    #[test]
    fn waiting_saturates_before_onset() {
        let mut c = AttentionClock::new();
        c.note(Nanos::from_us(10));
        // A query "before" the onset (clock skew in callers) saturates
        // to zero rather than underflowing.
        assert_eq!(c.waiting(Nanos::from_us(5)), Some(Nanos::ZERO));
    }
}
