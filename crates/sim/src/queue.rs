//! Time-ordered, insertion-stable event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vmp_types::Nanos;

/// A deterministic future-event list.
///
/// Events are delivered in nondecreasing time order; events scheduled for
/// the *same* time are delivered in the order they were scheduled (FIFO).
/// That stability is what makes whole-machine simulations reproducible:
/// a `BinaryHeap` alone would break ties arbitrarily.
///
/// # Examples
///
/// ```
/// use vmp_sim::EventQueue;
/// use vmp_types::Nanos;
///
/// let mut q: EventQueue<u32> = EventQueue::new();
/// assert!(q.is_empty());
/// q.schedule(Nanos::from_ns(5), 1);
/// q.schedule_after(Nanos::from_ns(5), Nanos::from_ns(0), 2);
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.peek_time(), Some(Nanos::from_ns(5)));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    key: Reverse<(Nanos, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` at absolute simulated time `at`.
    pub fn schedule(&mut self, at: Nanos, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { key: Reverse((at, seq)), event });
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, now: Nanos, delay: Nanos, event: E) {
        self.schedule(now + delay, event);
    }

    /// Removes and returns the earliest event with its timestamp.
    ///
    /// Among events with equal timestamps, the earliest-scheduled one is
    /// returned first.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| {
            let Reverse((t, _)) = e.key;
            (t, e.event)
        })
    }

    /// Removes and returns the earliest event iff its timestamp is at or
    /// before `deadline`.
    ///
    /// Equivalent to `peek_time` + `pop` but with a single heap descent,
    /// which matters in `run_until`-style dispatch loops where it runs
    /// once per delivered event. FIFO tie-breaking is unchanged: the
    /// heap order is untouched, only the removal is fused.
    pub fn pop_if_at_or_before(&mut self, deadline: Nanos) -> Option<(Nanos, E)> {
        let entry = self.heap.peek_mut()?;
        let Reverse((t, _)) = entry.key;
        if t > deadline {
            return None;
        }
        let entry = std::collections::binary_heap::PeekMut::pop(entry);
        Some((t, entry.event))
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| {
            let Reverse((t, _)) = e.key;
            t
        })
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Every pending entry as `(time, sequence, event)`, sorted by
    /// delivery order. The sequence numbers are the queue's internal
    /// FIFO tie-breakers; feed the list to [`EventQueue::restore`] to
    /// rebuild an identical queue.
    pub fn entries(&self) -> Vec<(Nanos, u64, E)>
    where
        E: Clone,
    {
        let mut out: Vec<(Nanos, u64, E)> = self
            .heap
            .iter()
            .map(|e| {
                let Reverse((t, seq)) = e.key;
                (t, seq, e.event.clone())
            })
            .collect();
        out.sort_by_key(|&(t, seq, _)| (t, seq));
        out
    }

    /// The next sequence number the queue will assign.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Rebuilds a queue from a captured [`EventQueue::entries`] list and
    /// [`EventQueue::next_seq`] counter, preserving every entry's
    /// original tie-breaker so delivery order is bit-identical.
    pub fn restore(next_seq: u64, entries: Vec<(Nanos, u64, E)>) -> Self {
        let heap = entries
            .into_iter()
            .map(|(t, seq, event)| Entry { key: Reverse((t, seq)), event })
            .collect();
        EventQueue { heap, seq: next_seq }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_ns(30), 'c');
        q.schedule(Nanos::from_ns(10), 'a');
        q.schedule(Nanos::from_ns(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_and_times() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_ns(5), "t5-first");
        q.schedule(Nanos::from_ns(3), "t3");
        q.schedule(Nanos::from_ns(5), "t5-second");
        assert_eq!(q.pop().unwrap().1, "t3");
        assert_eq!(q.pop().unwrap().1, "t5-first");
        assert_eq!(q.pop().unwrap().1, "t5-second");
        assert!(q.pop().is_none());
    }

    #[test]
    fn schedule_after_adds_delay() {
        let mut q = EventQueue::new();
        q.schedule_after(Nanos::from_ns(100), Nanos::from_ns(50), ());
        assert_eq!(q.peek_time(), Some(Nanos::from_ns(150)));
    }

    #[test]
    fn len_clear_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Nanos::ZERO, 0);
        q.schedule(Nanos::ZERO, 1);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_if_at_or_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_ns(10), 'a');
        q.schedule(Nanos::from_ns(20), 'b');
        assert_eq!(q.pop_if_at_or_before(Nanos::from_ns(5)), None);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_if_at_or_before(Nanos::from_ns(10)), Some((Nanos::from_ns(10), 'a')));
        assert_eq!(q.pop_if_at_or_before(Nanos::from_ns(15)), None);
        assert_eq!(q.pop_if_at_or_before(Nanos::from_ns(100)), Some((Nanos::from_ns(20), 'b')));
        assert_eq!(q.pop_if_at_or_before(Nanos::from_ns(100)), None);
    }

    #[test]
    fn pop_if_at_or_before_keeps_fifo_ties() {
        // The fused peek+pop must deliver equal-time events in schedule
        // order, exactly like peek_time + pop did.
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos::from_ns(7), i);
        }
        let order: Vec<i32> =
            std::iter::from_fn(|| q.pop_if_at_or_before(Nanos::from_ns(7)).map(|(_, e)| e))
                .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_if_matches_peek_then_pop() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for i in 0..50u32 {
            let t = Nanos::from_ns(u64::from(i % 7) * 3);
            a.schedule(t, i);
            b.schedule(t, i);
        }
        let deadline = Nanos::from_ns(12);
        loop {
            let via_fused = a.pop_if_at_or_before(deadline);
            let via_peek = match b.peek_time() {
                Some(t) if t <= deadline => b.pop(),
                _ => None,
            };
            assert_eq!(via_fused, via_peek);
            if via_fused.is_none() {
                break;
            }
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn pop_returns_timestamp() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_us(2), 9u8);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, Nanos::from_us(2));
        assert_eq!(e, 9);
    }
}
