//! Property-based tests of the event queue: total order, stability, and
//! equivalence with a sort-based model.

use proptest::prelude::*;
use vmp_sim::EventQueue;
use vmp_types::Nanos;

proptest! {
    /// Popping returns events in nondecreasing time order with FIFO
    /// tie-breaking — exactly a stable sort by time.
    #[test]
    fn matches_stable_sort(times in proptest::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos::from_ns(t), i);
        }
        let mut model: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        model.sort_by_key(|&(t, _)| t); // stable: preserves insertion order per time
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_ns(), e))).collect();
        prop_assert_eq!(got, model);
    }

    /// Interleaved schedule/pop never yields an event earlier than one
    /// already delivered.
    #[test]
    fn monotone_delivery_under_interleaving(
        script in proptest::collection::vec((any::<bool>(), 0u64..1000), 1..300)
    ) {
        let mut q = EventQueue::new();
        let mut last_popped: Option<u64> = None;
        let mut floor = 0u64; // schedule at max(t, last_popped) to stay causal
        for (i, &(push, t)) in script.iter().enumerate() {
            if push {
                let at = t.max(floor);
                q.schedule(Nanos::from_ns(at), i);
            } else if let Some((t, _)) = q.pop() {
                let t = t.as_ns();
                if let Some(prev) = last_popped {
                    prop_assert!(t >= prev, "delivery went backwards: {prev} then {t}");
                }
                last_popped = Some(t);
                floor = t;
            }
        }
    }

    /// len/is_empty bookkeeping is exact.
    #[test]
    fn length_bookkeeping(n in 0usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(Nanos::from_ns(i as u64), i);
        }
        prop_assert_eq!(q.len(), n);
        prop_assert_eq!(q.is_empty(), n == 0);
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, n);
        prop_assert!(q.is_empty());
    }
}
