//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`],
//! [`criterion_group!`] and [`criterion_main!`] — measured with plain
//! `std::time::Instant` wall clocks. No statistics engine: each bench
//! reports min / mean / max over `sample_size` timed runs.
//!
//! Passing `--test` (as `cargo bench -- --test` does for smoke runs)
//! switches to a single verification iteration per benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// the shim re-runs setup per iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 20, test_mode }
    }
}

impl Criterion {
    /// Sets how many timed runs each benchmark performs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        let mut bencher = Bencher { durations: Vec::with_capacity(samples) };
        for _ in 0..samples {
            f(&mut bencher);
        }
        report(name, &bencher.durations, self.test_mode);
        self
    }
}

/// Passed to each benchmark closure; times the measured section.
pub struct Bencher {
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times one run of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.durations.push(start.elapsed());
    }

    /// Times one run of `routine` on a fresh `setup()` input, excluding
    /// the setup cost from the measurement.
    pub fn iter_batched<S, O, FS, F>(&mut self, mut setup: FS, mut routine: F, _size: BatchSize)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.durations.push(start.elapsed());
    }
}

fn report(name: &str, durations: &[Duration], test_mode: bool) {
    if test_mode {
        println!("{name}: ok (smoke, {:?})", durations.first().copied().unwrap_or_default());
        return;
    }
    let min = durations.iter().min().copied().unwrap_or_default();
    let max = durations.iter().max().copied().unwrap_or_default();
    let mean = durations.iter().sum::<Duration>() / durations.len().max(1) as u32;
    println!("{name}: min {min:?} / mean {mean:?} / max {max:?} ({} samples)", durations.len());
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("batched_sum", |b| {
            b.iter_batched(|| vec![1u64; 128], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
    }

    criterion_group! {
        name = group;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn group_runs() {
        group();
    }
}
