//! Windowed time-series of busy time, generalizing the cache layer's
//! `WindowedMissRatio` to whole-machine quantities (bus utilization,
//! per-processor useful/stall fractions).

use vmp_types::Nanos;

/// Hard cap on the number of windows a series will materialize; beyond
/// it, amounts accumulate into [`TimeSeries::clipped`] instead of
/// growing the vector without bound.
pub const MAX_WINDOWS: usize = 1 << 20;

/// Accumulates nanoseconds of some activity into fixed-width windows of
/// simulated time.
///
/// Amounts are attributed to the window containing the timestamp they
/// are reported at; a contribution spanning a window boundary is not
/// split (callers report deltas at event-delivery times, so the error
/// is bounded by one event's span — see DESIGN.md §9).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    width: Nanos,
    totals: Vec<Nanos>,
    clipped: Nanos,
}

impl TimeSeries {
    /// Creates an empty series with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: Nanos) -> Self {
        assert!(width > Nanos::ZERO, "window width must be non-zero");
        TimeSeries { width, totals: Vec::new(), clipped: Nanos::ZERO }
    }

    /// Adds `amount` of activity to the window containing `at`.
    pub fn add(&mut self, at: Nanos, amount: Nanos) {
        if amount == Nanos::ZERO {
            return;
        }
        let idx = (at.as_ns() / self.width.as_ns()) as usize;
        if idx >= MAX_WINDOWS {
            self.clipped += amount;
            return;
        }
        if idx >= self.totals.len() {
            self.totals.resize(idx + 1, Nanos::ZERO);
        }
        self.totals[idx] += amount;
    }

    /// Window width.
    pub fn width(&self) -> Nanos {
        self.width
    }

    /// Number of materialized windows (up to the last one touched).
    pub fn windows(&self) -> usize {
        self.totals.len()
    }

    /// Total activity attributed to window `i` (zero past the end).
    pub fn total(&self, i: usize) -> Nanos {
        self.totals.get(i).copied().unwrap_or(Nanos::ZERO)
    }

    /// Activity attributed past [`MAX_WINDOWS`] (not silently lost).
    pub fn clipped(&self) -> Nanos {
        self.clipped
    }

    /// Activity in window `i` as a fraction of the window width. May
    /// exceed 1.0 when boundary smearing attributes a span that started
    /// in the previous window.
    pub fn fraction(&self, i: usize) -> f64 {
        self.total(i).as_ns() as f64 / self.width.as_ns() as f64
    }

    /// All window fractions.
    pub fn fractions(&self) -> Vec<f64> {
        (0..self.totals.len()).map(|i| self.fraction(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_by_window() {
        let mut s = TimeSeries::new(Nanos::from_us(1));
        s.add(Nanos::from_ns(100), Nanos::from_ns(500));
        s.add(Nanos::from_ns(900), Nanos::from_ns(250));
        s.add(Nanos::from_us(2), Nanos::from_ns(100));
        assert_eq!(s.windows(), 3);
        assert_eq!(s.total(0), Nanos::from_ns(750));
        assert_eq!(s.total(1), Nanos::ZERO);
        assert_eq!(s.total(2), Nanos::from_ns(100));
        assert_eq!(s.total(99), Nanos::ZERO);
        assert!((s.fraction(0) - 0.75).abs() < 1e-12);
        assert_eq!(s.fractions().len(), 3);
        assert_eq!(s.clipped(), Nanos::ZERO);
    }

    #[test]
    fn zero_amounts_do_not_materialize_windows() {
        let mut s = TimeSeries::new(Nanos::from_us(1));
        s.add(Nanos::from_ms(500), Nanos::ZERO);
        assert_eq!(s.windows(), 0);
    }

    #[test]
    fn far_future_clips_instead_of_allocating() {
        let mut s = TimeSeries::new(Nanos::from_ns(1));
        s.add(Nanos::from_ms(100), Nanos::from_ns(42)); // window 10^8 > MAX_WINDOWS
        assert_eq!(s.windows(), 0);
        assert_eq!(s.clipped(), Nanos::from_ns(42));
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn rejects_zero_width() {
        let _ = TimeSeries::new(Nanos::ZERO);
    }
}
