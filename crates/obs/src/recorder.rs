//! The event recorder: per-track ring buffers plus derived metrics.

use std::collections::VecDeque;

use vmp_sim::Log2Histogram;
use vmp_types::Nanos;

use crate::attrib::AttribTable;
use crate::event::{Event, EventKind};
use crate::series::TimeSeries;

/// Observability configuration, carried inside the machine config.
///
/// With `enabled == false` (the default) the machine allocates no
/// recorder at all and every instrumentation site reduces to one
/// branch on a `None` option — runs are bit-identical to a build
/// without the observability layer, because recording only ever *reads*
/// simulator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Whether to record events and derived metrics at all.
    pub enabled: bool,
    /// Capacity of each track's event ring (one ring per processor plus
    /// one for the bus). When a ring is full the *oldest* event is
    /// overwritten and the track's drop counter increments — a wrapped
    /// ring keeps the newest events, which is what a failing run's
    /// timeline needs.
    pub ring_capacity: usize,
    /// Number of log2 buckets in each latency histogram (1..=65;
    /// 40 covers up to ~9 simulated minutes).
    pub histogram_buckets: usize,
    /// Window width for the bus-utilization and per-processor
    /// efficiency time-series.
    pub window: Nanos,
    /// Whether to also build the per-page contention attribution table
    /// ([`AttribTable`]). Off by default: attribution costs a map
    /// lookup per tracked bus transaction and per word access.
    pub attrib: bool,
    /// Ping-pong window: consecutive ownership transfers of a page at
    /// most this far apart chain into one episode.
    pub attrib_window: Nanos,
    /// Per-page ownership-transfer history ring capacity.
    pub attrib_ring: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            ring_capacity: 65_536,
            histogram_buckets: 40,
            window: Nanos::from_ms(1),
            attrib: false,
            attrib_window: Nanos::from_us(250),
            attrib_ring: 16,
        }
    }
}

impl ObsConfig {
    /// The default configuration with recording switched on.
    pub fn on() -> Self {
        ObsConfig { enabled: true, ..ObsConfig::default() }
    }

    /// Recording *and* contention attribution switched on.
    pub fn with_attrib() -> Self {
        ObsConfig { attrib: true, ..ObsConfig::on() }
    }

    /// Validates the parameters (used by the machine config's `check`).
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.ring_capacity == 0 {
            return Err("obs ring capacity must be non-zero".into());
        }
        if self.histogram_buckets == 0 || self.histogram_buckets > 65 {
            return Err("obs histogram buckets must be in 1..=65".into());
        }
        if self.window == Nanos::ZERO {
            return Err("obs window must be non-zero".into());
        }
        if self.attrib && self.attrib_window == Nanos::ZERO {
            return Err("obs attribution window must be non-zero".into());
        }
        Ok(())
    }
}

/// A bounded event ring that keeps the newest `capacity` events and
/// counts — never hides — what it had to discard.
#[derive(Debug, Clone)]
pub struct EventRing {
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        EventRing { cap: capacity, events: VecDeque::with_capacity(capacity.min(1024)), dropped: 0 }
    }

    /// Appends an event, evicting the oldest one when full.
    pub fn push(&mut self, event: Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> + '_ {
        self.events.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten because the ring wrapped. The total ever
    /// recorded is `len() + dropped()`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[derive(Debug, Clone)]
struct CpuTrack {
    ring: EventRing,
    useful: TimeSeries,
    stall: TimeSeries,
    last_useful: Nanos,
    last_stall: Nanos,
}

/// All observability state for one machine: a ring per processor, a
/// ring for the bus, three latency histograms, and the windowed series.
///
/// The machine owns one of these (boxed, behind an `Option` so the
/// disabled path is a single branch) and drives it; exporters read it.
#[derive(Debug, Clone)]
pub struct MachineObs {
    /// Service time of completed top-level misses and upgrades (the
    /// stall the paper's §5 cost model prices at 17–36 µs).
    pub miss_service: Log2Histogram,
    /// Latency from an interrupt word being queued to its service
    /// beginning (the "prompt service" the consistency protocol needs).
    pub irq_latency: Log2Histogram,
    /// Ready-to-grant bus waits (arbitration plus queueing), per
    /// reservation.
    pub arb_wait: Log2Histogram,
    cpus: Vec<CpuTrack>,
    bus_ring: EventRing,
    bus_busy: TimeSeries,
    last_bus_busy: Nanos,
    window: Nanos,
    attrib: Option<Box<AttribTable>>,
}

impl MachineObs {
    /// Creates the recorder for `processors` CPU tracks.
    pub fn new(config: &ObsConfig, processors: usize) -> Self {
        let track = || CpuTrack {
            ring: EventRing::new(config.ring_capacity),
            useful: TimeSeries::new(config.window),
            stall: TimeSeries::new(config.window),
            last_useful: Nanos::ZERO,
            last_stall: Nanos::ZERO,
        };
        MachineObs {
            miss_service: Log2Histogram::new(config.histogram_buckets),
            irq_latency: Log2Histogram::new(config.histogram_buckets),
            arb_wait: Log2Histogram::new(config.histogram_buckets),
            cpus: (0..processors).map(|_| track()).collect(),
            bus_ring: EventRing::new(config.ring_capacity),
            bus_busy: TimeSeries::new(config.window),
            last_bus_busy: Nanos::ZERO,
            window: config.window,
            attrib: config.attrib.then(|| {
                Box::new(AttribTable::new(config.attrib_window, config.attrib_ring, processors))
            }),
        }
    }

    /// The contention attribution table, when enabled.
    pub fn attrib(&self) -> Option<&AttribTable> {
        self.attrib.as_deref()
    }

    /// Mutable access for the machine's instrumentation sites.
    pub fn attrib_mut(&mut self) -> Option<&mut AttribTable> {
        self.attrib.as_deref_mut()
    }

    /// Number of processor tracks.
    pub fn processors(&self) -> usize {
        self.cpus.len()
    }

    /// Window width of the time-series.
    pub fn window(&self) -> Nanos {
        self.window
    }

    /// Records an event on a processor track.
    pub fn cpu_event(&mut self, cpu: usize, at: Nanos, kind: EventKind) {
        self.cpus[cpu].ring.push(Event { at, kind });
    }

    /// Records an event on the bus track.
    pub fn bus_event(&mut self, at: Nanos, kind: EventKind) {
        self.bus_ring.push(Event { at, kind });
    }

    /// Folds a processor's cumulative useful/stall counters into the
    /// windowed series; the delta since the last sample is attributed
    /// to the window containing `now`.
    pub fn sample_cpu(&mut self, cpu: usize, now: Nanos, useful: Nanos, stall: Nanos) {
        let t = &mut self.cpus[cpu];
        t.useful.add(now, useful.saturating_sub(t.last_useful));
        t.stall.add(now, stall.saturating_sub(t.last_stall));
        t.last_useful = useful;
        t.last_stall = stall;
    }

    /// Folds the bus's cumulative busy time into the windowed series.
    pub fn sample_bus(&mut self, now: Nanos, busy: Nanos) {
        self.bus_busy.add(now, busy.saturating_sub(self.last_bus_busy));
        self.last_bus_busy = busy;
    }

    /// Events held on a processor track, oldest first.
    pub fn cpu_events(&self, cpu: usize) -> impl Iterator<Item = &Event> + '_ {
        self.cpus[cpu].ring.iter()
    }

    /// Events held on the bus track, oldest first.
    pub fn bus_events(&self) -> impl Iterator<Item = &Event> + '_ {
        self.bus_ring.iter()
    }

    /// Events currently held on a processor track.
    pub fn cpu_recorded(&self, cpu: usize) -> u64 {
        self.cpus[cpu].ring.len() as u64
    }

    /// Events overwritten on a processor track's ring.
    pub fn cpu_dropped(&self, cpu: usize) -> u64 {
        self.cpus[cpu].ring.dropped()
    }

    /// Events currently held on the bus track.
    pub fn bus_recorded(&self) -> u64 {
        self.bus_ring.len() as u64
    }

    /// Events overwritten on the bus track's ring.
    pub fn bus_dropped(&self) -> u64 {
        self.bus_ring.dropped()
    }

    /// Total events overwritten across all rings (0 means the timeline
    /// is complete).
    pub fn total_dropped(&self) -> u64 {
        self.bus_ring.dropped() + self.cpus.iter().map(|t| t.ring.dropped()).sum::<u64>()
    }

    /// Per-window bus utilization (busy fraction of each window).
    pub fn bus_utilization(&self) -> &TimeSeries {
        &self.bus_busy
    }

    /// Per-window useful time of one processor.
    pub fn cpu_useful(&self, cpu: usize) -> &TimeSeries {
        &self.cpus[cpu].useful
    }

    /// Per-window stall time of one processor.
    pub fn cpu_stall(&self, cpu: usize) -> &TimeSeries {
        &self.cpus[cpu].stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MissCause;

    #[test]
    fn default_config_is_disabled_but_valid() {
        let c = ObsConfig::default();
        assert!(!c.enabled);
        assert!(c.validate().is_ok());
        assert!(ObsConfig::on().enabled);
        assert!(ObsConfig::on().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let mut c = ObsConfig::on();
        c.ring_capacity = 0;
        assert!(c.validate().is_err());
        let mut c = ObsConfig::on();
        c.histogram_buckets = 66;
        assert!(c.validate().is_err());
        let mut c = ObsConfig::on();
        c.window = Nanos::ZERO;
        assert!(c.validate().is_err());
        // A disabled config never rejects: the parameters are unused.
        c.enabled = false;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = EventRing::new(3);
        for i in 0..5u64 {
            r.push(Event {
                at: Nanos::from_ns(i),
                kind: EventKind::MissBegin { cause: MissCause::Read },
            });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.iter().map(|e| e.at.as_ns()).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest events are evicted first");
        assert!(!r.is_empty());
    }

    #[test]
    fn sampling_accumulates_deltas() {
        let mut obs = MachineObs::new(&ObsConfig::on(), 2);
        obs.sample_cpu(0, Nanos::from_us(100), Nanos::from_us(40), Nanos::from_us(10));
        obs.sample_cpu(0, Nanos::from_us(200), Nanos::from_us(90), Nanos::from_us(30));
        // Deltas land in the window containing the sample time (1 ms
        // windows: both samples fall in window 0).
        assert_eq!(obs.cpu_useful(0).total(0), Nanos::from_us(90));
        assert_eq!(obs.cpu_stall(0).total(0), Nanos::from_us(30));
        obs.sample_bus(Nanos::from_ms(1) + Nanos::from_ns(1), Nanos::from_us(500));
        assert_eq!(obs.bus_utilization().total(1), Nanos::from_us(500));
        assert!((obs.bus_utilization().fraction(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tracks_are_independent() {
        let mut obs = MachineObs::new(&ObsConfig::on(), 2);
        obs.cpu_event(0, Nanos::ZERO, EventKind::FifoOverflow);
        obs.bus_event(Nanos::ZERO, EventKind::FifoOverflow);
        assert_eq!(obs.cpu_recorded(0), 1);
        assert_eq!(obs.cpu_recorded(1), 0);
        assert_eq!(obs.bus_recorded(), 1);
        assert_eq!(obs.total_dropped(), 0);
        assert_eq!(obs.processors(), 2);
    }
}
