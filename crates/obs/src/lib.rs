//! Structured event tracing, latency histograms and timeline export
//! for the VMP machine model.
//!
//! The paper's evaluation (§5) is entirely about *where time goes* —
//! miss-handling stalls, consistency interrupts, bus contention. This
//! crate records those moments as structured events with [`Nanos`]
//! timestamps and derives the distributions the §5 cost model prices:
//!
//! * [`MachineObs`] — one bounded [`EventRing`] per processor plus one
//!   for the bus, three [`vmp_sim::Log2Histogram`]s (miss service time,
//!   interrupt service latency, bus arbitration wait), and windowed
//!   [`TimeSeries`] of bus utilization and per-processor efficiency;
//! * [`chrome_trace`] — a Chrome trace-event document (Perfetto-viewable
//!   timeline, one track per processor + one for the bus);
//! * [`metrics_json`] — a machine-readable metrics report;
//! * [`AttribTable`] — per-⟨ASID, page⟩ contention attribution: who
//!   generates the ownership traffic, with ping-pong episode detection
//!   and a true- vs. false-sharing verdict per page (the §5.4 failure
//!   mode, made visible);
//! * [`compare`] — a cross-run metrics diff with relative thresholds,
//!   the gate behind `vmp-trace-tool compare`;
//! * [`json`] — the std-only JSON writer/parser the exporters use.
//!
//! **Overhead guarantee.** The recorder is allocated only when
//! [`ObsConfig::enabled`] is set; every instrumentation site in the
//! machine reduces to one branch on an `Option` otherwise, and
//! recording never feeds back into simulation state, so enabled and
//! disabled runs are bit-identical in everything but the recording.
//!
//! [`Nanos`]: vmp_types::Nanos
//! [`ObsConfig::enabled`]: crate::ObsConfig#structfield.enabled
//!
//! # Examples
//!
//! ```
//! use vmp_obs::{EventKind, MachineObs, MissCause, ObsConfig};
//! use vmp_types::Nanos;
//!
//! let mut obs = MachineObs::new(&ObsConfig::on(), 1);
//! obs.cpu_event(0, Nanos::from_us(10), EventKind::MissBegin { cause: MissCause::Read });
//! obs.cpu_event(
//!     0,
//!     Nanos::from_us(27),
//!     EventKind::MissEnd { cause: MissCause::Read, completed: true },
//! );
//! obs.miss_service.record(Nanos::from_us(17));
//!
//! let trace = vmp_obs::chrome_trace(&obs).to_string();
//! assert!(trace.contains("\"traceEvents\""));
//! let metrics = vmp_obs::metrics_json(&obs, Nanos::from_us(30)).to_string();
//! let doc = vmp_obs::json::parse(&metrics).unwrap();
//! assert_eq!(
//!     doc.get("histograms").unwrap().get("miss_service_ns").unwrap().get("count").unwrap().as_u64(),
//!     Some(1),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attrib;
mod chrome;
pub mod compare;
mod event;
pub mod json;
mod metrics;
mod recorder;
mod series;

pub use attrib::{
    attrib_json, AttribSummary, AttribTable, PageKey, PageStats, SharingVerdict, Transfer, TxClass,
    GRANULES,
};
pub use chrome::chrome_trace;
pub use compare::{compare_metrics, CompareOutcome, CompareThresholds};
pub use event::{Event, EventKind, MissCause};
pub use metrics::{histogram_json, metrics_json};
pub use recorder::{EventRing, MachineObs, ObsConfig};
pub use series::{TimeSeries, MAX_WINDOWS};
