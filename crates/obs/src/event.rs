//! The structured event taxonomy recorded by the machine.
//!
//! Events are small, `Copy`, and carry only what an exporter needs to
//! reconstruct the timeline: recording one is a ring-buffer push, never
//! an allocation. Per-processor tracks hold the software side of the
//! protocol (miss handling, interrupt service, recovery); the bus track
//! holds every transaction that won arbitration, plus DMA copier
//! transfers and injected faults.

use vmp_bus::{BusTxKind, FaultClass};
use vmp_types::{FrameNum, Nanos, ProcessorId};

/// Why a processor entered the miss path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissCause {
    /// Read miss: the page was absent from the cache.
    Read,
    /// Write miss: the page was absent and is needed private.
    Write,
    /// Write to a shared page: ownership upgrade, no transfer.
    Upgrade,
    /// Nested miss on a page-table page during translation.
    Pte,
    /// Kernel-initiated fetch (mapping changes, sweeps, reclamation).
    Kernel,
}

impl MissCause {
    /// Stable lower-case label for trace names and JSON keys.
    pub const fn label(self) -> &'static str {
        match self {
            MissCause::Read => "read",
            MissCause::Write => "write",
            MissCause::Upgrade => "upgrade",
            MissCause::Pte => "pte",
            MissCause::Kernel => "kernel",
        }
    }
}

/// One kind of recorded event.
///
/// `MissBegin`/`MissEnd` and `IrqBegin`/`IrqEnd` are span delimiters:
/// on any single track they nest like brackets (a nested `Pte` miss
/// sits wholly inside its enclosing miss). Everything else is either
/// an instant or carries its own duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A processor entered the software miss handler.
    MissBegin {
        /// Why the handler was entered.
        cause: MissCause,
    },
    /// The handler returned — successfully, or giving up this attempt
    /// because the bus transaction was aborted (`completed == false`;
    /// a retry follows).
    MissEnd {
        /// The cause of the matching [`EventKind::MissBegin`].
        cause: MissCause,
        /// Whether the page was actually loaded/upgraded.
        completed: bool,
    },
    /// A dirty victim page was written back to memory.
    WriteBack {
        /// The frame written back.
        frame: FrameNum,
    },
    /// An aborted transaction was rescheduled after backoff.
    Retry {
        /// Consecutive aborts seen by this processor so far.
        streak: u32,
    },
    /// The consistency-interrupt handler started draining the FIFO.
    IrqBegin {
        /// Words pending when service began.
        pending: u32,
    },
    /// The consistency-interrupt handler finished.
    IrqEnd {
        /// Words actually serviced (stale words are discarded unread).
        serviced: u32,
    },
    /// The monitor's FIFO overflowed (a word was lost; sticky flag set).
    FifoOverflow,
    /// Software ran the §3.3 overflow-recovery scan.
    FifoRecovery {
        /// Time the scan took.
        dur: Nanos,
        /// Cache slots scanned.
        scanned: u32,
    },
    /// A transaction occupied the bus (or aborted in its address phase).
    BusTx {
        /// Transaction kind.
        kind: BusTxKind,
        /// Frame addressed.
        frame: FrameNum,
        /// Issuing processor or DMA pseudo-processor.
        issuer: ProcessorId,
        /// Ready-to-grant wait (arbitration plus queueing).
        wait: Nanos,
        /// Bus occupancy.
        dur: Nanos,
        /// Whether a monitor (or fault hook) aborted it.
        aborted: bool,
    },
    /// A DMA block-copier transfer occupied the bus.
    Copier {
        /// Frame transferred.
        frame: FrameNum,
        /// The DMA engine's pseudo-processor id.
        issuer: ProcessorId,
        /// Bus occupancy of the transfer.
        dur: Nanos,
        /// Direction: `true` when writing into memory.
        write: bool,
    },
    /// A fault hook perturbed the machine here.
    Fault {
        /// Which injection point fired.
        class: FaultClass,
    },
}

/// One recorded event: a timestamp plus its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated time the event happened (span begins use the span's
    /// start; `BusTx`/`Copier` use the granted bus slot's start).
    pub at: Nanos,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_labels_are_distinct() {
        let all = [
            MissCause::Read,
            MissCause::Write,
            MissCause::Upgrade,
            MissCause::Pte,
            MissCause::Kernel,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn events_are_small() {
        // Recording must stay a cheap ring push; keep the event compact.
        assert!(std::mem::size_of::<Event>() <= 64);
    }
}
