//! Machine-readable metrics export: histograms, windowed series, and
//! ring accounting as one JSON document.

use vmp_sim::Log2Histogram;
use vmp_types::Nanos;

use crate::attrib::attrib_json;
use crate::json::Value;
use crate::recorder::MachineObs;
use crate::series::TimeSeries;

/// Hottest pages embedded per report; the rest are counted in
/// `pages_omitted`.
const METRICS_TOP_PAGES: usize = 64;

/// Renders a histogram as JSON: summary statistics plus the non-empty
/// buckets (with their half-open `[lo_ns, hi_ns)` bounds).
pub fn histogram_json(h: &Log2Histogram) -> Value {
    let mut buckets = Vec::new();
    for i in 0..h.buckets() {
        let c = h.bucket_count(i);
        if c > 0 {
            let (lo, hi) = h.bucket_bounds(i);
            buckets.push(
                Value::obj().set("lo_ns", lo.as_ns()).set("hi_ns", hi.as_ns()).set("count", c),
            );
        }
    }
    Value::obj()
        .set("count", h.count())
        .set("mean_ns", h.mean().as_ns())
        .set("max_ns", h.max().as_ns())
        .set("p50_ns", h.percentile(0.50).as_ns())
        .set("p90_ns", h.percentile(0.90).as_ns())
        .set("p99_ns", h.percentile(0.99).as_ns())
        .set("overflow", h.overflow())
        .set("buckets", buckets)
}

fn series_json(s: &TimeSeries) -> Value {
    Value::Arr(s.fractions().into_iter().map(Value::Num).collect())
}

/// Per-window efficiency `useful / (useful + stall)`; windows with no
/// attributed activity are `null` (idle, not efficient or inefficient).
fn efficiency_json(useful: &TimeSeries, stall: &TimeSeries) -> Value {
    let windows = useful.windows().max(stall.windows());
    let mut out = Vec::with_capacity(windows);
    for i in 0..windows {
        let u = useful.total(i).as_ns() as f64;
        let s = stall.total(i).as_ns() as f64;
        out.push(if u + s == 0.0 { Value::Null } else { Value::Num(u / (u + s)) });
    }
    Value::Arr(out)
}

/// Renders the recorder's derived metrics as one JSON document.
pub fn metrics_json(obs: &MachineObs, elapsed: Nanos) -> Value {
    let mut processors = Vec::new();
    for cpu in 0..obs.processors() {
        processors.push(
            Value::obj()
                .set("useful_frac", series_json(obs.cpu_useful(cpu)))
                .set("stall_frac", series_json(obs.cpu_stall(cpu)))
                .set("efficiency", efficiency_json(obs.cpu_useful(cpu), obs.cpu_stall(cpu)))
                .set(
                    "events",
                    Value::obj()
                        .set("recorded", obs.cpu_recorded(cpu))
                        .set("dropped", obs.cpu_dropped(cpu)),
                ),
        );
    }
    let mut doc = Value::obj()
        .set("elapsed_ns", elapsed.as_ns())
        .set("window_ns", obs.window().as_ns())
        .set(
            "histograms",
            Value::obj()
                .set("miss_service_ns", histogram_json(&obs.miss_service))
                .set("irq_latency_ns", histogram_json(&obs.irq_latency))
                .set("arb_wait_ns", histogram_json(&obs.arb_wait)),
        )
        .set("bus_utilization", series_json(obs.bus_utilization()))
        .set(
            "bus_events",
            Value::obj().set("recorded", obs.bus_recorded()).set("dropped", obs.bus_dropped()),
        )
        .set("processors", processors);
    if let Some(attrib) = obs.attrib() {
        doc = doc.set("attrib", attrib_json(attrib, METRICS_TOP_PAGES));
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::recorder::ObsConfig;

    #[test]
    fn metrics_document_shape() {
        let mut obs = MachineObs::new(&ObsConfig::on(), 2);
        obs.miss_service.record(Nanos::from_us(17));
        obs.miss_service.record(Nanos::from_us(36));
        obs.arb_wait.record(Nanos::from_ns(100));
        obs.sample_cpu(0, Nanos::from_us(10), Nanos::from_us(6), Nanos::from_us(2));
        obs.sample_bus(Nanos::from_us(10), Nanos::from_us(3));

        let text = metrics_json(&obs, Nanos::from_ms(2)).to_string();
        let doc = parse(&text).unwrap();
        assert_eq!(doc.get("elapsed_ns").unwrap().as_u64(), Some(2_000_000));
        assert_eq!(doc.get("window_ns").unwrap().as_u64(), Some(1_000_000));

        let h = doc.get("histograms").unwrap();
        let miss = h.get("miss_service_ns").unwrap();
        assert_eq!(miss.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(miss.get("overflow").unwrap().as_u64(), Some(0));
        let buckets = miss.get("buckets").unwrap().as_arr().unwrap();
        assert!(!buckets.is_empty());
        for b in buckets {
            assert!(b.get("lo_ns").unwrap().as_u64() < b.get("hi_ns").unwrap().as_u64());
        }
        assert!(h.get("irq_latency_ns").is_some());
        assert!(h.get("arb_wait_ns").is_some());

        let cpus = doc.get("processors").unwrap().as_arr().unwrap();
        assert_eq!(cpus.len(), 2);
        let eff = cpus[0].get("efficiency").unwrap().as_arr().unwrap();
        assert!((eff[0].as_f64().unwrap() - 0.75).abs() < 1e-12);
        // CPU 1 saw no activity: no windows at all.
        assert!(cpus[1].get("efficiency").unwrap().as_arr().unwrap().is_empty());
        assert_eq!(cpus[0].get("events").unwrap().get("dropped").unwrap().as_u64(), Some(0));

        let util = doc.get("bus_utilization").unwrap().as_arr().unwrap();
        assert!((util[0].as_f64().unwrap() - 0.003).abs() < 1e-12);
    }

    #[test]
    fn efficiency_null_for_idle_windows() {
        let mut obs = MachineObs::new(&ObsConfig::on(), 1);
        // Activity only in window 2.
        obs.sample_cpu(0, Nanos::from_ms(2) + Nanos::from_us(1), Nanos::from_us(5), Nanos::ZERO);
        let doc = parse(&metrics_json(&obs, Nanos::from_ms(3)).to_string()).unwrap();
        let eff =
            doc.get("processors").unwrap().as_arr().unwrap()[0].get("efficiency").unwrap().clone();
        let eff = eff.as_arr().unwrap().to_vec();
        assert_eq!(eff.len(), 3);
        assert_eq!(eff[0], Value::Null);
        assert_eq!(eff[1], Value::Null);
        assert_eq!(eff[2].as_f64(), Some(1.0));
    }
}
