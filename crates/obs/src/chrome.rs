//! Chrome trace-event export: one track per processor plus one for the
//! bus, viewable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! The exporter emits the JSON Object Format (`{"traceEvents": [...]}`)
//! with `B`/`E` duration events for the span-shaped records, `X`
//! complete events for records that carry their own duration, and `i`
//! instants for the rest. Timestamps are microseconds (the format's
//! unit); sub-microsecond precision survives as fractional `ts`.

use crate::event::EventKind;
use crate::json::Value;
use crate::recorder::MachineObs;

fn us(ns: vmp_types::Nanos) -> Value {
    Value::Num(ns.as_ns() as f64 / 1000.0)
}

fn base(name: impl Into<Value>, cat: &str, ph: &str, tid: usize, ts: vmp_types::Nanos) -> Value {
    Value::obj()
        .set("name", name)
        .set("cat", cat)
        .set("ph", ph)
        .set("pid", 0u64)
        .set("tid", tid)
        .set("ts", us(ts))
}

fn thread_meta(tid: usize, name: &str, sort_index: usize) -> Vec<Value> {
    vec![
        Value::obj()
            .set("name", "thread_name")
            .set("ph", "M")
            .set("pid", 0u64)
            .set("tid", tid)
            .set("args", Value::obj().set("name", name)),
        Value::obj()
            .set("name", "thread_sort_index")
            .set("ph", "M")
            .set("pid", 0u64)
            .set("tid", tid)
            .set("args", Value::obj().set("sort_index", sort_index)),
    ]
}

/// Renders the recorder's tracks as a Chrome trace-event document.
pub fn chrome_trace(obs: &MachineObs) -> Value {
    let mut events = Vec::new();
    events.push(
        Value::obj()
            .set("name", "process_name")
            .set("ph", "M")
            .set("pid", 0u64)
            .set("tid", 0u64)
            .set("args", Value::obj().set("name", "vmp-machine")),
    );
    for cpu in 0..obs.processors() {
        events.extend(thread_meta(cpu, &format!("cpu{cpu}"), cpu));
    }
    let bus_tid = obs.processors();
    events.extend(thread_meta(bus_tid, "bus", bus_tid));

    for cpu in 0..obs.processors() {
        for e in obs.cpu_events(cpu) {
            events.push(render(e, cpu));
        }
    }
    for e in obs.bus_events() {
        events.push(render(e, bus_tid));
    }

    Value::obj().set("traceEvents", events).set("displayTimeUnit", "ns").set(
        "otherData",
        Value::obj().set("dropped_events", obs.total_dropped()).set("source", "vmp-obs"),
    )
}

fn render(e: &crate::event::Event, tid: usize) -> Value {
    match e.kind {
        EventKind::MissBegin { cause } => {
            base(format!("miss({})", cause.label()), "miss", "B", tid, e.at)
        }
        EventKind::MissEnd { cause, completed } => {
            base(format!("miss({})", cause.label()), "miss", "E", tid, e.at)
                .set("args", Value::obj().set("completed", completed))
        }
        EventKind::WriteBack { frame } => base("write-back", "cache", "i", tid, e.at)
            .set("s", "t")
            .set("args", Value::obj().set("frame", frame.raw())),
        EventKind::Retry { streak } => base("retry", "miss", "i", tid, e.at)
            .set("s", "t")
            .set("args", Value::obj().set("streak", streak)),
        EventKind::IrqBegin { pending } => base("irq-service", "irq", "B", tid, e.at)
            .set("args", Value::obj().set("pending", pending)),
        EventKind::IrqEnd { serviced } => base("irq-service", "irq", "E", tid, e.at)
            .set("args", Value::obj().set("serviced", serviced)),
        EventKind::FifoOverflow => base("fifo-overflow", "irq", "i", tid, e.at).set("s", "t"),
        EventKind::FifoRecovery { dur, scanned } => base("fifo-recovery", "irq", "X", tid, e.at)
            .set("dur", us(dur))
            .set("args", Value::obj().set("scanned", scanned)),
        EventKind::BusTx { kind, frame, issuer, wait, dur, aborted } => {
            base(kind.label(), "bus", "X", tid, e.at).set("dur", us(dur)).set(
                "args",
                Value::obj()
                    .set("frame", frame.raw())
                    .set("issuer", issuer.index())
                    .set("wait_ns", wait.as_ns())
                    .set("aborted", aborted),
            )
        }
        EventKind::Copier { frame, issuer, dur, write } => {
            base("copier", "dma", "X", tid, e.at).set("dur", us(dur)).set(
                "args",
                Value::obj()
                    .set("frame", frame.raw())
                    .set("issuer", issuer.index())
                    .set("write", write),
            )
        }
        EventKind::Fault { class } => base(class.label(), "fault", "i", tid, e.at).set("s", "t"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, MissCause};
    use crate::json::parse;
    use crate::recorder::ObsConfig;
    use vmp_bus::{BusTxKind, FaultClass};
    use vmp_types::{FrameNum, Nanos, ProcessorId};

    #[test]
    fn trace_has_tracks_and_parses() {
        let mut obs = MachineObs::new(&ObsConfig::on(), 2);
        obs.cpu_event(0, Nanos::from_ns(100), EventKind::MissBegin { cause: MissCause::Read });
        obs.cpu_event(
            0,
            Nanos::from_ns(17_100),
            EventKind::MissEnd { cause: MissCause::Read, completed: true },
        );
        obs.cpu_event(1, Nanos::from_ns(50), EventKind::Retry { streak: 1 });
        obs.cpu_event(1, Nanos::from_ns(60), EventKind::FifoOverflow);
        obs.cpu_event(
            1,
            Nanos::from_ns(70),
            EventKind::FifoRecovery { dur: Nanos::from_ns(400), scanned: 32 },
        );
        obs.cpu_event(1, Nanos::from_ns(80), EventKind::IrqBegin { pending: 2 });
        obs.cpu_event(1, Nanos::from_ns(90), EventKind::IrqEnd { serviced: 2 });
        obs.cpu_event(1, Nanos::from_ns(95), EventKind::WriteBack { frame: FrameNum::new(7) });
        obs.bus_event(
            Nanos::from_ns(200),
            EventKind::BusTx {
                kind: BusTxKind::ReadShared,
                frame: FrameNum::new(3),
                issuer: ProcessorId::new(0),
                wait: Nanos::from_ns(100),
                dur: Nanos::from_ns(6600),
                aborted: false,
            },
        );
        obs.bus_event(
            Nanos::from_ns(9000),
            EventKind::Copier {
                frame: FrameNum::new(4),
                issuer: ProcessorId::new(8),
                dur: Nanos::from_ns(6600),
                write: true,
            },
        );
        obs.bus_event(Nanos::from_ns(9100), EventKind::Fault { class: FaultClass::InjectedAbort });

        let text = chrome_trace(&obs).to_string();
        let doc = parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process meta + 3 tracks x 2 meta + 8 cpu + 3 bus events.
        assert_eq!(events.len(), 1 + 6 + 8 + 3);

        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .map(|e| e.get("args").unwrap().get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["cpu0", "cpu1", "bus"]);

        // Span delimiters balance per track.
        for tid in 0..3u64 {
            let b = events
                .iter()
                .filter(|e| e.get("tid").unwrap().as_u64() == Some(tid))
                .filter(|e| e.get("ph").unwrap().as_str() == Some("B"))
                .count();
            let end = events
                .iter()
                .filter(|e| e.get("tid").unwrap().as_u64() == Some(tid))
                .filter(|e| e.get("ph").unwrap().as_str() == Some("E"))
                .count();
            assert_eq!(b, end, "tid {tid}");
        }

        // Timestamps are microseconds: the 17.1 us miss end.
        let miss_end = events
            .iter()
            .find(|e| {
                e.get("ph").unwrap().as_str() == Some("E")
                    && e.get("tid").unwrap().as_u64() == Some(0)
            })
            .unwrap();
        assert!((miss_end.get("ts").unwrap().as_f64().unwrap() - 17.1).abs() < 1e-9);
        assert_eq!(miss_end.get("args").unwrap().get("completed"), Some(&Value::Bool(true)));

        assert_eq!(doc.get("otherData").unwrap().get("dropped_events").unwrap().as_u64(), Some(0));
    }
}
