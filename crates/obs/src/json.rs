//! Minimal std-only JSON: an ordered value tree, a writer, and a
//! recursive-descent parser.
//!
//! The workspace builds offline with no serde, so exporters construct a
//! [`Value`] tree and `Display` it; tests and CI smoke checks re-parse
//! the emitted text with [`parse`] to validate schema and spot-check
//! keys. Object keys keep insertion order, which makes emitted reports
//! diffable run over run.

use std::fmt;

/// A JSON value.
///
/// Unsigned integers get their own variant so nanosecond counters
/// round-trip exactly (an `f64` loses precision past 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, written without a decimal point.
    UInt(u64),
    /// A floating-point number (non-finite values are written as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Creates an empty object.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Inserts `key` into an object value and returns `self` for
    /// chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("set {key:?} on non-object {other:?}"),
        }
        self
    }

    /// Looks up `key` in an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload (None for other variants).
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements of an array (None for other variants).
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents (None for other variants).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `u64` (integral `Num` values included).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// The numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Num(n) => Some(n),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Value {
        Value::UInt(u)
    }
}
impl From<u32> for Value {
    fn from(u: u32) -> Value {
        Value::UInt(u64::from(u))
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::UInt(u as u64)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Arr(items)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Num(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{n:.1}") // keep a decimal point: stays a float on re-parse
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Num(_) => f.write_str("null"),
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub pos: usize,
    /// What was expected or found.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(JsonError { pos: p.pos, msg: "trailing characters" });
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", "expected 'true'").map(|_| Value::Bool(true)),
            Some(b'f') => self.literal("false", "expected 'false'").map(|_| Value::Bool(false)),
            Some(b'n') => self.literal("null", "expected 'null'").map(|_| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_tree() {
        let v = Value::obj()
            .set("name", "vmp")
            .set("count", 3u64)
            .set("big", u64::MAX)
            .set("ratio", 0.25)
            .set("whole", 2.0)
            .set("ok", true)
            .set("none", Value::Null)
            .set("items", vec![Value::UInt(1), Value::Str("two".into())]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("name").unwrap().as_str(), Some("vmp"));
        assert_eq!(back.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(back.get("big").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(back.get("ratio").unwrap().as_f64(), Some(0.25));
        assert_eq!(back.get("whole").unwrap().as_f64(), Some(2.0));
        assert_eq!(back.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(back.get("none"), Some(&Value::Null));
        assert_eq!(back.get("items").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("quote \" slash \\ newline \n tab \t ctrl \u{1}".into());
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whole_floats_stay_floats() {
        // A float that happens to be integral must not re-parse as UInt.
        assert_eq!(Value::Num(2.0).to_string(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Value::Num(2.0));
        assert_eq!(parse("2").unwrap(), Value::UInt(2));
        assert_eq!(parse("-2").unwrap(), Value::Num(-2.0));
        assert_eq!(parse("1e3").unwrap(), Value::Num(1000.0));
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "depth limit");
        let err = parse("nulL").unwrap_err();
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn parse_accepts_nested_documents() {
        let v = parse(r#"{"a": [1, {"b": null}, "x"], "c": {"d": false}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Value::Bool(false)));
    }

    #[test]
    fn get_on_non_object_is_none() {
        assert_eq!(Value::Null.get("x"), None);
        assert_eq!(Value::Arr(vec![]).as_str(), None);
        assert_eq!(Value::Str("s".into()).as_u64(), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
    }
}
