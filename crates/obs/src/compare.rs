//! Cross-run metrics comparison: diff two [`metrics_json`] documents
//! against relative thresholds and report regressions.
//!
//! This is the gate behind `vmp-trace-tool compare`: CI snapshots the
//! deterministic contended workload into a committed baseline and every
//! subsequent run is diffed against it. Each metric carries a
//! direction (higher or lower is worse), a relative threshold, and an
//! absolute floor below which changes are noise; a metric regresses
//! only when it moves past *both*.
//!
//! Metrics missing from **both** documents are skipped (older baselines
//! without attribution still gate the rest); a metric present in the
//! baseline but missing from the current run is an error — the schema
//! went backwards, which a gate must not silently forgive.
//!
//! [`metrics_json`]: crate::metrics_json

use crate::json::Value;

/// One gated metric's relative threshold plus absolute noise floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Threshold {
    /// Maximum tolerated relative change in the worse direction
    /// (0.20 = 20 %).
    pub rel: f64,
    /// Absolute change below which the metric never regresses (guards
    /// tiny baselines and division noise).
    pub floor: f64,
}

/// Thresholds for every gated metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareThresholds {
    /// Mean bus utilization (fraction busy; higher is worse).
    pub bus_util: Threshold,
    /// Miss-service p50 in nanoseconds (higher is worse).
    pub miss_p50: Threshold,
    /// Miss-service p99 in nanoseconds (higher is worse).
    pub miss_p99: Threshold,
    /// Program references per simulated second (lower is worse).
    pub refs_per_sec: Threshold,
    /// Ping-pong episodes from the attribution summary (higher is
    /// worse).
    pub ping_pong: Threshold,
}

impl Default for CompareThresholds {
    /// Generous defaults for a CI gate: 20 % on latency and
    /// throughput, 25 % on contention counts.
    fn default() -> Self {
        CompareThresholds {
            bus_util: Threshold { rel: 0.20, floor: 0.01 },
            miss_p50: Threshold { rel: 0.20, floor: 500.0 },
            miss_p99: Threshold { rel: 0.20, floor: 500.0 },
            refs_per_sec: Threshold { rel: 0.20, floor: 100.0 },
            ping_pong: Threshold { rel: 0.25, floor: 2.0 },
        }
    }
}

impl CompareThresholds {
    /// The same relative threshold on every metric, keeping the
    /// default noise floors.
    pub fn uniform(rel: f64) -> Self {
        let d = CompareThresholds::default();
        CompareThresholds {
            bus_util: Threshold { rel, ..d.bus_util },
            miss_p50: Threshold { rel, ..d.miss_p50 },
            miss_p99: Threshold { rel, ..d.miss_p99 },
            refs_per_sec: Threshold { rel, ..d.refs_per_sec },
            ping_pong: Threshold { rel, ..d.ping_pong },
        }
    }
}

/// The outcome of one metric's check.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareCheck {
    /// Metric name (stable, lower-snake-case).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change, positive in the *worse* direction.
    pub change: f64,
    /// The relative threshold applied.
    pub threshold: f64,
    /// Whether the change exceeds both threshold and floor.
    pub regressed: bool,
}

/// The outcome of a whole comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareOutcome {
    /// One entry per metric checked.
    pub checks: Vec<CompareCheck>,
    /// Metrics absent from both documents (skipped, not failed).
    pub skipped: Vec<&'static str>,
}

impl CompareOutcome {
    /// Number of metrics that regressed.
    pub fn regressions(&self) -> usize {
        self.checks.iter().filter(|c| c.regressed).count()
    }

    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }
}

fn lookup<'a>(doc: &'a Value, path: &[&str]) -> Option<&'a Value> {
    let mut v = doc;
    for key in path {
        v = v.get(key)?;
    }
    Some(v)
}

fn number(doc: &Value, path: &[&str]) -> Option<f64> {
    lookup(doc, path)?.as_f64()
}

/// Mean of the per-window bus-utilization series; `None` when the
/// series is missing or empty.
fn mean_bus_util(doc: &Value) -> Option<f64> {
    let arr = lookup(doc, &["bus_utilization"])?.as_arr()?;
    let vals: Vec<f64> = arr.iter().filter_map(|v| v.as_f64()).collect();
    if vals.is_empty() {
        return None;
    }
    Some(vals.iter().sum::<f64>() / vals.len() as f64)
}

/// References per simulated second, derived from the embedded machine
/// report (`report.total_refs` over `elapsed_ns`).
fn refs_per_sec(doc: &Value) -> Option<f64> {
    let refs = number(doc, &["report", "total_refs"])?;
    let elapsed = number(doc, &["elapsed_ns"])?;
    if elapsed <= 0.0 {
        return None;
    }
    Some(refs * 1e9 / elapsed)
}

struct MetricSpec {
    name: &'static str,
    higher_is_worse: bool,
    extract: fn(&Value) -> Option<f64>,
    threshold: fn(&CompareThresholds) -> Threshold,
}

const METRICS: [MetricSpec; 5] = [
    MetricSpec {
        name: "bus_utilization_mean",
        higher_is_worse: true,
        extract: mean_bus_util,
        threshold: |t| t.bus_util,
    },
    MetricSpec {
        name: "miss_service_p50_ns",
        higher_is_worse: true,
        extract: |d| number(d, &["histograms", "miss_service_ns", "p50_ns"]),
        threshold: |t| t.miss_p50,
    },
    MetricSpec {
        name: "miss_service_p99_ns",
        higher_is_worse: true,
        extract: |d| number(d, &["histograms", "miss_service_ns", "p99_ns"]),
        threshold: |t| t.miss_p99,
    },
    MetricSpec {
        name: "refs_per_sec",
        higher_is_worse: false,
        extract: refs_per_sec,
        threshold: |t| t.refs_per_sec,
    },
    MetricSpec {
        name: "ping_pong_episodes",
        higher_is_worse: true,
        extract: |d| number(d, &["attrib", "summary", "ping_pong_episodes"]),
        threshold: |t| t.ping_pong,
    },
];

/// Diffs two metrics documents. Returns the per-metric outcome, or an
/// error when the current document dropped a metric the baseline has.
pub fn compare_metrics(
    baseline: &Value,
    current: &Value,
    thresholds: &CompareThresholds,
) -> Result<CompareOutcome, String> {
    let mut out = CompareOutcome::default();
    for spec in &METRICS {
        let base = (spec.extract)(baseline);
        let cur = (spec.extract)(current);
        let (base, cur) = match (base, cur) {
            (Some(b), Some(c)) => (b, c),
            (None, None) => {
                out.skipped.push(spec.name);
                continue;
            }
            (Some(_), None) => {
                return Err(format!(
                    "metric '{}' present in baseline but missing from current run",
                    spec.name
                ));
            }
            (None, Some(_)) => {
                // The current run gained a metric the baseline lacks
                // (e.g. attribution switched on): nothing to diff yet.
                out.skipped.push(spec.name);
                continue;
            }
        };
        let t = (spec.threshold)(thresholds);
        // Positive `delta` always means "moved in the worse direction".
        let delta = if spec.higher_is_worse { cur - base } else { base - cur };
        let change = if base.abs() > f64::EPSILON { delta / base.abs() } else { f64::INFINITY };
        let regressed = delta > t.floor && change > t.rel;
        out.checks.push(CompareCheck {
            metric: spec.name,
            baseline: base,
            current: cur,
            change: if change.is_finite() { change } else { 0.0 },
            threshold: t.rel,
            regressed,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn doc(p50: u64, p99: u64, util: f64, refs: u64, pp: u64) -> Value {
        parse(&format!(
            r#"{{
              "elapsed_ns": 1000000000,
              "histograms": {{"miss_service_ns": {{"p50_ns": {p50}, "p99_ns": {p99}}}}},
              "bus_utilization": [{util}],
              "report": {{"total_refs": {refs}}},
              "attrib": {{"summary": {{"ping_pong_episodes": {pp}}}}}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let a = doc(17_000, 36_000, 0.25, 1_000_000, 40);
        let out = compare_metrics(&a, &a, &CompareThresholds::default()).unwrap();
        assert_eq!(out.checks.len(), 5);
        assert!(out.passed());
        assert!(out.skipped.is_empty());
        for c in &out.checks {
            assert_eq!(c.change, 0.0, "{}", c.metric);
        }
    }

    #[test]
    fn worse_direction_changes_regress() {
        let base = doc(17_000, 36_000, 0.25, 1_000_000, 40);
        let cur = doc(25_000, 80_000, 0.40, 500_000, 90);
        let out = compare_metrics(&base, &cur, &CompareThresholds::default()).unwrap();
        assert_eq!(out.regressions(), 5);
        assert!(!out.passed());
    }

    #[test]
    fn better_direction_changes_never_regress() {
        let base = doc(17_000, 36_000, 0.25, 1_000_000, 40);
        let cur = doc(9_000, 20_000, 0.10, 2_000_000, 5);
        let out = compare_metrics(&base, &cur, &CompareThresholds::default()).unwrap();
        assert!(out.passed());
        for c in &out.checks {
            assert!(c.change <= 0.0, "{} change {}", c.metric, c.change);
        }
    }

    #[test]
    fn floor_absorbs_tiny_absolute_changes() {
        // +400 ns on p99 is a 40 % relative change but below the 500 ns
        // floor; +4 ping-pong episodes on a baseline of 2 is +200 % and
        // above the floor of 2.
        let base = doc(17_000, 1_000, 0.25, 1_000_000, 2);
        let cur = doc(17_000, 1_400, 0.25, 1_000_000, 6);
        let out = compare_metrics(&base, &cur, &CompareThresholds::default()).unwrap();
        let by_name = |n: &str| out.checks.iter().find(|c| c.metric == n).unwrap();
        assert!(!by_name("miss_service_p99_ns").regressed);
        assert!(by_name("ping_pong_episodes").regressed);
    }

    #[test]
    fn metric_missing_from_both_is_skipped() {
        let strip = |d: &Value| {
            // Rebuild without the attrib section.
            parse(
                r#"{"elapsed_ns": 1000000000,
                    "histograms": {"miss_service_ns": {"p50_ns": 17000, "p99_ns": 36000}},
                    "bus_utilization": [0.25],
                    "report": {"total_refs": 1000000}}"#,
            )
            .unwrap_or_else(|_| d.clone())
        };
        let a = doc(17_000, 36_000, 0.25, 1_000_000, 40);
        let out = compare_metrics(&strip(&a), &strip(&a), &CompareThresholds::default()).unwrap();
        assert!(out.passed());
        assert_eq!(out.skipped, vec!["ping_pong_episodes"]);
    }

    #[test]
    fn metric_dropped_by_current_run_is_an_error() {
        let base = doc(17_000, 36_000, 0.25, 1_000_000, 40);
        let cur = parse(
            r#"{"elapsed_ns": 1000000000,
                "histograms": {"miss_service_ns": {"p50_ns": 17000, "p99_ns": 36000}},
                "bus_utilization": [0.25],
                "report": {"total_refs": 1000000}}"#,
        )
        .unwrap();
        assert!(compare_metrics(&base, &cur, &CompareThresholds::default()).is_err());
    }

    #[test]
    fn metric_gained_by_current_run_is_skipped() {
        let base = parse(
            r#"{"elapsed_ns": 1000000000,
                "histograms": {"miss_service_ns": {"p50_ns": 17000, "p99_ns": 36000}},
                "bus_utilization": [0.25],
                "report": {"total_refs": 1000000}}"#,
        )
        .unwrap();
        let cur = doc(17_000, 36_000, 0.25, 1_000_000, 40);
        let out = compare_metrics(&base, &cur, &CompareThresholds::default()).unwrap();
        assert!(out.passed());
        assert_eq!(out.skipped, vec!["ping_pong_episodes"]);
    }

    #[test]
    fn uniform_overrides_every_relative_threshold() {
        let t = CompareThresholds::uniform(0.5);
        assert_eq!(t.bus_util.rel, 0.5);
        assert_eq!(t.ping_pong.rel, 0.5);
        // Floors keep their defaults.
        assert_eq!(t.miss_p50.floor, CompareThresholds::default().miss_p50.floor);
    }

    #[test]
    fn zero_baseline_with_real_growth_regresses() {
        let base = doc(17_000, 36_000, 0.25, 1_000_000, 0);
        let cur = doc(17_000, 36_000, 0.25, 1_000_000, 50);
        let out = compare_metrics(&base, &cur, &CompareThresholds::default()).unwrap();
        let pp = out.checks.iter().find(|c| c.metric == "ping_pong_episodes").unwrap();
        assert!(pp.regressed);
    }
}
