//! Per-page contention attribution: who generates the bus traffic, and
//! why.
//!
//! The recorder's histograms (PR 3) answer *when* and *how long*; this
//! table answers *which pages* and *which processors*. It keys a
//! per-page accounting record on ⟨ASID, virtual page⟩ and counts, per
//! page and per CPU, the four consistency-protocol transaction kinds
//! (read-shared, read-private, assert-ownership, write-back), the
//! aborts suffered, and the miss-service nanoseconds spent on the page.
//!
//! On top of the raw counts sits the paper's §5.4 failure mode:
//! **page ping-ponging**. Every completed ownership acquisition
//! (read-private or assert-ownership) by a CPU other than the current
//! owner is an *ownership transfer*; a run of consecutive transfers
//! each within [`AttribTable::window`] of the previous one is a
//! *ping-pong episode*. Each within-window transfer (a *bounce*) is
//! classified by comparing the sub-page granules the two CPUs touched
//! during their just-ended tenures: disjoint, non-empty footprints mean
//! the CPUs never shared a word — **probable false sharing** (a larger
//! page would make this worse, a smaller one would cure it);
//! overlapping footprints mean **true sharing** (the contention is in
//! the program, not the page geometry).
//!
//! Attribution is read-only and deterministic: it is fed from the same
//! instrumentation sites as the event rings, allocates only when
//! [`ObsConfig::attrib`](crate::ObsConfig#structfield.attrib) is set,
//! and never feeds back into simulation state.

use std::collections::{BTreeMap, VecDeque};

use vmp_bus::BusTxKind;
use vmp_types::{Asid, FrameNum, Nanos, VirtPageNum};

use crate::json::Value;

/// Number of sub-page granules tracked per CPU tenure footprint.
///
/// 128 granules over a 512 B page give a 4 B granule — one word — so
/// two CPUs writing adjacent words on the prototype's largest page are
/// still seen as disjoint.
pub const GRANULES: u32 = 128;

/// The four consistency-protocol transaction kinds the table accounts.
///
/// Plain (uncached/DMA) reads and writes, notifies and action-table
/// updates are deliberately excluded: they carry no ownership semantics
/// and would dilute the contention signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TxClass {
    /// Block fetch of a shared (read-only) copy.
    ReadShared,
    /// Block fetch of a private (owned) copy — an ownership transfer
    /// when the page was owned elsewhere.
    ReadPrivate,
    /// In-place upgrade from shared to private ownership.
    AssertOwnership,
    /// Dirty victim flushed back to memory.
    WriteBack,
}

impl TxClass {
    /// All classes, in accounting-array order.
    pub const ALL: [TxClass; 4] =
        [TxClass::ReadShared, TxClass::ReadPrivate, TxClass::AssertOwnership, TxClass::WriteBack];

    /// Maps a bus transaction kind onto its accounting class, or `None`
    /// for the kinds the table ignores.
    pub const fn from_kind(kind: BusTxKind) -> Option<TxClass> {
        match kind {
            BusTxKind::ReadShared => Some(TxClass::ReadShared),
            BusTxKind::ReadPrivate => Some(TxClass::ReadPrivate),
            BusTxKind::AssertOwnership => Some(TxClass::AssertOwnership),
            BusTxKind::WriteBack => Some(TxClass::WriteBack),
            _ => None,
        }
    }

    /// The bus transaction kind this class accounts.
    pub const fn kind(self) -> BusTxKind {
        match self {
            TxClass::ReadShared => BusTxKind::ReadShared,
            TxClass::ReadPrivate => BusTxKind::ReadPrivate,
            TxClass::AssertOwnership => BusTxKind::AssertOwnership,
            TxClass::WriteBack => BusTxKind::WriteBack,
        }
    }

    /// Stable lower-case label for reports.
    pub const fn label(self) -> &'static str {
        self.kind().label()
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// The attribution key: one page of one address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PageKey {
    /// Owning address space.
    pub asid: Asid,
    /// Virtual page number within that space.
    pub vpn: VirtPageNum,
}

/// Ping-pong verdict for one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingVerdict {
    /// No ping-pong episodes: ownership is stable (or the page is
    /// touched by one CPU only).
    Quiet,
    /// Ping-ponging, and the bouncing CPUs touch overlapping words:
    /// the contention is real program sharing.
    TrueSharing,
    /// Ping-ponging, but the bouncing CPUs touch disjoint words:
    /// probable false sharing — a smaller page would decouple them.
    FalseSharing,
    /// Ping-ponging, but the footprints were too sparse to classify.
    Unclassified,
}

impl SharingVerdict {
    /// Stable lower-case label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            SharingVerdict::Quiet => "quiet",
            SharingVerdict::TrueSharing => "true-sharing",
            SharingVerdict::FalseSharing => "false-sharing",
            SharingVerdict::Unclassified => "ping-pong",
        }
    }
}

/// One ownership transfer kept in a page's bounded history ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the acquiring transaction completed.
    pub at: Nanos,
    /// The CPU that lost ownership.
    pub from: usize,
    /// The CPU that acquired ownership.
    pub to: usize,
}

/// Per-CPU slice of one page's accounting record.
#[derive(Debug, Clone, Default)]
struct CpuSlice {
    counts: [u64; 4],
    aborts: u64,
    reads: u64,
    writes: u64,
    /// Granules ever touched by this CPU (cumulative footprint).
    touched: u128,
    /// Granules touched during the current ownership tenure.
    cur_mask: u128,
    /// Footprint of the most recently *ended* tenure.
    last_mask: u128,
}

/// Accounting record for one ⟨ASID, virtual page⟩.
#[derive(Debug, Clone)]
pub struct PageStats {
    counts: [u64; 4],
    aborts: u64,
    service: Nanos,
    serviced: u64,
    cpus: Vec<CpuSlice>,
    owner: Option<usize>,
    transfers: u64,
    last_transfer: Option<Nanos>,
    /// Length of the current run of within-window transfers.
    chain: u64,
    episodes: u64,
    bounces: u64,
    true_bounces: u64,
    false_bounces: u64,
    unknown_bounces: u64,
    ring: VecDeque<Transfer>,
    ring_cap: usize,
}

impl PageStats {
    fn new(cpus: usize, ring_cap: usize) -> Self {
        PageStats {
            counts: [0; 4],
            aborts: 0,
            service: Nanos::ZERO,
            serviced: 0,
            cpus: vec![CpuSlice::default(); cpus],
            owner: None,
            transfers: 0,
            last_transfer: None,
            chain: 0,
            episodes: 0,
            bounces: 0,
            true_bounces: 0,
            false_bounces: 0,
            unknown_bounces: 0,
            ring: VecDeque::new(),
            ring_cap,
        }
    }

    /// Completed transactions of one class on this page.
    pub fn count(&self, class: TxClass) -> u64 {
        self.counts[class.index()]
    }

    /// All completed tracked transactions on this page.
    pub fn traffic(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Transactions on this page that were aborted by a monitor or
    /// fault hook.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Total miss-service time attributed to this page.
    pub fn service(&self) -> Nanos {
        self.service
    }

    /// Completed miss/upgrade services attributed to this page.
    pub fn serviced(&self) -> u64 {
        self.serviced
    }

    /// Completed transactions of one class issued by one CPU.
    pub fn cpu_count(&self, cpu: usize, class: TxClass) -> u64 {
        self.cpus.get(cpu).map_or(0, |c| c.counts[class.index()])
    }

    /// All completed tracked transactions issued by one CPU.
    pub fn cpu_traffic(&self, cpu: usize) -> u64 {
        self.cpus.get(cpu).map_or(0, |c| c.counts.iter().sum())
    }

    /// Aborts suffered by one CPU on this page.
    pub fn cpu_aborts(&self, cpu: usize) -> u64 {
        self.cpus.get(cpu).map_or(0, |c| c.aborts)
    }

    /// Word reads/writes one CPU performed on this page.
    pub fn cpu_accesses(&self, cpu: usize) -> (u64, u64) {
        self.cpus.get(cpu).map_or((0, 0), |c| (c.reads, c.writes))
    }

    /// Cumulative granule footprint of one CPU ([`GRANULES`] bits).
    pub fn cpu_footprint(&self, cpu: usize) -> u128 {
        self.cpus.get(cpu).map_or(0, |c| c.touched)
    }

    /// The CPU currently holding ownership, if any acquisition was seen.
    pub fn owner(&self) -> Option<usize> {
        self.owner
    }

    /// Ownership transfers (acquisitions by a CPU other than the
    /// current owner).
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Ping-pong episodes: maximal runs of ≥ 2 consecutive transfers,
    /// each within the table's window of the previous one.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Within-window transfers (the individual bounces inside
    /// episodes).
    pub fn bounces(&self) -> u64 {
        self.bounces
    }

    /// Bounces where the two CPUs' tenure footprints overlapped.
    pub fn true_bounces(&self) -> u64 {
        self.true_bounces
    }

    /// Bounces where the footprints were non-empty but disjoint.
    pub fn false_bounces(&self) -> u64 {
        self.false_bounces
    }

    /// Bounces where at least one footprint was empty.
    pub fn unknown_bounces(&self) -> u64 {
        self.unknown_bounces
    }

    /// The most recent ownership transfers, oldest first.
    pub fn transfer_ring(&self) -> impl Iterator<Item = &Transfer> + '_ {
        self.ring.iter()
    }

    /// Classifies this page's contention.
    ///
    /// A page is [`SharingVerdict::Quiet`] until it has at least one
    /// ping-pong episode; otherwise the majority bounce classification
    /// wins, with true sharing breaking ties (the conservative call:
    /// false sharing is the *actionable* verdict, so it must dominate
    /// to be reported).
    pub fn verdict(&self) -> SharingVerdict {
        if self.episodes == 0 {
            SharingVerdict::Quiet
        } else if self.false_bounces > self.true_bounces
            && self.false_bounces >= self.unknown_bounces
        {
            SharingVerdict::FalseSharing
        } else if self.true_bounces > 0 && self.true_bounces >= self.unknown_bounces {
            SharingVerdict::TrueSharing
        } else {
            SharingVerdict::Unclassified
        }
    }

    fn record_tx(
        &mut self,
        issuer: usize,
        class: TxClass,
        aborted: bool,
        at: Nanos,
        window: Nanos,
    ) {
        if aborted {
            self.aborts += 1;
            if let Some(c) = self.cpus.get_mut(issuer) {
                c.aborts += 1;
            }
            return;
        }
        self.counts[class.index()] += 1;
        if let Some(c) = self.cpus.get_mut(issuer) {
            c.counts[class.index()] += 1;
        }
        if matches!(class, TxClass::ReadPrivate | TxClass::AssertOwnership)
            && issuer < self.cpus.len()
        {
            self.acquire(issuer, at, window);
        }
    }

    fn acquire(&mut self, to: usize, at: Nanos, window: Nanos) {
        let from = match self.owner {
            Some(p) if p != to => p,
            Some(_) => return, // re-assert by the current owner
            None => {
                // First acquisition ever seen: ownership appears, but
                // nothing transfers. Start the acquirer's tenure fresh.
                self.owner = Some(to);
                self.cpus[to].cur_mask = 0;
                return;
            }
        };
        self.owner = Some(to);
        self.transfers += 1;
        if self.ring.len() == self.ring_cap {
            self.ring.pop_front();
        }
        if self.ring_cap > 0 {
            self.ring.push_back(Transfer { at, from, to });
        }

        // Window chaining: a run of transfers each within `window` of
        // the previous one is one episode; every transfer inside a run
        // (from its second link on) is a bounce.
        let within = match self.last_transfer {
            Some(prev) => at.saturating_sub(prev) <= window,
            None => false,
        };
        self.chain = if within { self.chain + 1 } else { 1 };
        self.last_transfer = Some(at);

        // Finalize the loser's tenure footprint before classifying.
        self.cpus[from].last_mask = self.cpus[from].cur_mask;
        self.cpus[from].cur_mask = 0;
        if self.chain >= 2 {
            if self.chain == 2 {
                self.episodes += 1;
            }
            self.bounces += 1;
            let lost = self.cpus[from].last_mask;
            let held = self.cpus[to].last_mask;
            if lost != 0 && held != 0 {
                if lost & held == 0 {
                    self.false_bounces += 1;
                } else {
                    self.true_bounces += 1;
                }
            } else {
                self.unknown_bounces += 1;
            }
        }
        self.cpus[to].cur_mask = 0;
    }

    fn record_touch(&mut self, cpu: usize, offset: u32, page_bytes: u32, write: bool) {
        let Some(c) = self.cpus.get_mut(cpu) else { return };
        if write {
            c.writes += 1;
        } else {
            c.reads += 1;
        }
        let granule = if page_bytes == 0 {
            0
        } else {
            ((offset as u64 * GRANULES as u64) / page_bytes as u64).min(GRANULES as u64 - 1)
        };
        let bit = 1u128 << granule;
        c.touched |= bit;
        c.cur_mask |= bit;
    }
}

/// Table-wide headline numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttribSummary {
    /// Distinct ⟨ASID, page⟩ keys with any accounted activity.
    pub pages: u64,
    /// Ownership transfers across all pages.
    pub transfers: u64,
    /// Ping-pong episodes across all pages.
    pub episodes: u64,
    /// Within-window transfers (bounces) across all pages.
    pub bounces: u64,
    /// Bounces classified as true sharing.
    pub true_bounces: u64,
    /// Bounces classified as probable false sharing.
    pub false_bounces: u64,
    /// Bounces whose footprints were too sparse to classify.
    pub unknown_bounces: u64,
    /// Tracked transactions on frames with no known mapping.
    pub unattributed: u64,
}

/// The contention attribution table.
///
/// Owned by [`MachineObs`](crate::MachineObs) when
/// [`ObsConfig::attrib`](crate::ObsConfig#structfield.attrib) is set;
/// the machine feeds it from the same sites as the event rings.
///
/// Bus transactions address *frames*, but attribution is per
/// ⟨ASID, virtual page⟩, so the table maintains its own frame → key
/// map, updated whenever the machine resolves a translation. A tracked
/// transaction on a frame with no known mapping lands in the
/// `unattributed` bucket instead of vanishing — the per-class totals
/// (pages plus unattributed) always equal the bus's own counters.
/// When two address spaces map the same frame the most recent
/// resolution wins, so shared-frame traffic is attributed to the last
/// space that faulted it in.
#[derive(Debug, Clone)]
pub struct AttribTable {
    pages: BTreeMap<PageKey, PageStats>,
    frames: BTreeMap<FrameNum, PageKey>,
    unattributed: [u64; 4],
    unattributed_aborts: [u64; 4],
    window: Nanos,
    ring_cap: usize,
    cpus: usize,
}

impl AttribTable {
    /// Creates an empty table for `cpus` processor tracks.
    pub fn new(window: Nanos, ring_cap: usize, cpus: usize) -> Self {
        AttribTable {
            pages: BTreeMap::new(),
            frames: BTreeMap::new(),
            unattributed: [0; 4],
            unattributed_aborts: [0; 4],
            window,
            ring_cap,
            cpus,
        }
    }

    /// The ping-pong window: consecutive ownership transfers at most
    /// this far apart chain into one episode.
    pub fn window(&self) -> Nanos {
        self.window
    }

    /// Processor tracks per page.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Records that `frame` currently backs ⟨`asid`, `vpn`⟩.
    pub fn map_frame(&mut self, frame: FrameNum, asid: Asid, vpn: VirtPageNum) {
        self.frames.insert(frame, PageKey { asid, vpn });
    }

    /// The key a frame is currently attributed to.
    pub fn frame_key(&self, frame: FrameNum) -> Option<PageKey> {
        self.frames.get(&frame).copied()
    }

    /// Accounts one arbitrated bus transaction (completed or aborted).
    ///
    /// Kinds outside [`TxClass`] are ignored. `at` is the time the
    /// transaction left the bus (its completion), which is what the
    /// ping-pong window measures.
    pub fn record_tx(
        &mut self,
        frame: FrameNum,
        issuer: usize,
        kind: BusTxKind,
        aborted: bool,
        at: Nanos,
    ) {
        let Some(class) = TxClass::from_kind(kind) else { return };
        let Some(key) = self.frames.get(&frame).copied() else {
            if aborted {
                self.unattributed_aborts[class.index()] += 1;
            } else {
                self.unattributed[class.index()] += 1;
            }
            return;
        };
        let cpus = self.cpus;
        let ring_cap = self.ring_cap;
        let window = self.window;
        self.pages
            .entry(key)
            .or_insert_with(|| PageStats::new(cpus, ring_cap))
            .record_tx(issuer, class, aborted, at, window);
    }

    /// Accounts one word access by a CPU, updating its sub-page tenure
    /// footprint (used to classify bounces as true vs. false sharing).
    pub fn record_touch(
        &mut self,
        asid: Asid,
        vpn: VirtPageNum,
        cpu: usize,
        offset: u32,
        page_bytes: u32,
        write: bool,
    ) {
        let cpus = self.cpus;
        let ring_cap = self.ring_cap;
        self.pages
            .entry(PageKey { asid, vpn })
            .or_insert_with(|| PageStats::new(cpus, ring_cap))
            .record_touch(cpu, offset, page_bytes, write);
    }

    /// Attributes one completed miss/upgrade service to a page.
    pub fn record_service(&mut self, asid: Asid, vpn: VirtPageNum, dur: Nanos) {
        let cpus = self.cpus;
        let ring_cap = self.ring_cap;
        let p = self
            .pages
            .entry(PageKey { asid, vpn })
            .or_insert_with(|| PageStats::new(cpus, ring_cap));
        p.service += dur;
        p.serviced += 1;
    }

    /// The accounting record for one page, if any activity was seen.
    pub fn page(&self, key: PageKey) -> Option<&PageStats> {
        self.pages.get(&key)
    }

    /// All pages, in key order (deterministic).
    pub fn pages(&self) -> impl Iterator<Item = (PageKey, &PageStats)> + '_ {
        self.pages.iter().map(|(k, v)| (*k, v))
    }

    /// Number of distinct pages with accounted activity.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The `n` hottest pages by tracked bus traffic, ties broken by key
    /// (deterministic).
    pub fn top_by_traffic(&self, n: usize) -> Vec<(PageKey, &PageStats)> {
        let mut all: Vec<(PageKey, &PageStats)> = self.pages().collect();
        all.sort_by(|a, b| b.1.traffic().cmp(&a.1.traffic()).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Completed tracked transactions of one class, across pages *and*
    /// the unattributed bucket — equals the bus's own per-kind counter.
    pub fn class_total(&self, class: TxClass) -> u64 {
        self.unattributed[class.index()]
            + self.pages.values().map(|p| p.counts[class.index()]).sum::<u64>()
    }

    /// Aborted tracked transactions of one class, across pages and the
    /// unattributed bucket. Per-page abort counts are not split by
    /// class, so this is only meaningful summed over all classes; use
    /// [`AttribTable::abort_total`] for the per-page-comparable number.
    pub fn unattributed_aborts(&self, class: TxClass) -> u64 {
        self.unattributed_aborts[class.index()]
    }

    /// Completed tracked transactions of one class that hit a frame
    /// with no known mapping.
    pub fn unattributed(&self, class: TxClass) -> u64 {
        self.unattributed[class.index()]
    }

    /// All aborted tracked transactions (pages plus unattributed) —
    /// equals the sum of the bus's per-kind abort counters over the
    /// four tracked kinds.
    pub fn abort_total(&self) -> u64 {
        self.unattributed_aborts.iter().sum::<u64>()
            + self.pages.values().map(|p| p.aborts).sum::<u64>()
    }

    /// Table-wide headline numbers.
    pub fn summary(&self) -> AttribSummary {
        let mut s = AttribSummary {
            pages: self.pages.len() as u64,
            unattributed: self.unattributed.iter().sum(),
            ..AttribSummary::default()
        };
        for p in self.pages.values() {
            s.transfers += p.transfers;
            s.episodes += p.episodes;
            s.bounces += p.bounces;
            s.true_bounces += p.true_bounces;
            s.false_bounces += p.false_bounces;
            s.unknown_bounces += p.unknown_bounces;
        }
        s
    }
}

/// Renders the attribution table as a JSON value: a `summary` object
/// plus a `pages` array sorted hottest-first (capped at `top`, with
/// `pages_omitted` counting the rest).
pub fn attrib_json(table: &AttribTable, top: usize) -> Value {
    let s = table.summary();
    let summary = Value::obj()
        .set("pages", s.pages)
        .set("ownership_transfers", s.transfers)
        .set("ping_pong_episodes", s.episodes)
        .set("bounces", s.bounces)
        .set("true_sharing_bounces", s.true_bounces)
        .set("false_sharing_bounces", s.false_bounces)
        .set("unknown_bounces", s.unknown_bounces)
        .set("unattributed", s.unattributed);

    let ranked = table.top_by_traffic(top);
    let omitted = table.page_count().saturating_sub(ranked.len());
    let mut pages = Vec::with_capacity(ranked.len());
    for (key, p) in ranked {
        let mut counts = Value::obj();
        for class in TxClass::ALL {
            counts = counts.set(class.label(), p.count(class));
        }
        let mut cpus = Vec::with_capacity(table.cpus());
        for cpu in 0..table.cpus() {
            let (reads, writes) = p.cpu_accesses(cpu);
            cpus.push(
                Value::obj()
                    .set("traffic", p.cpu_traffic(cpu))
                    .set("aborts", p.cpu_aborts(cpu))
                    .set("reads", reads)
                    .set("writes", writes)
                    .set("footprint", format!("{:#x}", p.cpu_footprint(cpu))),
            );
        }
        pages.push(
            Value::obj()
                .set("asid", key.asid.raw() as u64)
                .set("vpn", key.vpn.raw())
                .set("traffic", p.traffic())
                .set("counts", counts)
                .set("aborts", p.aborts())
                .set("service_ns", p.service().as_ns())
                .set("serviced", p.serviced())
                .set("ownership_transfers", p.transfers())
                .set("ping_pong_episodes", p.episodes())
                .set("bounces", p.bounces())
                .set("true_sharing_bounces", p.true_bounces())
                .set("false_sharing_bounces", p.false_bounces())
                .set("verdict", p.verdict().label())
                .set("cpus", cpus),
        );
    }

    Value::obj()
        .set("summary", summary)
        .set("pages", Value::Arr(pages))
        .set("pages_omitted", omitted as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(asid: u8, vpn: u64) -> (Asid, VirtPageNum) {
        (Asid::new(asid), VirtPageNum::new(vpn))
    }

    fn table() -> AttribTable {
        AttribTable::new(Nanos::from_us(100), 8, 2)
    }

    fn mapped_table() -> AttribTable {
        let mut t = table();
        let (asid, vpn) = key(1, 4);
        t.map_frame(FrameNum::new(7), asid, vpn);
        t
    }

    #[test]
    fn unmapped_frames_land_in_the_unattributed_bucket() {
        let mut t = table();
        t.record_tx(FrameNum::new(3), 0, BusTxKind::ReadShared, false, Nanos::ZERO);
        t.record_tx(FrameNum::new(3), 0, BusTxKind::ReadShared, true, Nanos::ZERO);
        t.record_tx(FrameNum::new(3), 0, BusTxKind::Notify, false, Nanos::ZERO);
        assert_eq!(t.page_count(), 0);
        assert_eq!(t.unattributed(TxClass::ReadShared), 1);
        assert_eq!(t.unattributed_aborts(TxClass::ReadShared), 1);
        assert_eq!(t.class_total(TxClass::ReadShared), 1);
        assert_eq!(t.abort_total(), 1);
        assert_eq!(t.summary().unattributed, 1);
    }

    #[test]
    fn counts_and_aborts_attribute_to_the_mapped_key() {
        let mut t = mapped_table();
        let (asid, vpn) = key(1, 4);
        t.record_tx(FrameNum::new(7), 0, BusTxKind::ReadPrivate, false, Nanos::from_us(1));
        t.record_tx(FrameNum::new(7), 1, BusTxKind::AssertOwnership, true, Nanos::from_us(2));
        t.record_tx(FrameNum::new(7), 1, BusTxKind::WriteBack, false, Nanos::from_us(3));
        let p = t.page(PageKey { asid, vpn }).unwrap();
        assert_eq!(p.count(TxClass::ReadPrivate), 1);
        assert_eq!(p.count(TxClass::WriteBack), 1);
        assert_eq!(p.aborts(), 1);
        assert_eq!(p.cpu_count(0, TxClass::ReadPrivate), 1);
        assert_eq!(p.cpu_aborts(1), 1);
        assert_eq!(p.traffic(), 2);
        assert_eq!(t.class_total(TxClass::ReadPrivate), 1);
        assert_eq!(t.abort_total(), 1);
    }

    #[test]
    fn ping_pong_episode_detection_respects_the_window() {
        let mut t = mapped_table();
        let f = FrameNum::new(7);
        // cpu0 acquires (no transfer), then the page bounces 0→1→0→1
        // within the window: 3 transfers, 2 bounces, 1 episode.
        t.record_tx(f, 0, BusTxKind::ReadPrivate, false, Nanos::from_us(10));
        t.record_tx(f, 1, BusTxKind::ReadPrivate, false, Nanos::from_us(20));
        t.record_tx(f, 0, BusTxKind::AssertOwnership, false, Nanos::from_us(30));
        t.record_tx(f, 1, BusTxKind::ReadPrivate, false, Nanos::from_us(40));
        // Outside the window: breaks the chain, no new episode yet.
        t.record_tx(f, 0, BusTxKind::ReadPrivate, false, Nanos::from_ms(1));
        let (asid, vpn) = key(1, 4);
        let p = t.page(PageKey { asid, vpn }).unwrap();
        assert_eq!(p.transfers(), 4);
        assert_eq!(p.bounces(), 2);
        assert_eq!(p.episodes(), 1);
        assert_eq!(p.owner(), Some(0));
        let ring: Vec<(usize, usize)> = p.transfer_ring().map(|x| (x.from, x.to)).collect();
        assert_eq!(ring, vec![(0, 1), (1, 0), (0, 1), (1, 0)]);
        let s = t.summary();
        assert_eq!(s.episodes, 1);
        assert_eq!(s.transfers, 4);
    }

    #[test]
    fn reassert_by_owner_is_not_a_transfer() {
        let mut t = mapped_table();
        let f = FrameNum::new(7);
        t.record_tx(f, 0, BusTxKind::ReadPrivate, false, Nanos::from_us(10));
        t.record_tx(f, 0, BusTxKind::AssertOwnership, false, Nanos::from_us(20));
        let (asid, vpn) = key(1, 4);
        assert_eq!(t.page(PageKey { asid, vpn }).unwrap().transfers(), 0);
    }

    #[test]
    fn disjoint_footprints_classify_as_false_sharing() {
        let mut t = mapped_table();
        let (asid, vpn) = key(1, 4);
        let f = FrameNum::new(7);
        let page = 128;
        // cpu0 only ever touches offset 0; cpu1 only offset 64.
        t.record_tx(f, 0, BusTxKind::ReadPrivate, false, Nanos::from_us(1));
        t.record_touch(asid, vpn, 0, 0, page, true);
        t.record_tx(f, 1, BusTxKind::ReadPrivate, false, Nanos::from_us(2));
        t.record_touch(asid, vpn, 1, 64, page, true);
        t.record_tx(f, 0, BusTxKind::ReadPrivate, false, Nanos::from_us(3));
        t.record_touch(asid, vpn, 0, 0, page, true);
        t.record_tx(f, 1, BusTxKind::ReadPrivate, false, Nanos::from_us(4));
        t.record_touch(asid, vpn, 1, 64, page, true);
        t.record_tx(f, 0, BusTxKind::ReadPrivate, false, Nanos::from_us(5));
        let p = t.page(PageKey { asid, vpn }).unwrap();
        assert!(p.false_bounces() >= 2, "false bounces: {}", p.false_bounces());
        assert_eq!(p.true_bounces(), 0);
        assert_eq!(p.verdict(), SharingVerdict::FalseSharing);
        let s = t.summary();
        assert_eq!(s.false_bounces, p.false_bounces());
    }

    #[test]
    fn overlapping_footprints_classify_as_true_sharing() {
        let mut t = mapped_table();
        let (asid, vpn) = key(1, 4);
        let f = FrameNum::new(7);
        let page = 128;
        // Both CPUs hammer the same word (a lock).
        for i in 0..4u64 {
            let cpu = (i % 2) as usize;
            t.record_tx(f, cpu, BusTxKind::ReadPrivate, false, Nanos::from_us(1 + i));
            t.record_touch(asid, vpn, cpu, 4, page, true);
        }
        t.record_tx(f, 0, BusTxKind::ReadPrivate, false, Nanos::from_us(9));
        let p = t.page(PageKey { asid, vpn }).unwrap();
        assert!(p.true_bounces() >= 2);
        assert_eq!(p.false_bounces(), 0);
        assert_eq!(p.verdict(), SharingVerdict::TrueSharing);
    }

    #[test]
    fn empty_footprints_stay_unclassified() {
        let mut t = mapped_table();
        let f = FrameNum::new(7);
        for i in 0..4u64 {
            t.record_tx(f, (i % 2) as usize, BusTxKind::ReadPrivate, false, Nanos::from_us(1 + i));
        }
        let (asid, vpn) = key(1, 4);
        let p = t.page(PageKey { asid, vpn }).unwrap();
        assert!(p.bounces() > 0);
        assert_eq!(p.true_bounces() + p.false_bounces(), 0);
        assert_eq!(p.verdict(), SharingVerdict::Unclassified);
    }

    #[test]
    fn service_time_accumulates_per_page() {
        let mut t = table();
        let (asid, vpn) = key(2, 9);
        t.record_service(asid, vpn, Nanos::from_us(17));
        t.record_service(asid, vpn, Nanos::from_us(19));
        let p = t.page(PageKey { asid, vpn }).unwrap();
        assert_eq!(p.service(), Nanos::from_us(36));
        assert_eq!(p.serviced(), 2);
    }

    #[test]
    fn top_by_traffic_is_deterministically_ordered() {
        let mut t = table();
        t.map_frame(FrameNum::new(1), Asid::new(1), VirtPageNum::new(1));
        t.map_frame(FrameNum::new(2), Asid::new(1), VirtPageNum::new(2));
        t.map_frame(FrameNum::new(3), Asid::new(1), VirtPageNum::new(3));
        for _ in 0..3 {
            t.record_tx(FrameNum::new(2), 0, BusTxKind::ReadShared, false, Nanos::ZERO);
        }
        t.record_tx(FrameNum::new(1), 0, BusTxKind::ReadShared, false, Nanos::ZERO);
        t.record_tx(FrameNum::new(3), 0, BusTxKind::ReadShared, false, Nanos::ZERO);
        let top = t.top_by_traffic(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0.vpn, VirtPageNum::new(2));
        // Tie between vpn 1 and 3 breaks by key order.
        assert_eq!(top[1].0.vpn, VirtPageNum::new(1));
    }

    #[test]
    fn transfer_ring_is_bounded() {
        let mut t = AttribTable::new(Nanos::from_us(100), 2, 2);
        let (asid, vpn) = key(1, 4);
        t.map_frame(FrameNum::new(7), asid, vpn);
        for i in 0..6u64 {
            t.record_tx(
                FrameNum::new(7),
                (i % 2) as usize,
                BusTxKind::ReadPrivate,
                false,
                Nanos::from_us(i),
            );
        }
        let p = t.page(PageKey { asid, vpn }).unwrap();
        assert_eq!(p.transfer_ring().count(), 2);
        assert_eq!(p.transfers(), 5);
    }

    #[test]
    fn json_document_has_summary_and_ranked_pages() {
        let mut t = mapped_table();
        let f = FrameNum::new(7);
        for i in 0..4u64 {
            t.record_tx(f, (i % 2) as usize, BusTxKind::ReadPrivate, false, Nanos::from_us(1 + i));
        }
        let doc = crate::json::parse(&attrib_json(&t, 10).to_string()).unwrap();
        let s = doc.get("summary").unwrap();
        assert_eq!(s.get("pages").unwrap().as_u64(), Some(1));
        assert_eq!(s.get("ping_pong_episodes").unwrap().as_u64(), Some(1));
        let pages = doc.get("pages").unwrap().as_arr().unwrap();
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].get("vpn").unwrap().as_u64(), Some(4));
        assert_eq!(pages[0].get("verdict").unwrap().as_str(), Some("ping-pong"));
        assert_eq!(pages[0].get("cpus").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("pages_omitted").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn tx_class_maps_kinds_both_ways() {
        for class in TxClass::ALL {
            assert_eq!(TxClass::from_kind(class.kind()), Some(class));
        }
        assert_eq!(TxClass::from_kind(BusTxKind::Notify), None);
        assert_eq!(TxClass::from_kind(BusTxKind::PlainRead), None);
    }
}
