//! Shared plumbing for the table/figure regeneration harnesses.
//!
//! Each `[[bench]]` target under `benches/` regenerates one artifact of
//! the paper's evaluation (`cargo bench -p vmp-bench --bench table1`,
//! `--bench fig4`, …); `cargo bench -p vmp-bench` regenerates all of
//! them. The harnesses print the simulated/modelled values next to the
//! paper's published numbers so drift is visible at a glance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vmp_cache::{CacheConfig, CacheSimStats, TagCache};
use vmp_trace::synth::{AtumParams, AtumWorkload};
use vmp_trace::Trace;
use vmp_types::PageSize;

/// The trace length used by the simulation harnesses: the paper's ATUM
/// traces run 358k–540k references (§5.2).
pub const TRACE_LEN: usize = 400_000;

/// The fixed seed for the ATUM-like workload, so every harness sees the
/// same trace.
pub const TRACE_SEED: u64 = 1986;

/// Generates the standard synthetic ATUM-like trace.
pub fn standard_trace() -> Trace {
    AtumWorkload::new(AtumParams::default(), TRACE_SEED).take(TRACE_LEN).collect()
}

/// Cold-start miss-ratio simulation of one cache geometry over a trace
/// (the Figure 4 primitive).
pub fn simulate_miss_ratio(
    page: PageSize,
    assoc: usize,
    total_bytes: u64,
    trace: &Trace,
) -> CacheSimStats {
    let config = CacheConfig::new(page, assoc, total_bytes).expect("valid geometry");
    let mut cache = TagCache::new(config);
    cache.run(trace.iter().copied())
}

/// Formats a nanosecond value as microseconds with two decimals.
pub fn us(ns: vmp_types::Nanos) -> String {
    format!("{:.2}", ns.as_micros_f64())
}

/// Prints a harness banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("\n=== {title} ===");
    println!("(reproduces {paper_ref} of Cheriton, Slavenburg & Boyle, ISCA 1986)\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_trace_has_expected_length() {
        let t = AtumWorkload::new(AtumParams::default(), TRACE_SEED).take(1000).count();
        assert_eq!(t, 1000);
    }

    #[test]
    fn miss_ratio_simulation_runs() {
        let trace: Trace =
            AtumWorkload::new(AtumParams::default(), TRACE_SEED).take(20_000).collect();
        let stats = simulate_miss_ratio(PageSize::S256, 4, 64 * 1024, &trace);
        assert_eq!(stats.refs, 20_000);
        assert!(stats.misses > 0);
    }

    #[test]
    fn us_formats() {
        assert_eq!(us(vmp_types::Nanos::from_ns(6_600)), "6.60");
    }
}
