//! Command-line trace utility: generate synthetic ATUM-like traces,
//! convert between the text and binary formats, and analyse locality.
//!
//! ```sh
//! vmp-trace-tool generate --refs 400000 --seed 1986 --out trace.vmpt
//! vmp-trace-tool convert trace.vmpt trace.txt
//! vmp-trace-tool analyze trace.vmpt
//! vmp-trace-tool simulate trace.vmpt --page 256 --assoc 4 --kb 128
//! vmp-trace-tool sweep trace.vmpt --assoc 4   # full geometry grid, parallel
//! vmp-trace-tool chaos --plans 100 --seed 0   # fault-injection soak
//! vmp-trace-tool timeline --out t.json        # Chrome trace of a contended run
//! vmp-trace-tool metrics --out m.json         # latency histograms + series
//! vmp-trace-tool top --n 10                   # hottest pages, ping-pong verdicts
//! vmp-trace-tool compare base.json new.json   # cross-run regression gate
//! vmp-trace-tool snapshot --workload 1 --at 500 --out s.vmpsnap
//! vmp-trace-tool resume s.vmpsnap --verify    # continue; check bit-identity
//! vmp-trace-tool state-diff a.vmpsnap b.vmpsnap  # first divergent field
//! vmp-trace-tool golden --dir golden --check  # golden-state corpus gate
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::sync::Arc;

use vmp_cache::{classify_misses, CacheConfig};
use vmp_core::workloads::{LockDiscipline, LockWorker, SweepWorker};
use vmp_core::{Machine, MachineConfig, MachineSnapshot, ObsConfig, WatchdogConfig};
use vmp_faults::{FaultPlan, FaultRates};
use vmp_obs::compare::{compare_metrics, CompareThresholds};
use vmp_obs::{chrome_trace, json, metrics_json, MachineObs, TxClass};
use vmp_sweep::{CsvTable, SweepJob, SweepPool};
use vmp_trace::synth::{AtumParams, AtumWorkload};
use vmp_trace::{
    read_binary, read_text, reuse_distances, working_set_sizes, write_binary, write_text, Trace,
};
use vmp_types::{Asid, Nanos, PageSize, VirtAddr};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  vmp-trace-tool generate [--refs N] [--seed S] --out FILE\n  \
         vmp-trace-tool convert IN OUT\n  \
         vmp-trace-tool analyze FILE [--page BYTES]\n  \
         vmp-trace-tool simulate FILE [--page BYTES] [--assoc N] [--kb N]\n  \
         vmp-trace-tool sweep FILE [--assoc N] [--threads N] [--csv FILE]\n  \
         vmp-trace-tool chaos [--plans N] [--seed S] [--threads N]\n  \
         vmp-trace-tool timeline [--procs N] [--page BYTES] [--workload W] [--out FILE]\n  \
         vmp-trace-tool metrics [--procs N] [--page BYTES] [--workload W] [--out FILE]\n  \
         vmp-trace-tool top [--n N] [--procs N] [--page BYTES] [--workload W] [--out FILE]\n  \
         vmp-trace-tool compare BASELINE CURRENT [--threshold PCT]\n  \
         vmp-trace-tool snapshot --workload N [--seed S] [--at US] --out FILE\n  \
         vmp-trace-tool resume FILE [--verify]\n  \
         vmp-trace-tool state-diff A B\n  \
         vmp-trace-tool golden [--dir DIR] [--check]\n\n\
         files ending in .txt use the text format; anything else is binary;\n\
         sweep runs the full page-size x cache-size grid in parallel\n\
         (thread count: --threads, else VMP_THREADS, else all cores), adds\n\
         per-cell contention attribution of the contended workload at each\n\
         geometry, and with --csv writes one machine-readable row per cell;\n\
         chaos soaks the machine under N seeded fault plans per workload,\n\
         asserting faults cost time but never correctness, and replays the\n\
         first failing seed with the event recorder on (timeline dumped to\n\
         chaos-wW-sS.trace.json);\n\
         timeline records a contended N-processor run (default 4) and emits\n\
         a Chrome trace-event document (load in Perfetto / chrome://tracing);\n\
         metrics emits the same run's latency histograms, windowed series,\n\
         per-page attribution and machine report as JSON; both print to\n\
         stdout without --out;\n\
         top ranks the run's hottest pages by consistency-protocol traffic\n\
         with per-CPU breakdowns and ping-pong/false-sharing verdicts\n\
         (--workload: contended (default), lock, false; --page: 128/256/512);\n\
         compare diffs two metrics JSON files (bus utilization, miss-service\n\
         p50/p99, refs/s, ping-pong episodes) against relative thresholds\n\
         (--threshold PCT applies one percentage to every metric) and exits\n\
         non-zero on regression;\n\
         snapshot runs chaos workload N (0..=3, optionally under fault seed\n\
         S) until --at simulated microseconds and saves the complete machine\n\
         state; resume loads it, finishes the run, and with --verify asserts\n\
         the result is bit-identical to the uninterrupted run; state-diff\n\
         prints the first divergent field/byte of two snapshots; golden\n\
         regenerates the committed golden-state corpus (--check byte-compares\n\
         against DIR instead of writing, exits non-zero and state-diffs on\n\
         mismatch)"
    );
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let result = if path.ends_with(".txt") {
        read_text(BufReader::new(file))
    } else {
        read_binary(BufReader::new(file))
    };
    result.map_err(|e| format!("read {path}: {e}"))
}

fn store(path: &str, trace: &Trace) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let result = if path.ends_with(".txt") {
        write_text(BufWriter::new(file), trace)
    } else {
        write_binary(BufWriter::new(file), trace)
    };
    result.map_err(|e| format!("write {path}: {e}"))
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn parse_page(args: &[String]) -> Result<PageSize, String> {
    let bytes: u64 = flag(args, "--page")
        .unwrap_or_else(|| "256".into())
        .parse()
        .map_err(|e| format!("bad --page: {e}"))?;
    PageSize::new(bytes).map_err(|e| e.to_string())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => {
            let refs: usize = flag(&args, "--refs")
                .unwrap_or_else(|| "400000".into())
                .parse()
                .map_err(|e| format!("bad --refs: {e}"))?;
            let seed: u64 = flag(&args, "--seed")
                .unwrap_or_else(|| "1986".into())
                .parse()
                .map_err(|e| format!("bad --seed: {e}"))?;
            let out = flag(&args, "--out").ok_or("generate requires --out FILE")?;
            let trace: Trace = AtumWorkload::new(AtumParams::default(), seed).take(refs).collect();
            store(&out, &trace)?;
            println!("wrote {} references to {out}", trace.len());
            println!("{}", trace.stats());
            Ok(())
        }
        Some("convert") => {
            let [_, input, output] = args.as_slice() else {
                return Err("convert requires IN and OUT".into());
            };
            let trace = load(input)?;
            store(output, &trace)?;
            println!("converted {} references: {input} -> {output}", trace.len());
            Ok(())
        }
        Some("analyze") => {
            let input = args.get(1).ok_or("analyze requires FILE")?;
            let page = parse_page(&args)?;
            let trace = load(input)?;
            println!("{}", trace.stats());
            let h = reuse_distances(trace.iter().copied(), page);
            println!(
                "reuse distances at {page}: cold {:.2}%, miss-ratio estimates:",
                100.0 * h.cold_fraction()
            );
            for capacity in [64u64, 256, 512, 1024] {
                println!(
                    "  fully-assoc LRU of {capacity:4} pages ({:4} KB): {:.3}%",
                    capacity * page.bytes() / 1024,
                    100.0 * h.fraction_at_least(capacity)
                );
            }
            let ws = working_set_sizes(trace.iter().copied(), page, 50_000);
            println!("working set per 50k-ref window (pages): {ws:?}");
            Ok(())
        }
        Some("simulate") => {
            let input = args.get(1).ok_or("simulate requires FILE")?;
            let page = parse_page(&args)?;
            let assoc: usize = flag(&args, "--assoc")
                .unwrap_or_else(|| "4".into())
                .parse()
                .map_err(|e| format!("bad --assoc: {e}"))?;
            let kb: u64 = flag(&args, "--kb")
                .unwrap_or_else(|| "128".into())
                .parse()
                .map_err(|e| format!("bad --kb: {e}"))?;
            let config = CacheConfig::new(page, assoc, kb * 1024).map_err(|e| e.to_string())?;
            let trace = load(input)?;
            let c = classify_misses(config, trace.iter().copied());
            println!("{config}: miss ratio {:.3}%", 100.0 * c.miss_ratio());
            println!(
                "  cold {} + capacity {} + conflict {} = {} misses / {} refs",
                c.cold,
                c.capacity,
                c.conflict,
                c.total_misses(),
                c.refs
            );
            Ok(())
        }
        Some("sweep") => {
            let input = args.get(1).ok_or("sweep requires FILE")?;
            let assoc: usize = flag(&args, "--assoc")
                .unwrap_or_else(|| "4".into())
                .parse()
                .map_err(|e| format!("bad --assoc: {e}"))?;
            let trace = Arc::new(load(input)?);

            let mut pool = SweepPool::new();
            if let Some(n) = flag(&args, "--threads") {
                pool = pool.threads(n.parse().map_err(|e| format!("bad --threads: {e}"))?);
            }
            let mut jobs = Vec::new();
            let mut cells = Vec::new();
            for kb in [64u64, 128, 256] {
                for page in PageSize::PROTOTYPE_SIZES {
                    let config =
                        CacheConfig::new(page, assoc, kb * 1024).map_err(|e| e.to_string())?;
                    jobs.push(SweepJob::new(format!("{kb}KB/{page}"), config));
                    cells.push((kb, page));
                }
            }
            println!(
                "sweeping {} geometries over {} references on {} thread(s)",
                jobs.len(),
                trace.len(),
                pool.effective_threads()
            );
            let shared = Arc::clone(&trace);
            let start = std::time::Instant::now();
            let results = pool.run(jobs, move |job| {
                let misses = classify_misses(job.input, shared.iter().copied());
                let attrib = attrib_cell(job.input);
                (misses, attrib)
            });
            let wall = start.elapsed();
            let mut csv = CsvTable::new(&[
                "label",
                "cache_kb",
                "page_bytes",
                "refs",
                "misses",
                "miss_pct",
                "cold",
                "capacity",
                "conflict",
                "ownership_transfers",
                "ping_pong_episodes",
                "true_sharing_bounces",
                "false_sharing_bounces",
                "bus_util_pct",
            ]);
            for (&(kb, page), (c, cell)) in cells.iter().zip(&results) {
                let cell = cell.as_ref().map_err(|e| e.clone())?;
                println!(
                    "  {kb:3} KB @ {page}: miss {:.3}% (cold {} + capacity {} + conflict {}); \
                     contended: {} transfers, {} ping-pong ({} true / {} false), bus {:.1}%",
                    100.0 * c.miss_ratio(),
                    c.cold,
                    c.capacity,
                    c.conflict,
                    cell.transfers,
                    cell.episodes,
                    cell.true_bounces,
                    cell.false_bounces,
                    100.0 * cell.bus_util
                );
                csv.row(&[
                    format!("{kb}KB/{page}"),
                    kb.to_string(),
                    page.bytes().to_string(),
                    c.refs.to_string(),
                    c.total_misses().to_string(),
                    format!("{:.4}", 100.0 * c.miss_ratio()),
                    c.cold.to_string(),
                    c.capacity.to_string(),
                    c.conflict.to_string(),
                    cell.transfers.to_string(),
                    cell.episodes.to_string(),
                    cell.true_bounces.to_string(),
                    cell.false_bounces.to_string(),
                    format!("{:.2}", 100.0 * cell.bus_util),
                ]);
            }
            if let Some(path) = flag(&args, "--csv") {
                std::fs::write(&path, csv.render()).map_err(|e| format!("write {path}: {e}"))?;
                println!("wrote {} csv rows to {path}", csv.rows());
            }
            let total_refs = trace.len() as u64 * results.len() as u64;
            println!(
                "swept {total_refs} simulated references in {:.2}s ({:.1}M refs/s)",
                wall.as_secs_f64(),
                total_refs as f64 / wall.as_secs_f64() / 1e6
            );
            Ok(())
        }
        Some("chaos") => {
            let plans: u64 = flag(&args, "--plans")
                .unwrap_or_else(|| "100".into())
                .parse()
                .map_err(|e| format!("bad --plans: {e}"))?;
            let base: u64 = flag(&args, "--seed")
                .unwrap_or_else(|| "0".into())
                .parse()
                .map_err(|e| format!("bad --seed: {e}"))?;
            let mut pool = SweepPool::new();
            if let Some(n) = flag(&args, "--threads") {
                pool = pool.threads(n.parse().map_err(|e| format!("bad --threads: {e}"))?);
            }

            // Zero-fault oracle per workload: the probe words every
            // faulted run must reproduce exactly.
            let oracle: Vec<Vec<Option<u32>>> = (0..CHAOS_WORKLOADS)
                .map(|w| {
                    let mut m = chaos_machine(w, false);
                    m.run().map_err(|e| format!("oracle workload {w}: {e}"))?;
                    m.validate().map_err(|e| format!("oracle workload {w} invalid: {e}"))?;
                    Ok(chaos_probes(&m))
                })
                .collect::<Result<_, String>>()?;

            let mut jobs = Vec::new();
            for w in 0..CHAOS_WORKLOADS {
                for seed in base..base + plans {
                    jobs.push(SweepJob::new(format!("w{w}/s{seed}"), (w, seed)));
                }
            }
            println!(
                "soaking {} fault plans ({} workloads x {} seeds from {}) on {} thread(s)",
                jobs.len(),
                CHAOS_WORKLOADS,
                plans,
                base,
                pool.effective_threads()
            );
            let start = std::time::Instant::now();
            let outcomes = pool.run(jobs, |job| {
                let (w, seed) = job.input;
                let rates =
                    if seed.is_multiple_of(2) { FaultRates::light() } else { FaultRates::heavy() };
                let mut m = chaos_machine(w, false);
                m.install_fault_hook(FaultPlan::new(seed, rates));
                let error = m.run().err().map(|e| e.to_string());
                let invalid = m.validate().err();
                (w, seed, error, invalid, chaos_probes(&m), *m.fault_stats())
            });
            let wall = start.elapsed();

            let mut failures = 0u64;
            let mut first_fail: Option<(usize, u64)> = None;
            let mut totals = vmp_core::FaultStats::default();
            for (w, seed, error, invalid, probes, faults) in &outcomes {
                let what = if let Some(e) = error {
                    Some(format!("run failed: {e}"))
                } else if let Some(e) = invalid {
                    Some(format!("validate failed: {e}"))
                } else if probes != &oracle[*w] {
                    Some("final memory diverged from zero-fault oracle".into())
                } else {
                    None
                };
                if let Some(what) = what {
                    eprintln!("FAIL workload {w} seed {seed}: {what}");
                    failures += 1;
                    first_fail = first_fail.or(Some((*w, *seed)));
                }
                totals.injected_aborts += faults.injected_aborts;
                totals.dropped_words += faults.dropped_words;
                totals.forced_overflows += faults.forced_overflows;
                totals.copier_retries += faults.copier_retries;
                totals.stalls += faults.stalls;
            }
            println!(
                "absorbed {} faults: {} aborts, {} dropped words, {} forced overflows, \
                 {} copier retries, {} stalls",
                totals.total(),
                totals.injected_aborts,
                totals.dropped_words,
                totals.forced_overflows,
                totals.copier_retries,
                totals.stalls
            );
            println!(
                "{} runs in {:.2}s: {} ok, {} failed",
                outcomes.len(),
                wall.as_secs_f64(),
                outcomes.len() as u64 - failures,
                failures
            );
            if failures > 0 {
                // Replay the first failing seed with the recorder on so
                // there is a timeline to post-mortem, not just a FAIL line.
                if let Some((w, seed)) = first_fail {
                    let path = format!("chaos-w{w}-s{seed}.trace.json");
                    match dump_chaos_timeline(w, seed, &path) {
                        Ok(events) => eprintln!(
                            "replayed workload {w} seed {seed} with recording on: \
                             {events} events -> {path}"
                        ),
                        Err(e) => eprintln!("timeline replay failed: {e}"),
                    }
                    let snap_path = format!("chaos-w{w}-s{seed}.vmpsnap");
                    match dump_chaos_snapshot(w, seed, &snap_path) {
                        Ok(at) => eprintln!(
                            "captured last good machine state ({} us in) -> {snap_path} \
                             (inspect with state-diff, continue with resume)",
                            at.as_ns() / 1000
                        ),
                        Err(e) => eprintln!("snapshot capture failed: {e}"),
                    }
                }
                return Err(format!("{failures} chaos runs violated fault transparency"));
            }
            Ok(())
        }
        Some("timeline") => {
            let (mut m, procs) = observed_machine(&args)?;
            let report = m.run().map_err(|e| format!("run: {e}"))?;
            let obs = m.obs().expect("recording is enabled");
            warn_if_dropped(obs);
            let doc = chrome_trace(obs).to_string();
            match flag(&args, "--out") {
                Some(path) => {
                    std::fs::write(&path, &doc).map_err(|e| format!("write {path}: {e}"))?;
                    println!(
                        "wrote {} events ({} dropped, {procs} cpu tracks + bus) over {} \
                         simulated us to {path}",
                        recorded_events(obs),
                        obs.total_dropped(),
                        report.elapsed.as_ns() / 1000
                    );
                }
                None => println!("{doc}"),
            }
            Ok(())
        }
        Some("metrics") => {
            let (mut m, _) = observed_machine(&args)?;
            let report = m.run().map_err(|e| format!("run: {e}"))?;
            let obs = m.obs().expect("recording is enabled");
            let doc = metrics_json(obs, report.elapsed).set("report", report.to_json());
            match flag(&args, "--out") {
                Some(path) => {
                    std::fs::write(&path, doc.to_string())
                        .map_err(|e| format!("write {path}: {e}"))?;
                    println!(
                        "wrote metrics ({} misses timed, {} arb waits) to {path}",
                        obs.miss_service.count(),
                        obs.arb_wait.count()
                    );
                }
                None => println!("{doc}"),
            }
            Ok(())
        }
        Some("top") => {
            let n: usize = flag(&args, "--n")
                .unwrap_or_else(|| "10".into())
                .parse()
                .map_err(|e| format!("bad --n: {e}"))?;
            let (mut m, procs) = observed_machine(&args)?;
            let page_bytes = m.page_size().bytes();
            let report = m.run().map_err(|e| format!("run: {e}"))?;
            let obs = m.obs().expect("recording is enabled");
            warn_if_dropped(obs);
            let attrib = obs.attrib().expect("attribution is enabled");
            let s = attrib.summary();
            println!(
                "{procs}-processor contended run: {} us simulated, bus {:.1}% busy",
                report.elapsed.as_ns() / 1000,
                100.0 * report.bus_utilization()
            );
            println!(
                "{} pages touched; {} ownership transfers, {} ping-pong episodes \
                 ({} true-sharing / {} false-sharing / {} unclassified bounces)",
                s.pages,
                s.transfers,
                s.episodes,
                s.true_bounces,
                s.false_bounces,
                s.unknown_bounces
            );
            println!("top {} pages by consistency-protocol traffic:", n.min(attrib.page_count()));
            println!(
                "{:>4}  {:>14}  {:>7}  {:>5} {:>5} {:>5} {:>5}  {:>6}  {:>7}  {:>5} {:>3}  verdict",
                "rank",
                "page",
                "traffic",
                "rs",
                "rp",
                "ao",
                "wb",
                "aborts",
                "svc_us",
                "xfers",
                "pp"
            );
            for (rank, (key, p)) in attrib.top_by_traffic(n).iter().enumerate() {
                println!(
                    "{:>4}  {:>14}  {:>7}  {:>5} {:>5} {:>5} {:>5}  {:>6}  {:>7}  {:>5} {:>3}  {}",
                    rank + 1,
                    format!("{}:{:#x}", key.asid.raw(), key.vpn.raw() * page_bytes),
                    p.traffic(),
                    p.count(TxClass::ReadShared),
                    p.count(TxClass::ReadPrivate),
                    p.count(TxClass::AssertOwnership),
                    p.count(TxClass::WriteBack),
                    p.aborts(),
                    p.service().as_ns() / 1000,
                    p.transfers(),
                    p.episodes(),
                    p.verdict().label()
                );
                for cpu in 0..attrib.cpus() {
                    if p.cpu_traffic(cpu) == 0 && p.cpu_aborts(cpu) == 0 {
                        continue;
                    }
                    let (reads, writes) = p.cpu_accesses(cpu);
                    println!(
                        "      cpu{cpu}: traffic {}, aborts {}, reads {reads}, writes {writes}, \
                         footprint {:#x}",
                        p.cpu_traffic(cpu),
                        p.cpu_aborts(cpu),
                        p.cpu_footprint(cpu)
                    );
                }
            }
            if let Some(path) = flag(&args, "--out") {
                let doc = metrics_json(obs, report.elapsed).set("report", report.to_json());
                std::fs::write(&path, doc.to_string()).map_err(|e| format!("write {path}: {e}"))?;
                println!("wrote metrics (with attribution) to {path}");
            }
            Ok(())
        }
        Some("compare") => {
            let base_path = args.get(1).ok_or("compare requires BASELINE and CURRENT files")?;
            let cur_path = args.get(2).ok_or("compare requires BASELINE and CURRENT files")?;
            let thresholds = match flag(&args, "--threshold") {
                Some(pct) => {
                    let pct: f64 = pct.parse().map_err(|e| format!("bad --threshold: {e}"))?;
                    if !(0.0..=1000.0).contains(&pct) {
                        return Err("--threshold must be a percentage in 0..=1000".into());
                    }
                    CompareThresholds::uniform(pct / 100.0)
                }
                None => CompareThresholds::default(),
            };
            let read = |path: &str| -> Result<json::Value, String> {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
                json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
            };
            let base = read(base_path)?;
            let cur = read(cur_path)?;
            let out = compare_metrics(&base, &cur, &thresholds)?;
            println!("comparing {cur_path} against baseline {base_path}:");
            for c in &out.checks {
                println!(
                    "  {:<22} {:>14.3} -> {:>14.3}  {:>+8.2}% (limit {:.0}%)  {}",
                    c.metric,
                    c.baseline,
                    c.current,
                    100.0 * c.change,
                    100.0 * c.threshold,
                    if c.regressed { "REGRESSED" } else { "ok" }
                );
            }
            for name in &out.skipped {
                println!("  {name:<22} skipped (absent from both documents)");
            }
            if out.passed() {
                println!("compare: PASS ({} metrics checked)", out.checks.len());
                Ok(())
            } else {
                Err(format!(
                    "compare: {} of {} metrics regressed",
                    out.regressions(),
                    out.checks.len()
                ))
            }
        }
        Some("snapshot") => {
            let workload: usize = flag(&args, "--workload")
                .ok_or("snapshot requires --workload N (0..=3)")?
                .parse()
                .map_err(|e| format!("bad --workload: {e}"))?;
            if workload >= CHAOS_WORKLOADS {
                return Err(format!("--workload must be 0..={}", CHAOS_WORKLOADS - 1));
            }
            let at_us: u64 = flag(&args, "--at")
                .unwrap_or_else(|| "500".into())
                .parse()
                .map_err(|e| format!("bad --at: {e}"))?;
            let seed: Option<u64> = match flag(&args, "--seed") {
                Some(s) => Some(s.parse().map_err(|e| format!("bad --seed: {e}"))?),
                None => None,
            };
            let out = flag(&args, "--out").ok_or("snapshot requires --out FILE")?;
            let snap = take_chaos_snapshot(workload, seed, Nanos::from_us(at_us))?;
            snap.save(&out).map_err(|e| format!("write {out}: {e}"))?;
            println!(
                "snapshotted workload {workload} at {at_us} us{} -> {out} ({} bytes)",
                seed.map(|s| format!(" (fault seed {s})")).unwrap_or_default(),
                snap.to_bytes().len()
            );
            Ok(())
        }
        Some("resume") => {
            let input = args.get(1).ok_or("resume requires FILE")?;
            let snap = MachineSnapshot::load(input).map_err(|e| e.to_string())?;
            let (workload, seed) = chaos_snapshot_meta(&snap)?;
            let mut m = resume_chaos(&snap, workload, seed)?;
            let report = m.run().map_err(|e| format!("resumed run: {e}"))?;
            m.validate().map_err(|e| format!("resumed run invalid: {e}"))?;
            println!(
                "resumed workload {workload}{}: finished at {} us, {} refs, {} misses",
                seed.map(|s| format!(" (fault seed {s})")).unwrap_or_default(),
                report.elapsed.as_ns() / 1000,
                report.total_refs(),
                report.total_misses()
            );
            if args.iter().any(|a| a == "--verify") {
                let mut reference = chaos_machine(workload, false);
                if let Some(s) = seed {
                    reference.install_fault_hook(FaultPlan::new(s, chaos_rates(s)));
                }
                let want = reference.run().map_err(|e| format!("reference run: {e}"))?;
                if want.to_json().to_string() != report.to_json().to_string()
                    || chaos_probes(&reference) != chaos_probes(&m)
                {
                    return Err("resumed run diverged from the uninterrupted run".into());
                }
                println!("verify: resumed run is bit-identical to the uninterrupted run");
            }
            Ok(())
        }
        Some("state-diff") => {
            let [_, a_path, b_path] = args.as_slice() else {
                return Err("state-diff requires two snapshot files".into());
            };
            let a = MachineSnapshot::load(a_path).map_err(|e| e.to_string())?;
            let b = MachineSnapshot::load(b_path).map_err(|e| e.to_string())?;
            match MachineSnapshot::diff(&a, &b) {
                None => {
                    println!("snapshots are identical");
                    Ok(())
                }
                Some(divergence) => {
                    println!("first divergence: {divergence}");
                    Err(format!("{a_path} and {b_path} differ"))
                }
            }
        }
        Some("golden") => {
            let dir = flag(&args, "--dir").unwrap_or_else(|| "golden".into());
            let check = args.iter().any(|a| a == "--check");
            std::fs::create_dir_all(&dir).map_err(|e| format!("create {dir}: {e}"))?;
            let mut mismatches = 0u64;
            for (workload, seed, at_us) in GOLDEN_CELLS {
                let name = match seed {
                    Some(s) => format!("chaos-w{workload}-s{s}.vmpsnap"),
                    None => format!("chaos-w{workload}.vmpsnap"),
                };
                let path = format!("{dir}/{name}");
                let snap = take_chaos_snapshot(workload, seed, Nanos::from_us(at_us))?;
                let bytes = snap.to_bytes();
                if check {
                    let committed = MachineSnapshot::load(&path).map_err(|e| e.to_string())?;
                    if committed.to_bytes() == bytes {
                        println!("  {name}: ok ({} bytes)", bytes.len());
                    } else {
                        mismatches += 1;
                        let divergence = MachineSnapshot::diff(&committed, &snap)
                            .unwrap_or_else(|| "container framing differs".into());
                        eprintln!("  {name}: MISMATCH — first divergence: {divergence}");
                    }
                } else {
                    std::fs::write(&path, &bytes).map_err(|e| format!("write {path}: {e}"))?;
                    println!("  wrote {path} ({} bytes)", bytes.len());
                }
            }
            if mismatches > 0 {
                Err(format!(
                    "{mismatches} golden snapshots diverged — machine state drifted; \
                     if intentional, regenerate with `vmp-trace-tool golden --dir {dir}`"
                ))
            } else {
                if check {
                    println!("golden corpus matches ({} cells)", GOLDEN_CELLS.len());
                }
                Ok(())
            }
        }
        _ => {
            usage();
            Err(String::new())
        }
    }
}

/// The committed golden-state corpus: (workload, fault seed, snapshot
/// time in simulated microseconds). Chosen to land mid-flight — caches
/// warm, locks contended, faults pending — so a byte-level match pins
/// the *entire* machine state, not just a quiesced shell.
const GOLDEN_CELLS: [(usize, Option<u64>, u64); 6] = [
    (0, None, 500),
    (1, None, 500),
    (2, None, 500),
    (3, None, 500),
    (1, Some(7), 500),
    (3, Some(13), 350),
];

/// The fault rates the chaos soak pairs with a seed (even → light,
/// odd → heavy); snapshot/resume reuse it so seeds mean the same thing.
fn chaos_rates(seed: u64) -> FaultRates {
    if seed.is_multiple_of(2) {
        FaultRates::light()
    } else {
        FaultRates::heavy()
    }
}

/// Runs chaos workload `workload` (optionally faulted) until `at` and
/// captures a snapshot, tagging it with the metadata `resume` needs.
fn take_chaos_snapshot(
    workload: usize,
    seed: Option<u64>,
    at: Nanos,
) -> Result<MachineSnapshot, String> {
    let mut m = chaos_machine(workload, false);
    if let Some(s) = seed {
        m.install_fault_hook(FaultPlan::new(s, chaos_rates(s)));
    }
    m.run_until(at).map_err(|e| format!("run to {at}: {e}"))?;
    let mut snap = m.snapshot().map_err(|e| e.to_string())?;
    let mut meta = json::Value::obj().set("workload", workload as u64).set("at", at.as_ns());
    meta = match seed {
        Some(s) => meta.set("seed", s),
        None => meta.set("seed", json::Value::Null),
    };
    snap.set_meta(meta);
    Ok(snap)
}

/// Reads the workload/seed tag [`take_chaos_snapshot`] wrote.
fn chaos_snapshot_meta(snap: &MachineSnapshot) -> Result<(usize, Option<u64>), String> {
    let meta = snap.meta().ok_or("snapshot carries no chaos metadata (not taken by this tool?)")?;
    let workload = meta
        .get("workload")
        .and_then(json::Value::as_u64)
        .ok_or("snapshot metadata lacks a workload tag")? as usize;
    if workload >= CHAOS_WORKLOADS {
        return Err(format!("snapshot names unknown workload {workload}"));
    }
    let seed = meta.get("seed").and_then(json::Value::as_u64);
    Ok((workload, seed))
}

/// Resumes a chaos snapshot with fresh program/hook instances.
fn resume_chaos(
    snap: &MachineSnapshot,
    workload: usize,
    seed: Option<u64>,
) -> Result<Machine, String> {
    let config = chaos_config(false);
    let page = config.cache.page_size().bytes();
    let programs = chaos_programs(workload, page).into_iter().map(Some).collect();
    let hook = seed.map(|s| Box::new(FaultPlan::new(s, chaos_rates(s))) as _);
    Machine::resume(config, snap, programs, hook).map_err(|e| e.to_string())
}

/// Which program mix the observed (`timeline`/`metrics`/`top`) run
/// uses.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ObservedWorkload {
    /// Two lock fighters plus false-sharing sweepers (the default mix).
    Contended,
    /// Every processor fights over one spin lock: pure true sharing.
    Lock,
    /// Every processor sweeps its own interleaved words of the same
    /// pages: pure false sharing.
    FalseShare,
}

/// Builds the deterministic contended workload the `timeline`,
/// `metrics` and `top` subcommands record. In the default mix two
/// processors fight over a spin lock and its shared counter while the
/// remaining processors false-share a pair of pages, so misses,
/// upgrades, consistency interrupts, retries and write-backs all show
/// up on the recorded tracks; `--workload lock`/`false` isolate the
/// true- and false-sharing halves, and `--page` changes the cache-page
/// geometry.
fn observed_machine(args: &[String]) -> Result<(Machine, usize), String> {
    let procs: usize = flag(args, "--procs")
        .unwrap_or_else(|| "4".into())
        .parse()
        .map_err(|e| format!("bad --procs: {e}"))?;
    if procs < 2 {
        return Err("--procs must be at least 2".into());
    }
    let workload = match flag(args, "--workload").as_deref() {
        None | Some("contended") => ObservedWorkload::Contended,
        Some("lock") => ObservedWorkload::Lock,
        Some("false") => ObservedWorkload::FalseShare,
        Some(w) => return Err(format!("bad --workload {w:?} (want contended, lock or false)")),
    };
    let small = MachineConfig::small();
    let cache = match flag(args, "--page") {
        Some(bytes) => {
            let bytes: u64 = bytes.parse().map_err(|e| format!("bad --page: {e}"))?;
            let page = PageSize::new(bytes).map_err(|e| e.to_string())?;
            CacheConfig::new(page, 2, 8 * 1024).map_err(|e| e.to_string())?
        }
        None => small.cache,
    };
    let m = build_observed(procs, cache, workload)?;
    Ok((m, procs))
}

/// Builds an observed machine (recording + attribution on) running the
/// given workload mix at the given cache geometry.
fn build_observed(
    procs: usize,
    cache: CacheConfig,
    workload: ObservedWorkload,
) -> Result<Machine, String> {
    let mut config = MachineConfig::small();
    config.processors = procs;
    config.cache = cache;
    config.validate_each_step = false;
    config.max_time = Nanos::from_ms(60_000);
    config.obs = ObsConfig::with_attrib();
    let page = config.cache.page_size().bytes();
    let mut m = Machine::build(config).map_err(|e| format!("build: {e}"))?;
    for cpu in 0..procs {
        let lock_worker = match workload {
            ObservedWorkload::Contended => cpu < 2,
            ObservedWorkload::Lock => true,
            ObservedWorkload::FalseShare => false,
        };
        if lock_worker {
            m.set_program(
                cpu,
                LockWorker::new(
                    LockDiscipline::Spin,
                    VirtAddr::new(0x1000),
                    VirtAddr::new(0x2000),
                    16,
                    Nanos::from_us(2),
                    Nanos::from_us(3),
                ),
            )
            .expect("program slot exists");
        } else {
            // One private word per CPU, interleaved on the same pages.
            let lane = match workload {
                ObservedWorkload::Contended => cpu as u64 - 2,
                _ => cpu as u64,
            };
            m.set_program(
                cpu,
                SweepWorker::new(VirtAddr::new(0x4000 + 4 * lane), 2 * page / 8, 8, 3, true),
            )
            .expect("program slot exists");
        }
    }
    Ok(m)
}

/// Headline attribution numbers of one sweep grid cell, measured by
/// running the deterministic contended workload at that geometry.
struct CellAttrib {
    transfers: u64,
    episodes: u64,
    true_bounces: u64,
    false_bounces: u64,
    bus_util: f64,
}

/// Runs the contended 4-processor workload at one cache geometry and
/// extracts its attribution summary (pure: safe inside the sweep pool).
fn attrib_cell(cache: CacheConfig) -> Result<CellAttrib, String> {
    let mut m = build_observed(4, cache, ObservedWorkload::Contended)?;
    let report = m.run().map_err(|e| format!("attrib cell: {e}"))?;
    let s = m
        .obs()
        .and_then(|o| o.attrib())
        .map(|a| a.summary())
        .ok_or("attrib cell: attribution missing")?;
    Ok(CellAttrib {
        transfers: s.transfers,
        episodes: s.episodes,
        true_bounces: s.true_bounces,
        false_bounces: s.false_bounces,
        bus_util: report.bus_utilization(),
    })
}

/// Satellite guard: a wrapped ring means the exported timeline is
/// missing its oldest events — never let that pass silently.
fn warn_if_dropped(obs: &MachineObs) {
    let dropped = obs.total_dropped();
    if dropped > 0 {
        eprintln!(
            "warning: {dropped} events were dropped (a ring wrapped); the oldest events \
             are missing — raise ObsConfig::ring_capacity for a complete timeline"
        );
    }
}

/// Events currently held across all of a recorder's rings.
fn recorded_events(obs: &vmp_obs::MachineObs) -> u64 {
    (0..obs.processors()).map(|c| obs.cpu_recorded(c)).sum::<u64>() + obs.bus_recorded()
}

/// Replays one failing chaos run with the recorder enabled and writes
/// its Chrome trace timeline for post-mortem. Returns the event count.
fn dump_chaos_timeline(workload: usize, seed: u64, path: &str) -> Result<u64, String> {
    let mut m = chaos_machine(workload, true);
    let rates = if seed.is_multiple_of(2) { FaultRates::light() } else { FaultRates::heavy() };
    m.install_fault_hook(FaultPlan::new(seed, rates));
    let _ = m.run(); // the failure is the point; record whatever happened
    let obs = m.obs().expect("chaos replay enables recording");
    std::fs::write(path, chrome_trace(obs).to_string())
        .map_err(|e| format!("write {path}: {e}"))?;
    Ok(recorded_events(obs))
}

/// Re-runs one failing chaos seed in time slices, snapshotting after
/// each slice that still completes cleanly, and writes the last good
/// snapshot — a minimized artifact that resumes straight into the
/// failure window. Returns the simulated time of the saved state.
fn dump_chaos_snapshot(workload: usize, seed: u64, path: &str) -> Result<Nanos, String> {
    let mut m = chaos_machine(workload, false);
    m.install_fault_hook(FaultPlan::new(seed, chaos_rates(seed)));
    let slice = Nanos::from_ns(chaos_config(false).max_time.as_ns() / 16);
    let mut last = m.snapshot().map_err(|e| e.to_string())?;
    let mut last_at = Nanos::ZERO;
    for i in 1..=16u64 {
        let deadline = Nanos::from_ns(slice.as_ns() * i);
        if m.run_until(deadline).is_err() || m.validate().is_err() {
            break;
        }
        match m.snapshot() {
            Ok(snap) => {
                last = snap;
                last_at = m.now();
            }
            Err(_) => break,
        }
    }
    let mut meta = json::Value::obj().set("workload", workload as u64).set("at", last_at.as_ns());
    meta = meta.set("seed", seed);
    last.set_meta(meta);
    last.save(path).map_err(|e| format!("write {path}: {e}"))?;
    Ok(last_at)
}

/// Number of distinct workloads the `chaos` subcommand soaks.
const CHAOS_WORKLOADS: usize = 4;

/// The machine configuration every chaos workload runs under. `record`
/// switches the event recorder on for failing-seed replays.
fn chaos_config(record: bool) -> MachineConfig {
    let mut config = MachineConfig::small();
    config.validate_each_step = false;
    config.audit_every = Some(64);
    config.watchdog = Some(WatchdogConfig::default());
    config.max_time = Nanos::from_ms(60_000);
    if record {
        config.obs = ObsConfig::on();
    }
    config
}

/// Fresh program instances for one chaos workload — used both to build
/// the machine and to supply `Machine::resume` with rewindable copies,
/// so the two can never drift apart.
fn chaos_programs(workload: usize, page: u64) -> Vec<Box<dyn vmp_core::Program>> {
    match workload {
        // Disjoint page sweeps: no sharing at all.
        0 => vec![
            Box::new(SweepWorker::new(VirtAddr::new(0x4000), 2 * page / 4, 4, 3, true)),
            Box::new(SweepWorker::new(VirtAddr::new(0x8000), 2 * page / 4, 4, 3, true)),
        ],
        // A shared counter under spin (1) and notification (2) locks.
        1 | 2 => {
            let d = if workload == 1 { LockDiscipline::Spin } else { LockDiscipline::Notify };
            (0..2)
                .map(|_| -> Box<dyn vmp_core::Program> {
                    Box::new(LockWorker::new(
                        d,
                        VirtAddr::new(0x1000),
                        VirtAddr::new(0x2000),
                        8,
                        Nanos::from_us(2),
                        Nanos::from_us(3),
                    ))
                })
                .collect()
        }
        // False sharing: interleaved words of the same pages, one writer
        // per word, maximal ownership ping-pong.
        _ => vec![
            Box::new(SweepWorker::new(VirtAddr::new(0x4000), 2 * page / 8, 8, 3, true)),
            Box::new(SweepWorker::new(VirtAddr::new(0x4004), 2 * page / 8, 8, 3, true)),
        ],
    }
}

/// Builds one of the chaos workloads: all have schedule-independent final
/// state, so a faulted run must reproduce the zero-fault probe words.
fn chaos_machine(workload: usize, record: bool) -> Machine {
    let config = chaos_config(record);
    let page = config.cache.page_size().bytes();
    let mut m = Machine::build(config).expect("small config is valid");
    for (cpu, p) in chaos_programs(workload, page).into_iter().enumerate() {
        m.set_program_boxed(cpu, p).expect("program slot exists");
    }
    m
}

/// Final words whose values must be fault-independent.
fn chaos_probes(m: &Machine) -> Vec<Option<u32>> {
    [0x1000u64, 0x2000, 0x4000, 0x4004, 0x40fc, 0x8000, 0x80fc]
        .iter()
        .map(|&a| m.peek_word(Asid::new(1), VirtAddr::new(a)))
        .collect()
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            ExitCode::FAILURE
        }
    }
}
