//! Region-level miss diagnostic for workload calibration (not a paper
//! artifact; used to attribute Figure 4 misses to workload components).

use std::collections::{HashMap, HashSet};
use vmp_bench::standard_trace;
use vmp_cache::{CacheConfig, TagCache};
use vmp_types::PageSize;

fn region(addr: u64) -> &'static str {
    match addr {
        a if a < 0x0800_0000 => "ucode",
        a if a < 0x1000_0000 => "uglob",
        a if a < 0x7fff_0000 => "uheap",
        a if a < 0xf000_0000 => "ustack",
        a if a < 0xf400_0000 => "oscode",
        a if a < 0xf800_0000 => "kpte",
        a if a < 0xfc00_0000 => "osheap",
        a if a < 0xfe00_0000 => "osglob",
        _ => "osstack",
    }
}

fn main() {
    let trace = standard_trace();
    let mut cache = TagCache::new(CacheConfig::new(PageSize::S256, 4, 128 * 1024).unwrap());
    let mut miss_by: HashMap<&str, u64> = HashMap::new();
    let mut refs_by: HashMap<&str, u64> = HashMap::new();
    let mut pages_by: HashMap<&str, HashSet<(u8, u64)>> = HashMap::new();
    for r in trace.iter() {
        let reg = region(r.addr.raw());
        *refs_by.entry(reg).or_default() += 1;
        pages_by.entry(reg).or_default().insert((r.asid.raw(), r.addr.raw() >> 8));
        if !cache.access(*r).is_hit() {
            *miss_by.entry(reg).or_default() += 1;
        }
    }
    let s = cache.stats();
    println!("total refs={} misses={} ratio={:.4}%", s.refs, s.misses, 100.0 * s.miss_ratio());
    let mut keys: Vec<_> = refs_by.keys().collect();
    keys.sort();
    for k in keys {
        println!(
            "{:8} refs={:7} misses={:6} pages={:5}",
            k,
            refs_by[k],
            miss_by.get(k).unwrap_or(&0),
            pages_by[k].len()
        );
    }
}
