//! The sweep engine's core guarantee: output is bit-identical no matter
//! how many worker threads execute the jobs.

use std::sync::Arc;

use vmp_bench::simulate_miss_ratio;
use vmp_sweep::{SweepJob, SweepPool};
use vmp_trace::synth::{AtumParams, AtumWorkload};
use vmp_trace::Trace;
use vmp_types::PageSize;

fn short_trace() -> Arc<Trace> {
    Arc::new(AtumWorkload::new(AtumParams::default(), 1986).take(30_000).collect())
}

fn grid_jobs() -> Vec<SweepJob<(u64, PageSize)>> {
    [64u64, 128]
        .iter()
        .flat_map(|&kb| {
            PageSize::PROTOTYPE_SIZES
                .map(|page| SweepJob::new(format!("{kb}KB/{page}"), (kb, page)))
        })
        .collect()
}

/// Full simulation results serialized to exact-integer tuples: any
/// reordering or cross-thread nondeterminism changes the byte image.
fn run_grid(trace: &Arc<Trace>, threads: usize) -> Vec<(String, u64, u64, u64, u64)> {
    let shared = Arc::clone(trace);
    let labels: Vec<String> = grid_jobs().iter().map(|j| j.label.clone()).collect();
    let stats = SweepPool::new().threads(threads).run(grid_jobs(), move |job| {
        simulate_miss_ratio(job.input.1, 4, job.input.0 * 1024, &shared)
    });
    labels
        .into_iter()
        .zip(stats)
        .map(|(label, s)| (label, s.refs, s.misses, s.supervisor_refs, s.supervisor_misses))
        .collect()
}

#[test]
fn sweep_is_bit_identical_across_thread_counts() {
    let trace = short_trace();
    let reference = run_grid(&trace, 1);
    for threads in [2, 4, 8] {
        let got = run_grid(&trace, threads);
        assert_eq!(got, reference, "threads={threads} diverged from sequential");
    }
}

#[test]
fn env_var_does_not_change_results() {
    // The pool consults VMP_THREADS only when no explicit override is
    // set; either way the result vector must match the sequential run.
    let trace = short_trace();
    let reference = run_grid(&trace, 1);
    let default_pool = run_grid_default(&trace);
    assert_eq!(default_pool, reference);
}

fn run_grid_default(trace: &Arc<Trace>) -> Vec<(String, u64, u64, u64, u64)> {
    let shared = Arc::clone(trace);
    let labels: Vec<String> = grid_jobs().iter().map(|j| j.label.clone()).collect();
    let stats = SweepPool::new().run(grid_jobs(), move |job| {
        simulate_miss_ratio(job.input.1, 4, job.input.0 * 1024, &shared)
    });
    labels
        .into_iter()
        .zip(stats)
        .map(|(label, s)| (label, s.refs, s.misses, s.supervisor_refs, s.supervisor_misses))
        .collect()
}
