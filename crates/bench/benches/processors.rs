//! §5.3: how many processors fit on one bus.
//!
//! Combines the closed queueing model (Mean Value Analysis of the
//! machine-repairman network the paper's "simple single-server queueing
//! model" describes) with an actual multi-CPU machine simulation running
//! the ATUM-like workload.

use vmp_analytic::{max_processors, mva, render_table, MissCostModel, ProcessorModel};
use vmp_bench::{banner, TRACE_SEED};
use vmp_core::{Machine, MachineConfig, TraceProgram};
use vmp_sweep::{SweepJob, SweepPool};
use vmp_trace::synth::{AtumParams, AtumWorkload};
use vmp_types::{Nanos, PageSize};

/// Per-processor references for the machine sweep (kept modest: the
/// event-driven machine is far more detailed than the tag simulator).
const REFS_PER_CPU: usize = 80_000;

fn machine_sweep(n: usize) -> (f64, f64) {
    let mut config = MachineConfig {
        processors: n,
        memory_bytes: 8 * 1024 * 1024,
        max_time: Nanos::from_ms(120_000),
        ..MachineConfig::default()
    };
    // The §5.3 estimate is about cache/bus behaviour; the paper's model
    // does not charge OS page-fault service, so demand-zero fills are
    // free here (they would otherwise dominate a cold-start run).
    config.cpu.page_fault = Nanos::ZERO;
    let mut m = Machine::build(config).unwrap();
    for cpu in 0..n {
        // Independent workloads in separate address spaces: the paper's
        // feasibility estimate is about *capacity*, not sharing.
        let refs = AtumWorkload::new(AtumParams::default(), TRACE_SEED + cpu as u64)
            .take(REFS_PER_CPU)
            .map(move |mut r| {
                r.asid = vmp_types::Asid::new(cpu as u8 + 1);
                r
            });
        m.set_asid(cpu, vmp_types::Asid::new(cpu as u8 + 1)).unwrap();
        m.set_program(cpu, TraceProgram::new(refs)).unwrap();
    }
    let report = m.run().unwrap();
    let perf: f64 = report.processors.iter().map(|p| p.performance()).sum::<f64>() / n as f64;
    (perf, report.bus_utilization())
}

fn main() {
    banner("§5.3 — Bus Utilization and Number of Processors", "the §5.3 estimate");

    // Queueing model: service = average bus time per miss; think = time
    // between bus requests off the bus. At the paper's example point
    // (256 B pages, 0.6 % miss ratio).
    let avg = MissCostModel::paper(PageSize::S256).average(0.75);
    let proc = ProcessorModel::default();
    let miss_ratio = 0.006;
    let service = avg.bus;
    let refs_between_misses = 1.0 / miss_ratio;
    let think_ns = refs_between_misses * proc.ref_interval().as_ns() as f64
        + (avg.elapsed.as_ns() - avg.bus.as_ns()) as f64;
    let think = Nanos::from_ns(think_ns.round() as u64);

    println!("queueing model (MVA): service {service} per miss, think {think}\n");
    let mut rows = Vec::new();
    for n in 1..=10 {
        let r = mva(n, service, think);
        rows.push(vec![
            n.to_string(),
            format!("{:.1}%", 100.0 * r.bus_utilization),
            format!("{:.1}%", 100.0 * r.efficiency),
            r.response.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["processors", "bus util", "per-cpu efficiency", "bus response"], &rows)
    );
    let feasible = max_processors(service, think, 0.95);
    println!("processors sustaining >=95% efficiency: {feasible} (paper: \"up to 5\")\n");

    println!("full machine simulation ({REFS_PER_CPU} refs/cpu, independent ATUM-like workloads):");
    // Each processor count is an independent full-machine run; the sweep
    // pool runs them in parallel and returns results in submission order.
    let counts = [1usize, 2, 4, 6, 8];
    let jobs: Vec<SweepJob<usize>> =
        counts.iter().map(|&n| SweepJob::new(format!("{n}cpu"), n)).collect();
    let results = SweepPool::new().run(jobs, |job| machine_sweep(job.input));
    let rows: Vec<Vec<String>> = counts
        .iter()
        .zip(&results)
        .map(|(n, (perf, bus))| {
            vec![n.to_string(), format!("{:.1}%", 100.0 * perf), format!("{:.1}%", 100.0 * bus)]
        })
        .collect();
    println!("{}", render_table(&["processors", "mean cpu performance", "bus utilization"], &rows));
    println!(
        "expected shape: degradation stays mild through ~4-5 processors and\n\
         the bus approaches saturation beyond that. Absolute performance is\n\
         below Figure 3's steady state because a cold-start run this short has\n\
         an elevated transient miss ratio (cold pages + PTE fills); the shape\n\
         of the processor-count scaling is what reproduces the §5.3 estimate."
    );
}
