//! Table 1: elapsed time and bus time per cache miss.
//!
//! Regenerates the paper's Table 1 from the analytic miss-cost model and
//! cross-checks the elapsed time against the full machine simulator by
//! actually taking misses on a one-CPU machine.

use vmp_analytic::{render_table, MissCostModel};
use vmp_bench::{banner, us};
use vmp_core::{Machine, MachineConfig, Op, ScriptProgram};
use vmp_types::{Nanos, PageSize, VirtAddr};

/// Stall time accumulated by a one-CPU machine running `ops`.
fn run_stall(page: PageSize, ops: Vec<Op>) -> Nanos {
    // Direct-mapped two-set cache: the data pages A and B below map to
    // set 1 and conflict with each other, while the kernel PTE page maps
    // to set 0 and stays resident — so the final access is a pure
    // conflict miss with a warm page table.
    let config = MachineConfig {
        processors: 1,
        cache: vmp_cache::CacheConfig::new(page, 1, page.bytes() * 2).unwrap(),
        memory_bytes: 64 * 1024,
        ..MachineConfig::default()
    };
    let mut m = Machine::build(config).unwrap();
    m.set_program(0, ScriptProgram::new(ops)).unwrap();
    m.run().unwrap();
    m.cpu_stats(0).stall_time
}

/// Measures the elapsed time of exactly one miss whose victim is clean
/// or dirty: the difference in total stall between a program with and
/// without the final conflicting reference (determinism makes the
/// difference exact).
fn machine_miss_elapsed(page: PageSize, dirty_victim: bool) -> Nanos {
    let a = VirtAddr::new(page.bytes()); // vpn 1 → set 1
    let b = VirtAddr::new(page.bytes() * 3); // vpn 3 → set 1
    let mut prefix = vec![
        Op::Read(a), // fault everything in
        if dirty_victim { Op::Write(b, 1) } else { Op::Read(b) },
    ];
    let base = run_stall(page, {
        let mut v = prefix.clone();
        v.push(Op::Halt);
        v
    });
    prefix.push(Op::Read(a)); // the measured miss: evicts B
    prefix.push(Op::Halt);
    let full = run_stall(page, prefix);
    full - base
}

fn main() {
    banner("Table 1 — Elapsed Time and Bus Time per Cache Miss", "Table 1");

    let paper: [(PageSize, bool, f64, f64); 6] = [
        (PageSize::S128, false, 17.0, 3.5),
        (PageSize::S256, false, 20.0, 6.6),
        (PageSize::S512, false, 26.0, 13.0),
        (PageSize::S128, true, 17.0, 7.0),
        (PageSize::S256, true, 23.0, 13.2),
        (PageSize::S512, true, 36.0, 26.0),
    ];

    let mut rows = Vec::new();
    for (page, modified, p_elapsed, p_bus) in paper {
        let model = MissCostModel::paper(page);
        let machine = machine_miss_elapsed(page, modified);
        rows.push(vec![
            page.to_string(),
            if modified { "modified" } else { "not modified" }.to_string(),
            us(model.elapsed(modified)),
            format!("{p_elapsed:.0}"),
            us(machine),
            us(model.bus_time(modified)),
            format!("{p_bus:.1}"),
        ]);
    }
    let table = render_table(
        &[
            "page",
            "victim",
            "elapsed us (model)",
            "paper",
            "elapsed us (machine)",
            "bus us (model)",
            "paper",
        ],
        &rows,
    );
    println!("{table}");
    println!(
        "The machine column measures a real conflict miss end-to-end on the\n\
         event-driven simulator (arbitration included), so it sits within a\n\
         few hundred nanoseconds of the closed-form model."
    );
}
