//! Ablations over VMP's design choices: cache associativity (the
//! prototype's 1–4 way configurability, §4), the §5.4 non-shared-memory
//! software hint, and the sensitivity of the whole design to the
//! software handler's speed (§7: "faster processors reduce the speed
//! advantage of implementing complex control logic in hardware").
//!
//! The trace-driven sweeps share one generated trace and fan out on the
//! [`vmp_sweep`] pool; results return in submission order so the tables
//! match the sequential run exactly.

use std::sync::Arc;

use vmp_analytic::{processor_performance, render_table, MissCostModel, ProcessorModel};
use vmp_bench::{banner, simulate_miss_ratio, standard_trace};
use vmp_cache::{CacheConfig, TagCache};
use vmp_core::{Machine, MachineConfig, Op, ScriptProgram};
use vmp_sweep::{SweepJob, SweepPool};
use vmp_trace::Trace;
use vmp_types::{Asid, Nanos, PageSize, VirtAddr};

fn associativity_sweep(trace: &Arc<Trace>) {
    println!("-- associativity (256B pages, 128 KB, cold start) --\n");
    let jobs: Vec<SweepJob<usize>> =
        [1usize, 2, 4].iter().map(|&a| SweepJob::new(format!("{a}-way"), a)).collect();
    let shared = Arc::clone(trace);
    let stats = SweepPool::new()
        .run(jobs, move |job| simulate_miss_ratio(PageSize::S256, job.input, 128 * 1024, &shared));
    let rows: Vec<Vec<String>> = [1usize, 2, 4]
        .iter()
        .zip(&stats)
        .map(|(assoc, s)| {
            vec![
                format!("{assoc}-way"),
                format!("{:.3}%", 100.0 * s.miss_ratio()),
                s.misses.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["assoc", "miss ratio", "misses"], &rows));
    println!(
        "the paper fixes 4-way for its studies; lower associativity adds\n\
         conflict misses that software handling makes expensive.\n"
    );
}

fn hint_ablation() {
    println!("-- §5.4 non-shared hint: read-then-write over 64 private pages --\n");
    let run = |hint: bool| {
        let mut config = MachineConfig { processors: 1, ..MachineConfig::default() };
        config.cpu.page_fault = Nanos::ZERO;
        let mut m = Machine::build(config).unwrap();
        let asid = Asid::new(1);
        let mut ops = Vec::new();
        for i in 0..64u64 {
            let va = VirtAddr::new(0x10000 + i * 256);
            m.map_shared(&[(asid, va)]).unwrap();
            if hint {
                m.set_private_hint(asid, va, true).unwrap();
            }
            ops.push(Op::Read(va));
            ops.push(Op::Write(va, i as u32));
        }
        ops.push(Op::Halt);
        m.set_program(0, ScriptProgram::new(ops)).unwrap();
        let report = m.run().unwrap();
        (report.elapsed, report.processors[0].upgrades, report.bus.total())
    };
    let (t0, up0, bus0) = run(false);
    let (t1, up1, bus1) = run(true);
    let rows = vec![
        vec!["unhinted".into(), t0.to_string(), up0.to_string(), bus0.to_string()],
        vec!["hinted private".into(), t1.to_string(), up1.to_string(), bus1.to_string()],
    ];
    println!("{}", render_table(&["mode", "elapsed", "upgrades", "bus transactions"], &rows));
    println!(
        "marking unshared memory lets the read miss fetch private, removing\n\
         one assert-ownership trap per page on first write (§5.4).\n"
    );
}

fn handler_speed_sensitivity() {
    println!("-- handler software speed vs performance (256B, 0.5% miss) --\n");
    let proc = ProcessorModel::default();
    let mut rows = Vec::new();
    for (label, scale) in [("2x faster", 0.5), ("paper (13.6us)", 1.0), ("2x slower", 2.0)] {
        let mut model = MissCostModel::paper(PageSize::S256);
        model.pre = Nanos::from_ns((model.pre.as_ns() as f64 * scale) as u64);
        model.mid = Nanos::from_ns((model.mid.as_ns() as f64 * scale) as u64);
        model.post = Nanos::from_ns((model.post.as_ns() as f64 * scale) as u64);
        let avg = model.average(0.75);
        let perf = processor_performance(0.005, avg.elapsed, &proc);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", avg.elapsed.as_micros_f64()),
            format!("{:.1}%", 100.0 * perf),
        ]);
    }
    println!("{}", render_table(&["handler speed", "avg miss us", "cpu performance"], &rows));
    println!(
        "even a 2x slower handler keeps performance within a few points at\n\
         sub-percent miss ratios — the large-page/low-miss design is what\n\
         makes software control viable (§2, §7).\n"
    );
}

fn page_size_beyond_prototype(trace: &Arc<Trace>) {
    println!("-- page sizes beyond the prototype (4-way, 128 KB) --\n");
    let pages: Vec<PageSize> =
        [64u64, 128, 256, 512, 1024].iter().map(|&b| PageSize::new(b).unwrap()).collect();
    let jobs: Vec<SweepJob<PageSize>> =
        pages.iter().map(|&p| SweepJob::new(p.to_string(), p)).collect();
    let shared = Arc::clone(trace);
    let stats = SweepPool::new()
        .run(jobs, move |job| simulate_miss_ratio(job.input, 4, 128 * 1024, &shared));
    let mut rows = Vec::new();
    for (page, s) in pages.iter().zip(&stats) {
        let avg = MissCostModel::paper(*page).average(0.75);
        let perf = processor_performance(s.miss_ratio(), avg.elapsed, &ProcessorModel::default());
        rows.push(vec![
            page.to_string(),
            format!("{:.3}%", 100.0 * s.miss_ratio()),
            format!("{:.2}", avg.elapsed.as_micros_f64()),
            format!("{:.1}%", 100.0 * perf),
        ]);
    }
    println!("{}", render_table(&["page", "miss ratio", "avg miss us", "net cpu perf"], &rows));
    println!(
        "the product of falling miss ratio and rising per-miss cost has an\n\
         optimum near the paper's 256-512 B choice for this workload."
    );
}

fn asid_vs_flush_on_switch(trace: &Trace) {
    println!("-- ASID tags vs flush-on-context-switch (256B, 128 KB, 4-way) --\n");
    // A conventional virtually-addressed cache without ASID tags must be
    // flushed whenever the address space changes (§2 footnote 1). Replay
    // the same multiprogrammed trace both ways.
    let config = CacheConfig::new(PageSize::S256, 4, 128 * 1024).unwrap();

    // VMP: ASIDs in the tags, no flushes.
    let mut with_asid = TagCache::new(config);
    with_asid.run(trace.iter().copied());

    // Conventional: tags are VA-only (collapse every ASID to one) and the
    // whole cache is flushed at each context-switch boundary.
    let mut flushed = TagCache::new(config);
    let mut last_asid = None;
    let mut switches = 0u64;
    for r in trace.iter() {
        if last_asid.is_some() && last_asid != Some(r.asid) {
            flushed.flush();
            switches += 1;
        }
        last_asid = Some(r.asid);
        let mut r = *r;
        r.asid = Asid::new(0);
        flushed.access(r);
    }
    let rows = vec![
        vec![
            "ASID tags (VMP)".to_string(),
            format!("{:.3}%", 100.0 * with_asid.stats().miss_ratio()),
        ],
        vec![
            format!("flush on switch ({switches} switches)"),
            format!("{:.3}%", 100.0 * flushed.stats().miss_ratio()),
        ],
    ];
    println!("{}", render_table(&["cache", "miss ratio"], &rows));
    println!(
        "the ASID in the tag (§2, §4) lets a resumed process find its pages\n\
         still cached; a flush-on-switch cache re-faults its working set after\n\
         every OS burst and timeslice.\n"
    );
}

fn main() {
    banner("Ablations — associativity, hint, handler speed, page size, ASIDs", "§4, §5.4, §7");
    // One trace, generated once, shared by every trace-driven section.
    let trace = Arc::new(standard_trace());
    associativity_sweep(&trace);
    hint_ablation();
    handler_speed_sensitivity();
    page_size_beyond_prototype(&trace);
    asid_vs_flush_on_switch(&trace);
}
