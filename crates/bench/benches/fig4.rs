//! Figure 4: cold-start cache miss ratio versus cache size, for the
//! three cache page sizes — the trace-driven simulation of §5.2, run on
//! the synthetic ATUM-like workload (the original VAX 8200 ATUM traces
//! are DEC-proprietary; see DESIGN.md for the substitution).
//!
//! The 3×3 geometry grid runs on the [`vmp_sweep`] pool: one trace is
//! generated once and shared read-only across workers, and results come
//! back in submission order, so the table is identical for any
//! `VMP_THREADS` setting.

use std::sync::Arc;

use vmp_analytic::render_table;
use vmp_bench::{banner, simulate_miss_ratio, standard_trace};
use vmp_sweep::{SweepJob, SweepPool};
use vmp_types::PageSize;

fn main() {
    banner("Figure 4 — Cache Miss Ratio vs Cache Size (cold start, 4-way)", "Figure 4");

    let trace = Arc::new(standard_trace());
    let stats = trace.stats();
    println!(
        "workload: {} references, {} address spaces, footprint {} KB, \
         OS share {:.1}% (paper: ~25%)\n",
        stats.total,
        stats.address_spaces,
        stats.footprint_bytes() / 1024,
        100.0 * stats.supervisor_fraction(),
    );

    let sizes_kb = [64u64, 128, 256];
    let jobs: Vec<SweepJob<(u64, PageSize)>> = sizes_kb
        .iter()
        .flat_map(|&kb| {
            PageSize::PROTOTYPE_SIZES
                .map(|page| SweepJob::new(format!("{kb}KB/{page}"), (kb, page)))
        })
        .collect();
    let pool = SweepPool::new();
    let shared = Arc::clone(&trace);
    let cells = pool.run(jobs, move |job| {
        let (kb, page) = job.input;
        simulate_miss_ratio(page, 4, kb * 1024, &shared)
    });

    let pages_per_row = PageSize::PROTOTYPE_SIZES.len();
    let mut rows = Vec::new();
    for (i, &kb) in sizes_kb.iter().enumerate() {
        let mut row = vec![format!("{kb} KB")];
        for s in &cells[i * pages_per_row..(i + 1) * pages_per_row] {
            row.push(format!("{:.3}%", 100.0 * s.miss_ratio()));
        }
        rows.push(row);
    }
    println!("{}", render_table(&["cache size", "miss @128B", "miss @256B", "miss @512B"], &rows));

    // 256B/128KB is the grid's centre cell — reuse it rather than
    // re-simulating the geometry.
    let ref_idx = sizes_kb.iter().position(|&kb| kb == 128).unwrap() * pages_per_row
        + PageSize::PROTOTYPE_SIZES.iter().position(|&p| p == PageSize::S256).unwrap();
    let ref_point = &cells[ref_idx];
    println!("reference point 256B/128KB: {:.3}% (paper: 0.24%)", 100.0 * ref_point.miss_ratio());
    println!(
        "OS references: {:.1}% of refs, {:.1}% of misses (paper: ~25% / ~50%)",
        100.0 * (stats.supervisor as f64 / stats.total as f64),
        100.0 * ref_point.supervisor_miss_share(),
    );
    println!(
        "\nexpected shape: miss ratio falls with cache size and with page size\n\
         (large pages capture whole loops and records), staying sub-1% across\n\
         the sweep — the regime that makes software miss handling viable."
    );
    // §5.2's sanity check: the cache behaves like a TLB of equal geometry.
    let sets = 128 * 1024 / (256 * 4);
    println!(
        "\n§5.2 TLB analogy: the 256B/128KB 4-way cache is structurally a\n\
         {sets}-set x 4-way translation buffer; its measured {:.2}% miss ratio\n\
         sits in the band Smith reports for TLBs of comparable size (~0.4%\n\
         for 128 sets x 2), as the paper argues.",
        100.0 * ref_point.miss_ratio()
    );
}
