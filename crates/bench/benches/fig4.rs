//! Figure 4: cold-start cache miss ratio versus cache size, for the
//! three cache page sizes — the trace-driven simulation of §5.2, run on
//! the synthetic ATUM-like workload (the original VAX 8200 ATUM traces
//! are DEC-proprietary; see DESIGN.md for the substitution).

use vmp_analytic::render_table;
use vmp_bench::{banner, simulate_miss_ratio, standard_trace};
use vmp_types::PageSize;

fn main() {
    banner("Figure 4 — Cache Miss Ratio vs Cache Size (cold start, 4-way)", "Figure 4");

    let trace = standard_trace();
    let stats = trace.stats();
    println!(
        "workload: {} references, {} address spaces, footprint {} KB, \
         OS share {:.1}% (paper: ~25%)\n",
        stats.total,
        stats.address_spaces,
        stats.footprint_bytes() / 1024,
        100.0 * stats.supervisor_fraction(),
    );

    let sizes_kb = [64u64, 128, 256];
    let mut rows = Vec::new();
    for kb in sizes_kb {
        let mut row = vec![format!("{kb} KB")];
        for page in PageSize::PROTOTYPE_SIZES {
            let s = simulate_miss_ratio(page, 4, kb * 1024, &trace);
            row.push(format!("{:.3}%", 100.0 * s.miss_ratio()));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["cache size", "miss @128B", "miss @256B", "miss @512B"], &rows)
    );

    let ref_point = simulate_miss_ratio(PageSize::S256, 4, 128 * 1024, &trace);
    println!(
        "reference point 256B/128KB: {:.3}% (paper: 0.24%)",
        100.0 * ref_point.miss_ratio()
    );
    println!(
        "OS references: {:.1}% of refs, {:.1}% of misses (paper: ~25% / ~50%)",
        100.0 * (stats.supervisor as f64 / stats.total as f64),
        100.0 * ref_point.supervisor_miss_share(),
    );
    println!(
        "\nexpected shape: miss ratio falls with cache size and with page size\n\
         (large pages capture whole loops and records), staying sub-1% across\n\
         the sweep — the regime that makes software miss handling viable."
    );
    // §5.2's sanity check: the cache behaves like a TLB of equal geometry.
    let sets = 128 * 1024 / (256 * 4);
    println!(
        "\n§5.2 TLB analogy: the 256B/128KB 4-way cache is structurally a\n\
         {sets}-set x 4-way translation buffer; its measured {:.2}% miss ratio\n\
         sits in the band Smith reports for TLBs of comparable size (~0.4%\n\
         for 128 sets x 2), as the paper argues.",
        100.0 * ref_point.miss_ratio()
    );
}
