//! Consistency overhead as miss-ratio inflation (§5, §5.4).
//!
//! The paper folds consistency interrupts into its performance estimates
//! "by hypothesizing a higher miss ratio than that suggested by the
//! simulations". This harness *measures* that inflation: each processor
//! runs its private ATUM-like workload plus a tunable fraction of
//! references into a common shared region (mapped into every address
//! space), and reports how the effective miss ratio and consistency
//! traffic grow with the sharing fraction.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vmp_analytic::render_table;
use vmp_bench::{banner, TRACE_SEED};
use vmp_core::{Machine, MachineConfig, Op, OpResult, Program};
use vmp_sweep::{SweepJob, SweepPool};
use vmp_trace::synth::{AtumParams, AtumWorkload};
use vmp_types::{Asid, Nanos, VirtAddr};

const REFS_PER_CPU: usize = 25_000;
const SHARED_PAGES: u64 = 32;
const SHARED_BASE: u64 = 0x4000_0000;

/// Private trace interleaved with shared-region references.
struct SharingWorkload {
    private: Box<dyn Iterator<Item = vmp_trace::MemRef> + Send>,
    rng: StdRng,
    share_prob: f64,
    emitted: usize,
    limit: usize,
}

impl Program for SharingWorkload {
    fn next_op(&mut self, _last: OpResult) -> Op {
        if self.emitted >= self.limit {
            return Op::Halt;
        }
        self.emitted += 1;
        if self.rng.random_bool(self.share_prob) {
            let page = self.rng.random_range(0..SHARED_PAGES);
            let offset = self.rng.random_range(0..64u64) * 4;
            let va = VirtAddr::new(SHARED_BASE + page * 256 + offset);
            if self.rng.random_bool(0.2) {
                return Op::Write(va, self.emitted as u32);
            }
            return Op::Read(va);
        }
        match self.private.next() {
            Some(r) if r.kind.is_write() => Op::Write(r.addr, self.emitted as u32),
            Some(r) => Op::Read(r.addr),
            None => Op::Halt,
        }
    }
}

struct Outcome {
    base_miss: f64,
    effective_miss: f64,
    invalidations: u64,
    retries: u64,
    perf: f64,
}

fn run(cpus: usize, share_prob: f64) -> Outcome {
    let mut config = MachineConfig {
        processors: cpus,
        memory_bytes: 8 * 1024 * 1024,
        max_time: Nanos::from_ms(120_000),
        ..MachineConfig::default()
    };
    config.cpu.page_fault = Nanos::ZERO;
    let mut m = Machine::build(config).unwrap();
    // The shared region is mapped into every processor's space.
    for page in 0..SHARED_PAGES {
        let va = VirtAddr::new(SHARED_BASE + page * 256);
        let mappings: Vec<(Asid, VirtAddr)> =
            (0..cpus).map(|c| (Asid::new(c as u8 + 1), va)).collect();
        m.map_shared(&mappings).unwrap();
    }
    for cpu in 0..cpus {
        m.set_asid(cpu, Asid::new(cpu as u8 + 1)).unwrap();
        let private = AtumWorkload::new(AtumParams::default(), TRACE_SEED + cpu as u64)
            .take(REFS_PER_CPU * 2);
        m.set_program(
            cpu,
            SharingWorkload {
                private: Box::new(private),
                rng: StdRng::seed_from_u64(99 + cpu as u64),
                share_prob,
                emitted: 0,
                limit: REFS_PER_CPU,
            },
        )
        .unwrap();
    }
    let report = m.run().unwrap();
    m.validate().unwrap();
    let refs: u64 = report.processors.iter().map(|p| p.refs).sum();
    let misses: u64 = report.processors.iter().map(|p| p.misses()).sum();
    let upgrades: u64 = report.processors.iter().map(|p| p.upgrades).sum();
    Outcome {
        base_miss: misses as f64 / refs as f64,
        effective_miss: (misses + upgrades) as f64 / refs as f64,
        invalidations: report.processors.iter().map(|p| p.invalidations).sum(),
        retries: report.processors.iter().map(|p| p.retries).sum(),
        perf: report.processors.iter().map(|p| p.performance()).sum::<f64>() / cpus as f64,
    }
}

fn main() {
    banner(
        "Consistency overhead — effective miss ratio vs sharing fraction",
        "the §5/§5.4 'hypothesize a higher miss ratio' estimate",
    );
    println!(
        "4 processors, private ATUM-like workloads plus a shared 8 KB region\n\
         (20% writes within it); consistency interrupts, upgrades and retries\n\
         inflate the effective miss ratio exactly as §5 anticipates.\n"
    );
    // Four independent machine runs, one per sharing fraction, fanned
    // out on the sweep pool; submission-order results keep the table
    // byte-identical to a sequential run.
    let fractions = [0.0, 0.01, 0.05, 0.10];
    let jobs: Vec<SweepJob<f64>> =
        fractions.iter().map(|&s| SweepJob::new(format!("share{s}"), s)).collect();
    let outcomes = SweepPool::new().run(jobs, |job| run(4, job.input));
    let rows: Vec<Vec<String>> = fractions
        .iter()
        .zip(&outcomes)
        .map(|(share, o)| {
            vec![
                format!("{:.0}%", 100.0 * share),
                format!("{:.2}%", 100.0 * o.base_miss),
                format!("{:.2}%", 100.0 * o.effective_miss),
                o.invalidations.to_string(),
                o.retries.to_string(),
                format!("{:.1}%", 100.0 * o.perf),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "shared refs",
                "miss ratio",
                "effective (+upgrades)",
                "invalidations",
                "retries",
                "cpu perf",
            ],
            &rows
        )
    );
    println!(
        "expected shape: the miss ratio and consistency traffic climb with the\n\
         sharing fraction; the performance cost is the Figure 3 curve read at\n\
         the *effective* miss ratio rather than the private one."
    );
}
