//! Figure 3: processor performance versus cache miss ratio, for the
//! three cache page sizes.

use vmp_analytic::{processor_performance, render_table, MissCostModel, ProcessorModel};
use vmp_bench::banner;
use vmp_types::PageSize;

fn main() {
    banner("Figure 3 — Processor Performance vs Cache Miss Ratio", "Figure 3");

    let proc = ProcessorModel::default();
    let ratios = [0.0, 0.001, 0.002, 0.0024, 0.004, 0.006, 0.008, 0.01, 0.015, 0.02, 0.03, 0.04];
    let mut rows = Vec::new();
    for m in ratios {
        let mut row = vec![format!("{:.2}%", 100.0 * m)];
        for page in PageSize::PROTOTYPE_SIZES {
            let avg = MissCostModel::paper(page).average(0.75);
            let perf = processor_performance(m, avg.elapsed, &proc);
            row.push(format!("{:.1}%", 100.0 * perf));
        }
        rows.push(row);
    }
    println!("{}", render_table(&["miss ratio", "perf @128B", "perf @256B", "perf @512B"], &rows));
    let avg256 = MissCostModel::paper(PageSize::S256).average(0.75);
    let example = processor_performance(0.0024, avg256.elapsed, &proc);
    println!(
        "paper's running example: 256B pages, 0.24% miss ratio -> {:.0}% \
         (paper: 87%)",
        100.0 * example
    );
    println!(
        "note (as in the paper): the miss ratio itself depends on page size,\n\
         so columns must not be compared at equal miss ratio."
    );
}
