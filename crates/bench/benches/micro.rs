//! Criterion micro-benchmarks of the simulator itself: these measure the
//! *simulator's* throughput (host performance), not the modelled
//! machine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vmp_bench::{standard_trace, TRACE_SEED};
use vmp_cache::{CacheConfig, TagCache};
use vmp_core::{Machine, MachineConfig, TraceProgram};
use vmp_trace::synth::{AtumParams, AtumWorkload};
use vmp_types::{Nanos, PageSize};

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("atum_workload_10k_refs", |b| {
        b.iter(|| AtumWorkload::new(AtumParams::default(), TRACE_SEED).take(10_000).count())
    });
}

fn bench_tag_cache(c: &mut Criterion) {
    let trace = standard_trace();
    let slice: Vec<_> = trace.iter().copied().take(50_000).collect();
    c.bench_function("tag_cache_50k_refs_256B_128KB", |b| {
        b.iter_batched(
            || TagCache::new(CacheConfig::new(PageSize::S256, 4, 128 * 1024).unwrap()),
            |mut cache| {
                for &r in &slice {
                    cache.access(r);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_machine(c: &mut Criterion) {
    c.bench_function("machine_2cpu_5k_refs", |b| {
        b.iter(|| {
            let config = MachineConfig {
                processors: 2,
                max_time: Nanos::from_ms(60_000),
                ..MachineConfig::default()
            };
            let mut m = Machine::build(config).unwrap();
            for cpu in 0..2 {
                let refs =
                    AtumWorkload::new(AtumParams::default(), TRACE_SEED + cpu as u64).take(5_000);
                m.set_program(cpu, TraceProgram::new(refs)).unwrap();
            }
            m.run().unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_generation, bench_tag_cache, bench_machine
}
criterion_main!(benches);
