//! Figure 5: single-processor bus utilization versus cache miss ratio,
//! for the three cache page sizes.

use vmp_analytic::{bus_utilization, render_table, MissCostModel, ProcessorModel};
use vmp_bench::banner;
use vmp_types::PageSize;

fn main() {
    banner("Figure 5 — Bus Utilization vs Cache Miss Ratio", "Figure 5");

    let proc = ProcessorModel::default();
    let ratios = [0.001, 0.002, 0.004, 0.006, 0.008, 0.01, 0.015, 0.02, 0.03];
    let mut rows = Vec::new();
    for m in ratios {
        let mut row = vec![format!("{:.2}%", 100.0 * m)];
        for page in PageSize::PROTOTYPE_SIZES {
            let avg = MissCostModel::paper(page).average(0.75);
            let util = bus_utilization(m, &avg, &proc);
            row.push(format!("{:.1}%", 100.0 * util));
        }
        rows.push(row);
    }
    println!("{}", render_table(&["miss ratio", "bus @128B", "bus @256B", "bus @512B"], &rows));
    let avg = MissCostModel::paper(PageSize::S256).average(0.75);
    println!(
        "paper's checkpoint: 256B pages at 0.6% miss ratio -> {:.1}% bus \
         utilization (paper: ~10%, the basis of the 5-processor estimate)",
        100.0 * bus_utilization(0.006, &avg, &proc)
    );
}
