//! Engine throughput: how fast the simulator itself runs.
//!
//! Unlike the other harnesses (which regenerate the paper's tables),
//! this one measures the *reproduction's* performance so optimization
//! work has a recorded trajectory (see EXPERIMENTS.md):
//!
//! * tag-cache simulation throughput, in simulated references/second;
//! * full event-driven machine throughput, in references/second;
//! * end-to-end wall time of the fig. 4 geometry sweep, sequential
//!   versus on the [`vmp_sweep`] pool with all cores.
//!
//! `cargo bench -p vmp-bench --bench engine -- --test` runs a smoke
//! variant on a short trace (used by CI).

use std::sync::Arc;
use std::time::Instant;

use vmp_bench::{banner, simulate_miss_ratio, standard_trace, TRACE_SEED};
use vmp_bus::{BusStats, BusTxKind};
use vmp_core::workloads::{LockDiscipline, LockWorker};
use vmp_core::{Machine, MachineConfig, TraceProgram};
use vmp_faults::{FaultPlan, FaultRates};
use vmp_sweep::{SweepJob, SweepPool};
use vmp_trace::synth::{AtumParams, AtumWorkload};
use vmp_trace::Trace;
use vmp_types::{Nanos, PageSize, VirtAddr};

fn tag_refs_per_sec(trace: &Trace, repeats: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..repeats {
        let s = simulate_miss_ratio(PageSize::S256, 4, 128 * 1024, trace);
        assert_eq!(s.refs as usize, trace.len());
    }
    (trace.len() * repeats) as f64 / start.elapsed().as_secs_f64()
}

fn machine_refs_per_sec(refs: usize) -> f64 {
    let mut config = MachineConfig {
        processors: 1,
        max_time: Nanos::from_ms(120_000),
        ..MachineConfig::default()
    };
    config.cpu.page_fault = Nanos::ZERO;
    let mut m = Machine::build(config).unwrap();
    let workload = AtumWorkload::new(AtumParams::default(), TRACE_SEED).take(refs);
    m.set_program(0, TraceProgram::new(workload)).unwrap();
    let start = Instant::now();
    let report = m.run().unwrap();
    assert_eq!(report.processors[0].refs as usize, refs);
    refs as f64 / start.elapsed().as_secs_f64()
}

/// The fig. 4 geometry grid as sweep jobs.
fn grid_jobs() -> Vec<SweepJob<(u64, PageSize)>> {
    [64u64, 128, 256]
        .iter()
        .flat_map(|&kb| {
            PageSize::PROTOTYPE_SIZES
                .map(|page| SweepJob::new(format!("{kb}KB/{page}"), (kb, page)))
        })
        .collect()
}

fn sweep_wall(trace: &Arc<Trace>, threads: usize) -> (f64, Vec<u64>) {
    let shared = Arc::clone(trace);
    let start = Instant::now();
    let stats = SweepPool::new().threads(threads).run(grid_jobs(), move |job| {
        simulate_miss_ratio(job.input.1, 4, job.input.0 * 1024, &shared)
    });
    (start.elapsed().as_secs_f64(), stats.iter().map(|s| s.misses).collect())
}

/// Runs a contended spin-lock workload (optionally under a seeded fault
/// plan) and returns the bus statistics, for the abort breakdown below.
fn contended_bus_stats(faults: Option<FaultRates>) -> BusStats {
    contended_machine(false, faults).run().unwrap().bus
}

fn contended_machine(record: bool, faults: Option<FaultRates>) -> Machine {
    let mut config = MachineConfig::small();
    config.validate_each_step = false;
    config.max_time = Nanos::from_ms(60_000);
    if record {
        config.obs = vmp_core::ObsConfig::on();
    }
    let mut m = Machine::build(config).unwrap();
    for cpu in 0..2 {
        m.set_program(
            cpu,
            LockWorker::new(
                LockDiscipline::Spin,
                VirtAddr::new(0x1000),
                VirtAddr::new(0x2000),
                20,
                Nanos::from_us(2),
                Nanos::from_us(1),
            ),
        )
        .unwrap();
    }
    if let Some(rates) = faults {
        m.install_fault_hook(FaultPlan::new(TRACE_SEED, rates));
    }
    m
}

/// Re-runs the clean contended workload with the event recorder on and
/// prints the latency histograms: how long misses, interrupt service and
/// bus arbitration actually took, not just how often they happened.
fn print_latency_histograms() {
    let mut m = contended_machine(true, None);
    m.run().unwrap();
    let obs = m.obs().expect("recording enabled");
    println!("latency histograms (contended locks, clean):");
    for (name, h) in [
        ("miss service", &obs.miss_service),
        ("irq latency ", &obs.irq_latency),
        ("arb wait    ", &obs.arb_wait),
    ] {
        println!(
            "  {name}: n={:<5} mean={:>6}ns p50={:>6}ns p99={:>6}ns max={:>6}ns",
            h.count(),
            h.mean().as_ns(),
            h.percentile(0.50).as_ns(),
            h.percentile(0.99).as_ns(),
            h.max().as_ns()
        );
    }
}

fn print_abort_breakdown(label: &str, bus: &BusStats) {
    const KINDS: [BusTxKind; 4] = [
        BusTxKind::ReadShared,
        BusTxKind::ReadPrivate,
        BusTxKind::AssertOwnership,
        BusTxKind::Notify,
    ];
    let per_kind: Vec<String> = KINDS
        .iter()
        .filter(|&&k| bus.abort_count(k) > 0)
        .map(|&k| format!("{k:?} {}", bus.abort_count(k)))
        .collect();
    println!(
        "abort breakdown ({label}): {} protocol + {} injected ({})",
        bus.protocol_aborts(),
        bus.injected_aborts,
        if per_kind.is_empty() { "none".into() } else { per_kind.join(", ") }
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    banner("Engine throughput — simulator speed, not paper numbers", "n/a (perf harness)");

    let trace = Arc::new(if smoke {
        AtumWorkload::new(AtumParams::default(), TRACE_SEED).take(20_000).collect::<Trace>()
    } else {
        standard_trace()
    });
    let repeats = if smoke { 1 } else { 3 };

    let tag = tag_refs_per_sec(&trace, repeats);
    println!("tag-cache simulation:  {:.2}M simulated refs/s (256B/128KB/4-way)", tag / 1e6);

    let machine_refs = if smoke { 10_000 } else { 200_000 };
    let machine = machine_refs_per_sec(machine_refs);
    println!(
        "event-driven machine:  {:.2}M simulated refs/s (1 cpu, {machine_refs} refs)",
        machine / 1e6
    );

    print_abort_breakdown("contended locks, clean", &contended_bus_stats(None));
    print_abort_breakdown(
        "contended locks, light faults",
        &contended_bus_stats(Some(FaultRates::light())),
    );
    print_latency_histograms();

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (seq_wall, seq_misses) = sweep_wall(&trace, 1);
    let (par_wall, par_misses) = sweep_wall(&trace, cores);
    assert_eq!(seq_misses, par_misses, "parallel sweep must be bit-identical");
    let grid_refs = trace.len() as u64 * seq_misses.len() as u64;
    println!(
        "fig4 sweep ({} cells, {grid_refs} refs): {seq_wall:.2}s sequential, \
         {par_wall:.2}s on {cores} thread(s) ({:.1}x)",
        seq_misses.len(),
        seq_wall / par_wall.max(1e-9)
    );
    if smoke {
        println!("smoke mode: ok");
    }
}
