//! §5.4 ablation: test-and-set spinning versus bus-monitor notification
//! locks on the full machine.
//!
//! The paper warns that naive test-and-set locks "could result in
//! enormous consistency overhead" and proposes kernel locking built on
//! the bus monitor's notification facility. This harness quantifies the
//! difference.

use vmp_analytic::render_table;
use vmp_bench::banner;
use vmp_core::workloads::{LockDiscipline, LockWorker, UncachedLockWorker};
use vmp_core::{Machine, MachineConfig};
use vmp_sweep::{SweepJob, SweepPool};
use vmp_types::{Nanos, VirtAddr};

struct Outcome {
    elapsed: Nanos,
    bus_util: f64,
    lock_traffic: u64,
    irqs: u64,
    aborts: u64,
}

#[derive(Clone, Copy)]
enum Discipline {
    Cached(LockDiscipline),
    Uncached,
}

fn run(discipline: Discipline, cpus: usize, iterations: u64) -> Outcome {
    let config = MachineConfig {
        processors: cpus,
        max_time: Nanos::from_ms(60_000),
        ..MachineConfig::default()
    };
    let mut m = Machine::build(config).unwrap();
    let lock = VirtAddr::new(0x1000);
    let counter = VirtAddr::new(0x2000);
    let uncached = m.alloc_uncached_frame().unwrap();
    for cpu in 0..cpus {
        match discipline {
            Discipline::Cached(d) => m
                .set_program(
                    cpu,
                    LockWorker::new(
                        d,
                        lock,
                        counter,
                        iterations,
                        Nanos::from_us(10),
                        Nanos::from_us(5),
                    ),
                )
                .unwrap(),
            Discipline::Uncached => m
                .set_program(
                    cpu,
                    UncachedLockWorker::new(
                        uncached,
                        counter,
                        iterations,
                        Nanos::from_us(10),
                        Nanos::from_us(5),
                        Nanos::from_us(2),
                    ),
                )
                .unwrap(),
        }
    }
    let report = m.run().unwrap();
    let expected = (cpus as u64 * iterations) as u32;
    let got = m.peek_word(vmp_types::Asid::new(1), counter).unwrap();
    assert_eq!(got, expected, "mutual exclusion must hold");
    Outcome {
        elapsed: report.elapsed,
        bus_util: report.bus_utilization(),
        lock_traffic: report
            .processors
            .iter()
            .map(|p| p.write_misses + p.upgrades + p.invalidations)
            .sum(),
        irqs: report.processors.iter().map(|p| p.consistency_interrupts).sum(),
        aborts: report.bus.aborts,
    }
}

fn main() {
    banner(
        "§5.4 — Lock Contention: test-and-set spin vs notification locks",
        "the §5.4 discussion",
    );

    let iterations = 40;
    // Each (cpu count, discipline) cell is an independent machine run:
    // fan the grid out on the sweep pool, collect in submission order.
    let mut jobs = Vec::new();
    for cpus in [2usize, 4] {
        for (name, d) in [
            ("tas-spin", Discipline::Cached(LockDiscipline::Spin)),
            ("notify", Discipline::Cached(LockDiscipline::Notify)),
            ("uncached", Discipline::Uncached),
        ] {
            jobs.push(SweepJob::new(format!("{cpus}cpu/{name}"), (cpus, name, d)));
        }
    }
    let outcomes = SweepPool::new().run(jobs, |job| {
        let (cpus, _, d) = job.input;
        run(d, cpus, iterations)
    });
    let mut rows = Vec::new();
    let mut cells = outcomes.iter();
    for cpus in [2usize, 4] {
        for name in ["tas-spin", "notify", "uncached"] {
            let o = cells.next().expect("one outcome per job");
            rows.push(vec![
                cpus.to_string(),
                name.to_string(),
                o.elapsed.to_string(),
                format!("{:.1}%", 100.0 * o.bus_util),
                o.lock_traffic.to_string(),
                o.irqs.to_string(),
                o.aborts.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["cpus", "lock", "elapsed", "bus util", "ownership moves", "irqs", "aborts"],
            &rows
        )
    );
    println!(
        "expected shape: cached spinning multiplies ownership transfers,\n\
         consistency interrupts and aborted transactions; notification locks\n\
         park waiters on action-table code 11 and wake them once per release;\n\
         the uncached lock (§5.4's other option) trades the thrash for one\n\
         plain bus word per spin — no consistency traffic at all."
    );
}
