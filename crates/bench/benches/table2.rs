//! Table 2: average cache-miss cost under the paper's 75 %-clean
//! replacement mix, plus the mix actually observed in trace simulation.

use vmp_analytic::{render_table, MissCostModel};
use vmp_bench::{banner, simulate_miss_ratio, standard_trace, us};
use vmp_types::PageSize;

fn main() {
    banner("Table 2 — Average Cache Miss Cost (75% clean victims)", "Table 2");

    let paper = [
        (PageSize::S128, 17.0, 4.4),
        (PageSize::S256, 21.29, 8.316),
        (PageSize::S512, f64::NAN, f64::NAN), // paper omits the 512 B row
    ];
    let mut rows = Vec::new();
    for (page, p_elapsed, p_bus) in paper {
        let avg = MissCostModel::paper(page).average(0.75);
        let fmt_paper = |x: f64| if x.is_nan() { "-".to_string() } else { format!("{x}") };
        rows.push(vec![
            page.to_string(),
            us(avg.elapsed),
            fmt_paper(p_elapsed),
            us(avg.bus),
            fmt_paper(p_bus),
        ]);
    }
    println!(
        "{}",
        render_table(&["page", "elapsed us (model)", "paper", "bus us (model)", "paper"], &rows)
    );

    // Check the assumed mix against the trace-driven simulation.
    println!("replacement mix observed in cold-start simulation (ATUM-like trace):");
    let trace = standard_trace();
    let mut rows = Vec::new();
    for page in PageSize::PROTOTYPE_SIZES {
        let stats = simulate_miss_ratio(page, 4, 128 * 1024, &trace);
        rows.push(vec![
            page.to_string(),
            format!("{:.1}%", 100.0 * stats.clean_replacement_fraction()),
            "75% (assumed)".to_string(),
        ]);
    }
    println!("{}", render_table(&["page", "clean victims (simulated)", "paper"], &rows));
}
