//! §6 comparison: VMP ownership vs snoopy write-broadcast vs MIPS-X
//! compiler-controlled flushing.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vmp_analytic::render_table;
use vmp_baselines::{Access, CoherenceModel, CompilerFlushModel, OwnershipSystem, SnoopySystem};
use vmp_bench::banner;
use vmp_types::PageSize;

/// A two-processor producer/consumer stream with a tunable shared-write
/// fraction: both processors read a common region; a fraction of
/// references are writes to it.
fn shared_stream(refs: usize, write_frac: f64, seed: u64) -> Vec<Access> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..refs)
        .map(|_| {
            let cpu = rng.random_range(0..2);
            let addr = rng.random_range(0..64u64) * 4; // one hot 256 B page
            let write = rng.random_bool(write_frac);
            Access { cpu, addr, write }
        })
        .collect()
}

/// A mostly-private stream: each processor works in its own region with
/// occasional reads of the other's.
fn mostly_private_stream(refs: usize, seed: u64) -> Vec<Access> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..refs)
        .map(|_| {
            let cpu = rng.random_range(0..2usize);
            let peek = rng.random_bool(0.02);
            let region = if peek { 1 - cpu } else { cpu };
            let addr = region as u64 * 0x10000 + rng.random_range(0..1024u64) * 4;
            Access { cpu, addr, write: !peek && rng.random_bool(0.3) }
        })
        .collect()
}

fn compare(name: &str, stream: &[Access], rows: &mut Vec<Vec<String>>) {
    let mut snoopy = SnoopySystem::new(2, 16);
    let mut vmp = OwnershipSystem::new(2, PageSize::S256);
    for &a in stream {
        snoopy.access(a);
        vmp.access(a);
    }
    let s = snoopy.traffic();
    let v = vmp.traffic();
    rows.push(vec![
        name.to_string(),
        format!("{:.1}", s.bus_time_per_access()),
        format!("{:.1}", v.bus_time_per_access()),
        s.word_ops.to_string(),
        v.block_transfers.to_string(),
    ]);
}

fn main() {
    banner("§6 — Related Work: ownership vs write-broadcast vs compiler flush", "§6");

    println!("bus traffic on identical 2-CPU access streams (100k accesses):\n");
    let mut rows = Vec::new();
    compare("hot page, 5% writes", &shared_stream(100_000, 0.05, 7), &mut rows);
    compare("hot page, 30% writes", &shared_stream(100_000, 0.30, 7), &mut rows);
    compare("mostly private", &mostly_private_stream(100_000, 7), &mut rows);
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "snoopy ns/access",
                "vmp ns/access",
                "snoopy word broadcasts",
                "vmp page transfers",
            ],
            &rows
        )
    );
    println!(
        "expected shape (matching §6's own admission): write-broadcast\n\
         produces *less* bus traffic on fine-grained sharing — one word per\n\
         shared write versus whole-page ping-pong for ownership. The paper's\n\
         case for VMP is not traffic but hardware: 'the consistency schemes\n\
         providing the lowest bus traffic also tend to be the most complex',\n\
         requiring a multi-master cache path at memory-reference speed and\n\
         precluding the large pages Figure 4 depends on. Note also the\n\
         broadcasts snoopy wastes on stale sharers in the mostly-private\n\
         stream (infinite-capacity snoop pollution).\n"
    );

    println!("compiler-anticipatory flushing vs VMP flush-on-demand (64 shared pages/epoch):\n");
    let model = CompilerFlushModel::new(PageSize::S256, 64, 0.25);
    let mut rows = Vec::new();
    for c in model.sweep(&[0.02, 0.05, 0.1, 0.25, 0.5, 1.0]) {
        rows.push(vec![
            format!("{:.0}%", 100.0 * c.true_sharing),
            c.flush_bus_time.to_string(),
            c.demand_bus_time.to_string(),
            format!("{:.1}x", c.overhead_ratio()),
        ]);
    }
    println!(
        "{}",
        render_table(&["true sharing", "MIPS-X flush bus", "VMP demand bus", "overhead"], &rows)
    );
    println!(
        "expected shape: anticipatory flushing costs the same regardless of\n\
         actual sharing, so its overhead explodes as true sharing shrinks —\n\
         the application-sensitivity §6 points out."
    );
}
