//! The §5.4/§7 data-clustering claim, quantified: "programming systems
//! need to recognize the importance of clustering related data on cache
//! pages". Same record-traversal work under two layouts — hot fields
//! embedded in 64-byte records (array-of-structs) versus split into a
//! dense array (struct-of-arrays) — at each prototype page size.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vmp_analytic::{processor_performance, render_table, MissCostModel, ProcessorModel};
use vmp_bench::banner;
use vmp_cache::{CacheConfig, TagCache};
use vmp_sweep::{SweepJob, SweepPool};
use vmp_trace::synth::{Layout, RecordTraversal};
use vmp_types::{Asid, PageSize};

const RECORDS: u64 = 4096; // 64-byte records → 256 KB scattered, 16 KB packed
const RECORD_BYTES: u64 = 64;
const REFS: usize = 200_000;

fn run(page: PageSize, layout: Layout) -> f64 {
    // Zipf-skewed record popularity (s = 0.8): key-lookup-like traffic.
    let mut gen =
        RecordTraversal::with_skew(Asid::new(1), 0x10_0000, RECORDS, RECORD_BYTES, layout, 0.8);
    let mut rng = StdRng::seed_from_u64(7);
    let mut cache = TagCache::new(CacheConfig::new(page, 4, 64 * 1024).unwrap());
    for _ in 0..REFS {
        cache.access(gen.next_ref(&mut rng));
    }
    cache.stats().miss_ratio()
}

fn main() {
    banner("Data clustering — hot-field layout vs miss ratio", "§5.4/§7's clustering claim");
    println!(
        "{RECORDS} records of {RECORD_BYTES} B, hot field read at random; 64 KB 4-way cache.\n\
         scattered = hot fields inside full records; packed = hot fields in a\n\
         dense side array (what a clustering-aware compiler would emit).\n"
    );
    let proc = ProcessorModel::default();
    // Each (page, layout) cell is an independent trace+cache run: fan
    // the grid out on the sweep pool, then pair scattered/packed cells.
    let jobs: Vec<SweepJob<(PageSize, Layout)>> = PageSize::PROTOTYPE_SIZES
        .iter()
        .flat_map(|&page| {
            [Layout::Scattered, Layout::Packed]
                .map(|layout| SweepJob::new(format!("{page}/{layout:?}"), (page, layout)))
        })
        .collect();
    let ratios = SweepPool::new().run(jobs, |job| run(job.input.0, job.input.1));
    let mut rows = Vec::new();
    for (i, page) in PageSize::PROTOTYPE_SIZES.into_iter().enumerate() {
        let scattered = ratios[2 * i];
        let packed = ratios[2 * i + 1];
        let avg = MissCostModel::paper(page).average(0.75);
        let perf_s = processor_performance(scattered, avg.elapsed, &proc);
        let perf_p = processor_performance(packed, avg.elapsed, &proc);
        rows.push(vec![
            page.to_string(),
            format!("{:.2}%", 100.0 * scattered),
            format!("{:.2}%", 100.0 * packed),
            format!("{:.1}x", scattered / packed.max(1e-9)),
            format!("{:.0}% -> {:.0}%", 100.0 * perf_s, 100.0 * perf_p),
        ]);
    }
    println!(
        "{}",
        render_table(&["page", "scattered miss", "packed miss", "improvement", "cpu perf"], &rows)
    );
    println!(
        "expected shape: the scattered layout wastes most of every large page\n\
         on cold fields, so its working set exceeds the cache; packing the hot\n\
         fields multiplies each page's useful content by page/4 ÷ page/64 = 16x.\n\
         The gain grows with page size — exactly why VMP's unusually large\n\
         pages make data clustering a first-order software concern (§7)."
    );
}
