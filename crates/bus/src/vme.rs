//! VMEbus occupancy and transaction timing.

use core::fmt;

use vmp_mem::MemTimings;
use vmp_sim::BusyTracker;
use vmp_types::{Nanos, PageSize};

use crate::BusTxKind;

/// Timing parameters of the shared bus (paper §3.2, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTimings {
    /// The consistency-check and action-table-update windows, each
    /// overlapped with the block transfer (150 ns each in the prototype).
    pub check_interval: Nanos,
    /// An address-only control cycle (assert-ownership, notify,
    /// write-action-table).
    pub control_cycle: Nanos,
    /// Bus arbitration overhead before a granted transaction starts.
    pub arbitration: Nanos,
}

impl Default for BusTimings {
    fn default() -> Self {
        BusTimings {
            check_interval: Nanos::from_ns(150),
            control_cycle: Nanos::from_ns(300),
            arbitration: Nanos::from_ns(100),
        }
    }
}

/// Per-kind transaction counters plus aggregate busy time.
#[derive(Debug, Clone, Default)]
pub struct BusStats {
    /// Completed transactions by kind (see [`BusStats::count`]).
    counts: [u64; 8],
    /// Aborted transactions by kind (see [`BusStats::abort_count`]).
    abort_counts: [u64; 8],
    /// Aborted transactions (by any monitor, plus injected ones).
    pub aborts: u64,
    /// Aborts injected by a fault hook rather than demanded by the
    /// protocol (always ≤ `aborts`).
    pub injected_aborts: u64,
    /// Aggregate bus-busy time.
    pub busy: BusyTracker,
    /// Total time reservations spent between becoming ready and being
    /// granted the bus (the fixed arbitration cycle plus any queueing
    /// behind earlier bookings).
    pub arb_wait_total: Nanos,
    /// Longest single ready-to-grant wait.
    pub arb_wait_max: Nanos,
    /// Number of reservations (waits recorded).
    pub reservations: u64,
}

impl BusStats {
    fn kind_index(kind: BusTxKind) -> usize {
        match kind {
            BusTxKind::ReadShared => 0,
            BusTxKind::ReadPrivate => 1,
            BusTxKind::AssertOwnership => 2,
            BusTxKind::WriteBack => 3,
            BusTxKind::Notify => 4,
            BusTxKind::WriteActionTable => 5,
            BusTxKind::PlainRead => 6,
            BusTxKind::PlainWrite => 7,
        }
    }

    /// Completed (non-aborted) transactions of the given kind.
    pub fn count(&self, kind: BusTxKind) -> u64 {
        self.counts[Self::kind_index(kind)]
    }

    /// Aborted transactions of the given kind (protocol + injected).
    pub fn abort_count(&self, kind: BusTxKind) -> u64 {
        self.abort_counts[Self::kind_index(kind)]
    }

    /// Aborts demanded by the protocol itself (total minus injected).
    pub fn protocol_aborts(&self) -> u64 {
        self.aborts - self.injected_aborts
    }

    /// Total completed transactions of all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bus utilization over an elapsed interval.
    pub fn utilization(&self, elapsed: Nanos) -> f64 {
        self.busy.utilization(elapsed)
    }

    /// Mean ready-to-grant wait per reservation (zero when none).
    pub fn mean_arb_wait(&self) -> Nanos {
        if self.reservations == 0 {
            Nanos::ZERO
        } else {
            self.arb_wait_total / self.reservations
        }
    }

    /// The raw per-kind completion counters, indexed by the stable kind
    /// order `[ReadShared, ReadPrivate, AssertOwnership, WriteBack,
    /// Notify, WriteActionTable, PlainRead, PlainWrite]`.
    pub fn counts_raw(&self) -> [u64; 8] {
        self.counts
    }

    /// The raw per-kind abort counters, same index order as
    /// [`BusStats::counts_raw`].
    pub fn abort_counts_raw(&self) -> [u64; 8] {
        self.abort_counts
    }

    /// Rebuilds the private per-kind counters from checkpointed values;
    /// the public fields are restored by the caller directly.
    pub fn restore_raw_counts(&mut self, counts: [u64; 8], abort_counts: [u64; 8]) {
        self.counts = counts;
        self.abort_counts = abort_counts;
    }
}

impl fmt::Display for BusStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bus: {} tx ({} aborts), busy {}", self.total(), self.aborts, self.busy.busy())?;
        if self.injected_aborts > 0 {
            write!(f, " [{} injected]", self.injected_aborts)?;
        }
        Ok(())
    }
}

/// The shared VMEbus: a single-server resource with interval-based
/// reservations, block-transfer timing and abort accounting.
///
/// The bus does not know about monitors or caches; the machine model
/// reserves a slot for each transaction and reports completion or abort
/// for statistics. Because a processor's long operation (page faults,
/// handler software) may book a transfer well into the future while the
/// bus sits idle in between, reservations are *gap-filling*: a request
/// takes the earliest idle interval after its ready time, so an
/// unrelated processor's future booking never delays it (the hardware
/// arbiter grants the bus to whoever asks while it is idle).
///
/// # Examples
///
/// ```
/// use vmp_bus::{BusTxKind, VmeBus};
/// use vmp_types::{Nanos, PageSize};
///
/// let mut bus = VmeBus::new(PageSize::S256);
/// let dur = bus.duration(BusTxKind::ReadShared);
/// assert_eq!(dur.as_micros_f64(), 6.6);
/// let start = bus.reserve(Nanos::ZERO, dur);
/// bus.complete(BusTxKind::ReadShared, dur);
/// // The next identical request waits for the transfer to finish.
/// assert!(bus.reserve(Nanos::ZERO, dur) >= start + dur);
/// ```
#[derive(Debug, Clone)]
pub struct VmeBus {
    page_size: PageSize,
    timings: BusTimings,
    mem: MemTimings,
    /// Disjoint reserved intervals, keyed by start time.
    bookings: std::collections::BTreeMap<Nanos, Nanos>,
    /// Bookings ending at or before this are pruned (machine time is
    /// monotone, so no future request can need them).
    watermark: Nanos,
    stats: BusStats,
}

impl VmeBus {
    /// Creates a bus with default prototype timings.
    pub fn new(page_size: PageSize) -> Self {
        VmeBus::with_timings(page_size, BusTimings::default(), MemTimings::default())
    }

    /// Creates a bus with explicit timing parameters.
    pub fn with_timings(page_size: PageSize, timings: BusTimings, mem: MemTimings) -> Self {
        VmeBus {
            page_size,
            timings,
            mem,
            bookings: std::collections::BTreeMap::new(),
            watermark: Nanos::ZERO,
            stats: BusStats::default(),
        }
    }

    /// The configured cache-page size (block-transfer length).
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// The bus timing parameters.
    pub fn timings(&self) -> &BusTimings {
        &self.timings
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Reserves the earliest idle interval of length `dur` starting no
    /// earlier than `ready` plus arbitration, and returns its start.
    pub fn reserve(&mut self, ready: Nanos, dur: Nanos) -> Nanos {
        let mut candidate = ready.max(self.watermark) + self.timings.arbitration;
        loop {
            // Among existing (disjoint) bookings, find the latest one
            // starting before the candidate window ends; if it overlaps,
            // slide past it and re-check.
            let conflict = self
                .bookings
                .range(..candidate + dur)
                .next_back()
                .map(|(_, &end)| end)
                .filter(|&end| end > candidate);
            match conflict {
                Some(end) => candidate = end,
                None => break,
            }
        }
        self.bookings.insert(candidate, candidate + dur);
        let wait = candidate.saturating_sub(ready);
        self.stats.arb_wait_total += wait;
        self.stats.arb_wait_max = self.stats.arb_wait_max.max(wait);
        self.stats.reservations += 1;
        candidate
    }

    /// Advances the pruning watermark: machine event time is monotone,
    /// so bookings that ended before `now` can never conflict again.
    pub fn advance_to(&mut self, now: Nanos) {
        self.watermark = self.watermark.max(now);
        while let Some((&start, &end)) = self.bookings.first_key_value() {
            if end <= self.watermark {
                self.bookings.remove(&start);
            } else {
                break;
            }
        }
    }

    /// Bus occupancy of a completed transaction of this kind.
    ///
    /// Block transfers take the sequential-memory time of one page; the
    /// 150 ns check/update windows are overlapped with the transfer and
    /// cost no extra bus time (Figure 2). Control cycles (assert-
    /// ownership, notify, write-action-table) occupy one address cycle.
    /// Plain word transfers take the memory's first-word latency.
    pub fn duration(&self, kind: BusTxKind) -> Nanos {
        if kind.is_block_transfer() {
            self.mem.page_transfer(self.page_size).max(self.timings.check_interval * 2)
        } else {
            match kind {
                BusTxKind::AssertOwnership | BusTxKind::Notify | BusTxKind::WriteActionTable => {
                    self.timings.control_cycle.max(self.timings.check_interval * 2)
                }
                _ => self.mem.first_word,
            }
        }
    }

    /// Bus occupancy of an *aborted* transaction: the check interval plus
    /// termination "at the end of the current memory reference" (§3.2).
    pub fn abort_duration(&self) -> Nanos {
        self.timings.check_interval + self.mem.first_word
    }

    /// Records a completed transaction of the given duration (the slot
    /// was already reserved with [`VmeBus::reserve`]).
    pub fn complete(&mut self, kind: BusTxKind, dur: Nanos) {
        self.stats.counts[BusStats::kind_index(kind)] += 1;
        self.stats.busy.add_busy(dur);
    }

    /// Records an aborted transaction of the given kind. The abort
    /// happens in the address phase — "the bus transaction is terminated
    /// at the end of the current memory reference" (§3.2) — so it
    /// consumes only its own short check window and does not delay
    /// transfers already queued: `free_at` is left unchanged.
    /// `injected` marks aborts forced by a fault hook rather than
    /// demanded by a monitor's action table.
    pub fn abort(&mut self, kind: BusTxKind, injected: bool) {
        self.stats.aborts += 1;
        self.stats.abort_counts[BusStats::kind_index(kind)] += 1;
        if injected {
            self.stats.injected_aborts += 1;
        }
        self.stats.busy.add_busy(self.abort_duration());
    }

    /// The live reservation book for checkpointing: disjoint
    /// `(start, end)` intervals in start order, plus the pruning
    /// watermark.
    pub fn bookings(&self) -> (Vec<(Nanos, Nanos)>, Nanos) {
        (self.bookings.iter().map(|(&s, &e)| (s, e)).collect(), self.watermark)
    }

    /// Restores the reservation book captured by [`VmeBus::bookings`].
    /// Future [`VmeBus::reserve`] calls then see exactly the occupancy
    /// the original bus had.
    pub fn restore_bookings(&mut self, bookings: Vec<(Nanos, Nanos)>, watermark: Nanos) {
        self.bookings = bookings.into_iter().collect();
        self.watermark = watermark;
    }

    /// Mutable access to the statistics block, for checkpoint restore.
    pub fn stats_mut(&mut self) -> &mut BusStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_transfer_durations_match_table1() {
        assert_eq!(
            VmeBus::new(PageSize::S128).duration(BusTxKind::ReadShared).as_micros_f64(),
            3.4
        );
        assert_eq!(VmeBus::new(PageSize::S256).duration(BusTxKind::WriteBack).as_micros_f64(), 6.6);
        assert_eq!(
            VmeBus::new(PageSize::S512).duration(BusTxKind::ReadPrivate).as_micros_f64(),
            13.0
        );
    }

    #[test]
    fn control_cycles_are_short() {
        let bus = VmeBus::new(PageSize::S256);
        for kind in [BusTxKind::AssertOwnership, BusTxKind::Notify, BusTxKind::WriteActionTable] {
            assert_eq!(bus.duration(kind), Nanos::from_ns(300), "{kind}");
        }
        assert_eq!(bus.duration(BusTxKind::PlainRead), Nanos::from_ns(300));
    }

    #[test]
    fn reservations_serialize() {
        let mut bus = VmeBus::new(PageSize::S256);
        let d = bus.duration(BusTxKind::ReadShared);
        let s1 = bus.reserve(Nanos::ZERO, d);
        assert_eq!(s1, Nanos::from_ns(100)); // arbitration only
        let s2 = bus.reserve(Nanos::from_ns(50), d);
        assert_eq!(s2, s1 + d);
    }

    #[test]
    fn reservations_fill_gaps() {
        // A transfer booked far in the future must not delay a request
        // that can use the idle bus before it.
        let mut bus = VmeBus::new(PageSize::S256);
        let d = bus.duration(BusTxKind::ReadShared); // 6.6 us
        let far = bus.reserve(Nanos::from_us(100), d);
        assert_eq!(far, Nanos::from_ns(100_100));
        let near = bus.reserve(Nanos::ZERO, d);
        assert!(near + d <= far, "gap-filling failed: {near} vs {far}");
        // A third request that cannot fit before `far` lands after it.
        let big = Nanos::from_us(95);
        let after = bus.reserve(Nanos::from_us(7), big);
        assert!(after >= far + d, "{after}");
    }

    #[test]
    fn advance_prunes_old_bookings() {
        let mut bus = VmeBus::new(PageSize::S256);
        let d = bus.duration(BusTxKind::ReadShared);
        for i in 0..10 {
            bus.reserve(Nanos::from_us(i * 10), d);
        }
        bus.advance_to(Nanos::from_us(200));
        // Everything pruned: a fresh request at an old ready time is
        // clamped to the watermark.
        let s = bus.reserve(Nanos::ZERO, d);
        assert!(s >= Nanos::from_us(200));
    }

    #[test]
    fn abort_occupies_less_than_full_transfer() {
        let mut bus = VmeBus::new(PageSize::S512);
        let full = bus.duration(BusTxKind::ReadShared);
        let abort = bus.abort_duration();
        assert!(abort < full / 10, "abort {abort} vs full {full}");
        bus.abort(BusTxKind::ReadShared, false);
        assert_eq!(bus.stats().aborts, 1);
        assert_eq!(bus.stats().abort_count(BusTxKind::ReadShared), 1);
        assert_eq!(bus.stats().abort_count(BusTxKind::ReadPrivate), 0);
        assert_eq!(bus.stats().protocol_aborts(), 1);
        assert_eq!(bus.stats().injected_aborts, 0);
        assert_eq!(bus.stats().busy.busy(), abort);
        // An abort must not delay queued transfers (address-phase only).
        let d = bus.duration(BusTxKind::ReadShared);
        assert_eq!(bus.reserve(Nanos::ZERO, d), Nanos::from_ns(100));
    }

    #[test]
    fn stats_count_by_kind() {
        let mut bus = VmeBus::new(PageSize::S256);
        let d = bus.duration(BusTxKind::ReadShared);
        bus.complete(BusTxKind::ReadShared, d);
        bus.complete(BusTxKind::ReadShared, d);
        let c = bus.duration(BusTxKind::Notify);
        bus.complete(BusTxKind::Notify, c);
        assert_eq!(bus.stats().count(BusTxKind::ReadShared), 2);
        assert_eq!(bus.stats().count(BusTxKind::Notify), 1);
        assert_eq!(bus.stats().count(BusTxKind::WriteBack), 0);
        assert_eq!(bus.stats().total(), 3);
        assert!(bus.stats().to_string().contains("3 tx"));
    }

    #[test]
    fn injected_aborts_counted_separately() {
        let mut bus = VmeBus::new(PageSize::S256);
        bus.abort(BusTxKind::AssertOwnership, false);
        bus.abort(BusTxKind::AssertOwnership, true);
        bus.abort(BusTxKind::Notify, true);
        assert_eq!(bus.stats().aborts, 3);
        assert_eq!(bus.stats().injected_aborts, 2);
        assert_eq!(bus.stats().protocol_aborts(), 1);
        assert_eq!(bus.stats().abort_count(BusTxKind::AssertOwnership), 2);
        assert_eq!(bus.stats().abort_count(BusTxKind::Notify), 1);
        assert!(bus.stats().to_string().contains("[2 injected]"));
    }

    #[test]
    fn arbitration_wait_accounting() {
        let mut bus = VmeBus::new(PageSize::S256);
        let d = bus.duration(BusTxKind::ReadShared); // 6.6 us
        let s1 = bus.reserve(Nanos::ZERO, d);
        assert_eq!(s1, Nanos::from_ns(100));
        // Second request ready at t=0 queues behind the first.
        let s2 = bus.reserve(Nanos::ZERO, d);
        assert_eq!(s2, s1 + d);
        let stats = bus.stats();
        assert_eq!(stats.reservations, 2);
        assert_eq!(stats.arb_wait_max, s2);
        assert_eq!(stats.arb_wait_total, s1 + s2);
        assert_eq!(stats.mean_arb_wait(), (s1 + s2) / 2);
        assert_eq!(BusStats::default().mean_arb_wait(), Nanos::ZERO);
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut bus = VmeBus::new(PageSize::S256);
        let d = bus.duration(BusTxKind::ReadShared); // 6.6 us
        bus.complete(BusTxKind::ReadShared, d);
        let u = bus.stats().utilization(Nanos::from_us(66));
        assert!((u - 0.1).abs() < 1e-9, "utilization {u}");
    }
}
