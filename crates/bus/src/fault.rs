//! Fault-injection hook points at the bus/monitor/memory boundary.
//!
//! The VMP protocol's robustness story (§3.2–§3.3) rests on three
//! recovery mechanisms: aborted transactions are retried, dropped
//! interrupt words are repaired by the FIFO-overflow recovery path, and
//! transient copier errors are absorbed by bounded retries. A
//! [`FaultHook`] lets a test harness exercise those paths
//! deterministically: the machine consults the hook at each boundary and
//! the hook decides — typically from a seeded RNG — whether to perturb
//! the operation.
//!
//! Every method has a no-op default, so the zero-fault build (no hook
//! installed) compiles to the existing hot path. Implementations live
//! outside this crate (see `vmp-faults`); the trait sits here because the
//! hook's vocabulary is the bus layer's: [`BusTransaction`],
//! [`InterruptWord`], frames and processors.
//!
//! Injected faults must preserve the protocol's externally visible
//! semantics ("fault transparency"): they may cost simulated time, but
//! never correctness. The contract per method documents how the machine
//! keeps each perturbation inside the envelope the recovery machinery
//! can handle (e.g. a dropped interrupt word always sets the sticky
//! overflow flag, so it is indistinguishable from a real FIFO overflow).

use vmp_types::{Nanos, ProcessorId};

use crate::{BusTransaction, InterruptWord};

/// The classes of injected fault a [`FaultHook`] can produce, one per
/// hook method — used by observability layers to tag fault events with
/// which recovery path they exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Extra arbitration delay before a transaction could reserve the bus.
    ArbitrationStall,
    /// A spurious abort of an otherwise-allowed transaction.
    InjectedAbort,
    /// A queued interrupt word silently dropped (modelled as overflow).
    DroppedWord,
    /// A monitor forced into the sticky overflowed state.
    ForcedOverflow,
    /// A failed block-copier attempt absorbed by bounded retry.
    CopierRetry,
}

impl FaultClass {
    /// Stable lower-case label for reports and JSON keys.
    pub const fn label(self) -> &'static str {
        match self {
            FaultClass::ArbitrationStall => "arbitration-stall",
            FaultClass::InjectedAbort => "injected-abort",
            FaultClass::DroppedWord => "dropped-word",
            FaultClass::ForcedOverflow => "forced-overflow",
            FaultClass::CopierRetry => "copier-retry",
        }
    }
}

/// Decides, per boundary crossing, whether and how to inject a fault.
///
/// All methods take `&mut self` so implementations can drive a
/// deterministic RNG and keep per-class counters. The machine calls the
/// hook at fixed, documented points in its event loop, in a fixed order,
/// so a seeded hook yields bit-identical fault schedules run over run.
pub trait FaultHook: Send {
    /// Extra arbitration delay imposed on `tx` before it may reserve the
    /// bus (a starvation window: the arbiter keeps granting other
    /// masters). Return [`Nanos::ZERO`] for no stall.
    fn arbitration_stall(&mut self, now: Nanos, tx: &BusTransaction) -> Nanos {
        let _ = (now, tx);
        Nanos::ZERO
    }

    /// Whether to spuriously abort `tx` even though every monitor allowed
    /// it. The machine only consults this for transaction kinds whose
    /// issuer has a retry path (acquisitions and notifies) — never for
    /// write-backs, which the protocol guarantees are not aborted.
    fn inject_abort(&mut self, now: Nanos, tx: &BusTransaction) -> bool {
        let _ = (now, tx);
        false
    }

    /// Whether to drop the interrupt word that `observer`'s monitor just
    /// queued. The machine models the drop as a FIFO overflow (sticky
    /// flag set), so the §3.3 recovery path repairs the lost state.
    fn drop_interrupt_word(
        &mut self,
        now: Nanos,
        observer: ProcessorId,
        word: &InterruptWord,
    ) -> bool {
        let _ = (now, observer, word);
        false
    }

    /// Whether to force `observer`'s monitor into the overflowed state
    /// (sticky flag only; no word is lost), making software run the full
    /// recovery scan spuriously.
    fn force_overflow(&mut self, now: Nanos, observer: ProcessorId) -> bool {
        let _ = (now, observer);
        false
    }

    /// Number of failed block-copier attempts before `tx`'s transfer
    /// succeeds. Each failed attempt costs one extra transfer time on the
    /// bus; the machine clamps the count to its bounded-retry budget.
    fn copier_failures(&mut self, now: Nanos, tx: &BusTransaction) -> u32 {
        let _ = (now, tx);
        0
    }

    /// Serializes the hook's mutable state (RNG position, injection
    /// counters) for a machine checkpoint. `None` — the default — means
    /// the hook carries no state worth saving (e.g. [`NoFaults`]); a
    /// machine with such a hook installed can still be snapshotted and
    /// resumes with a freshly installed hook.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`FaultHook::save_state`], returning
    /// `false` if the bytes are not recognized (wrong hook type or a
    /// corrupt snapshot). The default accepts nothing.
    fn restore_state(&mut self, state: &[u8]) -> bool {
        let _ = state;
        false
    }
}

/// A hook that never injects anything — equivalent to running with no
/// hook installed; useful as a placebo in harnesses that want one code
/// path for both faulted and clean runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BusTxKind;
    use vmp_types::FrameNum;

    #[test]
    fn no_faults_is_inert() {
        let mut h = NoFaults;
        let tx = BusTransaction::new(BusTxKind::ReadShared, FrameNum::new(1), ProcessorId::new(0));
        let word = InterruptWord { kind: tx.kind, frame: tx.frame, issuer: tx.issuer };
        assert_eq!(h.arbitration_stall(Nanos::ZERO, &tx), Nanos::ZERO);
        assert!(!h.inject_abort(Nanos::ZERO, &tx));
        assert!(!h.drop_interrupt_word(Nanos::ZERO, ProcessorId::new(1), &word));
        assert!(!h.force_overflow(Nanos::ZERO, ProcessorId::new(1)));
        assert_eq!(h.copier_failures(Nanos::ZERO, &tx), 0);
    }
}
