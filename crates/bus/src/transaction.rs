//! Bus transaction kinds.

use core::fmt;

use vmp_types::{FrameNum, ProcessorId};

/// The kinds of VMEbus transaction in the VMP protocol (paper §3.1).
///
/// The first five are *consistency-related*: bus monitors check them
/// against their action tables. `WriteActionTable` lets a CPU update its
/// own monitor's table explicitly (the table is otherwise updated as a
/// side effect of the CPU's own consistency transactions, avoiding a
/// dual-ported table). `PlainRead`/`PlainWrite` are ordinary transfers
/// used by DMA devices and device-register accesses; monitors ignore
/// them, which is exactly why DMA regions must first be protected with
/// assert-ownership + the `Protect` action code (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusTxKind {
    /// Acquire a non-exclusive (shared) copy of a cache page.
    ReadShared,
    /// Acquire an exclusive copy of a cache page (write miss, no copy).
    ReadPrivate,
    /// Gain exclusive ownership without reading from memory (the page is
    /// already held shared).
    AssertOwnership,
    /// Write a privately held page back to memory, releasing ownership.
    WriteBack,
    /// Send a notification to whichever processors watch this frame
    /// (action code `11`): kernel wakeups, interprocessor messages (§5.4).
    Notify,
    /// Update an entry in the issuer's own action table.
    WriteActionTable,
    /// Ordinary (non-consistency) read: DMA out of memory.
    PlainRead,
    /// Ordinary (non-consistency) write: DMA into memory.
    PlainWrite,
}

impl BusTxKind {
    /// All transaction kinds, in the order `BusStats` indexes them — for
    /// exhaustive per-kind reporting without hand-maintained lists.
    pub const ALL: [BusTxKind; 8] = [
        BusTxKind::ReadShared,
        BusTxKind::ReadPrivate,
        BusTxKind::AssertOwnership,
        BusTxKind::WriteBack,
        BusTxKind::Notify,
        BusTxKind::WriteActionTable,
        BusTxKind::PlainRead,
        BusTxKind::PlainWrite,
    ];

    /// Stable lower-case label, identical to the `Display` form but
    /// available in const and non-formatting contexts (JSON keys).
    pub const fn label(self) -> &'static str {
        match self {
            BusTxKind::ReadShared => "read-shared",
            BusTxKind::ReadPrivate => "read-private",
            BusTxKind::AssertOwnership => "assert-ownership",
            BusTxKind::WriteBack => "write-back",
            BusTxKind::Notify => "notify",
            BusTxKind::WriteActionTable => "write-action-table",
            BusTxKind::PlainRead => "plain-read",
            BusTxKind::PlainWrite => "plain-write",
        }
    }

    /// Returns `true` for the five consistency-related kinds the bus
    /// monitors check (paper §3.1).
    pub const fn is_consistency_related(self) -> bool {
        matches!(
            self,
            BusTxKind::ReadShared
                | BusTxKind::ReadPrivate
                | BusTxKind::AssertOwnership
                | BusTxKind::WriteBack
                | BusTxKind::Notify
        )
    }

    /// Returns `true` for transactions that request exclusive ownership.
    pub const fn requests_ownership(self) -> bool {
        matches!(self, BusTxKind::ReadPrivate | BusTxKind::AssertOwnership)
    }

    /// Returns `true` for transactions that move a whole cache page.
    pub const fn is_block_transfer(self) -> bool {
        matches!(self, BusTxKind::ReadShared | BusTxKind::ReadPrivate | BusTxKind::WriteBack)
    }
}

impl fmt::Display for BusTxKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One bus transaction: a kind, the physical frame it addresses, and the
/// processor issuing it.
///
/// DMA devices are modelled as pseudo-processors with their own
/// [`ProcessorId`] so monitors can tell self from foreign traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusTransaction {
    /// Transaction kind.
    pub kind: BusTxKind,
    /// Physical cache-page frame addressed.
    pub frame: FrameNum,
    /// Issuing processor (or DMA engine).
    pub issuer: ProcessorId,
}

impl BusTransaction {
    /// Creates a transaction.
    pub const fn new(kind: BusTxKind, frame: FrameNum, issuer: ProcessorId) -> Self {
        BusTransaction { kind, frame, issuer }
    }
}

impl fmt::Display for BusTransaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} by {}", self.kind, self.frame, self.issuer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_classification() {
        use BusTxKind::*;
        for k in [ReadShared, ReadPrivate, AssertOwnership, WriteBack, Notify] {
            assert!(k.is_consistency_related(), "{k}");
        }
        for k in [WriteActionTable, PlainRead, PlainWrite] {
            assert!(!k.is_consistency_related(), "{k}");
        }
    }

    #[test]
    fn ownership_requests() {
        assert!(BusTxKind::ReadPrivate.requests_ownership());
        assert!(BusTxKind::AssertOwnership.requests_ownership());
        assert!(!BusTxKind::ReadShared.requests_ownership());
        assert!(!BusTxKind::WriteBack.requests_ownership());
    }

    #[test]
    fn block_transfer_classification() {
        assert!(BusTxKind::ReadShared.is_block_transfer());
        assert!(BusTxKind::WriteBack.is_block_transfer());
        assert!(!BusTxKind::AssertOwnership.is_block_transfer());
        assert!(!BusTxKind::Notify.is_block_transfer());
    }

    #[test]
    fn display_all_kinds() {
        for k in BusTxKind::ALL {
            assert!(!k.to_string().is_empty());
            assert_eq!(k.to_string(), k.label());
        }
        let tx = BusTransaction::new(BusTxKind::ReadShared, FrameNum::new(3), ProcessorId::new(1));
        assert_eq!(tx.to_string(), "read-shared frame:0x3 by cpu1");
    }

    #[test]
    fn all_kinds_are_distinct() {
        for (i, a) in BusTxKind::ALL.iter().enumerate() {
            for b in &BusTxKind::ALL[i + 1..] {
                assert_ne!(a, b);
                assert_ne!(a.label(), b.label());
            }
        }
    }
}
