//! The per-processor bus monitor.

use std::collections::VecDeque;
use std::fmt;

use vmp_types::{FrameNum, ProcessorId};

use crate::{ActionCode, ActionTable, BusTransaction, BusTxKind};

/// Capacity of the monitor's interrupt-word FIFO (paper §3.2).
pub const FIFO_CAPACITY: usize = 128;

/// One queued interrupt word: "the type of bus transaction and the
/// physical address associated with the bus transaction" (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptWord {
    /// The transaction kind that triggered the interrupt.
    pub kind: BusTxKind,
    /// The physical frame it addressed.
    pub frame: FrameNum,
    /// Who issued the transaction (available to the handler for
    /// diagnostics; the real word encodes type + address).
    pub issuer: ProcessorId,
}

impl fmt::Display for InterruptWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "irq[{} {} from {}]", self.kind, self.frame, self.issuer)
    }
}

/// What the monitor decided about one observed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonitorDecision {
    /// The transaction must be aborted (terminated at the end of the
    /// current memory reference and retried by its issuer).
    pub abort: bool,
    /// An interrupt word was queued (or dropped, if the FIFO was full)
    /// for the local processor.
    pub interrupted: bool,
    /// A *new* word actually entered the FIFO: `interrupted` minus the
    /// coalesced-duplicate and overflow-drop cases. Fault injectors use
    /// this to target only words that exist to be lost.
    pub queued: bool,
    /// The word was lost to a FIFO overflow (sticky flag set). Distinct
    /// from a coalesced duplicate, which carries no new information;
    /// observability layers use this to record overflow events at the
    /// exact transaction that caused them.
    pub dropped: bool,
}

/// The bus monitor: VMP's entire per-processor consistency hardware.
///
/// On every bus transaction the monitor looks up the addressed frame in
/// its [`ActionTable`] and applies the two-bit code (paper §3.2):
///
/// * `00` — ignore;
/// * `01` (*shared*) — interrupt on read-private/assert-ownership, and
///   on a foreign write-back (see below);
/// * `10` (*private*/protect) — abort + interrupt on any
///   consistency-related acquisition or foreign write-back;
/// * `11` — interrupt on notify.
///
/// **The stale-sharer race.** §3.3 calls a foreign write-back under code
/// `01` a protocol violation, but there is a legitimate window in which
/// it happens: processor *j* holds a page shared, processor *i* takes it
/// private (queueing an invalidation word at *j*), modifies it, and
/// evicts it — all before *j* reaches an instruction boundary (e.g. *j*
/// is blocked in a 17–36 µs miss of its own). *i*'s write-back then hits
/// *j*'s still-`01` entry. Aborting would violate the paper's own
/// "write-backs are never aborted" guarantee, so this implementation
/// *interrupts without aborting*: *j*'s handler invalidates its stale
/// copy (which the queued word would have done anyway). A foreign
/// write-back under `10` — two owners — remains a true violation.
///
/// **Self-observation.** The monitor also watches its *own* processor's
/// transactions — that is how virtual-address aliases are caught: a
/// processor that issues read-shared for a frame its own cache holds
/// private (under a different virtual address) is aborted by its own
/// monitor and interrupted so it can flush the owned copy (§3.3). Two
/// asymmetries keep the protocol sound, both implied by the paper:
/// a self write-back is never aborted ("write-backs … are never
/// aborted"), and a self transaction under code `01`/`11` performs only
/// the concurrent table *update*, not the check (the issuing CPU is the
/// one changing the page's state).
///
/// The monitor's FIFO holds up to [`FIFO_CAPACITY`] words; on overflow
/// the word is dropped and a sticky flag is set so software can run the
/// recovery path (§3.3).
#[derive(Debug, Clone)]
pub struct BusMonitor {
    owner: ProcessorId,
    table: ActionTable,
    fifo: VecDeque<InterruptWord>,
    overflow: bool,
    /// Total interrupt words ever queued (for statistics).
    queued_total: u64,
    /// Total words dropped on overflow.
    dropped_total: u64,
}

impl BusMonitor {
    /// Creates a monitor for `owner` covering `frames` page frames.
    pub fn new(owner: ProcessorId, frames: u64) -> Self {
        BusMonitor {
            owner,
            table: ActionTable::new(frames),
            fifo: VecDeque::with_capacity(FIFO_CAPACITY),
            overflow: false,
            queued_total: 0,
            dropped_total: 0,
        }
    }

    /// The processor this monitor serves.
    pub fn owner(&self) -> ProcessorId {
        self.owner
    }

    /// Read access to the action table.
    pub fn table(&self) -> &ActionTable {
        &self.table
    }

    /// Write access to the action table (the CPU's `write-action-table`
    /// path and the concurrent-update path).
    pub fn table_mut(&mut self) -> &mut ActionTable {
        &mut self.table
    }

    /// Observes one bus transaction and applies the action-table code.
    ///
    /// Returns the decision; any interrupt word is queued on the FIFO.
    pub fn observe(&mut self, tx: &BusTransaction) -> MonitorDecision {
        if !tx.kind.is_consistency_related() {
            return MonitorDecision::default();
        }
        let code = self.table.get(tx.frame);
        let own = tx.issuer == self.owner;
        const PASS: (bool, bool) = (false, false);
        const INTERRUPT: (bool, bool) = (false, true);
        const ABORT_INTERRUPT: (bool, bool) = (true, true);
        let (abort, interrupted) = match (code, own) {
            (ActionCode::Ignore, _) => PASS,

            // Shared copy held. Foreign ownership requests interrupt (we
            // must invalidate); foreign write-back is a protocol
            // violation: abort + interrupt. Self transactions only update
            // the table (handled by the issuing CPU's software).
            (ActionCode::InterruptOnOwnership, false) => match tx.kind {
                k if k.requests_ownership() => INTERRUPT,
                // Stale-sharer race: the legitimate owner is writing back
                // before our invalidation word was serviced. Never abort a
                // write-back; let the handler drop the stale copy.
                BusTxKind::WriteBack => INTERRUPT,
                _ => PASS,
            },
            (ActionCode::InterruptOnOwnership, true) => PASS,

            // Private copy held (or DMA protect). Any foreign
            // consistency-related transaction aborts + interrupts. A self
            // acquisition means the processor is competing against itself
            // through a virtual-address alias: abort + interrupt (§3.3).
            // A self write-back is the release path: never aborted.
            (ActionCode::Protect, false) => match tx.kind {
                BusTxKind::Notify => PASS,
                _ => ABORT_INTERRUPT,
            },
            (ActionCode::Protect, true) => match tx.kind {
                BusTxKind::ReadShared | BusTxKind::ReadPrivate | BusTxKind::AssertOwnership => {
                    ABORT_INTERRUPT
                }
                _ => PASS,
            },

            // Notification watch.
            (ActionCode::NotifyWatch, _) => match tx.kind {
                BusTxKind::Notify if !own => INTERRUPT,
                _ => PASS,
            },
        };
        let (queued, dropped) = if interrupted {
            self.queue(InterruptWord { kind: tx.kind, frame: tx.frame, issuer: tx.issuer })
        } else {
            (false, false)
        };
        MonitorDecision { abort, interrupted, queued, dropped }
    }

    /// Returns `(queued, dropped)`.
    fn queue(&mut self, word: InterruptWord) -> (bool, bool) {
        // Coalesce: a word identical to one already pending carries no
        // new information for the handler (the condition is per-frame and
        // the service routine is idempotent), so the monitor suppresses
        // it instead of letting rapid retries of one aborted transaction
        // flood the FIFO.
        if self.fifo.iter().any(|w| *w == word) {
            return (false, false);
        }
        if self.fifo.len() >= FIFO_CAPACITY {
            self.overflow = true;
            self.dropped_total += 1;
            (false, true)
        } else {
            self.fifo.push_back(word);
            self.queued_total += 1;
            (true, false)
        }
    }

    /// Pops the oldest pending interrupt word, if any.
    pub fn pop_interrupt(&mut self) -> Option<InterruptWord> {
        self.fifo.pop_front()
    }

    /// Iterates over the queued-but-unserviced interrupt words, oldest
    /// first (used by invariant validators to identify in-transition
    /// frames).
    pub fn pending_words(&self) -> impl Iterator<Item = &InterruptWord> + '_ {
        self.fifo.iter()
    }

    /// Discards all pending words (the overflow-recovery path consumes
    /// the queue wholesale after rebuilding state from scratch).
    pub fn drain(&mut self) {
        self.fifo.clear();
    }

    /// Removes the most recently queued word and sets the sticky
    /// overflow flag, exactly as if the FIFO had been full when the word
    /// arrived (fault injection: a lost word is only recoverable if it
    /// is indistinguishable from an overflow drop, so software runs the
    /// §3.3 recovery scan). Returns the dropped word, if any.
    pub fn drop_newest(&mut self) -> Option<InterruptWord> {
        let word = self.fifo.pop_back()?;
        self.overflow = true;
        self.dropped_total += 1;
        Some(word)
    }

    /// Sets the sticky overflow flag without dropping anything: software
    /// will run the recovery scan spuriously. Used by fault injection to
    /// exercise the recovery path on an intact FIFO.
    pub fn force_overflow(&mut self) {
        self.overflow = true;
    }

    /// Number of pending interrupt words.
    pub fn pending(&self) -> usize {
        self.fifo.len()
    }

    /// The sticky overflow flag: set when a word was dropped because the
    /// FIFO was full.
    pub fn overflowed(&self) -> bool {
        self.overflow
    }

    /// Clears the overflow flag after software has run its recovery
    /// (invalidate/reread shared entries and rebuild the table, §3.3).
    pub fn clear_overflow(&mut self) {
        self.overflow = false;
    }

    /// Total words ever queued.
    pub fn queued_total(&self) -> u64 {
        self.queued_total
    }

    /// Total words ever dropped on overflow.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Restores the FIFO and counters verbatim from checkpointed state,
    /// bypassing the coalescing/overflow logic of the normal queue path
    /// (the words were already admitted once; re-filtering them would
    /// corrupt the restored state). The action table is restored
    /// separately through [`BusMonitor::table_mut`].
    ///
    /// # Panics
    ///
    /// Panics if more than [`FIFO_CAPACITY`] words are supplied.
    pub fn restore_fifo(
        &mut self,
        words: Vec<InterruptWord>,
        overflow: bool,
        queued_total: u64,
        dropped_total: u64,
    ) {
        assert!(words.len() <= FIFO_CAPACITY, "restored FIFO exceeds capacity");
        self.fifo = words.into();
        self.overflow = overflow;
        self.queued_total = queued_total;
        self.dropped_total = dropped_total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> BusMonitor {
        BusMonitor::new(ProcessorId::new(0), 256)
    }

    fn tx(kind: BusTxKind, frame: u64, issuer: usize) -> BusTransaction {
        BusTransaction::new(kind, FrameNum::new(frame), ProcessorId::new(issuer))
    }

    #[test]
    fn ignore_code_ignores_everything() {
        let mut m = monitor();
        for kind in [
            BusTxKind::ReadShared,
            BusTxKind::ReadPrivate,
            BusTxKind::AssertOwnership,
            BusTxKind::WriteBack,
            BusTxKind::Notify,
        ] {
            let d = m.observe(&tx(kind, 1, 1));
            assert_eq!(d, MonitorDecision::default(), "{kind}");
        }
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn plain_transactions_never_checked() {
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(2), ActionCode::Protect);
        let d = m.observe(&tx(BusTxKind::PlainRead, 2, 1));
        assert_eq!(d, MonitorDecision::default());
        let d = m.observe(&tx(BusTxKind::PlainWrite, 2, 1));
        assert_eq!(d, MonitorDecision::default());
    }

    #[test]
    fn shared_code_interrupts_on_foreign_ownership_requests() {
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(3), ActionCode::InterruptOnOwnership);
        assert_eq!(m.observe(&tx(BusTxKind::ReadShared, 3, 1)), MonitorDecision::default());
        let d = m.observe(&tx(BusTxKind::ReadPrivate, 3, 1));
        assert!(d.interrupted && !d.abort);
        let d = m.observe(&tx(BusTxKind::AssertOwnership, 3, 2));
        assert!(d.interrupted && !d.abort);
        assert_eq!(m.pending(), 2);
        let w = m.pop_interrupt().unwrap();
        assert_eq!(w.kind, BusTxKind::ReadPrivate);
        assert_eq!(w.issuer, ProcessorId::new(1));
    }

    #[test]
    fn shared_code_foreign_writeback_interrupts_without_abort() {
        // The stale-sharer race: never abort a write-back; interrupt so
        // the handler invalidates the stale copy.
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(3), ActionCode::InterruptOnOwnership);
        let d = m.observe(&tx(BusTxKind::WriteBack, 3, 1));
        assert!(!d.abort && d.interrupted);
    }

    #[test]
    fn shared_code_self_transactions_not_checked() {
        // Own upgrade (assert-ownership) must not self-invalidate.
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(3), ActionCode::InterruptOnOwnership);
        let d = m.observe(&tx(BusTxKind::AssertOwnership, 3, 0));
        assert_eq!(d, MonitorDecision::default());
    }

    #[test]
    fn protect_aborts_all_foreign_consistency_traffic() {
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(4), ActionCode::Protect);
        for kind in [
            BusTxKind::ReadShared,
            BusTxKind::ReadPrivate,
            BusTxKind::AssertOwnership,
            BusTxKind::WriteBack,
        ] {
            let d = m.observe(&tx(kind, 4, 1));
            assert!(d.abort && d.interrupted, "{kind}");
        }
    }

    #[test]
    fn protect_aborts_self_alias_acquisitions() {
        // The alias case of §3.3: a processor read-sharing a frame its own
        // cache owns privately is aborted by its own monitor.
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(4), ActionCode::Protect);
        let d = m.observe(&tx(BusTxKind::ReadShared, 4, 0));
        assert!(d.abort && d.interrupted);
    }

    #[test]
    fn protect_never_aborts_self_writeback() {
        // Release path: "write-backs ... are never aborted".
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(4), ActionCode::Protect);
        let d = m.observe(&tx(BusTxKind::WriteBack, 4, 0));
        assert_eq!(d, MonitorDecision::default());
    }

    #[test]
    fn notify_watch_interrupts_on_foreign_notify_only() {
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(5), ActionCode::NotifyWatch);
        let d = m.observe(&tx(BusTxKind::Notify, 5, 1));
        assert!(d.interrupted && !d.abort);
        // Other traffic passes (e.g. the lock holder rewriting the word).
        assert_eq!(m.observe(&tx(BusTxKind::ReadPrivate, 5, 1)), MonitorDecision::default());
        // Own notify doesn't wake ourselves.
        assert_eq!(m.observe(&tx(BusTxKind::Notify, 5, 0)), MonitorDecision::default());
    }

    #[test]
    fn notify_ignored_under_protect() {
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(5), ActionCode::Protect);
        let d = m.observe(&tx(BusTxKind::Notify, 5, 1));
        assert_eq!(d, MonitorDecision::default());
    }

    #[test]
    fn fifo_overflow_sets_sticky_flag_and_drops() {
        let mut m = monitor();
        for f in 0..FIFO_CAPACITY as u64 {
            m.table_mut().set(FrameNum::new(f), ActionCode::InterruptOnOwnership);
            m.observe(&tx(BusTxKind::ReadPrivate, f, 1));
        }
        assert_eq!(m.pending(), FIFO_CAPACITY);
        assert!(!m.overflowed());
        let f = FIFO_CAPACITY as u64;
        m.table_mut().set(FrameNum::new(f), ActionCode::InterruptOnOwnership);
        let d = m.observe(&tx(BusTxKind::ReadPrivate, f, 1));
        assert!(d.interrupted && !d.queued && d.dropped, "overflow drop is flagged");
        assert_eq!(m.pending(), FIFO_CAPACITY);
        assert!(m.overflowed());
        assert_eq!(m.dropped_total(), 1);
        assert_eq!(m.queued_total(), FIFO_CAPACITY as u64);
        m.clear_overflow();
        assert!(!m.overflowed());
    }

    #[test]
    fn duplicate_words_coalesce() {
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(6), ActionCode::Protect);
        for _ in 0..10 {
            let d = m.observe(&tx(BusTxKind::ReadPrivate, 6, 1));
            assert!(d.abort);
        }
        assert_eq!(m.pending(), 1, "identical pending words coalesce");
        // A different issuer or kind is a distinct word.
        m.observe(&tx(BusTxKind::ReadPrivate, 6, 2));
        m.observe(&tx(BusTxKind::ReadShared, 6, 1));
        assert_eq!(m.pending(), 3);
    }

    #[test]
    fn queued_flag_tracks_actual_fifo_entry() {
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(6), ActionCode::Protect);
        let d = m.observe(&tx(BusTxKind::ReadPrivate, 6, 1));
        assert!(d.interrupted && d.queued, "first word enters the FIFO");
        let d = m.observe(&tx(BusTxKind::ReadPrivate, 6, 1));
        assert!(d.interrupted && !d.queued, "coalesced duplicate is not queued");
        assert!(!d.dropped, "a coalesced duplicate is not a loss");
    }

    #[test]
    fn drop_newest_models_overflow() {
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(1), ActionCode::InterruptOnOwnership);
        m.table_mut().set(FrameNum::new(2), ActionCode::InterruptOnOwnership);
        m.observe(&tx(BusTxKind::ReadPrivate, 1, 1));
        m.observe(&tx(BusTxKind::ReadPrivate, 2, 1));
        let dropped = m.drop_newest().unwrap();
        assert_eq!(dropped.frame, FrameNum::new(2), "newest word is dropped");
        assert!(m.overflowed(), "drop sets the sticky flag");
        assert_eq!(m.dropped_total(), 1);
        assert_eq!(m.pending(), 1, "older word survives");
        m.clear_overflow();
        m.drain();
        assert!(m.drop_newest().is_none(), "empty FIFO drops nothing");
        assert!(!m.overflowed(), "no-op drop leaves the flag clear");
    }

    #[test]
    fn force_overflow_sets_flag_without_loss() {
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(1), ActionCode::InterruptOnOwnership);
        m.observe(&tx(BusTxKind::ReadPrivate, 1, 1));
        m.force_overflow();
        assert!(m.overflowed());
        assert_eq!(m.pending(), 1, "no word lost");
        assert_eq!(m.dropped_total(), 0);
    }

    #[test]
    fn fifo_is_fifo() {
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(1), ActionCode::InterruptOnOwnership);
        m.table_mut().set(FrameNum::new(2), ActionCode::InterruptOnOwnership);
        m.observe(&tx(BusTxKind::ReadPrivate, 1, 1));
        m.observe(&tx(BusTxKind::ReadPrivate, 2, 1));
        assert_eq!(m.pop_interrupt().unwrap().frame, FrameNum::new(1));
        assert_eq!(m.pop_interrupt().unwrap().frame, FrameNum::new(2));
        assert!(m.pop_interrupt().is_none());
    }

    #[test]
    fn pending_words_and_drain() {
        let mut m = monitor();
        m.table_mut().set(FrameNum::new(1), ActionCode::InterruptOnOwnership);
        m.observe(&tx(BusTxKind::ReadPrivate, 1, 1));
        m.observe(&tx(BusTxKind::AssertOwnership, 1, 2));
        assert_eq!(m.pending_words().count(), 2);
        assert_eq!(m.pending_words().next().unwrap().issuer, ProcessorId::new(1));
        m.drain();
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn interrupt_word_display() {
        let w = InterruptWord {
            kind: BusTxKind::Notify,
            frame: FrameNum::new(9),
            issuer: ProcessorId::new(2),
        };
        assert!(w.to_string().contains("notify"));
    }
}
