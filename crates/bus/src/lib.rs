//! The VMP bus level: VMEbus transactions, per-processor *bus monitors*
//! and their two-bit-per-frame *action tables*.
//!
//! VMP's only consistency hardware is the bus monitor: a simple state
//! machine that watches every bus transaction, looks up the transaction's
//! physical page frame in its action table, and either ignores it,
//! interrupts its processor, or aborts the transaction and interrupts
//! (paper §3.2). Everything else — deciding *what* to do about a
//! conflicting access — is software running on the interrupted processor.
//!
//! The module provides:
//!
//! * [`BusTxKind`]/[`BusTransaction`] — the six consistency-related
//!   transaction kinds (read-shared, read-private, assert-ownership,
//!   write-back, notify, write-action-table) plus plain DMA transfers;
//! * [`ActionCode`]/[`ActionTable`] — the 2-bit per-frame codes
//!   `00/01/10/11`;
//! * [`BusMonitor`] — check/abort/interrupt logic with the 128-entry
//!   interrupt-word FIFO and its overflow flag;
//! * [`VmeBus`] — occupancy, arbitration and transaction timing built on
//!   the block-transfer model of [`vmp_mem::MemTimings`].
//!
//! # Examples
//!
//! ```
//! use vmp_bus::{ActionCode, BusMonitor, BusTransaction, BusTxKind};
//! use vmp_types::{FrameNum, ProcessorId};
//!
//! let mut monitor = BusMonitor::new(ProcessorId::new(0), 1024);
//! monitor.table_mut().set(FrameNum::new(7), ActionCode::InterruptOnOwnership);
//!
//! // Another CPU asks for exclusive ownership of frame 7:
//! let tx = BusTransaction::new(BusTxKind::ReadPrivate, FrameNum::new(7), ProcessorId::new(1));
//! let decision = monitor.observe(&tx);
//! assert!(!decision.abort);
//! assert!(decision.interrupted);
//! // The monitor queued an interrupt word for CPU 0's consistency handler.
//! assert_eq!(monitor.pop_interrupt().unwrap().frame, FrameNum::new(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod fault;
mod monitor;
mod transaction;
mod vme;

pub use action::{ActionCode, ActionTable};
pub use fault::{FaultClass, FaultHook, NoFaults};
pub use monitor::{BusMonitor, InterruptWord, MonitorDecision, FIFO_CAPACITY};
pub use transaction::{BusTransaction, BusTxKind};
pub use vme::{BusStats, BusTimings, VmeBus};
