//! The bus monitor's two-bit-per-frame action table.

use core::fmt;

use vmp_types::FrameNum;

/// One two-bit action-table entry (paper §3.2).
///
/// | bits | meaning |
/// |------|---------|
/// | `00` | do nothing |
/// | `01` | interrupt the local processor on read-private / assert-ownership (the page is held **shared**) |
/// | `10` | abort the transaction and interrupt on any consistency-related transaction (the page is held **private**, or protected for DMA) |
/// | `11` | interrupt the local processor on a notification transaction |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum ActionCode {
    /// `00` — ignore all transactions on this frame.
    #[default]
    Ignore = 0b00,
    /// `01` — interrupt on ownership requests; the page is held shared.
    InterruptOnOwnership = 0b01,
    /// `10` — abort + interrupt on any consistency-related transaction;
    /// the page is held private (or protected during DMA).
    Protect = 0b10,
    /// `11` — interrupt on a notification transaction.
    NotifyWatch = 0b11,
}

impl ActionCode {
    /// Decodes from the two-bit hardware encoding.
    pub const fn from_bits(bits: u8) -> ActionCode {
        match bits & 0b11 {
            0b00 => ActionCode::Ignore,
            0b01 => ActionCode::InterruptOnOwnership,
            0b10 => ActionCode::Protect,
            _ => ActionCode::NotifyWatch,
        }
    }

    /// Encodes to the two-bit hardware encoding.
    pub const fn bits(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for ActionCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActionCode::Ignore => "00/ignore",
            ActionCode::InterruptOnOwnership => "01/shared",
            ActionCode::Protect => "10/private",
            ActionCode::NotifyWatch => "11/notify",
        };
        f.write_str(s)
    }
}

/// The per-monitor table of [`ActionCode`]s, one per physical cache-page
/// frame.
///
/// For the prototype's maximum of 8 MB of physical memory with 128-byte
/// pages this is 64 Ki entries × 2 bits = 16 KB of SRAM per board (paper
/// §3.2, footnote 6); the simulator stores one byte per entry for
/// simplicity but reports the hardware size via
/// [`ActionTable::hardware_bytes`].
///
/// # Examples
///
/// ```
/// use vmp_bus::{ActionCode, ActionTable};
/// use vmp_types::FrameNum;
///
/// let mut t = ActionTable::new(65536);
/// assert_eq!(t.get(FrameNum::new(9)), ActionCode::Ignore);
/// t.set(FrameNum::new(9), ActionCode::Protect);
/// assert_eq!(t.get(FrameNum::new(9)), ActionCode::Protect);
/// assert_eq!(t.hardware_bytes(), 16 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct ActionTable {
    entries: Vec<ActionCode>,
}

impl ActionTable {
    /// Creates a table of `frames` entries, all `00` (ignore).
    pub fn new(frames: u64) -> Self {
        ActionTable { entries: vec![ActionCode::Ignore; frames as usize] }
    }

    /// Number of frames covered.
    pub fn frames(&self) -> u64 {
        self.entries.len() as u64
    }

    /// The SRAM the real table would occupy: two bits per frame.
    pub fn hardware_bytes(&self) -> u64 {
        (self.entries.len() as u64 * 2).div_ceil(8)
    }

    /// Reads the entry for a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is out of range.
    pub fn get(&self, frame: FrameNum) -> ActionCode {
        self.entries[frame.index()]
    }

    /// Writes the entry for a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is out of range.
    pub fn set(&mut self, frame: FrameNum, code: ActionCode) {
        self.entries[frame.index()] = code;
    }

    /// Iterates over non-ignore entries as `(FrameNum, ActionCode)`.
    pub fn iter_active(&self) -> impl Iterator<Item = (FrameNum, ActionCode)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != ActionCode::Ignore)
            .map(|(i, &c)| (FrameNum::new(i as u64), c))
    }

    /// Resets every entry to `00` (ignore). Used by the FIFO-overflow
    /// recovery path (§3.3): the processor invalidates its shared entries
    /// and rebuilds the table.
    pub fn clear(&mut self) {
        self.entries.fill(ActionCode::Ignore);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        for bits in 0..4u8 {
            assert_eq!(ActionCode::from_bits(bits).bits(), bits);
        }
        assert_eq!(ActionCode::from_bits(0b111), ActionCode::NotifyWatch);
        assert_eq!(ActionCode::default(), ActionCode::Ignore);
    }

    #[test]
    fn table_get_set_clear() {
        let mut t = ActionTable::new(16);
        assert_eq!(t.frames(), 16);
        t.set(FrameNum::new(3), ActionCode::InterruptOnOwnership);
        t.set(FrameNum::new(5), ActionCode::Protect);
        assert_eq!(t.get(FrameNum::new(3)), ActionCode::InterruptOnOwnership);
        let active: Vec<_> = t.iter_active().collect();
        assert_eq!(active.len(), 2);
        assert_eq!(active[0], (FrameNum::new(3), ActionCode::InterruptOnOwnership));
        t.clear();
        assert_eq!(t.iter_active().count(), 0);
    }

    #[test]
    fn hardware_size_matches_paper_footnote() {
        // 8 MB / 128 B pages = 64 Ki frames → 16 KB of 2-bit entries;
        // 256 B pages → 8 KB; 512 B pages → 4 KB (paper footnote 6).
        assert_eq!(ActionTable::new(8 * 1024 * 1024 / 128).hardware_bytes(), 16 * 1024);
        assert_eq!(ActionTable::new(8 * 1024 * 1024 / 256).hardware_bytes(), 8 * 1024);
        assert_eq!(ActionTable::new(8 * 1024 * 1024 / 512).hardware_bytes(), 4 * 1024);
    }

    #[test]
    #[should_panic]
    fn out_of_range_frame_panics() {
        let t = ActionTable::new(4);
        let _ = t.get(FrameNum::new(4));
    }

    #[test]
    fn display() {
        assert_eq!(ActionCode::Protect.to_string(), "10/private");
        assert_eq!(ActionCode::Ignore.to_string(), "00/ignore");
    }
}
