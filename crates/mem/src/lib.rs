//! Memory subsystems of the VMP machine: shared main memory, the block
//! copier's transfer timing, and per-processor local memory.
//!
//! The paper's main memory is optimized for sequential access with
//! static-column RAM: the first access costs 300 ns, each subsequent
//! sequential longword under 100 ns, giving the block copier its
//! 40 MB/s transfer rate (§2, §4). Local memory holds the cache-miss
//! handler's code and data so the handler itself can never miss (§2).
//!
//! # Examples
//!
//! ```
//! use vmp_mem::{MainMemory, MemTimings};
//! use vmp_types::{FrameNum, PageSize};
//!
//! let mut mem = MainMemory::new(PageSize::S256, 64 * 1024);
//! mem.write(FrameNum::new(2), 8, &[1, 2, 3, 4]);
//! assert_eq!(mem.read(FrameNum::new(2), 8, 4), &[1, 2, 3, 4]);
//! // One 256-byte page = 64 longwords: 300 + 63·100 ns = 6.6 µs.
//! assert_eq!(MemTimings::default().block_transfer(64).as_micros_f64(), 6.6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod local;
mod main_memory;
mod timings;

pub use local::LocalMemory;
pub use main_memory::MainMemory;
pub use timings::{MemTimings, MAX_TRANSFER_RETRIES};
