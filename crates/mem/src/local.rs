//! Per-processor local memory.

use vmp_types::Nanos;

/// The 32 KB of private, zero-wait-state RAM on each VMP processor board.
///
/// Local memory holds the cache-miss handler's code, the supervisor stack
/// for exception frames, and the cache-management data structures, so
/// that handling a miss can never itself miss (paper §2). In the
/// simulator the handler's *data structures* are ordinary Rust values
/// owned by the machine model; this type models the resource itself —
/// its capacity, its zero-wait access timing, and a byte store for
/// programs that want scratch space (e.g. DMA descriptors in tests).
///
/// # Examples
///
/// ```
/// use vmp_mem::LocalMemory;
///
/// let mut local = LocalMemory::new(32 * 1024);
/// local.write_u32(0x100, 42);
/// assert_eq!(local.read_u32(0x100), 42);
/// assert_eq!(local.access_time().as_ns(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct LocalMemory {
    data: Vec<u8>,
}

impl LocalMemory {
    /// Creates zeroed local memory of the given size.
    pub fn new(bytes: usize) -> Self {
        LocalMemory { data: vec![0; bytes] }
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for a zero-capacity local memory.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Access latency: local memory is synchronous with the CPU, so no
    /// extra wait states are modelled (the CPU's own cycle time covers it).
    pub fn access_time(&self) -> Nanos {
        Nanos::ZERO
    }

    /// Reads a little-endian `u32` at a byte offset.
    ///
    /// # Panics
    ///
    /// Panics if the offset is unaligned or out of range.
    pub fn read_u32(&self, offset: usize) -> u32 {
        assert_eq!(offset % 4, 0, "unaligned local read");
        let b = &self.data[offset..offset + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Writes a little-endian `u32` at a byte offset.
    ///
    /// # Panics
    ///
    /// Panics if the offset is unaligned or out of range.
    pub fn write_u32(&mut self, offset: usize, value: u32) {
        assert_eq!(offset % 4, 0, "unaligned local write");
        self.data[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a byte range.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_bytes(&self, offset: usize, len: usize) -> &[u8] {
        &self.data[offset..offset + len]
    }

    /// Writes a byte range.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_bytes(&mut self, offset: usize, bytes: &[u8]) {
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }
}

impl Default for LocalMemory {
    /// The prototype's 32 KB board configuration.
    fn default() -> Self {
        LocalMemory::new(32 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_32k() {
        let l = LocalMemory::default();
        assert_eq!(l.len(), 32 * 1024);
        assert!(!l.is_empty());
    }

    #[test]
    fn word_roundtrip() {
        let mut l = LocalMemory::new(64);
        l.write_u32(8, 0xcafe_f00d);
        assert_eq!(l.read_u32(8), 0xcafe_f00d);
        assert_eq!(l.read_u32(12), 0);
    }

    #[test]
    fn byte_ranges() {
        let mut l = LocalMemory::new(16);
        l.write_bytes(2, &[1, 2, 3]);
        assert_eq!(l.read_bytes(1, 5), &[0, 1, 2, 3, 0]);
    }

    #[test]
    fn zero_wait_state() {
        assert_eq!(LocalMemory::new(4).access_time(), Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn rejects_unaligned() {
        LocalMemory::new(16).read_u32(2);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_bounds() {
        let mut l = LocalMemory::new(8);
        l.write_bytes(6, &[0; 4]);
    }
}
